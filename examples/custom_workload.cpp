/**
 * @file
 * Building your own workload and slice against the public API: a
 * linked-list search kernel, written with the zsr assembler, plus a
 * hand-constructed speculative slice for its problem branch and load —
 * the workflow of Section 3.2 (pick a fork point, extract the
 * computation, annotate PGIs and kills, bound the loop).
 */

#include <cstdio>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "sim/workload.hh"

using namespace specslice;

namespace
{

constexpr Addr codeBase = 0x10000;
constexpr Addr sliceBase = 0x8000;
constexpr Addr globals = 0x100000;
constexpr Addr nodesBase = 0x2000000;

// Node: { next, key } (32 bytes; one per line pair).
constexpr unsigned nodeSize = 32;
constexpr std::uint64_t numNodes = 65'536;  ///< 2 MB of nodes
constexpr std::uint64_t numHeads = 1024;

sim::Workload
buildListSearch()
{
    sim::Workload wl;
    wl.name = "custom_list_search";

    // ---- main program: search a random list for a random key ----
    isa::Assembler as(codeBase);
    as.label("start");
    as.ldi64(30, globals);

    as.label("search_loop");
    // xorshift RNG for the list pick and the probe key.
    as.ldq(5, 30, 8);
    as.srli(6, 5, 12);
    as.xor_(5, 5, 6);
    as.slli(6, 5, 25);
    as.xor_(5, 5, 6);
    as.srli(6, 5, 27);
    as.xor_(5, 5, 6);
    as.stq(5, 30, 8);
    as.andi(6, 5, numHeads - 1);
    as.ldq(7, 30, 16);            // heads base
    as.s8add(8, 6, 7);
    as.ldq(21, 8, 0);             // r21 = list head   (live-in)
    as.srli(22, 5, 40);
    as.andi(22, 22, 1023);        // r22 = probe key   (live-in)

    as.label("search_fn");        // << fork point
    // Some caller work the fork is hoisted past.
    for (int i = 0; i < 10; ++i) {
        as.addi(10, 10, 3 + i);
        as.xor_(10, 10, 5);
    }
    as.mov(14, 21);
    as.label("walk");
    as.ldq(15, 14, 8);            // node->key    << problem load
    as.cmpeq(16, 15, 22);
    as.label("found_branch");
    as.bne(16, "found");          // << problem branch
    as.label("advance");          // << loop-iteration kill
    as.ldq(14, 14, 0);            // node = node->next
    as.bne(14, "walk");
    as.br("done");
    as.label("found");
    as.stq(15, 30, 32);           // record the hit
    as.label("done");             // << slice kill
    as.stq(14, 30, 24);
    as.ldq(2, 30, 0);
    as.subi(2, 2, 1);
    as.stq(2, 30, 0);
    as.bgt(2, "search_loop");
    as.halt();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    // ---- the slice: walk ahead, prefetch, predict (Section 3.2) ----
    isa::Assembler sl(sliceBase);
    sl.label("slice");
    sl.mov(14, 21);
    sl.label("slice_loop");
    sl.label("slice_pref");
    sl.ldq(15, 14, 8);            // prefetch node, load key
    sl.label("slice_pgi");
    sl.cmpeq(isa::regZero, 15, 22);
    sl.ldq(14, 14, 0);            // advance (null faults: terminates)
    sl.br("slice_loop");
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(sym);
    wl.program.addSymbols(ssym);
    wl.entry = sym.at("start");

    // ---- annotations (cf. Figure 5's fork / live-in / max-iter) ----
    slice::SliceDescriptor sd;
    sd.name = "list_search_slice";
    sd.forkPc = sym.at("search_fn");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {21, 22};
    sd.maxLoopIters = 48;  // profile-derived bound on list walks
    sd.loopBackEdgePc = ssym.at("slice") + 4 * isa::instBytes;
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());
    sd.staticSizeInLoop = 4;

    slice::PgiSpec pgi;
    pgi.sliceInstPc = ssym.at("slice_pgi");
    pgi.problemBranchPc = sym.at("found_branch");
    pgi.invert = false;
    pgi.loopKillPc = sym.at("advance");
    pgi.sliceKillPc = sym.at("done");
    sd.pgis = {pgi};
    sd.coveredBranchPcs = {sym.at("found_branch")};
    sd.coveredLoadPcs = {sym.at("walk")};
    sd.prefetchLoadPcs = {ssym.at("slice_pref")};
    wl.slices = {sd};

    // ---- data: scattered singly-linked lists ----
    wl.initMemory = [](arch::MemoryImage &mem) {
        Rng rng(0xabcdef12345ull);
        const Addr heads = globals + 0x1000;
        std::uint64_t node = 0;
        for (std::uint64_t h = 0; h < numHeads; ++h) {
            unsigned len = 4 + static_cast<unsigned>(rng.below(40));
            Addr head = 0;
            for (unsigned k = 0; k < len; ++k) {
                Addr a = nodesBase +
                         ((node * 2654435761u) % numNodes) * nodeSize;
                ++node;
                mem.writeQ(a + 0, head);
                mem.writeQ(a + 8, rng.below(1024));
                head = a;
            }
            mem.writeQ(heads + h * 8, head);
        }
        mem.writeQ(globals + 0, 4000);      // searches
        mem.writeQ(globals + 8, 0x1234567); // rng state
        mem.writeQ(globals + 16, heads);
    };
    return wl;
}

} // namespace

int
main()
{
    sim::Workload wl = buildListSearch();
    std::printf("custom workload '%s': %zu static instructions\n\n",
                wl.name.c_str(), wl.program.staticSize());

    sim::Simulator machine(sim::MachineConfig::fourWide());
    sim::RunOptions opts;
    opts.maxMainInstructions = 150'000;
    opts.warmupInstructions = 40'000;

    auto base = machine.runBaseline(wl, opts);
    auto sliced = machine.run(wl, opts, true);

    std::printf("baseline:    IPC %.2f, %llu mispredictions, %llu L1 "
                "misses\n",
                base.ipc(),
                static_cast<unsigned long long>(base.mispredictions),
                static_cast<unsigned long long>(base.l1dMissesMain));
    std::printf("with slice:  IPC %.2f, %llu mispredictions, %llu L1 "
                "misses\n",
                sliced.ipc(),
                static_cast<unsigned long long>(sliced.mispredictions),
                static_cast<unsigned long long>(sliced.l1dMissesMain));
    std::printf("speedup: %.1f%%\n",
                100.0 * (static_cast<double>(base.cycles) /
                             static_cast<double>(sliced.cycles) -
                         1.0));
    return 0;
}
