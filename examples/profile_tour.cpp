/**
 * @file
 * A tour of the profiling pipeline (Section 2): run every workload on
 * the baseline machine, attribute PDEs to static instructions, apply
 * the problem-instruction classifier, and show how concentrated the
 * PDEs are — the observation the whole paper builds on.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "profile/pde_profile.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

int
main()
{
    workloads::Params params;
    params.scale = 300'000;
    sim::Simulator machine(sim::MachineConfig::fourWide());
    sim::RunOptions opts;
    opts.maxMainInstructions = 120'000;
    opts.warmupInstructions = 40'000;
    opts.profile = true;

    for (const std::string &name : workloads::allWorkloadNames()) {
        auto wl = workloads::buildWorkload(name, params);
        auto res = machine.runBaseline(wl, opts);
        auto prob = profile::classifyProblemInstructions(res.profile);

        std::printf("%-8s IPC %4.2f | %3zu problem SIs cover %3.0f%% "
                    "of misses, %3.0f%% of mispredictions\n",
                    name.c_str(), res.ipc(),
                    prob.problemLoads.size() +
                        prob.problemBranches.size(),
                    100.0 * prob.missCoverage(),
                    100.0 * prob.mispredCoverage());

        // Top-3 PDE sources, the candidates for slice construction.
        std::vector<std::pair<std::uint64_t, Addr>> top;
        for (const auto &[pc, c] : res.profile.perPc) {
            std::uint64_t pde = c.loadMiss + c.branchMispred;
            if (pde)
                top.push_back({pde, pc});
        }
        std::sort(top.rbegin(), top.rend());
        for (std::size_t i = 0; i < top.size() && i < 3; ++i) {
            const isa::Instruction *si = wl.program.fetch(top[i].second);
            std::printf("    0x%llx  %6llu PDEs  %s\n",
                        static_cast<unsigned long long>(top[i].second),
                        static_cast<unsigned long long>(top[i].first),
                        si ? si->disassemble().c_str() : "?");
        }
    }
    return 0;
}
