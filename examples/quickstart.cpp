/**
 * @file
 * Quickstart: build a workload, run it on the Table 1 machine with and
 * without its speculative slices, and print the speedup — the
 * smallest end-to-end use of the public API.
 */

#include <cstdio>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

int
main()
{
    // 1. Build a workload: the paper's running example (vpr's binary
    //    heap insertion, Sections 2.4 / 3.2), including its
    //    hand-constructed Figure 5 slice.
    workloads::Params params;
    params.scale = 400'000;  // ~dynamic instruction budget
    sim::Workload wl = workloads::buildVpr(params);

    std::printf("workload: %s (%zu static instructions, %zu slices)\n",
                wl.name.c_str(), wl.program.staticSize(),
                wl.slices.size());

    // 2. Configure the machine: Table 1's 4-wide SMT core.
    sim::Simulator machine(sim::MachineConfig::fourWide());

    sim::RunOptions opts;
    opts.maxMainInstructions = 200'000;
    opts.warmupInstructions = 60'000;  // warm caches and predictors

    // 3. Baseline run (helper threads idle).
    sim::RunResult base = machine.runBaseline(wl, opts);
    std::printf("baseline:     %8llu cycles, IPC %.2f, "
                "%llu mispredictions, %llu L1 misses\n",
                static_cast<unsigned long long>(base.cycles),
                base.ipc(),
                static_cast<unsigned long long>(base.mispredictions),
                static_cast<unsigned long long>(base.l1dMissesMain));

    // 4. Slice-assisted run: the slice table forks the Figure 5 slice
    //    at node_to_heap; it prefetches the ancestor chain and feeds
    //    branch predictions through the prediction correlator.
    sim::RunResult sliced = machine.run(wl, opts, true);
    std::printf("with slices:  %8llu cycles, IPC %.2f, "
                "%llu mispredictions, %llu L1 misses\n",
                static_cast<unsigned long long>(sliced.cycles),
                sliced.ipc(),
                static_cast<unsigned long long>(sliced.mispredictions),
                static_cast<unsigned long long>(sliced.l1dMissesMain));

    double speedup = 100.0 * (static_cast<double>(base.cycles) /
                                  static_cast<double>(sliced.cycles) -
                              1.0);
    std::printf("\nspeedup: %.1f%%  (forks: %llu, predictions used: "
                "%llu, wrong: %llu)\n",
                speedup,
                static_cast<unsigned long long>(sliced.forks),
                static_cast<unsigned long long>(sliced.correlatorUsed),
                static_cast<unsigned long long>(sliced.correlatorWrong));
    return 0;
}
