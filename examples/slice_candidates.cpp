/**
 * @file
 * Automatic slice-candidate analysis (Section 3.3): profile a
 * workload, pick its worst problem instructions, and let the
 * trace-based analyzer compute their backward slices, dataflow
 * heights, live-in sets and fork-point "sweet spots". For vpr the
 * analyzer rediscovers the shape of the paper's hand-built Figure 5
 * slice: a handful of static instructions, two or three live-ins, and
 * a fork point hoisted ~40-60 dynamic instructions ahead.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "autoslice/analyzer.hh"
#include "profile/pde_profile.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "vpr";

    workloads::Params params;
    params.scale = 400'000;
    sim::Workload wl = workloads::buildWorkload(name, params);

    // Step 1 (Section 2.2): find the problem instructions by timing
    // simulation + PDE attribution.
    sim::Simulator machine(sim::MachineConfig::fourWide());
    sim::RunOptions opts;
    opts.maxMainInstructions = 150'000;
    opts.warmupInstructions = 50'000;
    opts.profile = true;
    auto res = machine.runBaseline(wl, opts);
    auto prob = profile::classifyProblemInstructions(res.profile);

    std::vector<std::pair<std::uint64_t, Addr>> ranked;
    for (Addr pc : prob.problemBranches)
        ranked.push_back({res.profile.perPc.at(pc).branchMispred, pc});
    for (Addr pc : prob.problemLoads)
        ranked.push_back({res.profile.perPc.at(pc).loadMiss, pc});
    std::sort(ranked.rbegin(), ranked.rend());

    std::printf("%s: %zu problem instructions; analyzing the top %zu\n\n",
                name.c_str(), ranked.size(),
                std::min<std::size_t>(ranked.size(), 3));

    // Step 2 (Section 3.3): trace-based backward-slice analysis.
    autoslice::AnalyzerOptions aopts;
    aopts.traceInsts = 250'000;
    for (std::size_t i = 0; i < ranked.size() && i < 3; ++i) {
        arch::MemoryImage mem;
        wl.initMemory(mem);
        auto analysis = autoslice::analyzeProblemInstruction(
            wl.program, wl.entry, mem, ranked[i].second, aopts);
        std::printf("%s\n", analysis.report(wl.program).c_str());
    }

    if (!wl.slices.empty()) {
        std::printf("for comparison, the shipped hand slice '%s': %u "
                    "static instructions, %zu live-ins, fork @ 0x%llx\n",
                    wl.slices[0].name.c_str(), wl.slices[0].staticSize,
                    wl.slices[0].liveIns.size(),
                    static_cast<unsigned long long>(
                        wl.slices[0].forkPc));
    }
    return 0;
}
