/**
 * @file
 * A guided tour of the paper's running example (Sections 2.4-3.2,
 * Figures 2-5): disassembles the add_to_heap region and its Figure 5
 * slice, profiles the baseline run to show the two problem
 * instructions, and then dissects how the slice covers them —
 * including the prediction correlator's kill points.
 */

#include <cstdio>

#include "profile/pde_profile.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

void
disassembleRange(const sim::Workload &wl, Addr from, Addr to,
                 const char *title)
{
    std::printf("--- %s ---\n", title);
    // Build a reverse symbol map for annotation.
    for (Addr pc = from; pc < to; pc += isa::instBytes) {
        const isa::Instruction *si = wl.program.fetch(pc);
        if (!si)
            break;
        for (const auto &[name, addr] : wl.program.symbols()) {
            if (addr == pc)
                std::printf("%s:\n", name.c_str());
        }
        std::printf("  0x%llx:  %s\n",
                    static_cast<unsigned long long>(pc),
                    si->disassemble().c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    workloads::Params params;
    params.scale = 400'000;
    sim::Workload wl = workloads::buildVpr(params);

    std::printf("============================================\n");
    std::printf(" The vpr heap-insertion example (Figures 2-5)\n");
    std::printf("============================================\n\n");

    // Figure 4: the add_to_heap trickle loop as assembled.
    Addr loop = wl.program.symbol("heap_loop");
    Addr ret_blk = wl.program.symbol("nth_ret2");
    disassembleRange(wl, loop, ret_blk + isa::instBytes,
                     "add_to_heap trickle loop (cf. Figure 4)");

    // Figure 5: the speculative slice.
    const slice::SliceDescriptor &sd = wl.slices[0];
    disassembleRange(wl, sd.slicePc,
                     sd.slicePc + sd.staticSize * isa::instBytes,
                     "speculative slice (cf. Figure 5)");

    std::printf("--- slice annotations ---\n");
    std::printf("fork PC:        0x%llx (node_to_heap entry)\n",
                static_cast<unsigned long long>(sd.forkPc));
    std::printf("live-ins:       ");
    for (RegIndex r : sd.liveIns)
        std::printf("r%u ", static_cast<unsigned>(r));
    std::printf(" (cost, gp — cf. Figure 5's $f17 and gp)\n");
    std::printf("max iterations: %u (profile-derived upper bound)\n",
                sd.maxLoopIters);
    for (const auto &pgi : sd.pgis) {
        std::printf("PGI 0x%llx -> problem branch 0x%llx "
                    "(loop kill 0x%llx%s, slice kill 0x%llx)\n",
                    static_cast<unsigned long long>(pgi.sliceInstPc),
                    static_cast<unsigned long long>(pgi.problemBranchPc),
                    static_cast<unsigned long long>(pgi.loopKillPc),
                    pgi.loopKillSkipFirst ? " [skip 1st]" : "",
                    static_cast<unsigned long long>(pgi.sliceKillPc));
    }
    std::printf("\n");

    // Section 2: find the problem instructions by profiling.
    sim::Simulator machine(sim::MachineConfig::fourWide());
    sim::RunOptions opts;
    opts.maxMainInstructions = 200'000;
    opts.warmupInstructions = 60'000;
    opts.profile = true;

    auto base = machine.runBaseline(wl, opts);
    auto prob = profile::classifyProblemInstructions(base.profile);

    std::printf("--- baseline profile (Section 2.2) ---\n");
    std::printf("IPC %.2f; %zu problem loads and %zu problem branches "
                "classified\n",
                base.ipc(), prob.problemLoads.size(),
                prob.problemBranches.size());
    for (Addr pc : prob.problemLoads) {
        const auto &c = base.profile.perPc.at(pc);
        std::printf("  problem mem op 0x%llx: %llu/%llu executions "
                    "miss (%s)\n",
                    static_cast<unsigned long long>(pc),
                    static_cast<unsigned long long>(c.loadMiss +
                                                    c.storeMiss),
                    static_cast<unsigned long long>(c.loadExec +
                                                    c.storeExec),
                    wl.program.fetch(pc)->disassemble().c_str());
    }
    for (Addr pc : prob.problemBranches) {
        const auto &c = base.profile.perPc.at(pc);
        std::printf("  problem branch 0x%llx: %llu/%llu executions "
                    "mispredict (%s)\n",
                    static_cast<unsigned long long>(pc),
                    static_cast<unsigned long long>(c.branchMispred),
                    static_cast<unsigned long long>(c.branchExec),
                    wl.program.fetch(pc)->disassemble().c_str());
    }

    // Section 6: what the slice does about them.
    auto sliced = machine.run(wl, opts, true);
    std::printf("\n--- slice-assisted run (Section 6) ---\n");
    std::printf("forks %llu (squashed %llu, ignored %llu)\n",
                static_cast<unsigned long long>(sliced.forks),
                static_cast<unsigned long long>(sliced.forksSquashed),
                static_cast<unsigned long long>(sliced.forksIgnored));
    std::printf("predictions generated %llu, used %llu, wrong %llu, "
                "late-bound %llu, reversals %llu\n",
                static_cast<unsigned long long>(
                    sliced.predictionsGenerated),
                static_cast<unsigned long long>(sliced.correlatorUsed),
                static_cast<unsigned long long>(sliced.correlatorWrong),
                static_cast<unsigned long long>(sliced.latePredictions),
                static_cast<unsigned long long>(sliced.lateReversals));
    std::printf("prefetches %llu, covered misses %llu\n",
                static_cast<unsigned long long>(sliced.slicePrefetches),
                static_cast<unsigned long long>(sliced.coveredMisses));
    std::printf("mispredictions %llu -> %llu, L1 misses %llu -> %llu\n",
                static_cast<unsigned long long>(base.mispredictions),
                static_cast<unsigned long long>(sliced.mispredictions),
                static_cast<unsigned long long>(base.l1dMissesMain),
                static_cast<unsigned long long>(sliced.l1dMissesMain));
    std::printf("cycles %llu -> %llu (%.1f%% speedup)\n",
                static_cast<unsigned long long>(base.cycles),
                static_cast<unsigned long long>(sliced.cycles),
                100.0 * (static_cast<double>(base.cycles) /
                             static_cast<double>(sliced.cycles) -
                         1.0));
    return 0;
}
