/**
 * @file
 * Basic single-thread pipeline tests: programs run to completion,
 * retire the right instruction counts, and produce correct
 * architectural results; branch mispredictions cost cycles; cache
 * misses cost cycles.
 */

#include <gtest/gtest.h>

#include "arch/memimg.hh"
#include "core/smt_core.hh"
#include "isa/assembler.hh"
#include "isa/program.hh"

using namespace specslice;

namespace
{

constexpr Addr codeBase = 0x10000;
constexpr Addr dataBase = 0x100000;

core::RunOptions
quickOpts(std::uint64_t max_insts = 100000)
{
    core::RunOptions o;
    o.maxMainInstructions = max_insts;
    return o;
}

} // namespace

TEST(CoreBasic, StraightLineRetiresAndHalts)
{
    isa::Assembler as(codeBase);
    as.ldi(1, 5);
    as.ldi(2, 7);
    as.add(3, 1, 2);
    as.ldi64(4, dataBase);
    as.stq(3, 4, 0);
    as.halt();
    isa::Program prog;
    prog.addSection(as.finish());

    arch::MemoryImage mem;
    core::SmtCore machine(core::CoreConfig::fourWide(), prog, mem);
    auto res = machine.run(codeBase, quickOpts());

    EXPECT_EQ(res.mainRetired, 6u);
    EXPECT_EQ(mem.readQ(dataBase), 12u);
    EXPECT_GT(res.cycles, 0u);
    EXPECT_LT(res.cycles, 200u);
}

TEST(CoreBasic, CountedLoopComputesSum)
{
    // sum = 1 + 2 + ... + 100
    isa::Assembler as(codeBase);
    as.ldi(1, 0);    // sum
    as.ldi(2, 100);  // i
    as.label("loop");
    as.add(1, 1, 2);
    as.subi(2, 2, 1);
    as.bgt(2, "loop");
    as.ldi64(4, dataBase);
    as.stq(1, 4, 0);
    as.halt();
    isa::Program prog;
    prog.addSection(as.finish());

    arch::MemoryImage mem;
    core::SmtCore machine(core::CoreConfig::fourWide(), prog, mem);
    auto res = machine.run(codeBase, quickOpts());

    EXPECT_EQ(mem.readQ(dataBase), 5050u);
    // 2 + 100*3 + 3 dynamic instructions.
    EXPECT_EQ(res.mainRetired, 305u);
    EXPECT_EQ(res.condBranches, 100u);
    // A well-trained loop branch mispredicts at most a few times.
    EXPECT_LE(res.mispredictions, 4u);
}

TEST(CoreBasic, DataDependentChainIsSlow)
{
    // A serial dependence chain runs at ~1 IPC; the same op count
    // spread over 8 independent chains runs near full width. Loops
    // keep the I-footprint tiny so cold-cache effects do not dominate.
    isa::Assembler serial(codeBase);
    serial.ldi(9, 256);
    serial.label("loop");
    for (int i = 0; i < 16; ++i)
        serial.addi(1, 1, 1);
    serial.subi(9, 9, 1);
    serial.bgt(9, "loop");
    serial.halt();
    isa::Program sp;
    sp.addSection(serial.finish());

    isa::Assembler parallel(codeBase);
    parallel.ldi(9, 256);
    parallel.label("loop");
    for (int i = 0; i < 2; ++i)
        for (int r = 1; r <= 8; ++r)
            parallel.addi(static_cast<RegIndex>(r),
                          static_cast<RegIndex>(r), 1);
    parallel.subi(9, 9, 1);
    parallel.bgt(9, "loop");
    parallel.halt();
    isa::Program pp;
    pp.addSection(parallel.finish());

    arch::MemoryImage m1, m2;
    core::SmtCore c1(core::CoreConfig::fourWide(), sp, m1);
    core::SmtCore c2(core::CoreConfig::fourWide(), pp, m2);
    auto r1 = c1.run(codeBase, quickOpts());
    auto r2 = c2.run(codeBase, quickOpts());

    EXPECT_GT(r1.cycles, 16u * 256u);     // serial: 1 IPC bound
    EXPECT_LT(r2.cycles, r1.cycles / 2);  // parallel is much faster
}

TEST(CoreBasic, UnpredictableBranchesCostCycles)
{
    // Branch on a pseudo-random bit: ~50% mispredictions, each costing
    // roughly the 14-stage penalty.
    isa::Assembler as(codeBase);
    as.ldi(1, 12345);  // lfsr-ish state
    as.ldi(2, 2000);   // iterations
    as.ldi(5, 0);      // taken counter
    as.label("loop");
    // state = state * 1103515245 + 12345 (complex unit keeps it slow
    // enough to matter but the branch is the point)
    as.ldi(3, 1103515245);
    as.mul(1, 1, 3);
    as.addi(1, 1, 12345);
    as.srli(4, 1, 16);
    as.andi(4, 4, 1);
    as.beq(4, "skip");
    as.addi(5, 5, 1);
    as.label("skip");
    as.subi(2, 2, 1);
    as.bgt(2, "loop");
    as.halt();
    isa::Program prog;
    prog.addSection(as.finish());

    arch::MemoryImage mem;
    core::SmtCore machine(core::CoreConfig::fourWide(), prog, mem);
    auto res = machine.run(codeBase, quickOpts());

    // The random branch should mispredict a lot.
    EXPECT_GT(res.mispredictions, 400u);
    // And each misprediction should cost on the order of the pipeline
    // depth in cycles.
    EXPECT_GT(res.cycles, res.mispredictions * 8);
}

TEST(CoreBasic, ColdMissesCostMemoryLatency)
{
    // Walk 512 cache lines; every line is a cold miss with a
    // serialized dependence (pointer-chase style via computed addr).
    isa::Assembler as(codeBase);
    as.ldi64(1, dataBase);
    as.ldi(2, 512);
    as.label("loop");
    as.ldq(3, 1, 0);      // cold miss
    as.add(1, 1, 3);      // depends on load (value = stride)
    as.subi(2, 2, 1);
    as.bgt(2, "loop");
    as.halt();
    isa::Program prog;
    prog.addSection(as.finish());

    arch::MemoryImage mem;
    // Pseudo-random strides large enough to defeat the stream
    // prefetcher while staying in mapped memory.
    Addr a = dataBase;
    std::uint64_t strides[4] = {832, 1344, 2496, 704};
    for (int i = 0; i < 513; ++i) {
        std::uint64_t s = strides[i % 4];
        mem.writeQ(a, s);
        a += s;
    }

    core::SmtCore machine(core::CoreConfig::fourWide(), prog, mem);
    auto res = machine.run(codeBase, quickOpts());

    EXPECT_GT(res.l1dMissesMain, 400u);
    // Serialized misses: >> 100 cycles each on average is too strict
    // with the prefetcher, but the run must be memory-bound.
    EXPECT_GT(res.cycles, res.l1dMissesMain * 20);
}

TEST(CoreBasic, CallReturnPredictsViaRas)
{
    isa::Assembler as(codeBase);
    as.ldi(2, 500);
    as.label("loop");
    as.call("func");
    as.subi(2, 2, 1);
    as.bgt(2, "loop");
    as.halt();
    as.label("func");
    as.addi(5, 5, 1);
    as.ret();
    isa::Program prog;
    prog.addSection(as.finish());

    arch::MemoryImage mem;
    core::SmtCore machine(core::CoreConfig::fourWide(), prog, mem);
    auto res = machine.run(codeBase, quickOpts());

    EXPECT_EQ(res.mainRetired, 2u + 500u * 5u);  // ldi + loop + halt
    EXPECT_EQ(res.detail.get("return_mispredictions"), 0u);
}

TEST(CoreBasic, EightWideIsFasterOnIlp)
{
    isa::Assembler as(codeBase);
    as.ldi(20, 128);
    as.label("loop");
    for (int i = 0; i < 2; ++i)
        for (int r = 1; r <= 16; ++r)
            as.addi(static_cast<RegIndex>(r),
                    static_cast<RegIndex>(r), 1);
    as.subi(20, 20, 1);
    as.bgt(20, "loop");
    as.halt();
    isa::Program prog;
    prog.addSection(as.finish());

    arch::MemoryImage m1, m2;
    core::SmtCore c4(core::CoreConfig::fourWide(), prog, m1);
    core::SmtCore c8(core::CoreConfig::eightWide(), prog, m2);
    auto r4 = c4.run(codeBase, quickOpts());
    auto r8 = c8.run(codeBase, quickOpts());

    EXPECT_LT(r8.cycles * 3, r4.cycles * 2);  // >=1.5x speedup
}

TEST(CoreBasic, DefaultCycleLimitScalesWithWarmup)
{
    // Regression: the limit's slack used to be a fixed 100k cycles
    // regardless of the budget, so a run whose warm-up dwarfed its
    // measured region could hit the limit while still healthy. The
    // slack must scale with warm-up + measure, with a floor for tiny
    // smoke runs.
    const Cycle small = core::defaultCycleLimit(10'000, 0);
    EXPECT_EQ(small, 50 * 10'000 + 100'000)  // floor applies
        << "small runs keep the 100k-cycle slack floor";

    // Same measured region, large warm-up: the limit must grow by at
    // least 50x the added warm-up (the per-instruction budget) plus
    // the proportional slack — not just the per-instruction part.
    const Cycle warm = core::defaultCycleLimit(10'000, 10'000'000);
    const std::uint64_t budget = 10'000 + 10'000'000;
    EXPECT_EQ(warm, 50 * budget + budget / 4);
    EXPECT_GT(warm - small, 50 * std::uint64_t{10'000'000})
        << "warm-up instructions must add more than their bare "
           "50-cycle budget";

    // Symmetry: slack depends on the total budget, not on how it is
    // split between warm-up and measurement.
    EXPECT_EQ(core::defaultCycleLimit(1'000'000, 4'000'000),
              core::defaultCycleLimit(4'000'000, 1'000'000));
}

TEST(CoreBasic, LongWarmupRunCompletesWithinDefaultLimit)
{
    // The behavioural half of the regression: a run that is almost
    // all warm-up must complete, not die at the cycle limit.
    isa::Assembler as(codeBase);
    as.ldi(1, 0);
    as.label("loop");
    as.addi(1, 1, 1);
    as.br("loop");
    isa::Program prog;
    prog.addSection(as.finish());

    arch::MemoryImage mem;
    core::SmtCore machine(core::CoreConfig::fourWide(), prog, mem);
    core::RunOptions o;
    o.maxMainInstructions = 1'000;
    o.warmupInstructions = 200'000;
    auto res = machine.run(codeBase, o);
    EXPECT_EQ(res.outcome, core::SimOutcome::Completed);
    EXPECT_EQ(res.mainRetired, 1'000u);
}
