/**
 * @file
 * End-to-end reproduction assertions: the paper's headline qualitative
 * claims hold on this simulator (Sections 2, 6). These run the bigger
 * workloads and are the closest thing to a CI gate on "the shape of
 * the results".
 */

#include <gtest/gtest.h>

#include "profile/pde_profile.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

workloads::Params
params()
{
    workloads::Params p;
    p.scale = 300'000;
    return p;
}

core::RunOptions
opts(bool profile = false)
{
    core::RunOptions o;
    o.maxMainInstructions = 120'000;
    o.warmupInstructions = 40'000;
    o.profile = profile;
    return o;
}

double
speedup(const sim::RunResult &base, const sim::RunResult &other)
{
    return static_cast<double>(base.cycles) /
           static_cast<double>(other.cycles);
}

} // namespace

TEST(Reproduction, VprGetsTheLargestSpeedup)
{
    // Figure 11: vpr peaks at 43%; here it must at least be large and
    // exceed the known near-zero benchmarks by a wide margin.
    sim::Simulator simr(sim::MachineConfig::fourWide());
    auto vpr = workloads::buildVpr(params());
    auto b = simr.runBaseline(vpr, opts());
    auto s = simr.run(vpr, opts(), true);
    EXPECT_GT(speedup(b, s), 1.12);
}

TEST(Reproduction, FailureBenchmarksStayNearZero)
{
    // Section 6.2 + footnote 3: gcc, parser, vortex, crafty see no
    // significant speedup.
    sim::Simulator simr(sim::MachineConfig::fourWide());
    for (const char *name : {"parser", "vortex", "crafty"}) {
        auto wl = workloads::buildWorkload(name, params());
        auto b = simr.runBaseline(wl, opts());
        auto s = simr.run(wl, opts(), true);
        double sp = speedup(b, s);
        EXPECT_GT(sp, 0.90) << name;
        EXPECT_LT(sp, 1.08) << name;
    }
}

TEST(Reproduction, PredictionHeavyBenchmarksRemoveMispredictions)
{
    sim::Simulator simr(sim::MachineConfig::fourWide());
    for (const char *name : {"eon", "twolf", "gzip"}) {
        auto wl = workloads::buildWorkload(name, params());
        auto b = simr.runBaseline(wl, opts());
        auto s = simr.run(wl, opts(), true);
        // Table 4: 33-72% of mispredictions removed.
        EXPECT_LT(s.mispredictions * 100, b.mispredictions * 80)
            << name;
        EXPECT_GT(speedup(b, s), 1.05) << name;
    }
}

TEST(Reproduction, McfBenefitIsLoadDominated)
{
    // Table 4: ~80% of mcf's speedup comes from loads; its miss
    // traffic is largely covered while mispredictions barely move.
    sim::Simulator simr(sim::MachineConfig::fourWide());
    auto wl = workloads::buildMcf(params());
    auto b = simr.runBaseline(wl, opts());
    auto s = simr.run(wl, opts(), true);
    EXPECT_GT(speedup(b, s), 1.04);
    // Most misses covered/merged away...
    EXPECT_LT(s.l1dMissesMain * 4, b.l1dMissesMain);
    // ...while mispredictions change far less (relatively).
    EXPECT_GT(s.mispredictions * 100, b.mispredictions * 70);
}

TEST(Reproduction, ProblemInstructionsPerfectRecoverMostOfAllPerfect)
{
    // Figure 1's key shape on a branch-bound benchmark.
    sim::Simulator simr(sim::MachineConfig::fourWide());
    auto wl = workloads::buildTwolf(params());

    auto prof = simr.runBaseline(wl, opts(true));
    auto prob = profile::classifyProblemInstructions(prof.profile);

    core::RunOptions pp = opts();
    pp.perfect.branchPcs = prob.problemBranches;
    pp.perfect.loadPcs = prob.problemLoads;
    auto rp = simr.runBaseline(wl, pp);

    core::RunOptions ap = opts();
    ap.perfect.allBranchesPerfect = true;
    ap.perfect.allLoadsPerfect = true;
    auto ra = simr.runBaseline(wl, ap);

    double gain_prob = speedup(prof, rp) - 1.0;
    double gain_all = speedup(prof, ra) - 1.0;
    ASSERT_GT(gain_all, 0.10);
    // On this simulator the all-perfect bar removes the *entire*
    // memory latency of the walks, so the fraction recovered is lower
    // than the paper's ~0.6; the shape (a large chunk of the gap) is
    // what we assert.
    EXPECT_GT(gain_prob, gain_all * 0.25)
        << "problem-instructions-perfect should recover much of the "
        << "all-perfect gain";
}

TEST(Reproduction, EightWideGainsMoreFromSlices)
{
    // Section 2.3: the PDE impact is larger on the wider machine.
    auto wl = workloads::buildTwolf(params());
    sim::Simulator four(sim::MachineConfig::fourWide());
    sim::Simulator eight(sim::MachineConfig::eightWide());

    auto b4 = four.runBaseline(wl, opts());
    auto s4 = four.run(wl, opts(), true);
    auto b8 = eight.runBaseline(wl, opts());
    auto s8 = eight.run(wl, opts(), true);

    // Both widths speed up; the 8-wide machine by at least ~80% as
    // much (it usually gains more, but allow scheduling noise).
    double g4 = speedup(b4, s4) - 1.0;
    double g8 = speedup(b8, s8) - 1.0;
    EXPECT_GT(g4, 0.05);
    EXPECT_GT(g8, g4 * 0.8);
}

TEST(Reproduction, SliceOverheadIsBounded)
{
    // Table 4: slice fetches are a bounded fraction of the total, and
    // total fetches *drop* (fewer wrong-path fetches).
    sim::Simulator simr(sim::MachineConfig::fourWide());
    for (const char *name : {"vpr", "twolf", "gzip"}) {
        auto wl = workloads::buildWorkload(name, params());
        auto b = simr.runBaseline(wl, opts());
        auto s = simr.run(wl, opts(), true);
        EXPECT_LT(s.sliceFetched,
                  (s.mainFetched + s.sliceFetched) / 2)
            << name;
        EXPECT_LT(s.mainFetched + s.sliceFetched,
                  b.mainFetched * 115 / 100)
            << name << ": slices must not blow up total fetch work";
    }
}

TEST(Reproduction, LimitStudyBoundsStructure)
{
    // The constrained limit (perfecting exactly the covered PCs) is
    // at least as good as the slice run, for every sliced benchmark.
    sim::Simulator simr(sim::MachineConfig::fourWide());
    for (const char *name : {"vpr", "twolf", "eon", "gap"}) {
        auto wl = workloads::buildWorkload(name, params());
        auto s = simr.run(wl, opts(), true);

        core::RunOptions lo = opts();
        for (Addr pc : wl.coveredBranchPcs())
            lo.perfect.branchPcs.insert(pc);
        for (Addr pc : wl.coveredLoadPcs())
            lo.perfect.loadPcs.insert(pc);
        auto l = simr.runBaseline(wl, lo);
        EXPECT_LE(l.cycles, s.cycles * 103 / 100) << name;
    }
}
