/**
 * @file
 * Tests for the public simulation facade: MachineConfig presets
 * (Table 1), Simulator run independence, the table formatter, and the
 * experiment library rows.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "sim/experiments.hh"
#include "sim/simulator.hh"
#include "sim/table.hh"
#include "workloads/workloads.hh"

using namespace specslice;

TEST(MachineConfigTest, Table1Presets)
{
    auto c4 = sim::MachineConfig::fourWide();
    EXPECT_EQ(c4.fetchWidth, 4u);
    EXPECT_EQ(c4.windowSize, 128u);
    EXPECT_EQ(c4.numMemPorts, 2u);
    EXPECT_EQ(c4.numComplex, 1u);
    EXPECT_EQ(c4.numThreads, 4u);
    EXPECT_EQ(c4.memory.l1dSize, 64u * 1024);
    EXPECT_EQ(c4.memory.l1dLineSize, 64u);
    EXPECT_EQ(c4.memory.l1Latency, 3u);
    EXPECT_EQ(c4.memory.l2Size, 2u * 1024 * 1024);
    EXPECT_EQ(c4.memory.l2LineSize, 128u);
    EXPECT_EQ(c4.memory.l2Latency, 6u);
    EXPECT_EQ(c4.memory.memLatency, 100u);
    EXPECT_EQ(c4.memory.pvBufEntries, 64u);
    EXPECT_EQ(c4.predictor.rasEntries, 64u);
    EXPECT_EQ(c4.correlator.entries, 64u);
    EXPECT_EQ(c4.correlator.predsPerBranch, 8u);
    EXPECT_EQ(c4.sliceTable.sliceEntries, 16u);
    EXPECT_EQ(c4.sliceTable.pgiEntries, 64u);

    auto c8 = sim::MachineConfig::eightWide();
    EXPECT_EQ(c8.fetchWidth, 8u);
    EXPECT_EQ(c8.windowSize, 256u);
    EXPECT_EQ(c8.numMemPorts, 4u);
}

TEST(SimulatorTest, RunsAreIndependent)
{
    // Running the same workload twice through one Simulator yields
    // identical results: no state leaks across runs.
    workloads::Params p;
    p.scale = 120'000;
    auto wl = workloads::buildVpr(p);
    sim::Simulator simr(sim::MachineConfig::fourWide());
    sim::RunOptions o;
    o.maxMainInstructions = 40'000;

    auto r1 = simr.run(wl, o, true);
    auto r2 = simr.run(wl, o, true);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.mispredictions, r2.mispredictions);
    EXPECT_EQ(r1.forks, r2.forks);
    EXPECT_EQ(r1.coveredMisses, r2.coveredMisses);
}

TEST(SimulatorTest, BaselineIgnoresSlices)
{
    workloads::Params p;
    p.scale = 100'000;
    auto wl = workloads::buildTwolf(p);
    sim::Simulator simr(sim::MachineConfig::fourWide());
    sim::RunOptions o;
    o.maxMainInstructions = 30'000;
    auto r = simr.runBaseline(wl, o);
    EXPECT_EQ(r.forks, 0u);
    EXPECT_EQ(r.sliceFetched, 0u);
}

TEST(TableTest, RendersAlignedColumns)
{
    sim::Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "12345"});
    std::string out = t.render();
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    // Right-aligned numeric column: "1" ends where "12345" ends.
    auto line_of = [&](const std::string &needle) {
        auto pos = out.find(needle);
        auto start = out.rfind('\n', pos);
        auto end = out.find('\n', pos);
        return out.substr(start + 1, end - start - 1);
    };
    EXPECT_EQ(line_of("a ").size(), line_of("long-name").size());
}

TEST(TableTest, Formatters)
{
    EXPECT_EQ(sim::Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(sim::Table::pct(0.5), "50%");
    EXPECT_EQ(sim::Table::pct(0.123, 1), "12.3%");
    EXPECT_EQ(sim::Table::count(42), "42");
    EXPECT_EQ(sim::Table::kilo(1500), "1.5");
    EXPECT_EQ(sim::Table::mega(2'500'000), "2.5");
}

namespace
{

sim::ExperimentConfig
tinyConfig()
{
    sim::ExperimentConfig cfg;
    cfg.measureInsts = 40'000;
    cfg.warmupInsts = 15'000;
    return cfg;
}

} // namespace

TEST(ExperimentsTest, Table2RowFindsProblemInstructions)
{
    auto row = sim::runTable2Row(sim::MachineConfig::fourWide(),
                                 "twolf", tinyConfig());
    EXPECT_EQ(row.program, "twolf");
    EXPECT_FALSE(row.problem.problemBranches.empty());
    EXPECT_GT(row.problem.mispredCoverage(), 0.5);
}

TEST(ExperimentsTest, Figure1RowIsMonotonic)
{
    auto row = sim::runFigure1Row(sim::MachineConfig::fourWide(),
                                  "twolf", tinyConfig());
    EXPECT_GT(row.problemPerfectIpc, row.baselineIpc);
    EXPECT_GE(row.allPerfectIpc * 1.02, row.problemPerfectIpc);
}

TEST(ExperimentsTest, Figure11RowShowsSpeedupForVpr)
{
    auto row = sim::runFigure11Row(sim::MachineConfig::fourWide(),
                                   "vpr", tinyConfig());
    EXPECT_GT(row.slicePct(), 3.0);
    EXPECT_GE(row.limitPct() * 1.05, row.slicePct());
}

TEST(ExperimentsTest, Table4RowSkipsSliceless)
{
    EXPECT_FALSE(sim::runTable4Row(sim::MachineConfig::fourWide(),
                                   "parser", tinyConfig())
                     .has_value());
}

TEST(ExperimentsTest, Table4RowAccountsVpr)
{
    auto row = sim::runTable4Row(sim::MachineConfig::fourWide(), "vpr",
                                 tinyConfig());
    ASSERT_TRUE(row.has_value());
    EXPECT_GT(row->mispredRemovedPct, 30.0);
    EXPECT_GT(row->missRemovedPct, 30.0);
    EXPECT_GE(row->loadFraction, 0.0);
    EXPECT_LE(row->loadFraction, 1.0);
    // Total fetch work should not explode (Table 4's shape).
    EXPECT_LT(row->sliced.mainFetched + row->sliced.sliceFetched,
              row->base.mainFetched * 13 / 10);
}
