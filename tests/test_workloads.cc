/**
 * @file
 * Workload-suite tests, parameterized over all 12 benchmarks: each
 * builds, runs to its instruction budget on both machine widths, has
 * a plausible IPC, and (when it ships slices) forks them with highly
 * accurate predictions. Also checks the documented per-benchmark
 * shapes (parser has no slices, vortex's is prefetch-only, etc.).
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

workloads::Params
smallParams()
{
    workloads::Params p;
    p.scale = 200'000;
    return p;
}

core::RunOptions
runOpts()
{
    core::RunOptions o;
    o.maxMainInstructions = 60'000;
    o.warmupInstructions = 20'000;
    return o;
}

} // namespace

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSuite, BuildsWithConsistentMetadata)
{
    auto wl = workloads::buildWorkload(GetParam(), smallParams());
    EXPECT_EQ(wl.name, GetParam());
    EXPECT_NE(wl.entry, invalidAddr);
    EXPECT_NE(wl.program.fetch(wl.entry), nullptr);
    EXPECT_TRUE(static_cast<bool>(wl.initMemory));
    for (const auto &sd : wl.slices) {
        EXPECT_NE(wl.program.fetch(sd.forkPc), nullptr)
            << "fork PC must be an existing main-thread instruction";
        EXPECT_NE(wl.program.fetch(sd.slicePc), nullptr);
        EXPECT_LE(sd.liveIns.size(), 4u)
            << "slices rarely need more than 4 live-ins (Sec. 3.2)";
        for (const auto &pgi : sd.pgis) {
            const isa::Instruction *br =
                wl.program.fetch(pgi.problemBranchPc);
            ASSERT_NE(br, nullptr);
            EXPECT_TRUE(br->isCondBranch());
            ASSERT_NE(wl.program.fetch(pgi.sliceInstPc), nullptr);
            EXPECT_NE(wl.program.fetch(pgi.sliceKillPc), nullptr);
        }
        // Slices perform no stores (checked statically here, enforced
        // at execution too).
        for (Addr pc = sd.slicePc;
             pc < sd.slicePc + sd.staticSize * isa::instBytes;
             pc += isa::instBytes) {
            const isa::Instruction *si = wl.program.fetch(pc);
            ASSERT_NE(si, nullptr);
            EXPECT_FALSE(si->isStore())
                << wl.name << " slice stores at 0x" << std::hex << pc;
        }
    }
}

TEST_P(WorkloadSuite, BaselineRunsOnBothWidths)
{
    auto wl = workloads::buildWorkload(GetParam(), smallParams());
    sim::Simulator four(sim::MachineConfig::fourWide());
    sim::Simulator eight(sim::MachineConfig::eightWide());
    auto r4 = four.runBaseline(wl, runOpts());
    auto r8 = eight.runBaseline(wl, runOpts());

    EXPECT_GE(r4.mainRetired + 8, 60'000u);
    EXPECT_GT(r4.ipc(), 0.03);
    EXPECT_LT(r4.ipc(), 4.0);
    // Wider machine is never slower (tolerate 2% noise).
    EXPECT_LE(r8.cycles, r4.cycles * 102 / 100);
}

TEST_P(WorkloadSuite, SlicesForkAndPredictAccurately)
{
    auto wl = workloads::buildWorkload(GetParam(), smallParams());
    sim::Simulator simr(sim::MachineConfig::fourWide());
    auto res = simr.run(wl, runOpts(), true);

    if (wl.slices.empty()) {
        EXPECT_EQ(res.forks, 0u);
        return;
    }
    EXPECT_GT(res.forks, 10u) << "slices should fork regularly";
    if (res.correlatorUsed > 100) {
        // Paper: overriding predictions exceed 99% accuracy; allow 3%.
        EXPECT_LT(res.correlatorWrong * 100, res.correlatorUsed * 3)
            << res.correlatorWrong << " of " << res.correlatorUsed;
    }
}

TEST_P(WorkloadSuite, DeterministicForFixedSeed)
{
    auto wl1 = workloads::buildWorkload(GetParam(), smallParams());
    auto wl2 = workloads::buildWorkload(GetParam(), smallParams());
    sim::Simulator simr(sim::MachineConfig::fourWide());
    auto r1 = simr.run(wl1, runOpts(), true);
    auto r2 = simr.run(wl2, runOpts(), true);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.mispredictions, r2.mispredictions);
    EXPECT_EQ(r1.forks, r2.forks);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadSuite,
    ::testing::ValuesIn(workloads::allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(WorkloadShapes, ParserShipsNoSlices)
{
    auto wl = workloads::buildWorkload("parser", smallParams());
    EXPECT_TRUE(wl.slices.empty()) << "Section 6.2: parser fails";
}

TEST(WorkloadShapes, VortexSliceIsPrefetchOnly)
{
    auto wl = workloads::buildWorkload("vortex", smallParams());
    ASSERT_EQ(wl.slices.size(), 1u);
    EXPECT_TRUE(wl.slices[0].pgis.empty());
    EXPECT_FALSE(wl.slices[0].prefetchLoadPcs.empty());
}

TEST(WorkloadShapes, EonSliceHasSixPredictionsNoLoop)
{
    auto wl = workloads::buildWorkload("eon", smallParams());
    ASSERT_EQ(wl.slices.size(), 1u);
    EXPECT_EQ(wl.slices[0].pgis.size(), 6u);
    EXPECT_EQ(wl.slices[0].maxLoopIters, 0u);
}

TEST(WorkloadShapes, VprSliceMatchesFigure5)
{
    auto wl = workloads::buildWorkload("vpr", smallParams());
    ASSERT_EQ(wl.slices.size(), 1u);
    const auto &sd = wl.slices[0];
    EXPECT_EQ(sd.liveIns.size(), 2u);      // cost + gp
    EXPECT_EQ(sd.maxLoopIters, 18u);
    EXPECT_LE(sd.staticSize, 12u);         // small, like Figure 5
    EXPECT_EQ(sd.prefetchLoadPcs.size(), 2u);
    EXPECT_EQ(sd.forkPc, wl.program.symbol("node_to_heap"));
}

TEST(WorkloadShapes, SliceTablesFitHardwareBudget)
{
    // Figure 6: 16 slice entries, 64 PGI entries. Every workload's
    // slices must load into one slice table.
    for (const auto &name : workloads::allWorkloadNames()) {
        auto wl = workloads::buildWorkload(name, smallParams());
        slice::SliceTable st;
        std::size_t pgis = 0;
        for (const auto &sd : wl.slices) {
            st.load(sd);
            pgis += sd.pgis.size();
        }
        EXPECT_LE(st.numSlices(), 16u) << name;
        EXPECT_LE(pgis, 64u) << name;
    }
}

TEST(WorkloadShapes, SlicesGenerateEventEveryFewInstructions)
{
    // Section 3.2: a prefetch or prediction roughly every 2-4 slice
    // instructions (check the static ratio on loop slices).
    for (const auto &name : workloads::allWorkloadNames()) {
        auto wl = workloads::buildWorkload(name, smallParams());
        for (const auto &sd : wl.slices) {
            if (sd.maxLoopIters == 0)
                continue;
            unsigned events = static_cast<unsigned>(
                sd.pgis.size() + sd.prefetchLoadPcs.size());
            ASSERT_GT(events, 0u) << name;
            EXPECT_LE(sd.staticSizeInLoop, events * 4 + 2) << name;
        }
    }
}
