/**
 * @file
 * Tests for the Section 6.3 overhead-reduction extensions: the
 * fork-confidence gate (skips useless fork points, keeps useful ones,
 * re-probes) and dedicated slice resources (separate fetch/window/
 * issue for helper threads).
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

workloads::Params
params()
{
    workloads::Params p;
    p.scale = 250'000;
    return p;
}

core::RunOptions
opts()
{
    core::RunOptions o;
    o.maxMainInstructions = 80'000;
    o.warmupInstructions = 30'000;
    return o;
}

} // namespace

TEST(ForkGate, KeepsUsefulForkPointsUngated)
{
    // vpr's slice is consumed constantly: the gate must never engage,
    // and results must match the ungated run exactly.
    auto wl = workloads::buildVpr(params());

    sim::Simulator plain(sim::MachineConfig::fourWide());
    auto r1 = plain.run(wl, opts(), true);

    sim::MachineConfig cfg = sim::MachineConfig::fourWide();
    cfg.forkConfidenceGating = true;
    sim::Simulator gated(cfg);
    auto r2 = gated.run(wl, opts(), true);

    EXPECT_EQ(r2.detail.get("forks_gated"), 0u);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.forks, r2.forks);
}

TEST(ForkGate, GatesUselessForkPoints)
{
    // crafty's slice predictions are essentially always late and
    // unconsumed: the gate should shut most forks off.
    auto wl = workloads::buildCrafty(params());

    sim::MachineConfig cfg = sim::MachineConfig::fourWide();
    cfg.forkConfidenceGating = true;
    sim::Simulator gated(cfg);
    auto r = gated.run(wl, opts(), true);

    EXPECT_GT(r.detail.get("forks_gated"), 200u);
    // And it keeps probing rather than shutting off forever.
    EXPECT_GT(r.forks, 10u);
}

TEST(ForkGate, ReducesSliceOverheadWhereUseless)
{
    auto wl = workloads::buildCrafty(params());

    sim::Simulator plain(sim::MachineConfig::fourWide());
    auto r1 = plain.run(wl, opts(), true);

    sim::MachineConfig cfg = sim::MachineConfig::fourWide();
    cfg.forkConfidenceGating = true;
    sim::Simulator gated(cfg);
    auto r2 = gated.run(wl, opts(), true);

    EXPECT_LT(r2.sliceFetched * 2, r1.sliceFetched + 1000);
}

TEST(DedicatedResources, RecoverOverheadBoundBenchmark)
{
    // bzip2 loses with shared resources; with dedicated slice
    // hardware the overhead vanishes and it must at least break even.
    auto wl = workloads::buildBzip2(params());

    sim::Simulator base_sim(sim::MachineConfig::fourWide());
    auto base = base_sim.runBaseline(wl, opts());

    sim::MachineConfig cfg = sim::MachineConfig::fourWide();
    cfg.dedicatedSliceResources = true;
    sim::Simulator ded(cfg);
    auto r = ded.run(wl, opts(), true);

    EXPECT_LE(r.cycles, base.cycles * 101 / 100)
        << "dedicated-resource slices must not lose on bzip2";
}

TEST(DedicatedResources, ArchitecturallyTransparent)
{
    // Same retired work, same predictions semantics.
    auto wl = workloads::buildTwolf(params());

    sim::Simulator plain(sim::MachineConfig::fourWide());
    auto r1 = plain.run(wl, opts(), true);

    sim::MachineConfig cfg = sim::MachineConfig::fourWide();
    cfg.dedicatedSliceResources = true;
    sim::Simulator ded(cfg);
    auto r2 = ded.run(wl, opts(), true);

    EXPECT_NEAR(static_cast<double>(r1.mainRetired),
                static_cast<double>(r2.mainRetired), 8.0);
    // Overrides stay essentially perfect in both modes.
    if (r2.correlatorUsed > 100)
        EXPECT_LT(r2.correlatorWrong * 100, r2.correlatorUsed * 3);
}

TEST(DedicatedResources, SlicesFetchInParallelWithMain)
{
    // With a dedicated port the helper threads fetch more (they no
    // longer wait for the main thread to stall).
    auto wl = workloads::buildVpr(params());

    sim::Simulator plain(sim::MachineConfig::fourWide());
    auto r1 = plain.run(wl, opts(), true);

    sim::MachineConfig cfg = sim::MachineConfig::fourWide();
    cfg.dedicatedSliceResources = true;
    sim::Simulator ded(cfg);
    auto r2 = ded.run(wl, opts(), true);

    EXPECT_GE(r2.sliceFetched + 1000, r1.sliceFetched);
    EXPECT_GT(r2.forks, 100u);
}
