/**
 * @file
 * The retirement-time architectural checker and the golden-digest
 * machinery. Unit tests drive RetireChecker with a record stream
 * produced by an independent architectural walk, then corrupt single
 * records to prove each divergence kind is caught at exactly the
 * corrupted instruction; integration tests run real workloads under
 * sim::Simulator with checking on, including the mutation-style
 * injected-fault knobs; digest tests cover the format round-trip,
 * diff tolerance rules, and the lint.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "arch/exec.hh"
#include "check/checker.hh"
#include "check/digest.hh"
#include "isa/assembler.hh"
#include "isa/program.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;
using check::DivergenceKind;
using check::RetireRecord;

namespace
{

constexpr Addr codeBase = 0x10000;
constexpr Addr dataBase = 0x100000;

/**
 * A little program exercising every checked fact: ALU writebacks, a
 * loop with a conditional branch taken and finally not-taken, loads,
 * and stores.
 */
isa::Program
sumProgram()
{
    isa::Assembler as(codeBase);
    as.ldi(1, 0);    // sum
    as.ldi(2, 8);    // i
    as.ldi64(4, dataBase);
    as.label("loop");
    as.add(1, 1, 2);
    as.stq(1, 4, 0);
    as.subi(2, 2, 1);
    as.bgt(2, "loop");
    as.ldq(5, 4, 0);
    as.halt();
    isa::Program prog;
    prog.addSection(as.finish());
    return prog;
}

/**
 * Walk the program architecturally (an independent interpreter loop,
 * not the checker's) and emit the RetireRecord stream a correct core
 * would produce.
 */
std::vector<RetireRecord>
retireStream(const isa::Program &prog, Addr entry,
             std::size_t max_insts = 100000)
{
    arch::RegFile regs;
    arch::MemoryImage mem;
    std::vector<RetireRecord> out;
    Addr pc = entry;
    for (std::size_t n = 0; n < max_insts; ++n) {
        const isa::Instruction *si = prog.fetch(pc);
        if (!si)
            ADD_FAILURE() << "walk ran off the program at 0x" << std::hex
                          << pc;
        auto fx = arch::execute(*si, pc, regs, mem, true);
        RetireRecord rec;
        rec.seq = n + 1;
        rec.pc = pc;
        rec.wroteReg = fx.wroteReg;
        rec.reg = si->rc;
        rec.value = fx.value;
        rec.isStore = si->isStore();
        rec.storeAddr = fx.memAddr;
        rec.storeData = fx.value;
        rec.isCondBranch = si->isCondBranch();
        rec.taken = fx.taken;
        rec.nextPc = fx.nextPc;
        out.push_back(rec);
        if (fx.halted)
            break;
        pc = fx.nextPc;
    }
    return out;
}

check::RetireChecker
makeChecker(const isa::Program &prog,
            check::CheckerConfig cfg = {})
{
    return check::RetireChecker(prog, codeBase, nullptr, cfg);
}

/** Feed records until the checker latches; return how many it took. */
std::size_t
feed(check::RetireChecker &ck, const std::vector<RetireRecord> &recs)
{
    std::size_t fed = 0;
    for (const RetireRecord &r : recs) {
        ck.onRetire(r);
        ++fed;
        if (ck.diverged())
            break;
    }
    return fed;
}

} // namespace

// ---------------------------------------------------------------------
// RetireChecker unit tests.
// ---------------------------------------------------------------------

TEST(RetireChecker, CleanStreamMatches)
{
    isa::Program prog = sumProgram();
    auto recs = retireStream(prog, codeBase);
    ASSERT_GT(recs.size(), 10u);

    auto ck = makeChecker(prog);
    feed(ck, recs);
    EXPECT_FALSE(ck.diverged());
    EXPECT_EQ(ck.checkedCount(), recs.size());
    EXPECT_TRUE(ck.report().empty());
    // sum = 8+7+...+1 landed in memory and was loaded back into r5.
    EXPECT_EQ(ck.refRegs().read(5), 36u);
}

TEST(RetireChecker, CorruptRegValueCaughtAtThatInstruction)
{
    isa::Program prog = sumProgram();
    auto recs = retireStream(prog, codeBase);
    // Corrupt one ALU writeback in the middle of the loop.
    std::size_t victim = 0;
    for (std::size_t i = 6; i < recs.size(); ++i) {
        if (recs[i].wroteReg && !recs[i].isStore) {
            victim = i;
            break;
        }
    }
    ASSERT_GT(victim, 0u);
    recs[victim].value ^= 0x40;

    auto ck = makeChecker(prog);
    std::size_t fed = feed(ck, recs);
    ASSERT_TRUE(ck.diverged());
    EXPECT_EQ(ck.divergence().kind, DivergenceKind::RegWriteback);
    // Latched at exactly the corrupted instruction, not earlier/later.
    EXPECT_EQ(fed, victim + 1);
    EXPECT_EQ(ck.divergence().record.seq, recs[victim].seq);
    EXPECT_EQ(ck.divergence().record.index, victim + 1);
    EXPECT_EQ(ck.divergence().actual ^ ck.divergence().expected, 0x40u);

    // Once latched, further retirements are ignored.
    ck.onRetire(recs.back());
    EXPECT_EQ(ck.checkedCount(), victim + 1);
}

TEST(RetireChecker, CorruptStoreDataAndAddrCaught)
{
    isa::Program prog = sumProgram();
    auto clean = retireStream(prog, codeBase);
    std::size_t victim = 0;
    for (std::size_t i = 0; i < clean.size(); ++i)
        if (clean[i].isStore) {
            victim = i;
            break;
        }
    ASSERT_TRUE(clean[victim].isStore);

    {
        auto recs = clean;
        recs[victim].storeData += 1;
        auto ck = makeChecker(prog);
        feed(ck, recs);
        ASSERT_TRUE(ck.diverged());
        EXPECT_EQ(ck.divergence().kind, DivergenceKind::StoreData);
        EXPECT_EQ(ck.divergence().record.index, victim + 1);
    }
    {
        auto recs = clean;
        recs[victim].storeAddr += 8;
        auto ck = makeChecker(prog);
        feed(ck, recs);
        ASSERT_TRUE(ck.diverged());
        EXPECT_EQ(ck.divergence().kind, DivergenceKind::StoreAddr);
        EXPECT_EQ(ck.divergence().record.index, victim + 1);
    }
}

TEST(RetireChecker, CorruptBranchDirectionAndPcCaught)
{
    isa::Program prog = sumProgram();
    auto clean = retireStream(prog, codeBase);
    std::size_t branch = 0;
    for (std::size_t i = 0; i < clean.size(); ++i)
        if (clean[i].isCondBranch) {
            branch = i;
            break;
        }
    ASSERT_TRUE(clean[branch].isCondBranch);

    {
        auto recs = clean;
        recs[branch].taken = !recs[branch].taken;
        auto ck = makeChecker(prog);
        feed(ck, recs);
        ASSERT_TRUE(ck.diverged());
        EXPECT_EQ(ck.divergence().kind,
                  DivergenceKind::BranchDirection);
        EXPECT_EQ(ck.divergence().record.index, branch + 1);
    }
    {
        auto recs = clean;
        recs[branch].nextPc += isa::instBytes;
        auto ck = makeChecker(prog);
        feed(ck, recs);
        ASSERT_TRUE(ck.diverged());
        EXPECT_EQ(ck.divergence().kind, DivergenceKind::NextPc);
    }
    {
        // A wrong retired PC diverges immediately, before execution.
        auto recs = clean;
        recs[2].pc += isa::instBytes;
        auto ck = makeChecker(prog);
        feed(ck, recs);
        ASSERT_TRUE(ck.diverged());
        EXPECT_EQ(ck.divergence().kind, DivergenceKind::Pc);
        EXPECT_EQ(ck.divergence().record.index, 3u);
    }
}

TEST(RetireChecker, ReportNamesKindAndMarksDivergingInstruction)
{
    isa::Program prog = sumProgram();
    auto recs = retireStream(prog, codeBase);
    recs[5].value ^= 1;

    check::CheckerConfig cfg;
    cfg.historyDepth = 4;
    auto ck = makeChecker(prog, cfg);
    feed(ck, recs);
    ASSERT_TRUE(ck.diverged());

    std::string rep = ck.report();
    EXPECT_NE(rep.find("register-writeback"), std::string::npos);
    EXPECT_NE(rep.find("<== diverged"), std::string::npos);
    EXPECT_NE(rep.find("last 4 retired"), std::string::npos) << rep;
}

TEST(RetireChecker, InjectedFaultsFireAtExactlyTheNthEvent)
{
    isa::Program prog = sumProgram();
    auto recs = retireStream(prog, codeBase);

    // The 3rd register-writing retirement in the clean stream.
    std::uint64_t seen = 0;
    SeqNum expect_seq = invalidSeqNum;
    for (const RetireRecord &r : recs)
        if (r.wroteReg && ++seen == 3) {
            expect_seq = r.seq;
            break;
        }
    ASSERT_NE(expect_seq, invalidSeqNum);

    check::CheckerConfig cfg;
    cfg.injectRegFaultAt = 3;
    auto ck = makeChecker(prog, cfg);
    feed(ck, recs);
    ASSERT_TRUE(ck.diverged());
    EXPECT_EQ(ck.divergence().kind, DivergenceKind::RegWriteback);
    EXPECT_EQ(ck.divergence().record.seq, expect_seq);

    // Same for the 2nd store.
    seen = 0;
    expect_seq = invalidSeqNum;
    for (const RetireRecord &r : recs)
        if (r.isStore && ++seen == 2) {
            expect_seq = r.seq;
            break;
        }
    ASSERT_NE(expect_seq, invalidSeqNum);

    check::CheckerConfig cfg2;
    cfg2.injectStoreFaultAt = 2;
    auto ck2 = makeChecker(prog, cfg2);
    feed(ck2, recs);
    ASSERT_TRUE(ck2.diverged());
    EXPECT_EQ(ck2.divergence().kind, DivergenceKind::StoreData);
    EXPECT_EQ(ck2.divergence().record.seq, expect_seq);
}

// ---------------------------------------------------------------------
// Simulator integration: real workloads under co-simulation.
// ---------------------------------------------------------------------

namespace
{

sim::RunOptions
checkedOpts(std::uint64_t insts, std::uint64_t warmup)
{
    sim::RunOptions o;
    o.maxMainInstructions = insts;
    o.warmupInstructions = warmup;
    o.check = true;
    return o;
}

} // namespace

TEST(CheckIntegration, VprCleanUnderCheckerBothConfigs)
{
    workloads::Params p;
    p.scale = 40000;
    sim::Workload wl = workloads::buildWorkload("vpr", p);
    sim::Simulator machine(sim::MachineConfig::fourWide());

    auto opts = checkedOpts(10000, 2000);
    // A divergence would SS_FATAL inside run(); surviving to the
    // assertions below means every retirement matched.
    auto base = machine.runBaseline(wl, opts);
    EXPECT_FALSE(base.checkDiverged);
    EXPECT_GE(base.checkedRetired, 10000u);  // warm-up is checked too

    auto slices = machine.run(wl, opts, true);
    EXPECT_FALSE(slices.checkDiverged);
    EXPECT_GE(slices.checkedRetired, 10000u);
}

TEST(CheckIntegration, InjectedRegFaultDetectedAndReported)
{
    workloads::Params p;
    p.scale = 20000;
    sim::Workload wl = workloads::buildWorkload("mcf", p);
    sim::Simulator machine(sim::MachineConfig::fourWide());

    auto opts = checkedOpts(5000, 0);
    opts.checkInjectRegFault = 1000;
    auto res = machine.run(wl, opts, true);
    EXPECT_TRUE(res.checkDiverged);
    EXPECT_NE(res.checkReport.find("register-writeback"),
              std::string::npos)
        << res.checkReport;
    // The corrupted instruction is pinpointed in the report and the
    // checker stopped there.
    EXPECT_NE(res.checkReport.find("first divergence"),
              std::string::npos);
    EXPECT_LE(res.checkedRetired, 5000u);
}

TEST(CheckIntegration, InjectedStoreFaultDetected)
{
    workloads::Params p;
    p.scale = 20000;
    sim::Workload wl = workloads::buildWorkload("vpr", p);
    sim::Simulator machine(sim::MachineConfig::fourWide());

    auto opts = checkedOpts(5000, 0);
    opts.checkInjectStoreFault = 50;
    auto res = machine.runBaseline(wl, opts);
    EXPECT_TRUE(res.checkDiverged);
    EXPECT_NE(res.checkReport.find("store-data"), std::string::npos)
        << res.checkReport;
}

TEST(CheckIntegration, UncheckedRunReportsNothing)
{
    workloads::Params p;
    p.scale = 20000;
    sim::Workload wl = workloads::buildWorkload("vpr", p);
    sim::Simulator machine(sim::MachineConfig::fourWide());

    sim::RunOptions opts;
    opts.maxMainInstructions = 5000;
    auto res = machine.runBaseline(wl, opts);
    EXPECT_EQ(res.checkedRetired, 0u);
    EXPECT_FALSE(res.checkDiverged);
    EXPECT_TRUE(res.checkReport.empty());
}

// ---------------------------------------------------------------------
// Golden digest format, diff, and lint.
// ---------------------------------------------------------------------

namespace
{

check::Digest
sampleDigest()
{
    check::Digest d;
    d.workload = "vpr";
    d.insts = 20000;
    d.warmup = 5000;
    d.seed = 1;
    d.width = 4;
    d.threads = 4;
    check::Digest::Section base;
    base.config = "baseline";
    base.counters = {{"cycles", 17865},
                     {"main_retired", 20000},
                     {"detail.forks", 0}};
    base.ratios = {{"ipc", 20000.0 / 17865.0}};
    check::Digest::Section slices = base;
    slices.config = "slices";
    slices.counters["cycles"] = 16000;
    slices.ratios["ipc"] = 1.25;
    d.sections = {base, slices};
    return d;
}

check::Digest
parsed(const std::string &text)
{
    std::istringstream is(text);
    std::string err;
    auto d = check::parseDigest(is, err);
    EXPECT_TRUE(d) << err;
    return d ? *d : check::Digest{};
}

} // namespace

TEST(Digest, FormatParseRoundTrip)
{
    check::Digest d = sampleDigest();
    check::Digest back = parsed(check::formatDigest(d));

    EXPECT_EQ(back.schemaVersion, check::digestSchemaVersion);
    EXPECT_EQ(back.workload, "vpr");
    EXPECT_EQ(back.insts, 20000u);
    ASSERT_EQ(back.sections.size(), 2u);
    EXPECT_TRUE(check::diffDigests(d, back).empty());
    EXPECT_TRUE(check::lintDigest(back).empty());
}

TEST(Digest, DiffCatchesCounterAndHeaderDrift)
{
    check::Digest golden = sampleDigest();
    check::Digest live = golden;
    live.sections[0].counters["cycles"] += 1;
    live.seed = 2;

    auto diffs = check::diffDigests(golden, live);
    ASSERT_EQ(diffs.size(), 2u);
    bool saw_cycles = false, saw_seed = false;
    for (const auto &m : diffs) {
        saw_cycles |= m.find("baseline.cycles") != std::string::npos;
        saw_seed |= m.find("seed") != std::string::npos;
    }
    EXPECT_TRUE(saw_cycles);
    EXPECT_TRUE(saw_seed);

    // Counters present only on one side fail in either direction.
    live = golden;
    live.sections[1].counters.erase("detail.forks");
    live.sections[1].counters["detail.new_thing"] = 7;
    diffs = check::diffDigests(golden, live);
    ASSERT_EQ(diffs.size(), 2u);
}

TEST(Digest, RatioToleranceIsRelative)
{
    check::Digest golden = sampleDigest();
    check::Digest live = golden;

    // A decimal round-trip wobble passes...
    live.sections[0].ratios["ipc"] *= 1.0 + 1e-12;
    EXPECT_TRUE(check::diffDigests(golden, live).empty());

    // ...a real change does not.
    live.sections[0].ratios["ipc"] *= 1.0 + 1e-3;
    auto diffs = check::diffDigests(golden, live);
    ASSERT_EQ(diffs.size(), 1u);
    EXPECT_NE(diffs[0].find("baseline.ipc"), std::string::npos);
}

TEST(Digest, LintFlagsStructuralProblems)
{
    // Healthy digest lints clean.
    EXPECT_TRUE(check::lintDigest(sampleDigest()).empty());

    check::Digest d = sampleDigest();
    d.schemaVersion = check::digestSchemaVersion + 1;
    EXPECT_FALSE(check::lintDigest(d).empty());

    d = sampleDigest();
    d.sections.pop_back();  // no 'slices' section
    EXPECT_FALSE(check::lintDigest(d).empty());

    d = sampleDigest();
    d.sections[0].counters["cycles"] = 0;
    EXPECT_FALSE(check::lintDigest(d).empty());

    d = sampleDigest();
    d.sections[1].ratios["ipc"] =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(check::lintDigest(d).empty());

    d = sampleDigest();
    d.sections[1].ratios["ipc"] = -0.5;
    EXPECT_FALSE(check::lintDigest(d).empty());
}

TEST(Digest, ParserRejectsMalformedInput)
{
    auto rejects = [](const std::string &text) {
        std::istringstream is(text);
        std::string err;
        auto d = check::parseDigest(is, err);
        EXPECT_FALSE(d) << "accepted: " << text;
        EXPECT_NE(err.find("line"), std::string::npos);
    };
    rejects("bogus_directive 1\n");
    rejects("schema_version not_a_number\n");
    rejects("counter cycles 5\n");           // before any config
    rejects("config a\ncounter cycles -3\n");
    rejects("config a\ncounter cycles 3 extra\n");
    rejects("config a\ncounter cycles 1\ncounter cycles 2\n");
    rejects("config a\nratio ipc abc\n");
}
