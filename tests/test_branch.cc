/**
 * @file
 * Branch-prediction tests: YAGS learning behaviour (bias, patterns,
 * the loop-exit aliasing regression), the cascaded indirect predictor,
 * the return address stack, history checkpointing, and the composite
 * predictor unit.
 */

#include <gtest/gtest.h>

#include "branch/history.hh"
#include "branch/indirect.hh"
#include "branch/predictor_unit.hh"
#include "branch/ras.hh"
#include "branch/yags.hh"
#include "common/rng.hh"

using namespace specslice;
using namespace specslice::branch;

namespace
{

constexpr Addr pcA = 0x10000;
constexpr Addr pcB = 0x20040;

} // namespace

TEST(YagsTest, LearnsStrongBias)
{
    YagsPredictor y;
    for (int i = 0; i < 50; ++i)
        y.update(pcA, 0, true);
    EXPECT_TRUE(y.predict(pcA, 0));
    for (int i = 0; i < 50; ++i)
        y.update(pcB, 0, false);
    EXPECT_FALSE(y.predict(pcB, 0));
    EXPECT_TRUE(y.predict(pcA, 0));  // no cross-talk
}

TEST(YagsTest, LearnsHistoryCorrelatedExceptions)
{
    // Branch is taken except under one specific history.
    YagsPredictor y;
    const std::uint64_t except_hist = 0x2a5;
    for (int round = 0; round < 60; ++round) {
        y.update(pcA, 0x111, true);
        y.update(pcA, 0x1f3, true);
        y.update(pcA, except_hist, false);
    }
    EXPECT_TRUE(y.predict(pcA, 0x111));
    EXPECT_TRUE(y.predict(pcA, 0x1f3));
    EXPECT_FALSE(y.predict(pcA, except_hist));
}

TEST(YagsTest, AlternatingPatternViaHistory)
{
    // T,NT,T,NT... is perfectly predictable given 1 bit of history.
    YagsPredictor y;
    bool outcome = false;
    std::uint64_t hist = 0;
    int mispred = 0;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        if (i > 100 && y.predict(pcA, hist) != outcome)
            ++mispred;
        y.update(pcA, hist, outcome);
        hist = (hist << 1) | (outcome ? 1 : 0);
    }
    EXPECT_LT(mispred, 10);
}

TEST(YagsTest, LoopExitAliasingRegression)
{
    // Regression for the filler-loop pathology that once mispredicted
    // vpr's filler exit 100% of the time: a 12-iteration loop (11 T +
    // 1 NT) preceded by a constant-taken branch and a few random
    // branches. The exit history's low bits are all-ones, which also
    // matches saturated mid-loop histories; history folding in the
    // index must keep them in separate entries.
    YagsPredictor y;
    GlobalHistory h(16);
    Rng rng(3);
    int exit_mispred = 0, exits = 0;
    for (int round = 0; round < 20000; ++round) {
        for (int k = 1; k <= 5; ++k) {
            bool actual = k < 5;
            bool pred = y.predict(pcA, h.value());
            if (k == 5 && round > 2000) {
                ++exits;
                exit_mispred += (pred != actual);
            }
            y.update(pcA, h.value(), actual);
            h.shift(actual);
        }
        // Random branches (a heap loop) then a constant-taken branch
        // (the outer loop) before the next loop instance.
        int noise = 1 + static_cast<int>(rng.below(3));
        for (int n = 0; n < noise; ++n) {
            bool t = rng.chance(1, 2);
            y.update(pcB, h.value(), t);
            h.shift(t);
        }
        y.update(pcB + 8, h.value(), true);
        h.shift(true);
    }
    // What the index folding guarantees is the absence of the
    // catastrophic single-entry ping-pong (which mispredicted 100% of
    // exits). Some loss remains inherent: when a mid-loop history is
    // bit-for-bit identical to another round's exit history, no
    // global-history predictor of this budget can separate them
    // (loop predictors were invented for exactly this).
    EXPECT_LT(exit_mispred * 100, exits * 60)
        << exit_mispred << "/" << exits;
}

TEST(YagsTest, StorageBudgetNearTable1)
{
    YagsPredictor y;
    // Table 1: 64 Kb predictor. Allow some slack either way.
    EXPECT_LT(y.storageBits(), 96 * 1024u);
    EXPECT_GT(y.storageBits(), 32 * 1024u);
}

TEST(IndirectTest, Stage1LearnsMonomorphicTargets)
{
    CascadedIndirectPredictor p;
    p.update(pcA, 0, 0x5000);
    EXPECT_EQ(p.predict(pcA, 0), 0x5000u);
    EXPECT_EQ(p.predict(pcB, 0), invalidAddr);  // unknown branch
}

TEST(IndirectTest, Stage2DisambiguatesByPath)
{
    CascadedIndirectPredictor p;
    // Polymorphic site: target depends on the path history.
    for (int i = 0; i < 20; ++i) {
        p.update(pcA, 0x111, 0x5000);
        p.update(pcA, 0x777, 0x6000);
    }
    EXPECT_EQ(p.predict(pcA, 0x111), 0x5000u);
    EXPECT_EQ(p.predict(pcA, 0x777), 0x6000u);
}

TEST(IndirectTest, CascadeFiltersMonomorphic)
{
    // A monomorphic site should never allocate in stage 2: its stage-1
    // entry always predicts correctly, so predictions are path-
    // independent.
    CascadedIndirectPredictor p;
    for (int i = 0; i < 50; ++i)
        p.update(pcA, i * 77, 0x5000);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(p.predict(pcA, i * 997), 0x5000u);
}

TEST(RasTest, PushPopNesting)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    ras.push(0x400);
    EXPECT_EQ(ras.pop(), 0x400u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(RasTest, CheckpointHealsShallowCorruption)
{
    // The standard (tos, top-value) checkpoint heals the common
    // wrong-path damage: a pop followed by a push that overwrote the
    // checkpointed top. (Deeper corruption is accepted — real designs
    // make the same trade-off.)
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    auto cp = ras.checkpoint();
    ras.pop();
    ras.push(0xdead);  // overwrites the slot 0x200 lived in
    ras.restore(cp);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(HistoryTest, ShiftAndRestore)
{
    GlobalHistory h(8);
    h.shift(true);
    h.shift(false);
    h.shift(true);
    EXPECT_EQ(h.value(), 0b101u);
    auto cp = h.checkpoint();
    h.shift(true);
    h.shift(true);
    h.restore(cp);
    EXPECT_EQ(h.value(), 0b101u);
    // Masked to width.
    for (int i = 0; i < 20; ++i)
        h.shift(true);
    EXPECT_EQ(h.value(), 0xffu);
}

TEST(PredictorUnitTest, OverrideBypassesYags)
{
    BranchPredictorUnit bpu;
    PredictContext ctx;
    // Train strongly taken.
    for (int i = 0; i < 40; ++i) {
        bpu.predictCond(pcA, -1, ctx);
        bpu.updateCond(pcA, ctx, true);
    }
    EXPECT_TRUE(bpu.predictCond(pcA, -1, ctx));
    // A correlator override forces the direction regardless.
    EXPECT_FALSE(bpu.predictCond(pcA, 0, ctx));
    EXPECT_TRUE(bpu.predictCond(pcA, 1, ctx));
}

TEST(PredictorUnitTest, CheckpointRestoresEverything)
{
    BranchPredictorUnit bpu;
    PredictContext ctx;
    bpu.pushCall(0x100);
    auto cp = bpu.checkpoint();
    bpu.predictCond(pcA, 1, ctx);  // shifts history
    bpu.pushCall(0x200);
    bpu.restore(cp);
    EXPECT_EQ(bpu.popReturn(), 0x100u);
    EXPECT_EQ(bpu.checkpoint().ghist, cp.ghist);
}

TEST(PredictorUnitTest, SpeculativeHistoryFollowsPrediction)
{
    BranchPredictorUnit bpu;
    PredictContext c1, c2;
    bpu.predictCond(pcA, 1, c1);
    bpu.predictCond(pcA, 0, c2);
    // c2's context saw the first (taken) prediction in history.
    EXPECT_EQ(c2.ghist & 1, 1u);
}
