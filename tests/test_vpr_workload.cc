/**
 * @file
 * End-to-end tests of the vpr heap-insertion workload: the paper's
 * running example. Checks functional sanity, the problem-instruction
 * profile (Section 2.4), and that the Figure 5 slice delivers accurate
 * predictions, prefetch coverage, and a speedup (Section 6).
 */

#include <gtest/gtest.h>

#include "profile/pde_profile.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

workloads::Params
smallParams()
{
    workloads::Params p;
    p.scale = 300'000;
    return p;
}

core::RunOptions
runOpts(std::uint64_t n = 200'000)
{
    core::RunOptions o;
    o.maxMainInstructions = n;
    o.warmupInstructions = 60'000;
    return o;
}

} // namespace

TEST(VprWorkload, BaselineRunsAndHasProblemInstructions)
{
    auto wl = workloads::buildVpr(smallParams());
    sim::Simulator simr(sim::MachineConfig::fourWide());

    auto opts = runOpts();
    opts.profile = true;
    auto res = simr.runBaseline(wl, opts);

    EXPECT_GT(res.mainRetired, 100'000u);
    EXPECT_GT(res.ipc(), 0.3);
    EXPECT_LT(res.ipc(), 4.0);

    // The trickle-loop branch must be a real problem branch and the
    // cost load a real problem load.
    auto prob = profile::classifyProblemInstructions(res.profile);
    Addr branch_pc = wl.program.symbol("problem_branch");
    EXPECT_TRUE(prob.problemBranches.count(branch_pc))
        << "trickle branch not classified as problem branch";
    EXPECT_FALSE(prob.problemLoads.empty());

    // PDEs are concentrated: problem instructions are few but cover
    // most misses/mispredictions (Table 2's shape).
    EXPECT_GT(prob.mispredCoverage(), 0.4);
    EXPECT_GT(prob.missCoverage(), 0.5);
}

TEST(VprWorkload, SliceGivesSpeedupAndAccuratePredictions)
{
    auto wl = workloads::buildVpr(smallParams());
    sim::Simulator simr(sim::MachineConfig::fourWide());

    auto base = simr.runBaseline(wl, runOpts());
    auto sliced = simr.run(wl, runOpts(), true);

    // Same architectural work (the final cycle may retire up to a
    // retire-width of extra instructions past the budget).
    EXPECT_NEAR(static_cast<double>(base.mainRetired),
                static_cast<double>(sliced.mainRetired), 8.0);

    // Slices fork and run.
    EXPECT_GT(sliced.forks, 100u);
    EXPECT_GT(sliced.predictionsGenerated, sliced.forks);
    EXPECT_GT(sliced.slicePrefetches, 0u);

    // Overridden predictions are nearly always right (paper: >99%).
    ASSERT_GT(sliced.correlatorUsed, 0u);
    double wrong_rate = static_cast<double>(sliced.correlatorWrong) /
                        static_cast<double>(sliced.correlatorUsed);
    EXPECT_LT(wrong_rate, 0.05);

    // Mispredictions drop and the program speeds up.
    EXPECT_LT(sliced.mispredictions, base.mispredictions);
    double speedup = static_cast<double>(base.cycles) /
                     static_cast<double>(sliced.cycles);
    EXPECT_GT(speedup, 1.02) << "base " << base.cycles << " sliced "
                             << sliced.cycles;
}

TEST(VprWorkload, LimitStudyBeatsSlices)
{
    auto wl = workloads::buildVpr(smallParams());
    sim::Simulator simr(sim::MachineConfig::fourWide());

    auto base = simr.runBaseline(wl, runOpts());
    auto sliced = simr.run(wl, runOpts(), true);

    core::RunOptions lim = runOpts();
    for (Addr pc : wl.coveredBranchPcs())
        lim.perfect.branchPcs.insert(pc);
    for (Addr pc : wl.coveredLoadPcs())
        lim.perfect.loadPcs.insert(pc);
    auto limit = simr.runBaseline(wl, lim);

    EXPECT_LT(limit.cycles, base.cycles);
    // The limit study bounds (or roughly matches) the slice result.
    EXPECT_LE(limit.cycles, sliced.cycles * 105 / 100);
}
