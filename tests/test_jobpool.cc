/**
 * @file
 * JobPool tests: submission-order result delivery, exception capture
 * and rethrow, the jobs==1 inline degenerate case, SS_JOBS handling,
 * and the property the parallel experiment engine rests on — a sweep
 * of experiment rows produces identical statistics at any job count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/failure.hh"
#include "common/logging.hh"
#include "sim/experiments.hh"
#include "sim/job_pool.hh"

using namespace specslice;

TEST(JobPool, MapPreservesSubmissionOrder)
{
    sim::JobPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);

    std::vector<int> items;
    for (int i = 0; i < 200; ++i)
        items.push_back(i);
    auto out = pool.map(items, [](int v) { return v * 3 + 1; });
    ASSERT_EQ(out.size(), items.size());
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(out[i], i * 3 + 1);
}

TEST(JobPool, SingleJobRunsInlineOnSubmittingThread)
{
    sim::JobPool pool(1);
    EXPECT_EQ(pool.jobs(), 1u);

    const std::thread::id self = std::this_thread::get_id();
    auto out = pool.map(std::vector<int>{1, 2, 3}, [&](int v) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        return v + 10;
    });
    EXPECT_EQ(out, (std::vector<int>{11, 12, 13}));
}

TEST(JobPool, SubmitRunsEverythingOnceEvenWhenOversubscribed)
{
    // More tasks than workers: all must run exactly once.
    sim::JobPool pool(2);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> done;
    for (int i = 0; i < 64; ++i)
        done.push_back(pool.submit([&ran] { ++ran; }));
    for (auto &f : done)
        f.get();
    EXPECT_EQ(ran.load(), 64);
}

TEST(JobPool, ExceptionPropagatesAndPoolStaysUsable)
{
    sim::JobPool pool(4);
    const std::vector<int> items = {0, 1, 2, 3, 4, 5, 6, 7};

    try {
        pool.map(items, [](int v) -> int {
            if (v == 3)
                throw std::runtime_error("boom");
            return v;
        });
        FAIL() << "expected the job's exception to be rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }

    // The failed batch must not poison the workers.
    auto ok = pool.map(items, [](int v) { return v * 2; });
    ASSERT_EQ(ok.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(ok[i], items[i] * 2);
}

TEST(JobPool, ExceptionPropagatesInline)
{
    sim::JobPool pool(1);
    EXPECT_THROW(pool.map(std::vector<int>{1},
                          [](int) -> int {
                              throw std::logic_error("inline");
                          }),
                 std::logic_error);
}

TEST(JobPool, DefaultJobsHonorsEnvironment)
{
    ::setenv("SS_JOBS", "3", 1);
    EXPECT_EQ(sim::JobPool::defaultJobs(), 3u);
    ::unsetenv("SS_JOBS");
    EXPECT_GE(sim::JobPool::defaultJobs(), 1u);

    sim::JobPool dflt;  // jobs = 0 selects defaultJobs()
    EXPECT_GE(dflt.jobs(), 1u);
}

namespace
{

/**
 * Every simulated statistic of a Figure 11 row, serialized. Wall-clock
 * style fields are excluded by construction: RunResult carries only
 * architectural counters.
 */
std::string
fingerprint(const sim::Figure11Row &row)
{
    std::ostringstream os;
    os << row.program << '\n';
    for (const sim::RunResult *r : {&row.base, &row.sliced, &row.limit}) {
        os << r->cycles << ' ' << r->mainRetired << ' '
           << r->mispredictions << ' ' << r->l1dMissesMain << ' '
           << r->forks << ' ' << r->correlatorUsed << '\n';
        r->detail.dump(os);
    }
    return os.str();
}

std::string
runSweep(unsigned jobs)
{
    sim::ExperimentConfig cfg;
    cfg.measureInsts = 4000;
    cfg.warmupInsts = 1000;
    cfg.seed = 1;

    const std::vector<std::string> names = {"vpr", "gzip"};
    sim::JobPool pool(jobs);
    auto rows = pool.map(names, [&](const std::string &name) {
        return sim::runFigure11Row(sim::MachineConfig::fourWide(), name,
                                   cfg);
    });

    std::string fp;
    for (const auto &row : rows)
        fp += fingerprint(row);
    return fp;
}

} // namespace

TEST(JobPool, Figure11SweepIsIdenticalAcrossJobCounts)
{
    std::string serial = runSweep(1);
    std::string parallel = runSweep(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------
// mapSettled: crash-resilient sweeps
// ---------------------------------------------------------------

TEST(JobPoolSettled, ThrowingJobIsIsolated)
{
    sim::JobPool pool(4);
    const std::vector<int> items = {0, 1, 2, 3, 4, 5, 6, 7};
    auto out = pool.mapSettled(items, [](int v) -> int {
        if (v == 3)
            throw std::runtime_error("boom");
        return v * 2;
    });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i == 3) {
            EXPECT_FALSE(out[i].ok());
            EXPECT_EQ(out[i].status.state, sim::JobState::Failed);
            EXPECT_EQ(out[i].status.error, "boom");
            EXPECT_FALSE(out[i].value.has_value());
        } else {
            ASSERT_TRUE(out[i].ok()) << i;
            EXPECT_EQ(*out[i].value, static_cast<int>(i) * 2);
        }
    }
}

TEST(JobPoolSettled, PanicBecomesCatchableSimError)
{
    // SS_PANIC inside a settled job must land in the slot, not kill
    // the process — that is the whole point of the throw-mode layer.
    sim::JobPool pool(2);
    const std::vector<int> items = {0, 1, 2};
    auto out = pool.mapSettled(items, [](int v) -> int {
        if (v == 1)
            SS_PANIC("injected panic in job ", v);
        return v;
    });
    ASSERT_EQ(out.size(), 3u);
    EXPECT_TRUE(out[0].ok());
    EXPECT_TRUE(out[2].ok());
    EXPECT_FALSE(out[1].ok());
    EXPECT_EQ(out[1].status.state, sim::JobState::Failed);
    EXPECT_NE(out[1].status.error.find("panic"), std::string::npos);
    EXPECT_NE(out[1].status.error.find("injected panic in job 1"),
              std::string::npos);
}

TEST(JobPoolSettled, DeadlineCancelsCooperativeJobWithOneRetry)
{
    sim::JobPool pool(2);
    sim::SettleOptions opts;
    opts.deadlineSeconds = 0.05;
    opts.timeoutRetries = 1;

    const std::vector<int> items = {0, 1};
    auto out = pool.mapSettled(
        items,
        [](int v) -> int {
            if (v == 1) {
                // Cooperative spin: polls its cancellation flag the
                // way SmtCore::run does, forever.
                for (;;)
                    throwIfCancelled("settled test spin");
            }
            return v;
        },
        opts);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].ok());
    EXPECT_FALSE(out[1].ok());
    EXPECT_EQ(out[1].status.state, sim::JobState::TimedOut);
    EXPECT_EQ(out[1].status.attempts, 2u);  // one retry after timeout
    EXPECT_NE(out[1].status.error.find("deadline exceeded"),
              std::string::npos);
    EXPECT_GE(out[1].status.wallSeconds, 0.05);
}

TEST(JobPoolSettled, SweepSurvivesOneFatalConfiguration)
{
    // The acceptance shape: an 8-job sweep where one configuration
    // dies must complete the other seven and report the failure.
    sim::JobPool pool(8);
    std::vector<int> items;
    for (int i = 0; i < 8; ++i)
        items.push_back(i);
    auto out = pool.mapSettled(items, [](int v) -> int {
        if (v == 5)
            SS_FATAL("bad configuration ", v);
        return v + 100;
    });
    unsigned ok = 0, failed = 0;
    for (const auto &slot : out)
        slot.ok() ? ++ok : ++failed;
    EXPECT_EQ(ok, 7u);
    EXPECT_EQ(failed, 1u);
    EXPECT_EQ(out[5].status.state, sim::JobState::Failed);
    EXPECT_NE(out[5].status.error.find("fatal"), std::string::npos);

    // The pool stays usable after the failures.
    auto again = pool.map(items, [](int v) { return v; });
    EXPECT_EQ(again.size(), items.size());
}
