/**
 * @file
 * Fault-injection subsystem tests: spec-string parsing, injector
 * determinism (same seed → same run, any job count), per-site
 * behaviour with the retirement checker co-simulating (injected
 * timing faults must never corrupt architectural state), the
 * forward-progress watchdog, and the cycle-limit / checker-divergence
 * outcomes.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "sim/job_pool.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

fault::FaultPlan
mustParse(const std::string &spec, std::uint64_t seed = 1)
{
    fault::FaultPlan plan;
    std::string err;
    EXPECT_TRUE(fault::FaultPlan::parse(spec, plan, err))
        << spec << ": " << err;
    plan.seed = seed;
    return plan;
}

std::string
parseError(const std::string &spec)
{
    fault::FaultPlan plan;
    std::string err;
    EXPECT_FALSE(fault::FaultPlan::parse(spec, plan, err)) << spec;
    return err;
}

sim::Workload
vprWorkload()
{
    workloads::Params p;
    p.scale = 80'000;
    return workloads::buildVpr(p);
}

sim::RunResult
runInjected(const fault::FaultPlan &plan, bool check = false,
            std::uint64_t insts = 15'000)
{
    sim::Workload wl = vprWorkload();
    sim::Simulator machine(sim::MachineConfig::fourWide());
    sim::RunOptions opts;
    opts.maxMainInstructions = insts;
    opts.warmupInstructions = 3'000;
    opts.faults = plan;
    opts.check = check;
    opts.checkFatal = false;  // divergence latches into the result
    return machine.run(wl, opts, true);
}

/** Architectural counters only — what determinism must preserve. */
std::string
fingerprint(const sim::RunResult &r)
{
    std::ostringstream os;
    os << r.cycles << ' ' << r.mainRetired << ' ' << r.mispredictions
       << ' ' << r.l1dMissesMain << ' ' << r.forks << ' '
       << r.correlatorUsed << ' ' << r.faultsInjected << ' '
       << r.faultSummary << '\n';
    r.detail.dump(os);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------

TEST(FaultPlanParse, AcceptsTheDocumentedGrammar)
{
    fault::FaultPlan plan =
        mustParse("mem.latency:+300@p0.01,slice.kill@n5");
    ASSERT_EQ(plan.specs.size(), 2u);

    EXPECT_EQ(plan.specs[0].site, fault::Site::MemLatency);
    EXPECT_FALSE(plan.specs[0].periodic);
    EXPECT_DOUBLE_EQ(plan.specs[0].prob, 0.01);
    EXPECT_EQ(plan.specs[0].arg, 300u);

    EXPECT_EQ(plan.specs[1].site, fault::Site::SliceKill);
    EXPECT_TRUE(plan.specs[1].periodic);
    EXPECT_EQ(plan.specs[1].period, 5u);
    EXPECT_EQ(plan.specs[1].arg, 64u);  // site default

    // describe() canonicalizes: explicit non-default args survive
    // (without the optional '+'), default args are elided.
    EXPECT_EQ(plan.describe(), "mem.latency:300@p0.01,slice.kill@n5");
}

TEST(FaultPlanParse, EverySiteRoundTrips)
{
    for (const char *spec :
         {"mem.latency@p0.5", "mem.wbstall@p1", "slice.kill:1@n2",
          "pred.flip@p0.001", "corr.drop@n3", "check.reg@n5",
          "check.store@n7", "serve.wedge:500@n2", "serve.crash@n9",
          "cache.enospc@p0.5", "cache.flip@n4", "sock.drop@n6"}) {
        fault::FaultPlan plan = mustParse(spec);
        ASSERT_EQ(plan.specs.size(), 1u) << spec;
    }
}

TEST(FaultPlanParse, ServiceSitesAreClassified)
{
    // The daemon owns serve.*/cache.*/sock.* sites; the simulator
    // owns the rest. The two halves of one plan are told apart so
    // each tool can reject the sites it cannot honor.
    fault::FaultPlan service = mustParse("serve.crash@n5,sock.drop@n3");
    EXPECT_TRUE(service.hasServiceSites());
    EXPECT_FALSE(service.hasSimSites());

    fault::FaultPlan sim_only = mustParse("mem.latency@p0.1");
    EXPECT_FALSE(sim_only.hasServiceSites());
    EXPECT_TRUE(sim_only.hasSimSites());

    fault::FaultPlan mixed =
        mustParse("mem.latency@p0.1,cache.flip@n2");
    EXPECT_TRUE(mixed.hasServiceSites());
    EXPECT_TRUE(mixed.hasSimSites());

    EXPECT_FALSE(fault::isServiceSite(fault::Site::MemLatency));
    EXPECT_TRUE(fault::isServiceSite(fault::Site::ServeWedge));
    EXPECT_TRUE(fault::isServiceSite(fault::Site::SockDrop));
}

TEST(FaultInjection, ServiceInjectorSingletonFiresDeterministically)
{
    // No injector installed: every service tap is a cheap no-op.
    fault::setServiceInjector(nullptr);
    EXPECT_FALSE(fault::serviceFire(fault::Site::ServeCrash));
    EXPECT_EQ(fault::serviceArg(fault::Site::ServeWedge), 0u);

    fault::FaultPlan plan = mustParse("serve.wedge:250@n3", 11);
    fault::Injector inj(plan);
    fault::setServiceInjector(&inj);
    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i)
        fired.push_back(fault::serviceFire(fault::Site::ServeWedge));
    fault::setServiceInjector(nullptr);

    // @n3 fires on every 3rd event, with the site argument visible
    // at the tap.
    std::vector<bool> expect = {false, false, true, false, false,
                                true,  false, false, true};
    EXPECT_EQ(fired, expect);
    fault::Injector inj2(plan);
    fault::setServiceInjector(&inj2);
    EXPECT_EQ(fault::serviceArg(fault::Site::ServeWedge), 250u);
    fault::setServiceInjector(nullptr);
}

TEST(FaultPlanParse, EmptySpecIsNoInjection)
{
    EXPECT_TRUE(mustParse("").empty());
    EXPECT_TRUE(mustParse("   ").empty());
}

TEST(FaultPlanParse, RejectsMalformedSpecs)
{
    EXPECT_NE(parseError("bogus.site@p0.1").find("bogus.site"),
              std::string::npos);
    parseError("mem.latency");          // no trigger
    parseError("mem.latency@x5");       // unknown trigger kind
    parseError("mem.latency@p1.5");     // probability > 1
    parseError("mem.latency@p-0.1");    // negative probability
    parseError("mem.latency@n0");       // period must be >= 1
    parseError("pred.flip:3@p0.1");     // site takes no argument
    parseError("check.reg@p0.5");       // checker faults need @nN
    parseError("mem.latency@p0.1,mem.latency@n5");  // duplicate site
    parseError("mem.latency@p0.1,,slice.kill@n5");  // empty token
}

// ---------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------

TEST(FaultInjection, SameSeedSameRun)
{
    fault::FaultPlan plan = mustParse("mem.latency@p0.05", 7);
    sim::RunResult a = runInjected(plan);
    sim::RunResult b = runInjected(plan);
    EXPECT_GT(a.faultsInjected, 0u);
    EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(FaultInjection, SeedChangesTheFiringPattern)
{
    sim::RunResult a = runInjected(mustParse("mem.latency@p0.05", 1));
    sim::RunResult b = runInjected(mustParse("mem.latency@p0.05", 2));
    EXPECT_GT(a.faultsInjected, 0u);
    EXPECT_GT(b.faultsInjected, 0u);
    EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(FaultInjection, IdenticalAcrossJobCounts)
{
    // The injected sweep is as deterministic as the clean one: the
    // per-site RNG streams depend only on (seed, site, event index),
    // never on worker scheduling.
    const std::vector<std::string> specs = {
        "mem.latency@p0.05", "slice.kill:1@n2", "corr.drop@n2"};
    auto sweep = [&](unsigned jobs) {
        sim::JobPool pool(jobs);
        auto rows = pool.map(specs, [](const std::string &spec) {
            fault::FaultPlan plan;
            std::string err;
            if (!fault::FaultPlan::parse(spec, plan, err))
                throw std::runtime_error(err);
            plan.seed = 3;
            return fingerprint(runInjected(plan));
        });
        std::string all;
        for (const std::string &fp : rows)
            all += fp;
        return all;
    };
    EXPECT_EQ(sweep(1), sweep(2));
}

// ---------------------------------------------------------------
// Per-site behaviour (checker stays green under timing faults)
// ---------------------------------------------------------------

TEST(FaultInjection, TimingFaultsPerturbStatsButNotArchitecture)
{
    sim::RunResult clean = runInjected(fault::FaultPlan{}, true);
    ASSERT_FALSE(clean.checkDiverged);

    for (const char *spec : {"mem.latency:+200@p0.05",
                             "slice.kill:1@n2", "corr.drop@n2",
                             "pred.flip@p0.01"}) {
        sim::RunResult r = runInjected(mustParse(spec), true);
        EXPECT_GT(r.faultsInjected, 0u) << spec;
        EXPECT_FALSE(r.checkDiverged) << spec;
        EXPECT_EQ(r.outcome, sim::SimOutcome::Completed) << spec;
        // The whole instruction budget retires either way (retirement
        // can overshoot the budget by up to a retire-width of insts).
        EXPECT_GE(r.mainRetired + 2, 15'000u) << spec;
        EXPECT_LE(r.mainRetired, 15'008u) << spec;
        EXPECT_NE(fingerprint(r), fingerprint(clean)) << spec;
    }
}

TEST(FaultInjection, CheckerFaultInjectionIsDetected)
{
    // check.reg corrupts a compared value — the checker must see it.
    sim::RunResult r = runInjected(mustParse("check.reg@n10"), true);
    EXPECT_TRUE(r.checkDiverged);
    EXPECT_EQ(r.outcome, sim::SimOutcome::CheckerDivergence);
    EXPECT_FALSE(r.checkReport.empty());
}

// ---------------------------------------------------------------
// Watchdog and cycle limit
// ---------------------------------------------------------------

TEST(Watchdog, FiresOnLivelockWithDiagnosis)
{
    // mem.wbstall@p1 rejects every store write-back: retirement
    // livelocks on the first store with the pipeline otherwise
    // healthy. Only the watchdog can end this run.
    sim::Workload wl = vprWorkload();
    sim::Simulator machine(sim::MachineConfig::fourWide());
    sim::RunOptions opts;
    opts.maxMainInstructions = 15'000;
    opts.faults = mustParse("mem.wbstall@p1");
    opts.watchdogCycles = 5'000;
    sim::RunResult r = machine.run(wl, opts, true);

    EXPECT_EQ(r.outcome, sim::SimOutcome::Watchdog);
    EXPECT_LT(r.mainRetired, 15'000u);
    ASSERT_FALSE(r.diagnosis.empty());
    // The diagnosis names the stall duration, the ROB head (the stuck
    // store), memory state, and the injection that caused it.
    EXPECT_NE(r.diagnosis.find("retired nothing for 5000 cycles"),
              std::string::npos)
        << r.diagnosis;
    EXPECT_NE(r.diagnosis.find("rob head"), std::string::npos);
    EXPECT_NE(r.diagnosis.find("retire_wb_stalls"), std::string::npos);
    EXPECT_NE(r.diagnosis.find("mem.wbstall"), std::string::npos);
}

TEST(Watchdog, DisabledWatchdogFallsThroughToCycleLimit)
{
    sim::Workload wl = vprWorkload();
    sim::Simulator machine(sim::MachineConfig::fourWide());
    sim::RunOptions opts;
    opts.maxMainInstructions = 15'000;
    opts.faults = mustParse("mem.wbstall@p1");
    opts.watchdogEnabled = false;
    opts.maxCycles = 30'000;
    sim::RunResult r = machine.run(wl, opts, true);
    EXPECT_EQ(r.outcome, sim::SimOutcome::CycleLimit);
    EXPECT_TRUE(r.diagnosis.empty());
}

TEST(Watchdog, CleanRunCompletesUntouched)
{
    sim::Workload wl = vprWorkload();
    sim::Simulator machine(sim::MachineConfig::fourWide());
    sim::RunOptions opts;
    opts.maxMainInstructions = 15'000;
    opts.watchdogCycles = 5'000;
    sim::RunResult r = machine.run(wl, opts, true);
    EXPECT_EQ(r.outcome, sim::SimOutcome::Completed);
    EXPECT_GE(r.mainRetired + 1, 15'000u);
    EXPECT_EQ(r.faultsInjected, 0u);
}

TEST(CycleLimit, TinyLimitYieldsCycleLimitOutcome)
{
    sim::Workload wl = vprWorkload();
    sim::Simulator machine(sim::MachineConfig::fourWide());
    sim::RunOptions opts;
    opts.maxMainInstructions = 1'000'000;  // unreachable
    opts.maxCycles = 2'000;
    sim::RunResult r = machine.run(wl, opts, true);
    EXPECT_EQ(r.outcome, sim::SimOutcome::CycleLimit);
    EXPECT_LE(r.cycles, 2'000u);
}

TEST(Outcome, NamesAreStable)
{
    EXPECT_STREQ(sim::outcomeName(sim::SimOutcome::Completed),
                 "completed");
    EXPECT_STREQ(sim::outcomeName(sim::SimOutcome::CycleLimit),
                 "cycle_limit");
    EXPECT_STREQ(sim::outcomeName(sim::SimOutcome::Watchdog),
                 "watchdog");
    EXPECT_STREQ(sim::outcomeName(sim::SimOutcome::CheckerDivergence),
                 "checker_divergence");
    EXPECT_STREQ(sim::outcomeName(sim::SimOutcome::Fault), "fault");
}
