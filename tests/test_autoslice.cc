/**
 * @file
 * Tests for the functional tracer and the automatic slice-candidate
 * analyzer (Section 3.3): backward slices include exactly the
 * dependence-relevant instructions, memory dependences are followed,
 * live-in sets shrink at natural fork points, and the analyzer's
 * verdicts on the vpr workload match the hand-built Figure 5 slice.
 */

#include <gtest/gtest.h>

#include "autoslice/analyzer.hh"
#include "arch/tracer.hh"
#include "isa/assembler.hh"
#include "workloads/workloads.hh"

using namespace specslice;
using namespace specslice::isa;

namespace
{

constexpr Addr codeBase = 0x10000;
constexpr Addr dataBase = 0x100000;

} // namespace

TEST(Tracer, ExecutesAndStopsAtHalt)
{
    Assembler as(codeBase);
    as.ldi(1, 5);
    as.addi(1, 1, 2);
    as.halt();
    Program prog;
    prog.addSection(as.finish());

    arch::MemoryImage mem;
    std::vector<Addr> pcs;
    auto res = arch::trace(prog, codeBase, mem, 1000,
                           [&](const arch::TraceEvent &ev) {
                               pcs.push_back(ev.pc);
                           });
    EXPECT_EQ(res.count, 3u);
    EXPECT_EQ(res.reason, arch::TraceStop::Halted);
    EXPECT_EQ(res.finalPc, codeBase + 16);
    ASSERT_EQ(pcs.size(), 3u);
    EXPECT_EQ(pcs[2], codeBase + 16);
}

TEST(Tracer, FollowsControlFlowAndBudget)
{
    Assembler as(codeBase);
    as.ldi(1, 1000000);
    as.label("loop");
    as.subi(1, 1, 1);
    as.bgt(1, "loop");
    as.halt();
    Program prog;
    prog.addSection(as.finish());

    arch::MemoryImage mem;
    std::uint64_t count = 0;
    auto res = arch::trace(prog, codeBase, mem, 5000,
                           [&](const arch::TraceEvent &) { ++count; });
    EXPECT_EQ(res.count, 5000u);  // budget, not completion
    EXPECT_EQ(res.reason, arch::TraceStop::MaxInsts);
    EXPECT_EQ(count, res.count);
}

namespace
{

/** A chase kernel with a known minimal slice. */
struct Kernel
{
    Program prog;
    Addr entry;
    Addr branchPc;
    Addr depPc[3];    // the instructions the branch depends on
    Addr fillerPc;    // an instruction NOT in the slice
};

Kernel
makeKernel()
{
    Kernel k;
    Assembler as(codeBase);
    as.label("start");
    as.ldi64(30, dataBase);
    as.ldq(20, 30, 0);
    as.ldi(2, 500);
    as.label("loop");
    // Filler the slice must exclude.
    k.fillerPc = as.here();
    as.addi(9, 9, 7);
    as.slli(10, 9, 2);
    as.xor_(9, 9, 10);
    // The dependence chain of the branch.
    k.depPc[0] = as.here();
    as.ldq(15, 20, 8);      // val = node->val
    k.depPc[1] = as.here();
    as.andi(16, 15, 1);
    k.depPc[2] = as.here();
    as.ldq(20, 20, 0);      // advance (feeds the *next* iteration)
    k.branchPc = as.here();
    as.beq(16, "skip");
    as.addi(25, 25, 1);
    as.label("skip");
    as.subi(2, 2, 1);
    as.bgt(2, "loop");
    as.halt();
    k.prog.addSection(as.finish());
    k.entry = codeBase;
    return k;
}

void
initRing(arch::MemoryImage &mem, unsigned nodes)
{
    Addr first = dataBase + 0x100;
    mem.writeQ(dataBase, first);
    Addr prev = first;
    for (unsigned i = 1; i <= nodes; ++i) {
        Addr node = (i == nodes) ? first : first + i * 64;
        mem.writeQ(prev + 8, i * 7);
        mem.writeQ(prev + 0, node);
        prev = node;
    }
}

} // namespace

TEST(Autoslice, BackwardSliceSelectsDependencesOnly)
{
    Kernel k = makeKernel();
    arch::MemoryImage mem;
    initRing(mem, 64);

    autoslice::AnalyzerOptions opts;
    opts.traceInsts = 6'000;
    opts.windowInsts = 64;
    auto a = autoslice::analyzeProblemInstruction(
        k.prog, k.entry, mem, k.branchPc, opts);

    ASSERT_GT(a.instancesAnalyzed, 50u);
    // The chain instructions are in the static slice...
    EXPECT_TRUE(a.staticSlice.count(k.depPc[0]));
    EXPECT_TRUE(a.staticSlice.count(k.depPc[1]));
    EXPECT_TRUE(a.staticSlice.count(k.depPc[2]));
    // ...and the filler is not.
    EXPECT_FALSE(a.staticSlice.count(k.fillerPc));
    // The slice is a small fraction of the window (the paper's core
    // observation about slices).
    EXPECT_LT(a.sliceDensity(), 0.5);
    EXPECT_GT(a.avgDynamicSliceLength, 1.0);
}

TEST(Autoslice, MemoryDependencesFollowStores)
{
    // val is stored to memory and reloaded; with memory following the
    // producer of the stored value must appear in the slice.
    Assembler as(codeBase);
    as.label("start");
    as.ldi64(30, dataBase);
    as.ldi(2, 200);
    as.label("loop");
    Addr producer = as.here();
    as.addi(5, 5, 3);          // produces the value
    as.stq(5, 30, 64);         // spill
    as.addi(9, 9, 1);          // unrelated
    as.ldq(6, 30, 64);         // reload
    as.andi(7, 6, 1);
    Addr branch = as.here();
    as.beq(7, "skip");
    as.addi(25, 25, 1);
    as.label("skip");
    as.subi(2, 2, 1);
    as.bgt(2, "loop");
    as.halt();
    Program prog;
    prog.addSection(as.finish());

    arch::MemoryImage mem;
    autoslice::AnalyzerOptions opts;
    opts.traceInsts = 3'000;
    opts.windowInsts = 32;
    auto with_mem = autoslice::analyzeProblemInstruction(
        prog, codeBase, mem, branch, opts);
    EXPECT_TRUE(with_mem.staticSlice.count(producer));

    arch::MemoryImage mem2;
    opts.followMemory = false;
    auto without = autoslice::analyzeProblemInstruction(
        prog, codeBase, mem2, branch, opts);
    EXPECT_FALSE(without.staticSlice.count(producer));
}

TEST(Autoslice, ForkCandidatesReportLiveIns)
{
    Kernel k = makeKernel();
    arch::MemoryImage mem;
    initRing(mem, 64);

    autoslice::AnalyzerOptions opts;
    opts.traceInsts = 6'000;
    opts.windowInsts = 64;
    auto a = autoslice::analyzeProblemInstruction(
        k.prog, k.entry, mem, k.branchPc, opts);

    ASSERT_FALSE(a.forkCandidates.empty());
    for (const auto &fc : a.forkCandidates) {
        // Path lengths vary (the skip branch), so a fixed dynamic
        // distance maps to a couple of PCs — the reason real fork
        // points are placed at control-equivalent spots. Still, a
        // dominant candidate exists and the live-in set stays small
        // (Section 3.2: "rarely are more than 4 values required").
        EXPECT_GE(fc.instancesAgreeing, a.instancesAnalyzed / 3);
        EXPECT_LE(fc.liveIns.size(), 5u);
    }
    // Hoisting further can only grow the within-distance slice.
    for (std::size_t i = 1; i < a.forkCandidates.size(); ++i)
        EXPECT_GE(a.forkCandidates[i].avgDynamicSliceLength + 1e-9,
                  a.forkCandidates[i - 1].avgDynamicSliceLength);
}

TEST(Autoslice, VprAnalysisMatchesHandSlice)
{
    // The analyzer, pointed at vpr's problem branch, should find a
    // slice shaped like the hand-built Figure 5 one: small density
    // and the heap-walk instructions included.
    workloads::Params p;
    p.scale = 120'000;
    auto wl = workloads::buildVpr(p);
    arch::MemoryImage mem;
    wl.initMemory(mem);

    Addr branch = wl.program.symbol("problem_branch");
    autoslice::AnalyzerOptions opts;
    opts.traceInsts = 100'000;
    auto a = autoslice::analyzeProblemInstruction(
        wl.program, wl.entry, mem, branch, opts);

    ASSERT_GT(a.instancesAnalyzed, 100u);
    // Figure 5's key members: the cost load and the heap[ito] load.
    Addr loop = wl.program.symbol("heap_loop");
    EXPECT_TRUE(a.staticSlice.count(loop + 5 * instBytes))
        << "heap[ito] load missing from the automatic slice";
    EXPECT_TRUE(a.staticSlice.count(loop + 9 * instBytes))
        << "heap[ito]->cost load missing from the automatic slice";
    // Slices are a small part of the program (Section 3.1).
    EXPECT_LT(a.sliceDensity(), 0.35);
    // The report renders without blowing up.
    EXPECT_FALSE(a.report(wl.program).empty());
}
