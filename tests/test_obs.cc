/**
 * @file
 * Observability subsystem tests: trace flag plumbing, the correlator
 * slot lifecycle invariant on the structured event stream, interval
 * time-series accounting (window deltas summing to the final
 * counters, including across StatGroup::reset()), determinism of
 * trace/interval output across job-pool worker counts, Chrome-trace
 * emission, and the bounded event ring.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "obs/events.hh"
#include "obs/interval.hh"
#include "obs/trace.hh"
#include "obs/trace_merge.hh"
#include "sim/job_pool.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

workloads::Params
smallParams()
{
    workloads::Params p;
    p.scale = 150'000;
    return p;
}

core::RunOptions
runOpts(std::uint64_t n = 60'000)
{
    core::RunOptions o;
    o.maxMainInstructions = n;
    o.warmupInstructions = 20'000;
    return o;
}

/** RAII: disarm every trace flag and detach the collector on exit. */
struct TraceGuard
{
    ~TraceGuard()
    {
        obs::TraceSink::instance().setCollector(nullptr);
        obs::TraceSink::instance().disableAll();
    }
};

} // namespace

// ---------------------------------------------------------------
// Trace flags
// ---------------------------------------------------------------

TEST(TraceSink, FlagParsingAndMask)
{
    TraceGuard guard;
    auto &sink = obs::TraceSink::instance();

    sink.disableAll();
    EXPECT_FALSE(obs::traceEnabled(obs::TraceFlag::Corr));

    sink.setFlags("corr,slice");
    EXPECT_TRUE(obs::traceEnabled(obs::TraceFlag::Corr));
    EXPECT_TRUE(obs::traceEnabled(obs::TraceFlag::Slice));
    EXPECT_FALSE(obs::traceEnabled(obs::TraceFlag::Fetch));
    EXPECT_FALSE(obs::traceEnabled(obs::TraceFlag::Mem));

    sink.disable(obs::TraceFlag::Corr);
    EXPECT_FALSE(obs::traceEnabled(obs::TraceFlag::Corr));
    EXPECT_TRUE(obs::traceEnabled(obs::TraceFlag::Slice));

    sink.disableAll();
    sink.setFlags("all");
    for (unsigned f = 0;
         f < static_cast<unsigned>(obs::TraceFlag::NumFlags); ++f)
        EXPECT_TRUE(
            obs::traceEnabled(static_cast<obs::TraceFlag>(f)));
}

TEST(TraceSink, CollectorReceivesPrefixedLines)
{
#ifdef SS_TRACE_DISABLED
    GTEST_SKIP() << "SS_DTRACE compiled out in this build";
#endif
    TraceGuard guard;
    auto &sink = obs::TraceSink::instance();
    std::string lines;
    sink.setCollector(&lines);
    sink.setFlags("pred");

    SS_DTRACE(Pred, "hello x=", 42);
    SS_DTRACE(Corr, "must not appear");  // flag off

    EXPECT_NE(lines.find("[trace:pred] hello x=42\n"),
              std::string::npos);
    EXPECT_EQ(lines.find("must not appear"), std::string::npos);
}

// ---------------------------------------------------------------
// Correlator slot lifecycle on the event stream (vpr, corr tracing)
// ---------------------------------------------------------------

TEST(CorrelatorEvents, EveryBoundSlotHasCreateAndOneTerminal)
{
    TraceGuard guard;
    obs::TraceSink::instance().setFlags("corr");
    std::string trace_lines;
    obs::TraceSink::instance().setCollector(&trace_lines);

    auto wl = workloads::buildVpr(smallParams());
    sim::Simulator simr(sim::MachineConfig::fourWide());
    obs::EventBuffer events(1u << 20);

    auto opts = runOpts();
    opts.events = &events;
    auto res = simr.run(wl, opts, true);
    ASSERT_GT(res.forks, 0u) << "no slices forked; nothing to check";
    ASSERT_EQ(events.dropped(), 0u) << "ring too small for this run";

    // corr tracing must actually have fired alongside the events
    // (unless trace points are compiled out of this build).
#ifndef SS_TRACE_DISABLED
    EXPECT_NE(trace_lines.find("[trace:corr] "), std::string::npos);
#endif

    // Replay the stream per slot token: a slot must be created before
    // it binds, and exactly one terminal (used/killed) must close it.
    std::set<std::uint64_t> created;
    std::set<std::uint64_t> bound;
    std::map<std::uint64_t, int> terminals;
    std::size_t n_bound_events = 0;
    events.forEach([&](const obs::TraceEvent &e) {
        switch (e.kind) {
          case obs::EventKind::CorrPredCreate:
            EXPECT_TRUE(created.insert(e.arg).second)
                << "token " << e.arg << " created twice";
            break;
          case obs::EventKind::CorrPredBound:
            ++n_bound_events;
            EXPECT_TRUE(created.count(e.arg))
                << "token " << e.arg << " bound before create";
            EXPECT_EQ(terminals.count(e.arg), 0u)
                << "token " << e.arg << " bound after its terminal";
            EXPECT_TRUE(bound.insert(e.arg).second)
                << "token " << e.arg << " bound twice";
            break;
          case obs::EventKind::CorrPredUsed:
          case obs::EventKind::CorrPredKilled:
            EXPECT_TRUE(created.count(e.arg))
                << "terminal for unknown token " << e.arg;
            ++terminals[e.arg];
            break;
          default:
            break;
        }
    });

    ASSERT_GT(n_bound_events, 0u) << "vpr run produced no bindings";

    // Exactly one terminal per created slot, of the right kind.
    for (std::uint64_t tok : created) {
        auto it = terminals.find(tok);
        ASSERT_NE(it, terminals.end())
            << "token " << tok << " never closed";
        EXPECT_EQ(it->second, 1)
            << "token " << tok << " closed " << it->second
            << " times";
    }
    for (const auto &[tok, n] : terminals)
        EXPECT_TRUE(created.count(tok));

    // A bound slot must terminate as Used, an unbound one as Killed.
    events.forEach([&](const obs::TraceEvent &e) {
        if (e.kind == obs::EventKind::CorrPredUsed)
            EXPECT_TRUE(bound.count(e.arg))
                << "unbound token " << e.arg << " closed as used";
        if (e.kind == obs::EventKind::CorrPredKilled)
            EXPECT_FALSE(bound.count(e.arg))
                << "bound token " << e.arg << " closed as killed";
    });
}

// ---------------------------------------------------------------
// Interval accounting
// ---------------------------------------------------------------

TEST(IntervalStats, SnapshotDeltaAccumulatesAndClampsAcrossReset)
{
    StatGroup g("ivtest");
    auto &a = g.scalar("a");
    auto &b = g.scalar("b");

    StatGroup::Snapshot base = g.snapshot();
    a += 5;
    b += 2;
    auto d1 = g.snapshotDelta(base);
    EXPECT_EQ(d1.at("a"), 5u);
    EXPECT_EQ(d1.at("b"), 2u);

    a += 3;
    auto d2 = g.snapshotDelta(base);
    EXPECT_EQ(d2.at("a"), 3u);
    EXPECT_EQ(d2.at("b"), 0u);

    // Reset between snapshots: the delta clamps to "count from zero"
    // rather than underflowing, so deltas taken after a reset sum to
    // the final (post-reset) counter values.
    g.reset();
    a += 4;
    auto d3 = g.snapshotDelta(base);
    EXPECT_EQ(d3.at("a"), 4u);
    EXPECT_EQ(d3.at("b"), 0u);

    a += 1;
    auto d4 = g.snapshotDelta(base);
    EXPECT_EQ(d4.at("a"), 1u);

    EXPECT_EQ(d3.at("a") + d4.at("a"), a.value());
}

TEST(IntervalStats, WindowDeltasSumToFinalCounters)
{
    auto wl = workloads::buildVpr(smallParams());
    sim::Simulator simr(sim::MachineConfig::fourWide());

    auto opts = runOpts();
    opts.intervalCycles = 1'000;
    auto res = simr.run(wl, opts, true);

    ASSERT_GE(res.intervals.size(), 3u);

    std::uint64_t retired = 0, mispred = 0, branches = 0, forks = 0,
                  used = 0;
    for (std::size_t i = 0; i < res.intervals.size(); ++i) {
        const obs::IntervalRecord &r = res.intervals[i];
        EXPECT_EQ(r.index, i);
        EXPECT_LT(r.startCycle, r.endCycle);
        if (i)
            EXPECT_EQ(r.startCycle, res.intervals[i - 1].endCycle);
        retired += r.retired;
        mispred += r.mispredictions;
        branches += r.condBranches;
        forks += r.forks;
        used += r.predsUsed;
    }

    // The series covers exactly the measured region: windows tile it
    // and their deltas sum to the headline result counters.
    EXPECT_EQ(retired, res.mainRetired);
    EXPECT_EQ(mispred, res.mispredictions);
    EXPECT_EQ(branches, res.condBranches);
    EXPECT_EQ(forks, res.forks);
    EXPECT_EQ(used, res.correlatorUsed);
    EXPECT_EQ(res.intervals.back().endCycle -
                  res.intervals.front().startCycle,
              res.cycles);
}

// ---------------------------------------------------------------
// Determinism across worker counts
// ---------------------------------------------------------------

TEST(JobPoolObservability, OutputAndIntervalsIdenticalAcrossJobs)
{
    auto wl = workloads::buildVpr(smallParams());

    auto sweep = [&](unsigned jobs) {
        sim::JobPool pool(jobs);
        std::vector<int> items = {0, 1, 2, 3};
        testing::internal::CaptureStderr();
        auto results =
            pool.map(items, [&](int i) {
                SS_INFORM("job ", i, " starting");
                sim::Simulator m(sim::MachineConfig::fourWide());
                auto opts = runOpts(30'000);
                opts.intervalCycles = 2'000;
                auto r = m.run(wl, opts, true);
                SS_INFORM("job ", i, " cycles=", r.cycles);
                std::ostringstream csv;
                obs::writeIntervalsCsv(csv, r.intervals);
                return csv.str();
            });
        return std::make_pair(testing::internal::GetCapturedStderr(),
                              results);
    };

    auto [log1, iv1] = sweep(1);
    auto [log4, iv4] = sweep(4);

    // Per-job "[jN]"-prefixed lines flushed in submission order make
    // the log byte-identical regardless of worker count...
    EXPECT_EQ(log1, log4);
    EXPECT_NE(log1.find("[j0] info: job 0 starting"),
              std::string::npos);
    EXPECT_NE(log1.find("[j3] info: job 3"), std::string::npos);
    EXPECT_LT(log1.find("[j1] "), log1.find("[j2] "));

    // ...and the interval CSVs are bytewise equal too.
    ASSERT_EQ(iv1.size(), iv4.size());
    for (std::size_t i = 0; i < iv1.size(); ++i)
        EXPECT_EQ(iv1[i], iv4[i]) << "intervals differ for job " << i;
}

// ---------------------------------------------------------------
// Chrome trace emission and the bounded ring
// ---------------------------------------------------------------

TEST(EventBuffer, ChromeTraceIsWellFormed)
{
    obs::EventBuffer events(64);
    events.setNow(10);
    events.push(obs::EventKind::Fetch, 0, 0x1000, 1);
    events.setNow(12);
    events.push(obs::EventKind::SliceFork, 1, 0x8000, 2, 7);
    events.push(obs::EventKind::CorrPredCreate, 1, 0x8000, 3, 42);
    events.setNow(20);
    events.push(obs::EventKind::CorrPredUsed, 0, 0x1040, 9, 42);

    std::ostringstream os;
    events.writeChromeTrace(os);
    const std::string json = os.str();

    // Shape: a single object wrapping "traceEvents"; braces/brackets
    // balance; every emitted kind appears with its track metadata.
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"slice.fork\""), std::string::npos);
    EXPECT_NE(json.find("\"corr.used\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 12"), std::string::npos);
    EXPECT_EQ(json.find("droppedEvents"), std::string::npos);
}

TEST(EventBuffer, RingBoundsAndOldestFirstDrain)
{
    obs::EventBuffer events(4);
    events.setNow(1);
    for (std::uint64_t i = 0; i < 10; ++i)
        events.push(obs::EventKind::Retire, 0, 0x1000 + i * 4, i, i);

    EXPECT_EQ(events.capacity(), 4u);
    EXPECT_EQ(events.size(), 4u);
    EXPECT_EQ(events.dropped(), 6u);

    std::vector<std::uint64_t> seen;
    events.forEach(
        [&](const obs::TraceEvent &e) { seen.push_back(e.arg); });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{6, 7, 8, 9}));

    std::ostringstream os;
    events.writeChromeTrace(os);
    EXPECT_NE(os.str().find("droppedEvents"), std::string::npos);

    events.clear();
    EXPECT_EQ(events.size(), 0u);
    EXPECT_EQ(events.dropped(), 0u);
}

TEST(EventBuffer, WraparoundKeepsNewestAndTimeBaseOffsets)
{
    // Spans and time-base offsets interact with the wraparound: the
    // ring must keep the newest (based) timestamps and drop count
    // must keep counting across clear-less reuse.
    obs::EventBuffer events(8);
    events.setTimeBase(1'000);
    events.setNow(0);
    for (std::uint64_t i = 0; i < 20; ++i) {
        events.setNow(i);
        events.push(obs::EventKind::Retire, 0, 0x1000, i, i);
    }
    EXPECT_EQ(events.size(), 8u);
    EXPECT_EQ(events.dropped(), 12u);

    std::vector<Cycle> ts;
    events.forEach(
        [&](const obs::TraceEvent &e) { ts.push_back(e.cycle); });
    ASSERT_EQ(ts.size(), 8u);
    // Newest 8 survive, each offset by the time base.
    EXPECT_EQ(ts.front(), 1'012u);
    EXPECT_EQ(ts.back(), 1'019u);
    for (std::size_t i = 1; i < ts.size(); ++i)
        EXPECT_EQ(ts[i], ts[i - 1] + 1);

    // A span pushed at an absolute timestamp also wraps the ring.
    events.pushSpan(obs::EventKind::Region, 5'000, 250, 0, 0x2000, 7,
                    3);
    EXPECT_EQ(events.dropped(), 13u);
    bool saw_span = false;
    events.forEach([&](const obs::TraceEvent &e) {
        if (e.kind == obs::EventKind::Region) {
            saw_span = true;
            EXPECT_EQ(e.cycle, 5'000u);
            EXPECT_EQ(e.dur, 250u);
            EXPECT_EQ(e.arg, 3u);
        }
    });
    EXPECT_TRUE(saw_span);
}

TEST(EventBuffer, ChromeTraceMetaStampsLaneAndRequestId)
{
    obs::EventBuffer events(64);
    events.setNow(4);
    events.push(obs::EventKind::Fetch, 0, 0x1000, 1);
    events.pushSpan(obs::EventKind::Region, 0, 900, 0, 0x1000, 0, 0);

    obs::ChromeTraceMeta meta;
    meta.pid = 7;
    meta.processName = "worker 7";
    meta.requestId = "r000042";
    std::ostringstream os;
    events.writeChromeTrace(os, meta);
    const std::string json = os.str();

    // Worker-lane identity on the process, the propagated request id
    // on every event, and the sampled region rendered as a named
    // span with its duration.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"worker 7\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"req\": \"r000042\""), std::string::npos);
    EXPECT_NE(json.find("\"region 0\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 900"), std::string::npos);

    // The default overload must stay byte-stable: no pid-7 lane, no
    // request-id args.
    std::ostringstream plain;
    events.writeChromeTrace(plain);
    EXPECT_EQ(plain.str().find("\"req\""), std::string::npos);
    EXPECT_EQ(plain.str().find("\"pid\": 7"), std::string::npos);
}

// ---------------------------------------------------------------
// Sampled runs: region spans and interval tiling
// ---------------------------------------------------------------

TEST(SimulatorTrace, SampledRunEmitsOneSpanPerRegion)
{
    workloads::Params p;
    p.scale = 400'000;
    auto wl = workloads::buildVpr(p);
    sim::Simulator simr(sim::MachineConfig::fourWide());

    obs::EventBuffer events(1u << 20);
    core::RunOptions opts;
    opts.maxMainInstructions = 10'000;
    opts.warmupInstructions = 4'000;
    opts.fastForwardInstructions = 20'000;
    opts.sampleRegions = 3;
    opts.sampleStride = 20'000;
    opts.events = &events;

    auto res = simr.run(wl, opts, true);
    ASSERT_EQ(res.sampledRegions, 3u);
    ASSERT_EQ(events.dropped(), 0u) << "ring too small for this run";

    // One named span per region; spans are ordered, non-overlapping,
    // tagged with the region index and the sampling-stream position
    // the region started at.
    std::vector<obs::TraceEvent> spans;
    events.forEach([&](const obs::TraceEvent &e) {
        if (e.kind == obs::EventKind::Region)
            spans.push_back(e);
    });
    ASSERT_EQ(spans.size(), 3u);
    for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].arg, i);
        EXPECT_GE(spans[i].dur, 1u);
        if (i) {
            EXPECT_GE(spans[i].cycle,
                      spans[i - 1].cycle + spans[i - 1].dur);
            EXPECT_GT(spans[i].seq, spans[i - 1].seq);
        }
    }
    EXPECT_EQ(spans[0].seq, 20'000u);
    EXPECT_EQ(spans[1].seq, 40'000u);

    // The buffer's time base ends past the last span, so a follow-on
    // run appended by the serve path cannot overlap this timeline.
    EXPECT_GT(events.timeBase(), spans.back().cycle);
}

TEST(IntervalStats, WindowDeltasTileSampledRegions)
{
    workloads::Params p;
    p.scale = 400'000;
    auto wl = workloads::buildVpr(p);
    sim::Simulator simr(sim::MachineConfig::fourWide());

    core::RunOptions opts;
    opts.maxMainInstructions = 10'000;
    opts.warmupInstructions = 4'000;
    opts.fastForwardInstructions = 20'000;
    opts.sampleRegions = 3;
    opts.sampleStride = 20'000;
    opts.intervalCycles = 1'000;

    auto res = simr.run(wl, opts, true);
    ASSERT_EQ(res.sampledRegions, 3u);
    ASSERT_GE(res.intervals.size(), 3u);

    // Region series are concatenated and each region restarts its
    // window index at 0; within a region, windows tile (each starts
    // where the previous ended).
    std::size_t region_starts = 0;
    std::uint64_t retired = 0;
    for (std::size_t i = 0; i < res.intervals.size(); ++i) {
        const obs::IntervalRecord &r = res.intervals[i];
        EXPECT_LT(r.startCycle, r.endCycle);
        if (r.index == 0) {
            ++region_starts;
        } else {
            ASSERT_GT(i, 0u);
            EXPECT_EQ(r.index, res.intervals[i - 1].index + 1);
            EXPECT_EQ(r.startCycle, res.intervals[i - 1].endCycle);
        }
        retired += r.retired;
    }
    EXPECT_EQ(region_starts, 3u);

    // The concatenated windows cover exactly the measured regions:
    // their deltas sum to the aggregated headline counter.
    EXPECT_EQ(retired, res.mainRetired);
}

// ---------------------------------------------------------------
// Cross-process trace merging
// ---------------------------------------------------------------

TEST(TraceMerge, StitchesFragmentsWithLaneOffsetsAndDedup)
{
    // Three fragments: two from worker lane 1 (back-to-back requests)
    // and one from lane 2. The merger must shift the second lane-1
    // fragment past the first, keep lane metadata deduplicated, and
    // leave the per-event request ids intact.
    auto writeFragment = [](const std::string &path, unsigned lane,
                            const std::string &req, Cycle last_ts) {
        obs::EventBuffer ev(64);
        ev.setNow(2);
        ev.push(obs::EventKind::Fetch, 0, 0x1000, 1);
        ev.setNow(last_ts);
        ev.push(obs::EventKind::Retire, 0, 0x1004, 2);
        obs::ChromeTraceMeta meta;
        meta.pid = lane;
        meta.processName = "worker " + std::to_string(lane);
        meta.requestId = req;
        std::ofstream os(path);
        ev.writeChromeTrace(os, meta);
    };

    const std::string fa = "merge_test_frag_a.json";
    const std::string fb = "merge_test_frag_b.json";
    const std::string fc = "merge_test_frag_c.json";
    writeFragment(fa, 1, "r000001", 50);
    writeFragment(fb, 1, "r000002", 40);
    writeFragment(fc, 2, "r000003", 30);

    std::ostringstream merged;
    std::string error;
    obs::MergeStats stats;
    ASSERT_TRUE(obs::mergeChromeTraces({fa, fb, fc}, merged, error,
                                       &stats))
        << error;
    std::remove(fa.c_str());
    std::remove(fb.c_str());
    std::remove(fc.c_str());

    EXPECT_EQ(stats.fragments, 3u);
    EXPECT_EQ(stats.lanes, 2u);
    EXPECT_EQ(stats.events, 6u);

    const std::string json = merged.str();
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

    // Lane metadata appears once per lane despite lane 1 sending two
    // fragments.
    std::size_t w1 = 0, pos = 0;
    while ((pos = json.find("\"worker 1\"", pos)) !=
           std::string::npos) {
        ++w1;
        pos += 10;
    }
    EXPECT_EQ(w1, 1u);
    EXPECT_NE(json.find("\"worker 2\""), std::string::npos);

    // Per-event request ids pass through untouched.
    for (const char *req : {"r000001", "r000002", "r000003"})
        EXPECT_NE(json.find(std::string("\"req\": \"") + req + "\""),
                  std::string::npos)
            << req;

    // Scan events per line: lane-1 timestamps stay monotonic across
    // the fragment boundary (fragment B shifted past fragment A),
    // and lane 2 restarts its own frontier near zero.
    std::istringstream lines(json);
    std::string line;
    std::uint64_t last_lane1 = 0, max_lane1_reqA = 0;
    bool saw_reqB = false;
    while (std::getline(lines, line)) {
        if (line.find("\"ph\": \"X\"") == std::string::npos)
            continue;
        std::size_t tsp = line.find("\"ts\": ");
        ASSERT_NE(tsp, std::string::npos);
        const std::uint64_t ts =
            std::strtoull(line.c_str() + tsp + 6, nullptr, 10);
        if (line.find("\"pid\": 1") != std::string::npos) {
            EXPECT_GE(ts, last_lane1);
            last_lane1 = ts;
            if (line.find("r000001") != std::string::npos)
                max_lane1_reqA = std::max(max_lane1_reqA, ts);
            if (line.find("r000002") != std::string::npos) {
                saw_reqB = true;
                EXPECT_GT(ts, max_lane1_reqA);
            }
        }
    }
    EXPECT_TRUE(saw_reqB);
    EXPECT_GE(last_lane1, 50u + 40u);
}
