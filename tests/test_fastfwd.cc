/**
 * @file
 * Fast-forward engine tests: the pre-decoded interpreter must be
 * bit-identical to the reference tracer on every workload (count, PC,
 * registers, memory contents), report the same stop reasons, honor
 * absolute positioning (advanceTo), keep sticky stops sticky, and
 * record branch/memory warmth for region warm-up replay.
 */

#include <gtest/gtest.h>

#include "arch/fastfwd.hh"
#include "arch/memimg.hh"
#include "arch/tracer.hh"
#include "isa/assembler.hh"
#include "isa/program.hh"
#include "sim/workload.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

constexpr Addr codeBase = 0x10000;

workloads::Params
smallParams()
{
    workloads::Params p;
    p.scale = 200'000;
    return p;
}

/** The tracer-side reference state after max_insts instructions. */
struct Reference
{
    arch::TraceResult result;
    arch::RegFile regs;
    arch::MemoryImage mem;
};

Reference
traceReference(const sim::Workload &wl, std::uint64_t max_insts)
{
    Reference ref;
    if (wl.initMemory)
        wl.initMemory(ref.mem);
    ref.result = arch::trace(wl.program, wl.entry, ref.regs, ref.mem,
                             max_insts,
                             [](const arch::TraceEvent &) {});
    return ref;
}

arch::FfStop
expectedStop(arch::TraceStop reason)
{
    switch (reason) {
      case arch::TraceStop::MaxInsts:
        return arch::FfStop::Budget;
      case arch::TraceStop::Halted:
        return arch::FfStop::Halted;
      case arch::TraceStop::Fault:
        return arch::FfStop::Fault;
      case arch::TraceStop::UnmappedPc:
        return arch::FfStop::UnmappedPc;
    }
    return arch::FfStop::Budget;
}

} // namespace

class FastForwardSuite : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FastForwardSuite, BitIdenticalToTracer)
{
    auto wl = workloads::buildWorkload(GetParam(), smallParams());
    constexpr std::uint64_t budget = 150'000;
    Reference ref = traceReference(wl, budget);

    arch::FastForward ff(wl.program);
    ff.reset(wl.entry);
    if (wl.initMemory)
        wl.initMemory(ff.mem());
    arch::FfStop stop = ff.advance(budget);

    EXPECT_EQ(stop, expectedStop(ref.result.reason));
    EXPECT_EQ(ff.executed(), ref.result.count);
    EXPECT_EQ(ff.pc(), ref.result.finalPc);
    for (unsigned r = 0; r < isa::numRegs; ++r)
        ASSERT_EQ(ff.regs().read(static_cast<RegIndex>(r)),
                  ref.regs.read(static_cast<RegIndex>(r)))
            << "register " << r << " diverged on " << GetParam();
    EXPECT_EQ(ff.mem().contentHash(), ref.mem.contentHash())
        << "memory diverged on " << GetParam();
}

TEST_P(FastForwardSuite, ChunkedAdvanceMatchesOneShot)
{
    // Advancing in uneven chunks must land on the identical state:
    // the budget boundary is not allowed to influence execution.
    auto wl = workloads::buildWorkload(GetParam(), smallParams());
    constexpr std::uint64_t budget = 60'000;

    arch::FastForward oneshot(wl.program);
    oneshot.reset(wl.entry);
    if (wl.initMemory)
        wl.initMemory(oneshot.mem());
    oneshot.advance(budget);

    arch::FastForward chunked(wl.program);
    chunked.reset(wl.entry);
    if (wl.initMemory)
        wl.initMemory(chunked.mem());
    for (std::uint64_t step : {1ull, 7ull, 1000ull, 58'992ull})
        chunked.advance(step);

    EXPECT_EQ(chunked.executed(), oneshot.executed());
    EXPECT_EQ(chunked.pc(), oneshot.pc());
    EXPECT_EQ(chunked.mem().contentHash(), oneshot.mem().contentHash());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, FastForwardSuite,
                         ::testing::Values("bzip2", "gcc", "mcf",
                                           "twolf", "vortex", "vpr"));

TEST(FastForwardTest, AdvanceToIsAbsolute)
{
    auto wl = workloads::buildWorkload("vpr", smallParams());
    arch::FastForward ff(wl.program);
    ff.reset(wl.entry);
    if (wl.initMemory)
        wl.initMemory(ff.mem());

    ff.advanceTo(10'000);
    EXPECT_EQ(ff.executed(), 10'000u);
    // Already past: no-op, never rewinds.
    ff.advanceTo(5'000);
    EXPECT_EQ(ff.executed(), 10'000u);
    ff.advanceTo(25'000);
    EXPECT_EQ(ff.executed(), 25'000u);
}

TEST(FastForwardTest, HaltIsSticky)
{
    isa::Assembler as(codeBase);
    as.ldi(1, 3);
    as.halt();
    isa::Program prog;
    prog.addSection(as.finish());

    arch::FastForward ff(prog);
    ff.reset(codeBase);
    EXPECT_EQ(ff.advance(100), arch::FfStop::Halted);
    EXPECT_EQ(ff.executed(), 2u);
    EXPECT_FALSE(ff.runnable());
    // Further advances return the same stop without executing.
    EXPECT_EQ(ff.advance(100), arch::FfStop::Halted);
    EXPECT_EQ(ff.executed(), 2u);
    EXPECT_EQ(ff.advanceTo(50), arch::FfStop::Halted);
    EXPECT_EQ(ff.executed(), 2u);
}

TEST(FastForwardTest, NullLoadFaults)
{
    isa::Assembler as(codeBase);
    as.ldi(1, 0);
    as.ldq(2, 1, 0);  // load from the null page
    as.halt();
    isa::Program prog;
    prog.addSection(as.finish());

    arch::FastForward ff(prog);
    ff.reset(codeBase);
    EXPECT_EQ(ff.advance(100), arch::FfStop::Fault);
    EXPECT_EQ(ff.pc(), codeBase + isa::instBytes)
        << "fault must report the faulting instruction's PC";
    EXPECT_FALSE(ff.runnable());
}

TEST(FastForwardTest, UnmappedPcStops)
{
    isa::Assembler as(codeBase);
    as.ldi(1, 1);
    // Falls off the end of the section (no halt).
    isa::Program prog;
    prog.addSection(as.finish());

    arch::FastForward ff(prog);
    ff.reset(codeBase);
    EXPECT_EQ(ff.advance(100), arch::FfStop::UnmappedPc);
    EXPECT_EQ(ff.executed(), 1u);
}

TEST(FastForwardTest, StopNamesAreStable)
{
    EXPECT_STREQ(arch::ffStopName(arch::FfStop::Budget), "budget");
    EXPECT_STREQ(arch::ffStopName(arch::FfStop::Halted), "halted");
    EXPECT_STREQ(arch::ffStopName(arch::FfStop::Fault), "fault");
    EXPECT_STREQ(arch::ffStopName(arch::FfStop::UnmappedPc),
                 "unmapped_pc");
}

TEST(FastForwardTest, RecordsBranchAndMemoryWarmth)
{
    auto wl = workloads::buildWorkload("twolf", smallParams());
    arch::FastForward ff(wl.program);
    ff.reset(wl.entry);
    if (wl.initMemory)
        wl.initMemory(ff.mem());
    ff.advance(50'000);

    auto branches = ff.warmth();
    EXPECT_FALSE(branches.empty());
    EXPECT_LE(branches.size(), arch::FastForward::warmthDepth);

    auto mem = ff.memWarmth();
    EXPECT_FALSE(mem.empty());
    EXPECT_LE(mem.size(), arch::FastForward::memWarmthDepth);
    bool saw_load = false, saw_store = false;
    for (const auto &m : mem) {
        EXPECT_NE(m.addr, 0u) << "null accesses cannot be warmth";
        (m.isStore ? saw_store : saw_load) = true;
    }
    EXPECT_TRUE(saw_load);
    EXPECT_TRUE(saw_store);

    // reset() must drop both logs.
    ff.reset(wl.entry);
    EXPECT_TRUE(ff.warmth().empty());
    EXPECT_TRUE(ff.memWarmth().empty());
}

TEST(FastForwardTest, RecordsInstructionLineWarmth)
{
    auto wl = workloads::buildWorkload("twolf", smallParams());
    arch::FastForward ff(wl.program);
    ff.reset(wl.entry);
    if (wl.initMemory)
        wl.initMemory(ff.mem());
    ff.advance(50'000);

    // The instruction-line ring holds the most recent fetch PCs —
    // non-empty, bounded, and every entry decodes (it was executed).
    auto lines = ff.instWarmth();
    EXPECT_FALSE(lines.empty());
    EXPECT_LE(lines.size(), arch::FastForward::instWarmthDepth);
    for (Addr pc : lines)
        EXPECT_NE(pc, 0u);
    // The stop PC's neighborhood was executed most recently, so the
    // final executed PC must be among the recorded lines.
    // (ff.pc() is the NEXT pc; the ring holds executed ones, of which
    // there were 50k — far more than the ring depth — so the ring is
    // exactly full.)
    EXPECT_EQ(lines.size(), arch::FastForward::instWarmthDepth);

    // Determinism: a second engine over the same program and budget
    // records the identical sequence.
    arch::FastForward again(wl.program);
    again.reset(wl.entry);
    if (wl.initMemory)
        wl.initMemory(again.mem());
    again.advance(50'000);
    EXPECT_EQ(again.instWarmth(), lines);

    // reset() drops the ring like the other warmth logs.
    ff.reset(wl.entry);
    EXPECT_TRUE(ff.instWarmth().empty());
}
