/**
 * @file
 * Prediction-correlator tests (Section 5): the Figure 9(b) scenario
 * step by step, loop-iteration and slice kills, the skip-first rule,
 * VN#-based mis-speculation recovery, late predictions and their
 * consumers, queue overflow, dead entries, and capacity management.
 */

#include <gtest/gtest.h>

#include "slice/correlator.hh"
#include "slice/slice_table.hh"

using namespace specslice;
using namespace specslice::slice;

namespace
{

constexpr Addr branchPc = 0x10100;   // problem branch (block D)
constexpr Addr loopPc = 0x10200;     // loop-iteration kill (block F)
constexpr Addr killPc = 0x10300;     // slice kill (block G)
constexpr Addr slicePgiPc = 0x8000;

SliceDescriptor
makeSlice(bool skip_first = false)
{
    SliceDescriptor sd;
    sd.name = "test";
    sd.forkPc = 0x10000;
    sd.slicePc = 0x8000;
    PgiSpec pgi;
    pgi.sliceInstPc = slicePgiPc;
    pgi.problemBranchPc = branchPc;
    pgi.loopKillPc = loopPc;
    pgi.sliceKillPc = killPc;
    pgi.loopKillSkipFirst = skip_first;
    sd.pgis = {pgi};
    return sd;
}

} // namespace

/**
 * Figure 9(b), transliterated. The slice guesses the loop runs three
 * times and generates predictions P1..P3. The path taken is
 * A B C F B C D F B G:
 *  - iteration 1: block D is *not* executed; F kills P1;
 *  - iteration 2: D executes and must match P2 (not P1!); F kills P2;
 *  - loop exit (G): remaining predictions killed.
 */
TEST(CorrelatorFigure9, ConditionallyExecutedBranch)
{
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, /*fork_seq=*/100);

    // Slice generates three predictions: T, NT, T.
    auto t1 = c.onPgiFetch(sd.pgis[0], 100, 1001);
    auto t2 = c.onPgiFetch(sd.pgis[0], 100, 1002);
    auto t3 = c.onPgiFetch(sd.pgis[0], 100, 1003);
    ASSERT_NE(t1, 0u);
    c.onPgiExecute(t1, true);
    c.onPgiExecute(t2, false);
    c.onPgiExecute(t3, true);

    // Iteration 1: D not fetched; F kills P1.
    c.onKillFetch(loopPc, 200);

    // Iteration 2: D fetched; must see P2 (direction NT).
    auto m = c.onBranchFetch(branchPc, 210, true);
    ASSERT_TRUE(m.matched);
    EXPECT_EQ(m.overrideDir, 0);  // P2 = not-taken
    c.onKillFetch(loopPc, 220);   // F kills P2.

    // Loop exits: G kills the rest; another D would find nothing.
    c.onKillFetch(killPc, 230);
    auto m2 = c.onBranchFetch(branchPc, 240, true);
    EXPECT_FALSE(m2.matched);
}

TEST(CorrelatorTest, MisSpeculationRecoveryRestoresKills)
{
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, 100);
    auto t1 = c.onPgiFetch(sd.pgis[0], 100, 1001);
    c.onPgiExecute(t1, true);

    // A wrong-path kill at VN# 500...
    c.onKillFetch(loopPc, 500);
    EXPECT_FALSE(c.onBranchFetch(branchPc, 510, false).matched);

    // ...is undone when the squash discards VN#s > 490.
    c.squashMain(490);
    auto m = c.onBranchFetch(branchPc, 520, false);
    ASSERT_TRUE(m.matched);
    EXPECT_EQ(m.overrideDir, 1);
}

TEST(CorrelatorTest, SquashRemovesSpeculativeForks)
{
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, 100);   // older fork
    c.onFork(sd, 2, 600);   // fork on (what turns out to be) wrong path
    EXPECT_EQ(c.liveEntries(), 2u);
    c.squashMain(550);
    EXPECT_EQ(c.liveEntries(), 1u);
}

TEST(CorrelatorTest, SkipFirstLoopKill)
{
    // When the loop-kill block is the back-edge target, its first
    // instance precedes the first branch instance and must not kill.
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice(/*skip_first=*/true);
    c.onFork(sd, 1, 100);
    auto t1 = c.onPgiFetch(sd.pgis[0], 100, 1001);
    c.onPgiExecute(t1, true);

    c.onKillFetch(loopPc, 200);  // first instance: skipped
    auto m = c.onBranchFetch(branchPc, 210, false);
    ASSERT_TRUE(m.matched);
    EXPECT_EQ(m.overrideDir, 1);

    c.onKillFetch(loopPc, 220);  // second instance kills P1
    EXPECT_FALSE(c.onBranchFetch(branchPc, 230, false).matched);
}

TEST(CorrelatorTest, SkipFirstRestoredOnSquash)
{
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice(true);
    c.onFork(sd, 1, 100);
    auto t1 = c.onPgiFetch(sd.pgis[0], 100, 1001);
    c.onPgiExecute(t1, false);

    c.onKillFetch(loopPc, 500);  // consumed skip (wrong path)
    c.squashMain(400);           // squashed: skip restored
    c.onKillFetch(loopPc, 520);  // this is the real first instance
    auto m = c.onBranchFetch(branchPc, 530, true);
    EXPECT_TRUE(m.matched);      // prediction still alive
    EXPECT_EQ(m.overrideDir, 0);
}

TEST(CorrelatorTest, LatePredictionBindsConsumer)
{
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, 100);
    auto t1 = c.onPgiFetch(sd.pgis[0], 100, 1001);

    // Branch fetched before the PGI executes: Empty match, default
    // predictor used (direction false).
    auto m = c.onBranchFetch(branchPc, 300, false);
    EXPECT_TRUE(m.matched);
    EXPECT_EQ(m.overrideDir, -1);

    // PGI executes and disagrees -> reversal info surfaces.
    auto late = c.onPgiExecute(t1, true);
    ASSERT_TRUE(late.hasConsumer);
    EXPECT_EQ(late.consumerSeq, 300u);
    EXPECT_FALSE(late.usedDir);
    EXPECT_TRUE(late.computedDir);
}

TEST(CorrelatorTest, SquashedConsumerUnbinds)
{
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, 100);
    auto t1 = c.onPgiFetch(sd.pgis[0], 100, 1001);
    c.onBranchFetch(branchPc, 300, false);
    c.squashMain(250);  // branch squashed
    auto late = c.onPgiExecute(t1, true);
    EXPECT_FALSE(late.hasConsumer);
    // The now-Full prediction serves the refetched branch directly.
    auto m = c.onBranchFetch(branchPc, 310, false);
    EXPECT_EQ(m.overrideDir, 1);
}

TEST(CorrelatorTest, QueueOverflowStopsAllocating)
{
    PredictionCorrelator::Config cfg;
    cfg.predsPerBranch = 2;
    PredictionCorrelator c(cfg);
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, 100);
    EXPECT_NE(c.onPgiFetch(sd.pgis[0], 100, 1001), 0u);
    EXPECT_NE(c.onPgiFetch(sd.pgis[0], 100, 1002), 0u);
    // Third allocation drops, and the entry stays closed even after a
    // kill frees a slot (slot/instance alignment would be lost).
    EXPECT_EQ(c.onPgiFetch(sd.pgis[0], 100, 1003), 0u);
    c.onKillFetch(loopPc, 200);
    c.retireUpTo(300);
    EXPECT_EQ(c.onPgiFetch(sd.pgis[0], 100, 1004), 0u);
}

TEST(CorrelatorTest, OverflowStaysStickyAcrossSliceSquash)
{
    PredictionCorrelator::Config cfg;
    cfg.predsPerBranch = 2;
    PredictionCorrelator c(cfg);
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, 100);
    EXPECT_NE(c.onPgiFetch(sd.pgis[0], 100, 1001), 0u);
    EXPECT_NE(c.onPgiFetch(sd.pgis[0], 100, 1002), 0u);
    // Third prediction overflows: it corresponds to branch instance 3
    // but never got a slot.
    EXPECT_EQ(c.onPgiFetch(sd.pgis[0], 100, 1003), 0u);

    // A slice-local squash discards the (uncomputed) second slot. The
    // freed capacity must NOT reopen the entry: the next PGI the
    // re-fetched slice generates is for instance 2, but the correlator
    // cannot know whether the slice replays instance 2 or continues
    // from instance 4 — the slot/instance alignment is unrecoverable
    // once a prediction was dropped.
    c.squashSlice(100, 1001);
    EXPECT_EQ(c.onPgiFetch(sd.pgis[0], 100, 1004), 0u);

    // A main-thread squash of the fork itself frees the whole entry;
    // a fresh fork starts over with alignment intact and accepts
    // predictions again.
    c.squashMain(50);
    EXPECT_EQ(c.liveEntries(), 0u);
    c.onFork(sd, 1, 300);
    EXPECT_NE(c.onPgiFetch(sd.pgis[0], 300, 2001), 0u);
}

TEST(CorrelatorTest, DeadEntryRejectsLatePgiFetches)
{
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, 100);
    auto t1 = c.onPgiFetch(sd.pgis[0], 100, 1001);
    c.onPgiExecute(t1, true);

    // The main thread leaves the valid region: slice kill.
    c.onKillFetch(killPc, 400);
    // The slice is still running and generates more predictions; they
    // must not leak into the next dynamic instance.
    EXPECT_EQ(c.onPgiFetch(sd.pgis[0], 100, 1002), 0u);
    // A squash of the kill restores the entry.
    c.squashMain(350);
    EXPECT_NE(c.onPgiFetch(sd.pgis[0], 100, 1003), 0u);
}

TEST(CorrelatorTest, AllEntriesDeadRequiresRetiredKill)
{
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, 100);
    c.onPgiFetch(sd.pgis[0], 100, 1001);
    EXPECT_FALSE(c.allEntriesDead(100, 1000));
    c.onKillFetch(killPc, 400);
    EXPECT_FALSE(c.allEntriesDead(100, 399));  // kill speculative
    EXPECT_TRUE(c.allEntriesDead(100, 400));   // kill retired
}

TEST(CorrelatorTest, RetirementReclaimsSlotsAndEntries)
{
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, 100);
    auto t1 = c.onPgiFetch(sd.pgis[0], 100, 1001);
    c.onPgiExecute(t1, true);
    c.onKillFetch(killPc, 400);
    c.onSliceDone(100);
    EXPECT_EQ(c.liveEntries(), 1u);
    c.retireUpTo(500);
    EXPECT_EQ(c.liveEntries(), 0u);
}

TEST(CorrelatorTest, TwoForksMatchInForkOrder)
{
    // Two live forks whose entries share the branch PC but carry
    // distinct kill PCs (kills are CAMs: a shared kill PC would hit
    // both entries).
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    SliceDescriptor sd2 = makeSlice();
    sd2.forkPc += 8;
    sd2.pgis[0].loopKillPc = loopPc + 8;
    c.onFork(sd, 1, 100);
    c.onFork(sd2, 2, 200);
    auto ta = c.onPgiFetch(sd.pgis[0], 100, 1001);
    auto tb = c.onPgiFetch(sd2.pgis[0], 200, 2001);
    c.onPgiExecute(ta, true);
    c.onPgiExecute(tb, false);

    // The older fork's prediction is consulted first.
    auto m1 = c.onBranchFetch(branchPc, 300, false);
    EXPECT_EQ(m1.overrideDir, 1);
    // After a per-iteration kill retires the older fork's only
    // prediction, the younger fork's entry serves the next instance.
    c.onKillFetch(loopPc, 310);
    auto m2 = c.onBranchFetch(branchPc, 320, false);
    EXPECT_EQ(m2.overrideDir, 0);
}

TEST(CorrelatorTest, SliceKillDeactivatesAllMatchingEntries)
{
    // The kill PC is a CAM over every live entry (Figure 10): when it
    // is fetched, all entries carrying it die. Program order ensures
    // a region's kill precedes the next fork, so in practice only the
    // finished instance is live — but the hardware semantics are
    // "kill all matches".
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, 100);
    c.onFork(sd, 2, 200);
    auto ta = c.onPgiFetch(sd.pgis[0], 100, 1001);
    auto tb = c.onPgiFetch(sd.pgis[0], 200, 2001);
    c.onPgiExecute(ta, true);
    c.onPgiExecute(tb, false);
    c.onKillFetch(killPc, 310);
    EXPECT_FALSE(c.onBranchFetch(branchPc, 320, false).matched);
}

TEST(CorrelatorTest, MultiplePgisMakeSeparateEntries)
{
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    PgiSpec second = sd.pgis[0];
    second.sliceInstPc = slicePgiPc + 8;
    second.problemBranchPc = branchPc + 0x40;
    sd.pgis.push_back(second);
    c.onFork(sd, 1, 100);
    EXPECT_EQ(c.liveEntries(), 2u);

    auto t1 = c.onPgiFetch(sd.pgis[0], 100, 1001);
    auto t2 = c.onPgiFetch(sd.pgis[1], 100, 1002);
    c.onPgiExecute(t1, true);
    c.onPgiExecute(t2, false);
    EXPECT_EQ(c.onBranchFetch(branchPc, 200, false).overrideDir, 1);
    EXPECT_EQ(c.onBranchFetch(branchPc + 0x40, 210, false).overrideDir,
              0);
}

TEST(CorrelatorTest, SliceSquashRemovesUncomputedTail)
{
    PredictionCorrelator c;
    SliceDescriptor sd = makeSlice();
    c.onFork(sd, 1, 100);
    auto t1 = c.onPgiFetch(sd.pgis[0], 100, 1001);
    auto t2 = c.onPgiFetch(sd.pgis[0], 100, 1005);
    c.onPgiExecute(t1, true);
    // The slice mispredicted its own back-edge: PGIs younger than 1002
    // are squashed.
    c.squashSlice(100, 1002);
    // t2's slot is gone; executing it is a no-op.
    auto late = c.onPgiExecute(t2, false);
    EXPECT_FALSE(late.hasConsumer);
    // t1 survives.
    EXPECT_EQ(c.onBranchFetch(branchPc, 200, false).overrideDir, 1);
    auto m2 = c.onBranchFetch(branchPc, 201, false);
    (void)m2;
}

TEST(SliceTableTest, ForkAndPgiLookup)
{
    SliceTable st;
    SliceDescriptor sd = makeSlice();
    st.load(sd);
    EXPECT_EQ(st.forkAt(0x10000), 0);
    EXPECT_EQ(st.forkAt(0x10008), -1);
    ASSERT_NE(st.pgiAt(slicePgiPc), nullptr);
    EXPECT_EQ(st.pgiAt(slicePgiPc)->problemBranchPc, branchPc);
    EXPECT_EQ(st.pgiAt(0x9999), nullptr);
    EXPECT_EQ(st.numSlices(), 1u);
    EXPECT_EQ(st.numPgis(), 1u);
}

TEST(SliceTableTest, DescriptorKillCount)
{
    SliceDescriptor sd = makeSlice();
    EXPECT_EQ(sd.killCount(), 2u);  // loop kill + slice kill
    sd.pgis[0].loopKillPc = invalidAddr;
    EXPECT_EQ(sd.killCount(), 1u);
}
