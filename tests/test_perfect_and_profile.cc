/**
 * @file
 * Tests for the per-static-instruction perfect modes (Figure 1 / limit
 * study machinery) and the problem-instruction classifier (Section
 * 2.2).
 */

#include <gtest/gtest.h>

#include "arch/memimg.hh"
#include "core/smt_core.hh"
#include "isa/assembler.hh"
#include "profile/pde_profile.hh"

using namespace specslice;
using namespace specslice::isa;

namespace
{

constexpr Addr codeBase = 0x10000;
constexpr Addr dataBase = 0x100000;

struct Built
{
    Program prog;
    Addr entry;
    Addr branchPc;
    Addr loadPc;
};

/** Unpredictable branch + missing load in a loop. */
Built
makeNoisy(unsigned iters)
{
    Assembler as(codeBase);
    as.label("start");
    as.ldi64(30, dataBase);
    as.ldi(2, static_cast<std::int32_t>(iters));
    as.ldq(20, 30, 0);   // pointer into a large region
    as.label("loop");
    Built b;
    b.loadPc = as.here();
    as.ldq(15, 20, 8);   // problem load (chase)
    as.ldq(20, 20, 0);
    as.andi(16, 15, 1);
    b.branchPc = as.here();
    as.beq(16, "skip");  // problem branch
    as.addi(9, 9, 1);
    as.label("skip");
    as.subi(2, 2, 1);
    as.bgt(2, "loop");
    as.halt();
    b.prog.addSection(as.finish());
    b.prog.addSymbols(as.symbols());
    b.entry = b.prog.symbol("start");
    return b;
}

void
initChain(arch::MemoryImage &mem, unsigned nodes)
{
    // A bijective slot permutation (odd multiplier mod 2^k) keeps all
    // node addresses distinct, so the chain is one long cycle rather
    // than collapsing into a small cached ring.
    const std::uint64_t slots = (4u << 20) / 64;
    auto slot_of = [&](unsigned i) {
        return (static_cast<std::uint64_t>(i) * 2654435761u) % slots;
    };
    Addr base = dataBase + 0x10000;
    Addr first = base + slot_of(0) * 64;
    mem.writeQ(dataBase, first);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    Addr prev = first;
    for (unsigned i = 1; i <= nodes; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        Addr node = (i == nodes) ? first : base + slot_of(i) * 64;
        mem.writeQ(prev + 8, x >> 32);
        mem.writeQ(prev + 0, node);
        prev = node;
    }
}

core::RunOptions
opts(bool profile = false)
{
    core::RunOptions o;
    o.maxMainInstructions = 60'000;
    o.profile = profile;
    return o;
}

} // namespace

TEST(PerfectModes, PerfectBranchRemovesItsMispredictions)
{
    Built b = makeNoisy(8000);
    arch::MemoryImage m1, m2;
    initChain(m1, 8192);
    initChain(m2, 8192);

    core::SmtCore base(core::CoreConfig::fourWide(), b.prog, m1);
    auto rb = base.run(b.entry, opts(true));
    ASSERT_GT(rb.mispredictions, 500u);

    core::RunOptions o = opts(true);
    o.perfect.branchPcs.insert(b.branchPc);
    core::SmtCore perf(core::CoreConfig::fourWide(), b.prog, m2);
    auto rp = perf.run(b.entry, o);

    // The problem branch no longer mispredicts at all.
    EXPECT_EQ(rp.profile.perPc[b.branchPc].branchMispred, 0u);
    EXPECT_LT(rp.cycles, rb.cycles);
}

TEST(PerfectModes, PerfectLoadRemovesItsLatency)
{
    Built b = makeNoisy(8000);
    arch::MemoryImage m1, m2;
    initChain(m1, 32768);
    initChain(m2, 32768);

    core::SmtCore base(core::CoreConfig::fourWide(), b.prog, m1);
    auto rb = base.run(b.entry, opts());
    ASSERT_GT(rb.l1dMissesMain, 1000u);

    core::RunOptions o = opts();
    o.perfect.loadPcs.insert(b.loadPc);
    // Perfect the chase pointer too (it serializes everything).
    o.perfect.loadPcs.insert(b.loadPc + instBytes);
    core::SmtCore perf(core::CoreConfig::fourWide(), b.prog, m2);
    auto rp = perf.run(b.entry, o);

    EXPECT_LT(rp.cycles * 2, rb.cycles);  // at least 2x on a chase
}

TEST(PerfectModes, AllPerfectDominatesEverything)
{
    Built b = makeNoisy(8000);
    arch::MemoryImage m1, m2, m3;
    initChain(m1, 16384);
    initChain(m2, 16384);
    initChain(m3, 16384);

    core::SmtCore base(core::CoreConfig::fourWide(), b.prog, m1);
    auto rb = base.run(b.entry, opts());

    core::RunOptions po = opts();
    po.perfect.branchPcs.insert(b.branchPc);
    po.perfect.loadPcs.insert(b.loadPc);
    core::SmtCore prob(core::CoreConfig::fourWide(), b.prog, m2);
    auto rp = prob.run(b.entry, po);

    core::RunOptions ao = opts();
    ao.perfect.allBranchesPerfect = true;
    ao.perfect.allLoadsPerfect = true;
    core::SmtCore allp(core::CoreConfig::fourWide(), b.prog, m3);
    auto ra = allp.run(b.entry, ao);

    EXPECT_LE(ra.cycles, rp.cycles);
    EXPECT_LT(rp.cycles, rb.cycles);
    EXPECT_EQ(ra.mispredictions, 0u);
}

TEST(Classifier, ThresholdsSeparateProblemInstructions)
{
    core::PcProfile prof;
    // A hot, badly-behaved branch.
    prof.perPc[0x100] = {10'000, 3'000, 0, 0, 0, 0};
    // A hot but well-predicted branch (rate below 10%).
    prof.perPc[0x108] = {50'000, 300, 0, 0, 0, 0};
    // A badly-behaved but rarely executed branch (count too small).
    prof.perPc[0x110] = {40, 20, 0, 0, 0, 0};
    // A missing load.
    prof.perPc[0x200] = {0, 0, 5'000, 2'000, 0, 0};
    // A hitting load.
    prof.perPc[0x208] = {0, 0, 90'000, 10, 0, 0};

    auto p = profile::classifyProblemInstructions(prof);
    EXPECT_TRUE(p.problemBranches.count(0x100));
    EXPECT_FALSE(p.problemBranches.count(0x108));
    EXPECT_FALSE(p.problemBranches.count(0x110));
    EXPECT_TRUE(p.problemLoads.count(0x200));
    EXPECT_FALSE(p.problemLoads.count(0x208));

    // Coverage math: 3000 of 3320 mispredictions covered.
    EXPECT_NEAR(p.mispredCoverage(), 3000.0 / 3320.0, 1e-9);
    EXPECT_NEAR(p.missCoverage(), 2000.0 / 2010.0, 1e-9);
    // Problem branches are a small fraction of dynamic branches.
    EXPECT_NEAR(p.branchFraction(), 10'000.0 / 60'040.0, 1e-9);
}

TEST(Classifier, StoresCountAsMemoryOps)
{
    core::PcProfile prof;
    prof.perPc[0x300] = {0, 0, 0, 0, 8'000, 4'000};
    auto p = profile::classifyProblemInstructions(prof);
    EXPECT_TRUE(p.problemLoads.count(0x300));
    EXPECT_EQ(p.memOps, 8'000u);
}
