/**
 * @file
 * Two deeper checks of the trickiest machinery:
 *
 * 1. Late-prediction reversals (Section 5.3) squash *correct-path*
 *    instructions, which requires undoing their functional effects
 *    (register checkpoint + store-undo log). If that undo were broken,
 *    architectural state would diverge between runs with reversals on
 *    and off. We run vpr both ways and compare the final memory image.
 *
 * 2. A randomized correlator stress test against an oracle: a
 *    synthetic "main thread" fetch stream with random region shapes,
 *    wrong-path excursions and squashes; every Full override the
 *    correlator hands out must equal the oracle's direction for that
 *    dynamic branch instance.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "sim/simulator.hh"
#include "slice/correlator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

/** Digest the vpr heap region of a memory image. */
std::uint64_t
digestVprState(const arch::MemoryImage &mem)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    mix(mem.readQ(0x100000 + 0));   // heap_tail
    mix(mem.readQ(0x100000 + 24));  // rng state
    mix(mem.readQ(0x100000 + 40));  // remaining
    // Sample the heap array (pointers moved by trickle swaps).
    Addr heap_arr = mem.readQ(0x100000 + 8);
    for (unsigned k = 1; k < 4096; k += 37)
        mix(mem.readQ(heap_arr + k * 8));
    return h;
}

} // namespace

TEST(ReversalUndo, ArchitecturalStateUnaffectedByReversals)
{
    workloads::Params p;
    p.scale = 250'000;
    sim::RunOptions o;
    o.maxMainInstructions = 90'000;

    // Run with reversals enabled...
    auto wl1 = workloads::buildVpr(p);
    arch::MemoryImage m1;
    wl1.initMemory(m1);
    sim::MachineConfig on = sim::MachineConfig::fourWide();
    core::SmtCore c1(on, wl1.program, m1);
    for (const auto &s : wl1.slices)
        c1.loadSlice(s);
    auto r1 = c1.run(wl1.entry, o);

    // ...and disabled.
    auto wl2 = workloads::buildVpr(p);
    arch::MemoryImage m2;
    wl2.initMemory(m2);
    sim::MachineConfig off = sim::MachineConfig::fourWide();
    off.lateReversalsEnabled = false;
    core::SmtCore c2(off, wl2.program, m2);
    for (const auto &s : wl2.slices)
        c2.loadSlice(s);
    auto r2 = c2.run(wl2.entry, o);

    // The machinery must actually have been exercised...
    EXPECT_GT(r1.lateReversals, 10u);
    EXPECT_EQ(r2.lateReversals, 0u);
    // ...same architectural work...
    EXPECT_EQ(r1.mainRetired, r2.mainRetired);
    // ...and identical final memory: reversal squash+undo is exact.
    EXPECT_EQ(digestVprState(m1), digestVprState(m2));
}

TEST(ReversalUndo, BaselineMatchesSlicedArchitecturally)
{
    // The strongest statement: helper threads and all their squashes
    // are purely microarchitectural ("in no way affecting the
    // architectural state", Section 8). Both runs execute to their
    // natural halt: comparing mid-run would reflect different
    // in-flight windows, not different architectural behaviour.
    workloads::Params p;
    p.scale = 60'000;
    sim::RunOptions o;
    o.maxMainInstructions = 400'000;  // beyond the program's length

    auto wl1 = workloads::buildVpr(p);
    arch::MemoryImage m1;
    wl1.initMemory(m1);
    core::SmtCore base(sim::MachineConfig::fourWide(), wl1.program, m1);
    auto rb = base.run(wl1.entry, o);

    auto wl2 = workloads::buildVpr(p);
    arch::MemoryImage m2;
    wl2.initMemory(m2);
    core::SmtCore sliced(sim::MachineConfig::fourWide(), wl2.program,
                         m2);
    for (const auto &s : wl2.slices)
        sliced.loadSlice(s);
    auto rs = sliced.run(wl2.entry, o);

    ASSERT_EQ(rb.mainRetired, rs.mainRetired);
    // Both halted naturally (well under the budget).
    ASSERT_LT(rb.mainRetired, 350'000u);
    EXPECT_EQ(digestVprState(m1), digestVprState(m2));
}

/**
 * Correlator stress: an oracle main thread over random region shapes.
 * Each region: fork, the slice posts D predictions with known
 * directions, the main thread runs I iterations of
 * {maybe-branch, loop-kill}; instance k must see prediction k.
 * Randomly, a prefix of the region is first executed as a wrong path
 * and squashed, then replayed; correctness must be unaffected.
 */
TEST(CorrelatorStress, OracleAgreementUnderSquashes)
{
    constexpr Addr branchPc = 0x10100;
    constexpr Addr loopPc = 0x10200;
    constexpr Addr killPc = 0x10300;

    slice::SliceDescriptor sd;
    sd.name = "stress";
    sd.forkPc = 0x10000;
    sd.slicePc = 0x8000;
    slice::PgiSpec pgi;
    pgi.sliceInstPc = 0x8000;
    pgi.problemBranchPc = branchPc;
    pgi.loopKillPc = loopPc;
    pgi.sliceKillPc = killPc;
    sd.pgis = {pgi};

    slice::PredictionCorrelator corr;
    Rng rng(20260706);
    SeqNum seq = 100;
    std::uint64_t checked = 0;

    for (int region = 0; region < 2000; ++region) {
        SeqNum fork_seq = ++seq;
        corr.onFork(sd, 1, fork_seq);

        // Slice posts D <= 8 predictions up front (timely slice).
        unsigned d = 1 + static_cast<unsigned>(rng.below(8));
        std::vector<bool> dirs;
        for (unsigned i = 0; i < d; ++i) {
            bool dir = rng.chance(1, 2);
            dirs.push_back(dir);
            auto tok = corr.onPgiFetch(pgi, fork_seq, 90 + i);
            ASSERT_NE(tok, 0u);
            corr.onPgiExecute(tok, dir);
        }

        unsigned iters = 1 + static_cast<unsigned>(rng.below(10));

        // Optionally run a wrong-path prefix first, then squash it.
        if (rng.chance(1, 3)) {
            SeqNum squash_point = seq;
            unsigned wrong_len =
                1 + static_cast<unsigned>(rng.below(iters));
            for (unsigned k = 0; k < wrong_len; ++k) {
                if (rng.chance(3, 4))
                    corr.onBranchFetch(branchPc, ++seq, false);
                corr.onKillFetch(loopPc, ++seq);
            }
            corr.squashMain(squash_point);
        }

        // The real path: instance k (1-based, conditionally executed)
        // must see prediction k.
        for (unsigned k = 0; k < iters; ++k) {
            bool branch_executes = rng.chance(4, 5);
            if (branch_executes && k < dirs.size()) {
                auto m = corr.onBranchFetch(branchPc, ++seq, false);
                if (m.matched && m.overrideDir >= 0) {
                    EXPECT_EQ(m.overrideDir, dirs[k] ? 1 : 0)
                        << "region " << region << " iter " << k;
                    ++checked;
                }
            } else if (branch_executes) {
                corr.onBranchFetch(branchPc, ++seq, false);
            }
            corr.onKillFetch(loopPc, ++seq);
        }

        // Leave the region; everything retires.
        corr.onKillFetch(killPc, ++seq);
        corr.onSliceDone(fork_seq);
        corr.retireUpTo(seq);
    }

    // The property must have had teeth.
    EXPECT_GT(checked, 3000u);
    // And the correlator fully drains.
    EXPECT_EQ(corr.liveEntries(), 0u);
}

/**
 * Same stress but with a slice that lags the main thread: predictions
 * are posted one iteration behind the consuming branch. The kill-debt
 * mechanism must keep alignment.
 */
TEST(CorrelatorStress, OracleAgreementWithLaggingSlice)
{
    constexpr Addr branchPc = 0x10100;
    constexpr Addr loopPc = 0x10200;
    constexpr Addr killPc = 0x10300;

    slice::SliceDescriptor sd;
    sd.name = "lagging";
    sd.forkPc = 0x10000;
    sd.slicePc = 0x8000;
    slice::PgiSpec pgi;
    pgi.sliceInstPc = 0x8000;
    pgi.problemBranchPc = branchPc;
    pgi.loopKillPc = loopPc;
    pgi.sliceKillPc = killPc;
    sd.pgis = {pgi};

    slice::PredictionCorrelator corr;
    Rng rng(777);
    SeqNum seq = 100;
    std::uint64_t full_matches = 0, late_matches = 0;

    for (int region = 0; region < 1000; ++region) {
        SeqNum fork_seq = ++seq;
        corr.onFork(sd, 1, fork_seq);

        unsigned iters = 2 + static_cast<unsigned>(rng.below(6));
        std::vector<bool> dirs;
        for (unsigned i = 0; i < iters; ++i)
            dirs.push_back(rng.chance(1, 2));

        for (unsigned k = 0; k < iters; ++k) {
            // The slice's PGI for instance k is *fetched* in time but
            // *executes* late (after the branch): the branch matches
            // an Empty slot and binds as a late consumer.
            auto tok = corr.onPgiFetch(pgi, fork_seq, 80 + k);
            SeqNum branch_seq = ++seq;
            auto m = corr.onBranchFetch(branchPc, branch_seq, false);
            if (m.matched && m.overrideDir >= 0) {
                EXPECT_EQ(m.overrideDir, dirs[k] ? 1 : 0);
                ++full_matches;
            } else if (m.matched) {
                ++late_matches;
            }
            if (tok) {
                auto late = corr.onPgiExecute(tok, dirs[k]);
                if (late.hasConsumer) {
                    // Bound to exactly this instance's branch.
                    EXPECT_EQ(late.consumerSeq, branch_seq);
                    EXPECT_EQ(late.computedDir, dirs[k]);
                }
            }
            corr.onKillFetch(loopPc, ++seq);
        }
        corr.onKillFetch(killPc, ++seq);
        corr.onSliceDone(fork_seq);
        corr.retireUpTo(seq);
    }

    // A lagging slice never produces a *wrong* Full override
    // (checked above); the matches are overwhelmingly late bindings.
    EXPECT_GT(late_matches, 1000u);
    EXPECT_LT(full_matches, late_matches / 10);
    EXPECT_EQ(corr.liveEntries(), 0u);
}
