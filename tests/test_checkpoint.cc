/**
 * @file
 * Checkpoint tests: the versioned on-disk format round-trips the full
 * architectural state (registers, memory, both warmth logs), rejects
 * corrupt or mismatched inputs with diagnostics instead of garbage
 * state, and — the property everything rests on — a run restored from
 * a checkpoint produces byte-identical results to one that never
 * stopped, for both the baseline and slice configurations.
 */

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "arch/checkpoint.hh"
#include "arch/fastfwd.hh"
#include "common/failure.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

workloads::Params
smallParams()
{
    workloads::Params p;
    p.scale = 400'000;
    return p;
}

/** A fast-forwarded engine with warm logs, ready to snapshot. */
arch::FastForward
advancedEngine(const sim::Workload &wl, std::uint64_t insts)
{
    arch::FastForward ff(wl.program);
    ff.reset(wl.entry);
    if (wl.initMemory)
        wl.initMemory(ff.mem());
    ff.advanceTo(insts);
    return ff;
}

/** Unique temp path; removed by the caller. */
std::string
tempPath(const std::string &tag)
{
    auto dir = std::filesystem::temp_directory_path();
    return (dir / ("ss_ckpt_test_" + tag + "_" +
                   std::to_string(::getpid()) + ".ckpt"))
        .string();
}

class TempFile
{
  public:
    explicit TempFile(const std::string &tag) : path_(tempPath(tag)) {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(CheckpointTest, StreamRoundTripPreservesEverything)
{
    auto wl = workloads::buildWorkload("vpr", smallParams());
    arch::FastForward ff = advancedEngine(wl, 50'000);
    arch::Checkpoint before = ff.makeCheckpoint();
    ASSERT_FALSE(before.warmth.empty());
    ASSERT_FALSE(before.memWarmth.empty());

    std::stringstream ss;
    ASSERT_TRUE(arch::saveCheckpoint(before, ss));
    std::string error;
    auto after = arch::loadCheckpoint(ss, error);
    ASSERT_TRUE(after.has_value()) << error;

    EXPECT_EQ(after->version, arch::checkpointVersion);
    EXPECT_EQ(after->programFingerprint, before.programFingerprint);
    EXPECT_EQ(after->instCount, before.instCount);
    EXPECT_EQ(after->pc, before.pc);
    for (unsigned r = 0; r < isa::numRegs; ++r)
        ASSERT_EQ(after->regs.read(static_cast<RegIndex>(r)),
                  before.regs.read(static_cast<RegIndex>(r)));

    ASSERT_EQ(after->warmth.size(), before.warmth.size());
    for (std::size_t i = 0; i < before.warmth.size(); ++i) {
        EXPECT_EQ(after->warmth[i].pc, before.warmth[i].pc);
        EXPECT_EQ(after->warmth[i].target, before.warmth[i].target);
        EXPECT_EQ(after->warmth[i].kind, before.warmth[i].kind);
        EXPECT_EQ(after->warmth[i].taken, before.warmth[i].taken);
    }
    ASSERT_EQ(after->memWarmth.size(), before.memWarmth.size());
    for (std::size_t i = 0; i < before.memWarmth.size(); ++i) {
        EXPECT_EQ(after->memWarmth[i].addr, before.memWarmth[i].addr);
        EXPECT_EQ(after->memWarmth[i].isStore,
                  before.memWarmth[i].isStore);
    }
    EXPECT_EQ(after->mem.contentHash(), before.mem.contentHash());
}

TEST(CheckpointTest, RestoreResumesTheExactStream)
{
    // save at N, restore, run to M  ==  run straight to M.
    auto wl = workloads::buildWorkload("mcf", smallParams());
    arch::FastForward straight = advancedEngine(wl, 80'000);

    arch::FastForward ff = advancedEngine(wl, 30'000);
    std::stringstream ss;
    ASSERT_TRUE(arch::saveCheckpoint(ff.makeCheckpoint(), ss));
    std::string error;
    auto ckpt = arch::loadCheckpoint(ss, error);
    ASSERT_TRUE(ckpt.has_value()) << error;

    arch::FastForward resumed(wl.program);
    resumed.restore(*ckpt);
    EXPECT_EQ(resumed.executed(), 30'000u);
    resumed.advanceTo(80'000);

    EXPECT_EQ(resumed.executed(), straight.executed());
    EXPECT_EQ(resumed.pc(), straight.pc());
    EXPECT_EQ(resumed.mem().contentHash(), straight.mem().contentHash());
    auto a = resumed.warmth(), b = straight.warmth();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i].pc, b[i].pc);
}

TEST(CheckpointTest, RejectsBadMagic)
{
    std::stringstream ss("definitely not a checkpoint file");
    std::string error;
    EXPECT_FALSE(arch::loadCheckpoint(ss, error).has_value());
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(CheckpointTest, RejectsWrongVersion)
{
    auto wl = workloads::buildWorkload("vpr", smallParams());
    arch::FastForward ff = advancedEngine(wl, 1'000);
    arch::Checkpoint c = ff.makeCheckpoint();
    c.version = arch::checkpointVersion + 1;
    std::stringstream ss;
    ASSERT_TRUE(arch::saveCheckpoint(c, ss));
    std::string error;
    EXPECT_FALSE(arch::loadCheckpoint(ss, error).has_value());
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(CheckpointTest, RejectsTruncation)
{
    auto wl = workloads::buildWorkload("vpr", smallParams());
    arch::FastForward ff = advancedEngine(wl, 10'000);
    std::stringstream ss;
    ASSERT_TRUE(arch::saveCheckpoint(ff.makeCheckpoint(), ss));
    std::string full = ss.str();

    // Cutting the stream anywhere must produce an error, not state.
    for (std::size_t cut : {std::size_t{4}, full.size() / 2,
                            full.size() - 1}) {
        std::stringstream trunc(full.substr(0, cut));
        std::string error;
        EXPECT_FALSE(arch::loadCheckpoint(trunc, error).has_value())
            << "cut at " << cut << " loaded anyway";
        EXPECT_FALSE(error.empty());
    }
}

TEST(CheckpointTest, RestoreIntoWrongProgramIsFatal)
{
    auto vpr = workloads::buildWorkload("vpr", smallParams());
    auto mcf = workloads::buildWorkload("mcf", smallParams());
    arch::FastForward ff = advancedEngine(vpr, 1'000);
    arch::Checkpoint c = ff.makeCheckpoint();

    arch::FastForward other(mcf.program);
    ScopedThrowErrors throwing;
    EXPECT_THROW(other.restore(c), SimError);
}

TEST(CheckpointTest, MissingFileReportsError)
{
    std::string error;
    EXPECT_FALSE(
        arch::loadCheckpointFile("/nonexistent/nowhere.ckpt", error)
            .has_value());
    EXPECT_FALSE(error.empty());
}

// ---- end-to-end: checkpointed runs are byte-identical -------------

class CheckpointRunSuite : public ::testing::TestWithParam<bool>
{
};

TEST_P(CheckpointRunSuite, SaveRestoreRunMatchesUninterrupted)
{
    const bool with_slices = GetParam();
    auto wl = workloads::buildWorkload("vpr", smallParams());
    sim::Simulator machine(sim::MachineConfig::fourWide());

    sim::RunOptions opts;
    opts.fastForwardInstructions = 60'000;
    opts.sampleRegions = 2;
    opts.warmupInstructions = 5'000;
    opts.maxMainInstructions = 10'000;

    TempFile ckpt(with_slices ? "slices" : "baseline");
    sim::RunOptions save = opts;
    save.saveCheckpoint = ckpt.path();
    sim::RunResult saved = machine.run(wl, save, with_slices);
    ASSERT_TRUE(std::filesystem::exists(ckpt.path()));

    sim::RunOptions load = opts;
    load.restoreCheckpoint = ckpt.path();
    sim::RunResult restored = machine.run(wl, load, with_slices);

    // Byte-identical timing, not merely similar: the checkpoint must
    // reproduce the exact architectural state and warmth logs.
    EXPECT_EQ(restored.cycles, saved.cycles);
    EXPECT_EQ(restored.mainRetired, saved.mainRetired);
    EXPECT_EQ(restored.mainFetched, saved.mainFetched);
    EXPECT_EQ(restored.mispredictions, saved.mispredictions);
    EXPECT_EQ(restored.l1dMissesMain, saved.l1dMissesMain);
    EXPECT_EQ(restored.coveredMisses, saved.coveredMisses);
    EXPECT_EQ(restored.forks, saved.forks);
    EXPECT_EQ(restored.fastForwarded, saved.fastForwarded);
    EXPECT_EQ(restored.sampledRegions, saved.sampledRegions);

    // Every detail counter — the same set golden digests carry — must
    // match exactly; no subsystem may drift across a save/restore.
    auto saved_counters = saved.detail.counters();
    auto restored_counters = restored.detail.counters();
    ASSERT_EQ(saved_counters.size(), restored_counters.size());
    for (const auto &[name, stat] : saved_counters) {
        auto it = restored_counters.find(name);
        ASSERT_NE(it, restored_counters.end()) << name;
        EXPECT_EQ(it->second.value(), stat.value()) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(BaselineAndSlices, CheckpointRunSuite,
                         ::testing::Bool());

TEST(CheckpointTest, InstWarmthRoundTrips)
{
    // The v3 format carries the instruction-line warmth ring; a
    // restore must replay the exact sequence (the I-cache warm-up
    // depends on order for LRU state).
    auto wl = workloads::buildWorkload("vpr", smallParams());
    arch::FastForward ff = advancedEngine(wl, 50'000);
    arch::Checkpoint before = ff.makeCheckpoint();
    ASSERT_FALSE(before.instWarmth.empty());
    EXPECT_EQ(before.instWarmth, ff.instWarmth());

    std::stringstream ss;
    ASSERT_TRUE(arch::saveCheckpoint(before, ss));
    std::string error;
    auto after = arch::loadCheckpoint(ss, error);
    ASSERT_TRUE(after.has_value()) << error;
    EXPECT_EQ(after->instWarmth, before.instWarmth);

    // And a restored engine re-exposes it for region replay.
    arch::FastForward resumed(wl.program);
    resumed.restore(*after);
    EXPECT_EQ(resumed.instWarmth(), before.instWarmth);
}
