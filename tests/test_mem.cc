/**
 * @file
 * Memory-system tests: the set-associative cache (including a
 * parameterized geometry sweep), the prefetch/victim buffer, the write
 * buffer, the stream prefetcher, and the full hierarchy (latencies,
 * MSHR merging, slice covered-miss accounting, store paths).
 */

#include <set>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/stream_prefetcher.hh"
#include "mem/victim_buffer.hh"
#include "mem/write_buffer.hh"

using namespace specslice;
using namespace specslice::mem;

TEST(CacheTest, HitAfterFill)
{
    SetAssocCache c(1024, 2, 64);
    EXPECT_EQ(c.access(0x1000, true), nullptr);
    c.fill(0x1000, false, false);
    EXPECT_NE(c.access(0x1000, true), nullptr);
    EXPECT_NE(c.access(0x103f, true), nullptr);  // same line
    EXPECT_EQ(c.access(0x1040, true), nullptr);  // next line
}

TEST(CacheTest, LruEviction)
{
    // 2-way, 64B lines, 2 sets (256B total).
    SetAssocCache c(256, 2, 64);
    // Three lines in set 0 (stride = 2 lines).
    c.fill(0x0000, false, false);
    c.fill(0x0080, false, false);
    c.access(0x0000, true);  // make 0x0000 MRU
    c.fill(0x0100, false, false);  // evicts 0x0080 (LRU)
    EXPECT_NE(c.peek(0x0000), nullptr);
    EXPECT_EQ(c.peek(0x0080), nullptr);
    EXPECT_NE(c.peek(0x0100), nullptr);
}

TEST(CacheTest, EvictionReportsDirtyLine)
{
    SetAssocCache c(128, 1, 64);  // direct-mapped, 2 sets
    c.fill(0x0000, true, false);
    Eviction ev = c.fill(0x0080, false, false);  // same set
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.lineAddr, 0x0000u);
}

TEST(CacheTest, SliceFilledMetadata)
{
    SetAssocCache c(1024, 2, 64);
    c.fill(0x2000, false, true);  // filled by a slice
    const CacheLine *l = c.peek(0x2000);
    ASSERT_NE(l, nullptr);
    EXPECT_TRUE(l->sliceFilled);
    EXPECT_FALSE(l->mainTouched);
    c.access(0x2000, true);
    EXPECT_TRUE(c.peek(0x2000)->mainTouched);
}

/** Property: a cache never reports false hits across geometries. */
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheGeometry, ReferenceModelAgreement)
{
    auto [size_kb, assoc, line] = GetParam();
    SetAssocCache c(size_kb * 1024, assoc, line);
    Rng rng(size_kb * 131 + assoc * 17 + line);

    // Reference model: set of filled line addresses (unbounded), used
    // only to check one direction: a hit implies we filled that line.
    std::set<Addr> filled;
    for (int i = 0; i < 5000; ++i) {
        Addr a = rng.below(1 << 22);
        if (rng.chance(1, 2)) {
            c.fill(a, false, false);
            filled.insert(c.lineAddr(a));
        } else {
            if (c.access(a, true) != nullptr)
                EXPECT_TRUE(filled.count(c.lineAddr(a)))
                    << "hit on never-filled line";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_tuple(4, 1, 32),
                      std::make_tuple(4, 2, 64),
                      std::make_tuple(64, 2, 64),
                      std::make_tuple(64, 4, 128),
                      std::make_tuple(8, 8, 64)));

TEST(VictimBufferTest, InsertLookupRemove)
{
    PrefetchVictimBuffer vb(4, 64);
    vb.insert(0x1000, false, 0);
    EXPECT_NE(vb.lookup(0x1020, 1), nullptr);  // same line
    EXPECT_EQ(vb.lookup(0x2000, 1), nullptr);
    vb.remove(0x1000);
    EXPECT_EQ(vb.lookup(0x1000, 2), nullptr);
}

TEST(VictimBufferTest, LruReplacementWhenFull)
{
    PrefetchVictimBuffer vb(2, 64);
    vb.insert(0x1000, false, 0);
    vb.insert(0x2000, false, 0);
    vb.lookup(0x1000, 1);          // touch 0x1000
    vb.insert(0x3000, false, 0);   // evicts 0x2000
    EXPECT_NE(vb.peek(0x1000), nullptr);
    EXPECT_EQ(vb.peek(0x2000), nullptr);
    EXPECT_NE(vb.peek(0x3000), nullptr);
    EXPECT_EQ(vb.population(), 2u);
}

TEST(VictimBufferTest, PrefetchReadyTime)
{
    PrefetchVictimBuffer vb(4, 64);
    vb.insert(0x1000, true, 150);
    auto *e = vb.lookup(0x1000, 100);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->fromPrefetch);
    EXPECT_EQ(e->readyAt, 150u);
}

TEST(WriteBufferTest, CoalescesAndDrains)
{
    WriteBuffer wb(2, 10);
    EXPECT_TRUE(wb.insert(0x1000, 0));
    EXPECT_TRUE(wb.insert(0x1000, 1));  // coalesce
    EXPECT_EQ(wb.occupancy(), 1u);
    EXPECT_TRUE(wb.insert(0x2000, 2));
    EXPECT_FALSE(wb.insert(0x3000, 3));  // full
    EXPECT_TRUE(wb.contains(0x1000));
    wb.drain(50);
    EXPECT_EQ(wb.occupancy(), 0u);
    EXPECT_FALSE(wb.contains(0x1000));
}

TEST(StreamPrefetcherTest, SequentialFirstTouch)
{
    StreamPrefetcher sp(4, 64, 2, true);
    auto out = sp.onMiss(0x10000);
    ASSERT_EQ(out.size(), 1u);  // speculative next-line
    EXPECT_EQ(out[0], 0x10040u);
}

TEST(StreamPrefetcherTest, PositiveUnitStride)
{
    StreamPrefetcher sp(4, 64, 2, false);
    sp.onMiss(0x10000);
    auto out = sp.onMiss(0x10040);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0x10080u);
    EXPECT_EQ(out[1], 0x100c0u);
}

TEST(StreamPrefetcherTest, NegativeStride)
{
    StreamPrefetcher sp(4, 64, 1, false);
    sp.onMiss(0x10100);
    auto out = sp.onMiss(0x100c0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x10080u);
}

TEST(StreamPrefetcherTest, RandomMissesDontTrainStride)
{
    StreamPrefetcher sp(4, 64, 2, false);
    Rng rng(5);
    unsigned prefetches = 0;
    for (int i = 0; i < 200; ++i)
        prefetches += sp.onMiss(rng.below(1 << 24) << 8).size();
    EXPECT_LT(prefetches, 20u);
}

namespace
{

MemConfig
smallConfig()
{
    MemConfig cfg;
    cfg.prefetcherEnabled = false;  // deterministic latencies
    return cfg;
}

} // namespace

TEST(HierarchyTest, LatencyLevels)
{
    MemoryHierarchy mh(smallConfig());
    // Cold: full path to memory.
    auto r1 = mh.accessData(0x100000, false, false, 10);
    EXPECT_TRUE(r1.memAccess);
    EXPECT_GE(r1.latency, 100u);
    // Hot (after the fill window passes): L1 hit.
    auto r2 = mh.accessData(0x100000, false, false, 10 + r1.latency);
    EXPECT_TRUE(r2.l1Hit);
    EXPECT_EQ(r2.latency, mh.config().l1Latency);
}

TEST(HierarchyTest, L2HitAfterL1Eviction)
{
    MemConfig cfg = smallConfig();
    cfg.l1dSize = 128;  // tiny L1: 2 lines
    cfg.l1dAssoc = 1;
    cfg.pvBufEntries = 1;
    MemoryHierarchy mh(cfg);
    Cycle t = 0;
    mh.accessData(0x100000, false, false, t);
    t += 200;
    // Evict via conflicting lines (same set, tiny direct-mapped L1).
    mh.accessData(0x100080, false, false, t);
    t += 200;
    mh.accessData(0x100100, false, false, t);
    t += 200;
    auto r = mh.accessData(0x100000, false, false, t);
    EXPECT_FALSE(r.memAccess);  // L2 (or victim buffer) supplies it
    EXPECT_LE(r.latency, mh.config().l1Latency + mh.config().l2Latency);
}

TEST(HierarchyTest, MshrMergeDelayedHit)
{
    MemoryHierarchy mh(smallConfig());
    auto r1 = mh.accessData(0x200000, false, false, 100);
    ASSERT_GE(r1.latency, 100u);
    // A second access 10 cycles later merges with the in-flight fill.
    auto r2 = mh.accessData(0x200000, false, false, 110);
    EXPECT_TRUE(r2.l1Hit);
    EXPECT_EQ(r2.latency, r1.latency - 10);
    EXPECT_EQ(mh.stats().get("delayed_hits"), 1u);
    EXPECT_EQ(mh.stats().get("l1d_misses"), 1u);
}

TEST(HierarchyTest, SliceCoveredMissAccounting)
{
    MemoryHierarchy mh(smallConfig());
    // Slice prefetches the line; the fill completes.
    mh.accessData(0x300000, false, true, 0);
    // Main thread's first touch is a covered miss...
    auto r = mh.accessData(0x300000, false, false, 500);
    EXPECT_TRUE(r.coveredBySlice);
    // ...but only once.
    auto r2 = mh.accessData(0x300000, false, false, 501);
    EXPECT_FALSE(r2.coveredBySlice);
    EXPECT_EQ(mh.stats().get("covered_misses"), 1u);
}

TEST(HierarchyTest, StoreMissWriteAllocatesWithoutStalling)
{
    MemoryHierarchy mh(smallConfig());
    auto r = mh.accessStore(0x400000, 0);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(r.latency, 1u);  // the pipeline never waits on stores
    // A dependent load hits (store-forwarding approximation).
    auto l = mh.accessData(0x400000, false, false, 1);
    EXPECT_TRUE(l.l1Hit);
}

TEST(HierarchyTest, RetireStoreUsesWriteBufferOnMiss)
{
    MemConfig cfg = smallConfig();
    MemoryHierarchy mh(cfg);
    // Retiring a store whose line is absent inserts into the WB.
    EXPECT_TRUE(mh.retireStore(0x500000, 0));
    auto l = mh.accessData(0x500000, false, false, 1);
    EXPECT_TRUE(l.writeBufferHit);
}

TEST(HierarchyTest, InstFetchPath)
{
    MemoryHierarchy mh(smallConfig());
    Cycle lat1 = mh.accessInst(0x10000, 0);
    EXPECT_GE(lat1, 100u);  // cold
    Cycle lat2 = mh.accessInst(0x10000, 500);
    EXPECT_EQ(lat2, mh.config().l1Latency);  // warm
}

TEST(HierarchyTest, InstPrefetchStreamsColdCode)
{
    MemConfig cfg;  // prefetcher ON
    MemoryHierarchy mh(cfg);
    mh.accessInst(0x10000, 0);
    // The next lines were prefetched into the PV buffer; fetching them
    // a while later is much cheaper than a full miss.
    Cycle lat = mh.accessInst(0x10040, 300);
    EXPECT_LT(lat, cfg.memLatency);
}

TEST(HierarchyTest, StreamPrefetcherCoversStriding)
{
    MemConfig cfg;  // prefetcher ON
    MemoryHierarchy mh(cfg);
    Cycle t = 0;
    std::uint64_t slow = 0;
    for (int i = 0; i < 64; ++i) {
        auto r = mh.accessData(0x600000 + i * 64, false, false, t);
        slow += (r.latency > 20);
        t += 150;
    }
    // After training, most strided accesses are covered.
    EXPECT_LT(slow, 20u);
}
