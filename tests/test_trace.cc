/**
 * @file
 * sstr trace-format tests: varint edge cases, record round-trips over
 * the full kind/delta space, structural rejection of truncated and
 * corrupted files, record-stream fidelity against functional
 * re-execution, and the load-bearing frontend property — a workload
 * reconstructed from its trace produces the exact same timing-core
 * counters as the original.
 */

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "branch/predictor_client.hh"
#include "sim/result_json.hh"
#include "sim/simulator.hh"
#include "trace/format.hh"
#include "trace/frontend.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "trace/writer.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

/** Fresh per-test scratch path, removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string &stem)
    {
        static int counter = 0;
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter++) + ".sstr"))
                    .string();
        std::filesystem::remove(path_);
    }

    ~TempFile()
    {
        std::error_code ec;
        std::filesystem::remove(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(is),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

trace::TraceMeta
recordsOnlyMeta(std::uint64_t entry = 0x1000)
{
    trace::TraceMeta meta;
    meta.name = "synthetic";
    meta.entryPc = entry;
    meta.programFingerprint = 0;
    meta.dataSeed = 7;
    meta.scale = 0;
    return meta;
}

} // namespace

// ---------------------------------------------------------------
// Varints
// ---------------------------------------------------------------

TEST(TraceFormatTest, VarintRoundTripsBoundaryValues)
{
    const std::uint64_t cases[] = {
        0,
        1,
        127,
        128,
        129,
        16'383,
        16'384,
        (1ull << 21) - 1,
        1ull << 21,
        (1ull << 35) + 12'345,
        (1ull << 56) - 1,
        1ull << 56,
        (1ull << 63) - 1,
        1ull << 63,
        std::numeric_limits<std::uint64_t>::max(),
    };
    for (std::uint64_t v : cases) {
        std::string buf;
        trace::putVarint(buf, v);
        ASSERT_LE(buf.size(), 10u) << v;
        const auto *p =
            reinterpret_cast<const std::uint8_t *>(buf.data());
        const auto *end = p + buf.size();
        std::uint64_t got = 0;
        ASSERT_TRUE(trace::getVarint(p, end, got)) << v;
        EXPECT_EQ(got, v);
        EXPECT_EQ(p, end) << "decoder must consume every byte for " << v;
    }
}

TEST(TraceFormatTest, VarintRejectsTruncationAndOverflow)
{
    std::string buf;
    trace::putVarint(buf, std::numeric_limits<std::uint64_t>::max());
    // Every proper prefix is a truncated varint.
    for (std::size_t len = 0; len < buf.size(); ++len) {
        const auto *p =
            reinterpret_cast<const std::uint8_t *>(buf.data());
        const auto *end = p + len;
        std::uint64_t v = 0;
        EXPECT_FALSE(trace::getVarint(p, end, v)) << len;
    }
    // 10 continuation-heavy bytes encoding more than 64 bits.
    const std::uint8_t over[] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                 0xff, 0xff, 0xff, 0xff, 0x7f};
    const std::uint8_t *p = over;
    std::uint64_t v = 0;
    EXPECT_FALSE(trace::getVarint(p, p + sizeof(over), v));
}

TEST(TraceFormatTest, ZigzagRoundTripsExtremes)
{
    const std::int64_t cases[] = {
        0,
        1,
        -1,
        63,
        -64,
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min(),
    };
    for (std::int64_t v : cases)
        EXPECT_EQ(trace::zigzagDecode(trace::zigzagEncode(v)), v) << v;
}

// ---------------------------------------------------------------
// Record stream round-trip
// ---------------------------------------------------------------

TEST(TraceFormatTest, RecordsRoundTripAcrossKindsAndDeltas)
{
    TempFile tmp("roundtrip");

    // Every kind, with hostile deltas: backward jumps, far-apart
    // memory addresses, a PC that wraps the address-space midpoint.
    std::vector<trace::TraceRecord> recs;
    auto add = [&](Addr pc, trace::RecordKind kind, bool taken,
                   Addr target, Addr mem) {
        trace::TraceRecord r;
        r.pc = pc;
        r.kind = kind;
        r.taken = taken;
        r.target = target;
        r.memAddr = mem;
        recs.push_back(r);
    };
    add(0x1000, trace::RecordKind::Other, false, invalidAddr,
        invalidAddr);
    add(0x1008, trace::RecordKind::CondBranch, true, 0x40, invalidAddr);
    add(0x40, trace::RecordKind::CondBranch, false, 0x8000'0000'0000,
        invalidAddr);
    add(0x48, trace::RecordKind::Load, false, invalidAddr, 0x10);
    add(0x50, trace::RecordKind::Store, false, invalidAddr,
        0x7fff'ffff'f000);
    add(0x58, trace::RecordKind::Call, true, 0x2000, invalidAddr);
    add(0x2000, trace::RecordKind::Return, true, 0x60, invalidAddr);
    add(0x60, trace::RecordKind::IndirectJump, true, 0x9000,
        invalidAddr);
    add(0x9000, trace::RecordKind::IndirectCall, true, 0x1000,
        invalidAddr);
    add(0x1000, trace::RecordKind::UncondDirect, true, 0x1010,
        invalidAddr);
    add(0x1010, trace::RecordKind::Load, false, invalidAddr, 0x8);
    add(0x1018, trace::RecordKind::Halt, false, invalidAddr,
        invalidAddr);
    // Push past one chunk boundary so chunk-reset deltas are covered.
    for (std::uint64_t i = 0; i < 2 * trace::recordsPerChunk; ++i)
        add(0x4000 + i * 8, trace::RecordKind::Other, false,
            invalidAddr, invalidAddr);

    trace::TraceMeta meta = recordsOnlyMeta();
    {
        trace::TraceWriter w(tmp.path(), meta);
        ASSERT_TRUE(w.ok()) << w.error();
        for (const auto &r : recs)
            w.append(r);
        ASSERT_TRUE(w.finalize()) << w.error();
        EXPECT_EQ(w.recordCount(), recs.size());
    }

    std::string err;
    auto file = trace::TraceFile::open(tmp.path(), err);
    ASSERT_TRUE(file) << err;
    EXPECT_EQ(file->meta().recordCount, recs.size());
    EXPECT_EQ(file->meta().name, "synthetic");
    EXPECT_EQ(file->meta().dataSeed, 7u);
    EXPECT_FALSE(file->hasProgram());

    trace::TraceReader rd = file->records();
    trace::TraceRecord got;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(rd.next(got)) << "record " << i << ": "
                                  << rd.error();
        EXPECT_EQ(got.pc, recs[i].pc) << i;
        EXPECT_EQ(got.kind, recs[i].kind) << i;
        EXPECT_EQ(got.taken, recs[i].taken) << i;
        EXPECT_EQ(got.target, recs[i].target) << i;
        EXPECT_EQ(got.memAddr, recs[i].memAddr) << i;
    }
    EXPECT_FALSE(rd.next(got));
    EXPECT_TRUE(rd.ok()) << rd.error();

    // rewind() restarts the stream from record zero.
    rd.rewind();
    ASSERT_TRUE(rd.next(got));
    EXPECT_EQ(got.pc, recs[0].pc);
}

// ---------------------------------------------------------------
// Structural rejection
// ---------------------------------------------------------------

TEST(TraceFormatTest, RejectsCorruptHeaderAndTruncation)
{
    TempFile tmp("reject");
    trace::TraceMeta meta = recordsOnlyMeta();
    {
        trace::TraceWriter w(tmp.path(), meta);
        trace::TraceRecord r;
        r.pc = 0x1000;
        r.kind = trace::RecordKind::Other;
        for (int i = 0; i < 100; ++i) {
            w.append(r);
            r.pc += 8;
        }
        ASSERT_TRUE(w.finalize()) << w.error();
    }
    const std::vector<std::uint8_t> good = readAll(tmp.path());
    ASSERT_GT(good.size(), 64u);
    std::string err;

    // Pristine file opens.
    ASSERT_TRUE(trace::TraceFile::open(tmp.path(), err)) << err;

    // Bad magic.
    {
        std::vector<std::uint8_t> bad = good;
        bad[0] ^= 0xff;
        writeAll(tmp.path(), bad);
        err.clear();
        EXPECT_FALSE(trace::TraceFile::open(tmp.path(), err));
        EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
    }

    // Unsupported format version (bytes 4..7).
    {
        std::vector<std::uint8_t> bad = good;
        bad[4] = 0x63;
        writeAll(tmp.path(), bad);
        err.clear();
        EXPECT_FALSE(trace::TraceFile::open(tmp.path(), err));
        EXPECT_NE(err.find("version"), std::string::npos) << err;
    }

    // Truncation anywhere in the tail: dropped footer, dropped chunk
    // bytes, dropped section header.
    for (std::size_t keep :
         {good.size() - 1, good.size() - 16, good.size() / 2, 40ul}) {
        std::vector<std::uint8_t> bad(good.begin(),
                                      good.begin() +
                                          static_cast<long>(keep));
        writeAll(tmp.path(), bad);
        err.clear();
        EXPECT_FALSE(trace::TraceFile::open(tmp.path(), err))
            << "kept " << keep << " bytes";
        EXPECT_FALSE(err.empty());
    }

    // A flipped byte inside the record payload breaks the FNV.
    {
        std::vector<std::uint8_t> bad = good;
        bad[bad.size() - 24] ^= 0x01;
        writeAll(tmp.path(), bad);
        err.clear();
        EXPECT_FALSE(trace::TraceFile::open(tmp.path(), err));
        EXPECT_FALSE(err.empty());
    }

    // An unfinalized writer (no footer, zero header count with a live
    // stream) must not be readable.
    {
        TempFile dead("unfinalized");
        trace::TraceWriter w(dead.path(), meta);
        trace::TraceRecord r;
        r.pc = 0x1000;
        r.kind = trace::RecordKind::Other;
        w.append(r);
        // No finalize(); stream out what's buffered.
        err.clear();
        EXPECT_FALSE(trace::TraceFile::open(dead.path(), err));
    }
}

// ---------------------------------------------------------------
// Fidelity and replay determinism
// ---------------------------------------------------------------

namespace
{

/** A small emitted workload trace shared by the heavier tests. */
struct EmittedTrace
{
    TempFile tmp{"emitted"};
    sim::Workload wl;
    std::uint64_t records = 0;

    explicit EmittedTrace(std::uint64_t insts = 6'000,
                          std::uint64_t warmup = 1'000)
    {
        workloads::Params p;
        p.scale = (insts + warmup) * 2;
        p.seed = 1;
        wl = workloads::buildWorkload("vpr", p);
        std::string err;
        auto res = trace::emitWorkloadTrace(wl, p.seed, insts + warmup,
                                            tmp.path(), err);
        EXPECT_TRUE(res) << err;
        if (res)
            records = res->records;
    }
};

} // namespace

TEST(TraceFrontendTest, EmittedTraceMatchesFunctionalReExecution)
{
    EmittedTrace t;
    ASSERT_GT(t.records, 0u);
    std::string err;
    auto checked = trace::verifyTraceFidelity(t.tmp.path(), err);
    ASSERT_TRUE(checked) << err;
    EXPECT_EQ(*checked, t.records);
}

TEST(TraceFrontendTest, ReplayIsBitIdenticalAcrossRuns)
{
    EmittedTrace t;
    std::string err;
    auto file = trace::TraceFile::open(t.tmp.path(), err);
    ASSERT_TRUE(file) << err;

    for (const std::string &name : branch::predictorClientNames()) {
        auto c1 = branch::makePredictorClient(name);
        auto c2 = branch::makePredictorClient(name);
        ASSERT_TRUE(c1 && c2) << name;
        trace::TraceReader r1 = file->records();
        trace::TraceReader r2 = file->records();
        trace::ReplayStats s1 = trace::replayRecords(r1, *c1);
        trace::ReplayStats s2 = trace::replayRecords(r2, *c2);
        ASSERT_TRUE(r1.ok() && r2.ok()) << name;
        // The digest section folds in every counter and client stat;
        // equal sections = bit-identical replay.
        const auto sec1 = trace::replaySection(name, s1);
        const auto sec2 = trace::replaySection(name, s2);
        EXPECT_EQ(sec1.counters, sec2.counters) << name;
        EXPECT_EQ(sec1.ratios, sec2.ratios) << name;
        EXPECT_GT(s1.condBranches, 0u) << name;
    }
}

TEST(TraceFrontendTest, LoadedWorkloadReproducesDirectExecution)
{
    const std::uint64_t insts = 6'000, warmup = 1'000;
    EmittedTrace t(insts, warmup);
    std::string err;
    auto loaded = trace::loadTraceWorkload(t.tmp.path(), err);
    ASSERT_TRUE(loaded) << err;
    EXPECT_EQ(loaded->workload.name, t.wl.name);
    EXPECT_EQ(loaded->workload.entry, t.wl.entry);
    EXPECT_EQ(loaded->workload.slices.size(), t.wl.slices.size());

    sim::RunOptions opts;
    opts.maxMainInstructions = insts;
    opts.warmupInstructions = warmup;
    opts.check = true;

    sim::Simulator direct(sim::MachineConfig::fourWide());
    sim::Simulator viaTrace(sim::MachineConfig::fourWide());
    const auto a =
        sim::digestSection("slices", direct.run(t.wl, opts, true));
    const auto b = sim::digestSection(
        "slices", viaTrace.run(loaded->workload, opts, true));
    // Counter-exact equality: the reconstructed workload IS the
    // original as far as the timing core can tell.
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.ratios, b.ratios);
}

TEST(TraceFrontendTest, LoadRejectsRecordsOnlyTraces)
{
    TempFile tmp("norecs");
    trace::TraceMeta meta = recordsOnlyMeta();
    {
        trace::TraceWriter w(tmp.path(), meta);
        ASSERT_TRUE(w.finalize()) << w.error();
    }
    std::string err;
    EXPECT_FALSE(trace::loadTraceWorkload(tmp.path(), err));
    EXPECT_NE(err.find("no program section"), std::string::npos) << err;
}
