/**
 * @file
 * ISA tests: opcode traits consistency, encode/decode round-trips
 * (property-style over all opcodes and random operand fields), the
 * assembler's label resolution, and Program section management.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "isa/encoding.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

using namespace specslice;
using namespace specslice::isa;

TEST(OpTraits, EveryOpcodeHasTraits)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes);
         ++i) {
        const OpTraits &t = opTraits(static_cast<Opcode>(i));
        EXPECT_NE(t.mnemonic, nullptr);
        EXPECT_GE(t.latency, 1u);
        // An instruction is at most one of load/store/branch kinds.
        int kinds = t.isLoad + t.isStore + t.isCondBranch +
                    t.isUncondDirect + t.isIndirect;
        EXPECT_LE(kinds, 1) << t.mnemonic;
    }
}

TEST(OpTraits, ClassPredicates)
{
    EXPECT_TRUE(opTraits(Opcode::Ldq).isLoad);
    EXPECT_TRUE(opTraits(Opcode::Stq).isStore);
    EXPECT_TRUE(opTraits(Opcode::Beq).isCondBranch);
    EXPECT_TRUE(opTraits(Opcode::Br).isUncondDirect);
    EXPECT_TRUE(opTraits(Opcode::Jmp).isIndirect);
    EXPECT_TRUE(opTraits(Opcode::Call).isCall);
    EXPECT_TRUE(opTraits(Opcode::Ret).isReturn);
    EXPECT_TRUE(isControl(Opcode::CallR));
    EXPECT_FALSE(isControl(Opcode::Add));
    EXPECT_TRUE(isMem(Opcode::Prefetch));
    // CMOV reads its own destination.
    EXPECT_TRUE(opTraits(Opcode::CmovEq).readsRc);
    EXPECT_FALSE(opTraits(Opcode::Add).readsRc);
}

/** Property: encode/decode round-trips for every opcode. */
class EncodingRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EncodingRoundTrip, RandomFieldsSurvive)
{
    auto op = static_cast<Opcode>(GetParam());
    const OpTraits &t = opTraits(op);
    Rng rng(GetParam() * 977 + 13);

    for (int trial = 0; trial < 50; ++trial) {
        Instruction inst;
        inst.op = op;
        inst.ra = static_cast<RegIndex>(rng.below(numRegs));
        inst.rb = static_cast<RegIndex>(rng.below(numRegs));
        inst.rc = static_cast<RegIndex>(rng.below(numRegs));
        Addr pc = 0x10000 + rng.below(1 << 16) * instBytes;
        if (t.isCondBranch || t.isUncondDirect) {
            // A target within +-2^18 instructions.
            std::int64_t disp =
                static_cast<std::int64_t>(rng.below(1 << 19)) -
                (1 << 18);
            inst.target = static_cast<Addr>(
                static_cast<std::int64_t>(pc + instBytes) +
                disp * static_cast<std::int64_t>(instBytes));
        } else if (t.hasImm) {
            inst.imm = static_cast<std::int32_t>(rng.next());
        }

        Instruction back = decode(encode(inst, pc), pc);
        EXPECT_EQ(back.op, inst.op);
        if (t.readsRa || t.isCondBranch)
            EXPECT_EQ(back.ra, inst.ra);
        if (t.readsRb)
            EXPECT_EQ(back.rb, inst.rb);
        if (t.writesRc || t.readsRc)
            EXPECT_EQ(back.rc, inst.rc);
        if (t.isCondBranch || t.isUncondDirect)
            EXPECT_EQ(back.target, inst.target);
        else if (t.hasImm)
            EXPECT_EQ(back.imm, inst.imm);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodingRoundTrip,
    ::testing::Range(0u, static_cast<unsigned>(Opcode::NumOpcodes)));

TEST(AssemblerTest, ResolvesForwardAndBackwardLabels)
{
    Assembler as(0x1000);
    as.label("top");
    as.beq(1, "bottom");     // forward
    as.br("top");            // backward
    as.label("bottom");
    as.halt();
    CodeSection sec = as.finish();

    ASSERT_EQ(sec.code.size(), 3u);
    EXPECT_EQ(sec.code[0].target, 0x1010u);
    EXPECT_EQ(sec.code[1].target, 0x1000u);
}

TEST(AssemblerTest, HereTracksPosition)
{
    Assembler as(0x2000);
    EXPECT_EQ(as.here(), 0x2000u);
    as.nop();
    as.nop();
    EXPECT_EQ(as.here(), 0x2010u);
}

TEST(AssemblerTest, Ldi64ProducesExactValues)
{
    // Check via the functional path: assemble, then inspect the
    // emitted instruction sequences' semantics with known values.
    std::uint64_t values[] = {
        0,
        1,
        0x7fffffff,
        0xffffffff,
        0x100000000ull,
        0x123456789abcdef0ull,
        ~std::uint64_t{0},
        0x8000000000000000ull,
    };
    for (std::uint64_t v : values) {
        Assembler as(0x1000);
        as.ldi64(5, v);
        CodeSection sec = as.finish();
        // Interpret the (ldi/slli/ori) sequence directly.
        std::uint64_t r5 = 0;
        for (const Instruction &i : sec.code) {
            switch (i.op) {
              case Opcode::Ldi:
                r5 = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(i.imm));
                break;
              case Opcode::SllI:
                r5 <<= i.imm;
                break;
              case Opcode::OrI:
                r5 |= static_cast<std::uint32_t>(i.imm);
                break;
              default:
                FAIL() << "unexpected op in ldi64 expansion";
            }
        }
        EXPECT_EQ(r5, v) << "value 0x" << std::hex << v;
    }
}

TEST(ProgramTest, FetchAndSymbols)
{
    Assembler as(0x1000);
    as.label("entry");
    as.addi(1, 1, 5);
    as.halt();
    Program prog;
    prog.addSection(as.finish());
    prog.addSymbols(as.symbols());

    ASSERT_NE(prog.fetch(0x1000), nullptr);
    EXPECT_EQ(prog.fetch(0x1000)->op, Opcode::AddI);
    EXPECT_EQ(prog.fetch(0x2000), nullptr);
    EXPECT_EQ(prog.fetch(0x1004), nullptr);  // misaligned
    EXPECT_EQ(prog.symbol("entry"), 0x1000u);
    EXPECT_TRUE(prog.hasSymbol("entry"));
    EXPECT_FALSE(prog.hasSymbol("nope"));
    EXPECT_EQ(prog.staticSize(), 2u);
}

TEST(ProgramTest, FetchSectionBoundaries)
{
    Assembler a(0x1000), b(0x8000);
    a.nop();
    a.nop();
    a.nop();
    b.halt();
    Program prog;
    prog.addSection(a.finish());
    prog.addSection(b.finish());

    // First and last instruction of each section hit.
    EXPECT_NE(prog.fetch(0x1000), nullptr);
    EXPECT_NE(prog.fetch(0x1000 + 2 * instBytes), nullptr);
    EXPECT_NE(prog.fetch(0x8000), nullptr);
    // One past the end of a section misses.
    EXPECT_EQ(prog.fetch(0x1000 + 3 * instBytes), nullptr);
    EXPECT_EQ(prog.fetch(0x8000 + instBytes), nullptr);
    // Below the first section, in the inter-section gap, misaligned.
    EXPECT_EQ(prog.fetch(0x1000 - instBytes), nullptr);
    EXPECT_EQ(prog.fetch(0), nullptr);
    EXPECT_EQ(prog.fetch(0x4000), nullptr);
    EXPECT_EQ(prog.fetch(0x1000 + 1), nullptr);
    EXPECT_EQ(prog.fetch(0x8000 + instBytes / 2), nullptr);
    EXPECT_EQ(prog.fetch(~Addr{0}), nullptr);
}

TEST(ProgramTest, FetchSparseLayoutFallback)
{
    // Sections further apart than flatIndexLimit instructions exceed
    // the decode array's span and take the binary-search path.
    Addr far = 0x1000 + (Program::flatIndexLimit + 16) * instBytes;
    Assembler a(0x1000), b(far);
    a.nop();
    a.nop();
    b.halt();
    Program prog;
    prog.addSection(a.finish());
    prog.addSection(b.finish());

    EXPECT_EQ(prog.fetch(0x1000)->op, Opcode::Nop);
    EXPECT_EQ(prog.fetch(0x1000 + instBytes)->op, Opcode::Nop);
    EXPECT_EQ(prog.fetch(far)->op, Opcode::Halt);
    EXPECT_EQ(prog.fetch(0x1000 + 2 * instBytes), nullptr);
    EXPECT_EQ(prog.fetch(far + instBytes), nullptr);
    EXPECT_EQ(prog.fetch(far - instBytes), nullptr);
    EXPECT_EQ(prog.fetch(far + 1), nullptr);  // misaligned
    EXPECT_EQ(prog.fetch(0x800), nullptr);
}

TEST(ProgramTest, SectionsAddedOutOfOrder)
{
    Assembler lo(0x1000), hi(0x8000);
    lo.nop();
    hi.halt();
    Program prog;
    prog.addSection(hi.finish());  // high base first
    prog.addSection(lo.finish());

    EXPECT_EQ(prog.fetch(0x1000)->op, Opcode::Nop);
    EXPECT_EQ(prog.fetch(0x8000)->op, Opcode::Halt);
    ASSERT_EQ(prog.sections().size(), 2u);
    EXPECT_LT(prog.sections()[0].base, prog.sections()[1].base);
}

TEST(ProgramTest, CopiedProgramFetchesFromItsOwnStorage)
{
    Assembler as(0x1000);
    as.addi(1, 1, 5);
    Program copy;
    {
        Program orig;
        orig.addSection(as.finish());
        copy = orig;
        // The copy's decode array must point at the copy's sections,
        // not the original's.
        EXPECT_NE(copy.fetch(0x1000), orig.fetch(0x1000));
    }
    ASSERT_NE(copy.fetch(0x1000), nullptr);  // orig destroyed
    EXPECT_EQ(copy.fetch(0x1000)->op, Opcode::AddI);
    EXPECT_EQ(copy.fetch(0x1000), &copy.sections()[0].code[0]);
}

TEST(ProgramTest, MultipleSections)
{
    Assembler a(0x1000), b(0x8000);
    a.nop();
    b.halt();
    Program prog;
    prog.addSection(a.finish());
    prog.addSection(b.finish());
    EXPECT_EQ(prog.fetch(0x1000)->op, Opcode::Nop);
    EXPECT_EQ(prog.fetch(0x8000)->op, Opcode::Halt);
    EXPECT_EQ(prog.staticSize(), 2u);
}

TEST(ProgramTest, DisassembleContainsLabels)
{
    Assembler as(0x1000);
    as.label("fn");
    as.ret();
    Program prog;
    prog.addSection(as.finish());
    prog.addSymbols(as.symbols());
    std::string d = prog.disassemble();
    EXPECT_NE(d.find("fn:"), std::string::npos);
    EXPECT_NE(d.find("ret"), std::string::npos);
}

TEST(InstructionTest, DisassembleForms)
{
    Instruction add;
    add.op = Opcode::Add;
    add.rc = 3;
    add.ra = 1;
    add.rb = 2;
    EXPECT_EQ(add.disassemble(), "add r3, r1, r2");

    Instruction ld;
    ld.op = Opcode::Ldq;
    ld.rc = 4;
    ld.rb = 30;
    ld.imm = 16;
    EXPECT_EQ(ld.disassemble(), "ldq r4, 16(r30)");

    Instruction st;
    st.op = Opcode::Stq;
    st.ra = 7;
    st.rb = 30;
    st.imm = -8;
    EXPECT_EQ(st.disassemble(), "stq r7, -8(r30)");
}
