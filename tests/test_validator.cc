/**
 * @file
 * Slice-validator tests: a well-formed slice passes; each class of
 * authoring mistake (stores in slices, undeclared live-ins, missing
 * kills, runaway loops, out-of-body PGIs...) is caught. Also checks
 * that every shipped workload's slices validate cleanly.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "slice/validator.hh"
#include "workloads/workloads.hh"

using namespace specslice;
using namespace specslice::isa;
using namespace specslice::slice;

namespace
{

struct Fixture
{
    Program prog;
    SliceDescriptor sd;
};

/** A minimal valid main program + loop slice. */
Fixture
makeValid()
{
    Fixture s;
    Assembler as(0x10000);
    as.label("fork");
    as.addi(1, 1, 1);
    as.label("branch");
    as.beq(1, "kill");
    as.label("loopkill");
    as.addi(2, 2, 1);
    as.label("kill");
    as.halt();
    s.prog.addSection(as.finish());
    auto sym = as.symbols();

    Assembler sl(0x8000);
    sl.label("slice");
    sl.ldq(3, 21, 0);
    sl.label("pgi");
    sl.cmpeqi(regZero, 3, 0);
    sl.label("backedge");
    sl.br("slice");
    s.prog.addSection(sl.finish());
    auto ssym = sl.symbols();

    s.sd.name = "valid";
    s.sd.forkPc = sym.at("fork");
    s.sd.slicePc = ssym.at("slice");
    s.sd.staticSize = 3;
    s.sd.liveIns = {21};
    s.sd.maxLoopIters = 8;
    s.sd.loopBackEdgePc = ssym.at("backedge");
    PgiSpec pgi;
    pgi.sliceInstPc = ssym.at("pgi");
    pgi.problemBranchPc = sym.at("branch");
    pgi.loopKillPc = sym.at("loopkill");
    pgi.sliceKillPc = sym.at("kill");
    s.sd.pgis = {pgi};
    return s;
}

} // namespace

TEST(Validator, AcceptsWellFormedSlice)
{
    Fixture s = makeValid();
    auto v = validateSlice(s.sd, s.prog);
    EXPECT_TRUE(v.ok()) << v.summary();
}

TEST(Validator, RejectsUnmappedForkPc)
{
    Fixture s = makeValid();
    s.sd.forkPc = 0xdead0;
    EXPECT_FALSE(validateSlice(s.sd, s.prog).ok());
}

TEST(Validator, RejectsUndeclaredLiveIn)
{
    Fixture s = makeValid();
    s.sd.liveIns.clear();  // r21 now read-before-written, undeclared
    auto v = validateSlice(s.sd, s.prog);
    EXPECT_FALSE(v.ok());
    EXPECT_NE(v.summary().find("r21"), std::string::npos);
}

TEST(Validator, RejectsStoreInSlice)
{
    Fixture s = makeValid();
    Assembler sl(0x9000);
    sl.label("slice");
    sl.stq(1, 21, 0);  // illegal
    sl.sliceEnd();
    s.prog.addSection(sl.finish());
    s.sd.slicePc = 0x9000;
    s.sd.staticSize = 2;
    s.sd.maxLoopIters = 0;
    s.sd.loopBackEdgePc = invalidAddr;
    s.sd.pgis.clear();
    s.sd.prefetchLoadPcs = {};
    auto v = validateSlice(s.sd, s.prog);
    EXPECT_FALSE(v.ok());
    EXPECT_NE(v.summary().find("store"), std::string::npos);
}

TEST(Validator, RejectsRunawayLoop)
{
    Fixture s = makeValid();
    s.sd.maxLoopIters = 0;  // back-edge declared but no limit
    auto v = validateSlice(s.sd, s.prog);
    EXPECT_FALSE(v.ok());
    EXPECT_NE(v.summary().find("runaway"), std::string::npos);
}

TEST(Validator, RejectsPgiOutsideSlice)
{
    Fixture s = makeValid();
    s.sd.pgis[0].sliceInstPc = s.sd.forkPc;  // main-thread PC
    EXPECT_FALSE(validateSlice(s.sd, s.prog).ok());
}

TEST(Validator, RejectsNonBranchProblemPc)
{
    Fixture s = makeValid();
    s.sd.pgis[0].problemBranchPc = s.sd.forkPc;  // an addi
    EXPECT_FALSE(validateSlice(s.sd, s.prog).ok());
}

TEST(Validator, RejectsMissingSliceKill)
{
    Fixture s = makeValid();
    s.sd.pgis[0].sliceKillPc = invalidAddr;
    auto v = validateSlice(s.sd, s.prog);
    EXPECT_FALSE(v.ok());
    EXPECT_NE(v.summary().find("slice-kill"), std::string::npos);
}

TEST(Validator, RejectsSkipFirstWithoutLoopKill)
{
    Fixture s = makeValid();
    s.sd.pgis[0].loopKillPc = invalidAddr;
    s.sd.pgis[0].loopKillSkipFirst = true;
    EXPECT_FALSE(validateSlice(s.sd, s.prog).ok());
}

TEST(Validator, WarnsOnUselessSlice)
{
    Fixture s = makeValid();
    s.sd.pgis.clear();
    auto v = validateSlice(s.sd, s.prog);
    EXPECT_TRUE(v.ok());  // warnings only
    EXPECT_NE(v.summary().find("neither predictions nor prefetches"),
              std::string::npos);
}

TEST(Validator, EveryShippedWorkloadValidates)
{
    workloads::Params p;
    p.scale = 100'000;
    for (const auto &name : workloads::allWorkloadNames()) {
        auto wl = workloads::buildWorkload(name, p);
        for (const auto &sd : wl.slices) {
            auto v = validateSlice(sd, wl.program);
            EXPECT_TRUE(v.ok())
                << name << "/" << sd.name << ":\n" << v.summary();
            EXPECT_EQ(v.errorCount(), 0u);
        }
    }
}
