/**
 * @file
 * Unit tests for the common utilities: bit manipulation, saturating
 * counters, the deterministic RNG, and the stats package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/bitutils.hh"
#include "common/rng.hh"
#include "common/stats.hh"

using namespace specslice;

TEST(BitUtils, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(12));
}

TEST(BitUtils, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
}

TEST(BitUtils, MaskAndBits)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
    EXPECT_EQ(bits(0xabcd, 4, 8), 0xbcu);
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0xffffffffu, 32), -1);
    EXPECT_EQ(signExtend(0x100, 8), 0);  // upper bits ignored
}

TEST(SatCounterTest, SaturatesBothWays)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.taken());
    for (int i = 0; i < 10; ++i)
        c.update(true);
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.taken());
    for (int i = 0; i < 10; ++i)
        c.update(false);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.taken());
}

TEST(SatCounterTest, HysteresisAtMidpoint)
{
    SatCounter c(2, 1);   // weakly not-taken
    EXPECT_FALSE(c.taken());
    c.update(true);       // 2: weakly taken
    EXPECT_TRUE(c.taken());
    c.update(false);      // back to 1
    EXPECT_FALSE(c.taken());
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(RngTest, BelowIsInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(RngTest, UniformRoughlyBalanced)
{
    Rng r(99);
    int heads = 0;
    for (int i = 0; i < 10000; ++i)
        heads += r.chance(1, 2);
    EXPECT_GT(heads, 4600);
    EXPECT_LT(heads, 5400);
}

TEST(StatsTest, AddSetGet)
{
    StatGroup g("test");
    EXPECT_EQ(g.get("x"), 0u);
    g.add("x");
    g.add("x", 4);
    EXPECT_EQ(g.get("x"), 5u);
    g.set("x", 2);
    EXPECT_EQ(g.get("x"), 2u);
}

TEST(StatsTest, RatioHandlesZeroDenominator)
{
    StatGroup g;
    g.set("num", 10);
    // No denominator data: the ratio is undefined, not zero —
    // formatters turn the NaN into "n/a".
    EXPECT_TRUE(std::isnan(g.ratio("num", "den")));
    g.set("den", 4);
    EXPECT_DOUBLE_EQ(g.ratio("num", "den"), 2.5);
}

TEST(StatsTest, MergeSums)
{
    StatGroup a, b;
    a.add("x", 3);
    b.add("x", 4);
    b.add("y", 1);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 7u);
    EXPECT_EQ(a.get("y"), 1u);
}

TEST(StatsTest, ResetZeroesWithoutDropping)
{
    StatGroup g;
    g.add("x", 3);
    g.reset();
    EXPECT_EQ(g.get("x"), 0u);
    // Counters must survive a reset (zeroed in place, not erased):
    // a stat registered before the warm-up reset and never touched
    // afterwards still has to appear — as 0 — in the final dump.
    ASSERT_EQ(g.counters().size(), 1u);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("x"), std::string::npos);
    EXPECT_NE(os.str().find("0"), std::string::npos);
}

TEST(StatsTest, ResetPreservesHandles)
{
    StatGroup g;
    Stat &x = g.scalar("x");
    x += 7;
    g.reset();
    EXPECT_EQ(g.get("x"), 0u);
    // The registered handle stays valid and keeps counting into the
    // same storage after the reset.
    ++x;
    EXPECT_EQ(g.get("x"), 1u);
}
