/**
 * @file
 * Functional-executor tests: the architectural semantics of every
 * opcode class, fault behaviour, control flow, and the slice
 * no-stores rule.
 */

#include <gtest/gtest.h>

#include "arch/exec.hh"

using namespace specslice;
using namespace specslice::isa;
using arch::ExecResult;

namespace
{

constexpr Addr pc0 = 0x10000;

struct ExecFixture : ::testing::Test
{
    arch::RegFile regs;
    arch::MemoryImage mem;

    ExecResult
    run(Instruction i, bool allow_stores = true)
    {
        return arch::execute(i, pc0, regs, mem, allow_stores);
    }

    static Instruction
    rform(Opcode op, RegIndex rc, RegIndex ra, RegIndex rb)
    {
        Instruction i;
        i.op = op;
        i.rc = rc;
        i.ra = ra;
        i.rb = rb;
        return i;
    }

    static Instruction
    iform(Opcode op, RegIndex rc, RegIndex ra, std::int32_t imm)
    {
        Instruction i;
        i.op = op;
        i.rc = rc;
        i.ra = ra;
        i.imm = imm;
        return i;
    }
};

} // namespace

TEST_F(ExecFixture, IntegerAlu)
{
    regs.write(1, 7);
    regs.write(2, 3);
    run(rform(Opcode::Add, 3, 1, 2));
    EXPECT_EQ(regs.read(3), 10u);
    run(rform(Opcode::Sub, 3, 1, 2));
    EXPECT_EQ(regs.read(3), 4u);
    run(rform(Opcode::Mul, 3, 1, 2));
    EXPECT_EQ(regs.read(3), 21u);
    run(rform(Opcode::Div, 3, 1, 2));
    EXPECT_EQ(regs.read(3), 2u);
    run(rform(Opcode::Xor, 3, 1, 2));
    EXPECT_EQ(regs.read(3), 4u);
}

TEST_F(ExecFixture, DivByZeroYieldsZeroNotFault)
{
    regs.write(1, 7);
    regs.write(2, 0);
    auto r = run(rform(Opcode::Div, 3, 1, 2));
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(regs.read(3), 0u);
}

TEST_F(ExecFixture, SignedArithmeticAndShifts)
{
    regs.write(1, static_cast<std::uint64_t>(-8));
    run(iform(Opcode::SraI, 3, 1, 1));
    EXPECT_EQ(static_cast<std::int64_t>(regs.read(3)), -4);
    run(iform(Opcode::SrlI, 3, 1, 60));
    EXPECT_EQ(regs.read(3), 0xfu);
    regs.write(2, 2);
    run(rform(Opcode::CmpLt, 3, 1, 2));  // -8 < 2 signed
    EXPECT_EQ(regs.read(3), 1u);
    run(rform(Opcode::CmpUlt, 3, 1, 2));  // huge unsigned, not <
    EXPECT_EQ(regs.read(3), 0u);
}

TEST_F(ExecFixture, ScaledAdds)
{
    regs.write(1, 5);
    regs.write(2, 100);
    run(rform(Opcode::S4Add, 3, 1, 2));
    EXPECT_EQ(regs.read(3), 120u);
    run(rform(Opcode::S8Add, 3, 1, 2));
    EXPECT_EQ(regs.read(3), 140u);
}

TEST_F(ExecFixture, ConditionalMoves)
{
    regs.write(1, 0);
    regs.write(2, 42);
    regs.write(3, 7);
    run(rform(Opcode::CmovEq, 3, 1, 2));  // ra == 0: move
    EXPECT_EQ(regs.read(3), 42u);
    regs.write(3, 7);
    run(rform(Opcode::CmovNe, 3, 1, 2));  // ra == 0: keep
    EXPECT_EQ(regs.read(3), 7u);
    regs.write(1, static_cast<std::uint64_t>(-1));
    run(rform(Opcode::CmovLt, 3, 1, 2));  // ra < 0: move
    EXPECT_EQ(regs.read(3), 42u);
}

TEST_F(ExecFixture, ZeroRegisterIsImmutable)
{
    regs.write(1, 5);
    run(iform(Opcode::AddI, regZero, 1, 10));
    EXPECT_EQ(regs.read(regZero), 0u);
    // But the result value is still reported (PGIs rely on this).
    auto r = run(iform(Opcode::AddI, regZero, 1, 10));
    EXPECT_TRUE(r.wroteReg);
    EXPECT_EQ(r.value, 15u);
}

TEST_F(ExecFixture, FloatingPoint)
{
    regs.writeF(1, 2.5);
    regs.writeF(2, 1.25);
    run(rform(Opcode::FAdd, 3, 1, 2));
    EXPECT_DOUBLE_EQ(regs.readF(3), 3.75);
    run(rform(Opcode::FMul, 3, 1, 2));
    EXPECT_DOUBLE_EQ(regs.readF(3), 3.125);
    run(rform(Opcode::FCmpLt, 3, 2, 1));
    EXPECT_EQ(regs.read(3), 1u);
    run(rform(Opcode::FCmpLe, 3, 1, 1));
    EXPECT_EQ(regs.read(3), 1u);
    regs.write(4, static_cast<std::uint64_t>(-3));
    run(rform(Opcode::CvtIF, 5, 4, regZero));
    EXPECT_DOUBLE_EQ(regs.readF(5), -3.0);
    run(rform(Opcode::CvtFI, 6, 5, regZero));
    EXPECT_EQ(static_cast<std::int64_t>(regs.read(6)), -3);
}

TEST_F(ExecFixture, LoadsAndStores)
{
    mem.writeQ(0x20000, 0x1122334455667788ull);
    regs.write(1, 0x20000);

    Instruction ld;
    ld.op = Opcode::Ldq;
    ld.rc = 2;
    ld.rb = 1;
    ld.imm = 0;
    auto r = run(ld);
    EXPECT_EQ(regs.read(2), 0x1122334455667788ull);
    EXPECT_EQ(r.memAddr, 0x20000u);

    ld.op = Opcode::Ldl;  // sign-extended 32-bit
    mem.writeL(0x20008, 0x80000001u);
    ld.imm = 8;
    run(ld);
    EXPECT_EQ(static_cast<std::int64_t>(regs.read(2)),
              static_cast<std::int32_t>(0x80000001u));

    ld.op = Opcode::Ldbu;
    run(ld);
    EXPECT_EQ(regs.read(2), 0x01u);

    Instruction st;
    st.op = Opcode::Stq;
    st.ra = 2;
    st.rb = 1;
    st.imm = 16;
    regs.write(2, 99);
    run(st);
    EXPECT_EQ(mem.readQ(0x20010), 99u);
}

TEST_F(ExecFixture, NullPageFaults)
{
    regs.write(1, 8);  // inside the null page
    Instruction ld;
    ld.op = Opcode::Ldq;
    ld.rc = 2;
    ld.rb = 1;
    regs.write(2, 123);
    auto r = run(ld);
    EXPECT_TRUE(r.fault);
    EXPECT_EQ(regs.read(2), 123u);  // destination untouched
}

TEST_F(ExecFixture, SliceStoresFault)
{
    regs.write(1, 0x20000);
    Instruction st;
    st.op = Opcode::Stq;
    st.ra = 2;
    st.rb = 1;
    auto r = run(st, /*allow_stores=*/false);
    EXPECT_TRUE(r.fault);
    EXPECT_EQ(mem.readQ(0x20000), 0u);
}

TEST_F(ExecFixture, ConditionalBranchDirections)
{
    Instruction b;
    b.op = Opcode::Bgt;
    b.ra = 1;
    b.target = 0x12000;

    regs.write(1, 5);
    auto r = run(b);
    EXPECT_TRUE(r.taken);
    EXPECT_EQ(r.nextPc, 0x12000u);

    regs.write(1, 0);
    r = run(b);
    EXPECT_FALSE(r.taken);
    EXPECT_EQ(r.nextPc, pc0 + instBytes);

    b.op = Opcode::Ble;
    r = run(b);
    EXPECT_TRUE(r.taken);

    b.op = Opcode::Blt;
    regs.write(1, static_cast<std::uint64_t>(-1));
    r = run(b);
    EXPECT_TRUE(r.taken);
}

TEST_F(ExecFixture, CallsAndReturns)
{
    Instruction call;
    call.op = Opcode::Call;
    call.rc = regLink;
    call.target = 0x14000;
    auto r = run(call);
    EXPECT_EQ(r.nextPc, 0x14000u);
    EXPECT_EQ(regs.read(regLink), pc0 + instBytes);

    Instruction ret;
    ret.op = Opcode::Ret;
    ret.ra = regLink;
    r = run(ret);
    EXPECT_EQ(r.nextPc, pc0 + instBytes);

    Instruction callr;
    callr.op = Opcode::CallR;
    callr.rb = 5;
    callr.rc = regLink;
    regs.write(5, 0x18000);
    r = run(callr);
    EXPECT_EQ(r.nextPc, 0x18000u);
    EXPECT_EQ(regs.read(regLink), pc0 + instBytes);

    Instruction jmp;
    jmp.op = Opcode::Jmp;
    jmp.ra = 5;
    r = run(jmp);
    EXPECT_EQ(r.nextPc, 0x18000u);
}

TEST_F(ExecFixture, HaltAndSliceEnd)
{
    Instruction h;
    h.op = Opcode::Halt;
    EXPECT_TRUE(run(h).halted);
    Instruction s;
    s.op = Opcode::SliceEnd;
    EXPECT_TRUE(run(s).sliceEnded);
}

TEST(MemImgTest, LittleEndianAndSparse)
{
    arch::MemoryImage mem;
    mem.writeQ(0x5000, 0x0807060504030201ull);
    EXPECT_EQ(mem.readB(0x5000), 0x01u);
    EXPECT_EQ(mem.readB(0x5007), 0x08u);
    EXPECT_EQ(mem.readL(0x5000), 0x04030201u);
    // Unwritten memory reads zero.
    EXPECT_EQ(mem.readQ(0x999000), 0u);
    // Cross-page access works.
    mem.writeQ(0x5ffc, 0xaabbccddeeff1122ull);
    EXPECT_EQ(mem.readQ(0x5ffc), 0xaabbccddeeff1122ull);
}

TEST(MemImgTest, FaultPredicate)
{
    EXPECT_TRUE(arch::MemoryImage::faults(0));
    EXPECT_TRUE(arch::MemoryImage::faults(4095));
    EXPECT_FALSE(arch::MemoryImage::faults(4096));
}

TEST(MemImgTest, DoubleRoundTrip)
{
    arch::MemoryImage mem;
    mem.writeF(0x6000, 3.14159);
    EXPECT_DOUBLE_EQ(mem.readF(0x6000), 3.14159);
}
