/**
 * @file
 * Result-cache and cache-key tests: the canonical key is stable for
 * identical requests and moves when anything result-affecting moves,
 * the on-disk store round-trips payloads, rejects (and removes)
 * corrupted entries instead of serving them, evicts LRU-first under a
 * size cap, and converges when many threads store the same key at
 * once — the exactly-once property the sweep service's in-flight
 * dedup and worker-side commits rest on.
 */

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.hh"
#include "fault/fault.hh"
#include "sim/result_cache.hh"
#include "sim/run_key.hh"
#include "sim/serve_job.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

/** Fresh empty cache directory, removed on destruction. */
class TempCacheDir
{
  public:
    TempCacheDir()
    {
        static int counter = 0;
        path_ = (std::filesystem::temp_directory_path() /
                 ("ss_cache_test_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter++)))
                    .string();
        std::filesystem::remove_all(path_);
    }

    ~TempCacheDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** The entry file a key lands in (mirrors the two-level fanout). */
std::string
entryFile(const std::string &dir, const std::string &key)
{
    return dir + "/" + key.substr(0, 2) + "/" + key.substr(2);
}

sim::Workload
smallWorkload(const std::string &name = "vpr", std::uint64_t seed = 1)
{
    workloads::Params p;
    p.scale = 100'000;
    p.seed = seed;
    return workloads::buildWorkload(name, p);
}

/** A filled-in key request over stack-owned config/options. */
struct KeyFixture
{
    sim::Workload wl = smallWorkload();
    sim::MachineConfig cfg = sim::MachineConfig::fourWide();
    sim::RunOptions opts;

    KeyFixture()
    {
        opts.maxMainInstructions = 10'000;
        opts.warmupInstructions = 2'000;
        opts.intervalCycles = 10'000;
    }

    sim::RunKeyInputs
    inputs(bool with_slices = true)
    {
        sim::RunKeyInputs in;
        in.workload = &wl;
        in.dataSeed = 1;
        in.config = &cfg;
        in.options = &opts;
        in.withSlices = with_slices;
        return in;
    }
};

} // namespace

// ---------------------------------------------------------------
// Keys
// ---------------------------------------------------------------

TEST(RunKeyTest, IdenticalRequestsProduceIdenticalKeys)
{
    KeyFixture a, b;
    EXPECT_EQ(sim::runCacheKey(a.inputs()), sim::runCacheKey(b.inputs()));
    EXPECT_EQ(sim::runCacheKey(a.inputs()).size(), 64u);
}

TEST(RunKeyTest, EveryResultAffectingInputMovesTheKey)
{
    KeyFixture base;
    const std::string k0 = sim::runCacheKey(base.inputs());

    {
        KeyFixture f;
        f.opts.maxMainInstructions += 1;
        EXPECT_NE(sim::runCacheKey(f.inputs()), k0) << "insts";
    }
    {
        KeyFixture f;
        f.opts.warmupInstructions += 1;
        EXPECT_NE(sim::runCacheKey(f.inputs()), k0) << "warmup";
    }
    {
        KeyFixture f;
        f.cfg.windowSize *= 2;
        EXPECT_NE(sim::runCacheKey(f.inputs()), k0) << "config";
    }
    {
        KeyFixture f;
        f.opts.check = !f.opts.check;
        EXPECT_NE(sim::runCacheKey(f.inputs()), k0) << "check";
    }
    {
        KeyFixture f;
        f.opts.warmInstCache = !f.opts.warmInstCache;
        EXPECT_NE(sim::runCacheKey(f.inputs()), k0) << "icache warmth";
    }
    {
        KeyFixture f;
        f.opts.fastForwardInstructions = 5'000;
        EXPECT_NE(sim::runCacheKey(f.inputs()), k0) << "fastforward";
    }
    {
        KeyFixture f;
        f.wl = smallWorkload("vpr", 2);  // data seed
        auto in = f.inputs();
        in.dataSeed = 2;
        EXPECT_NE(sim::runCacheKey(in), k0) << "seed";
    }
    {
        KeyFixture f;
        EXPECT_NE(sim::runCacheKey(f.inputs(false)), k0)
            << "with_slices";
    }
}

TEST(RunKeyTest, ObservationOnlyOptionsDoNotMoveTheKey)
{
    KeyFixture a;
    const std::string k0 = sim::runCacheKey(a.inputs());

    // Save-checkpoint is a pure output path: same simulated numbers.
    KeyFixture b;
    b.opts.saveCheckpoint = "/tmp/whatever.ckpt";
    EXPECT_EQ(sim::runCacheKey(b.inputs()), k0);
}

TEST(RunKeyTest, TraceFileKeyedByContentNotPath)
{
    TempCacheDir dir;
    std::filesystem::create_directories(dir.path());
    const std::string a = dir.path() + "/a.sstr";
    const std::string b = dir.path() + "/renamed.sstr";
    { std::ofstream(a, std::ios::binary) << "sstr-bytes-v1"; }
    { std::ofstream(b, std::ios::binary) << "sstr-bytes-v1"; }

    KeyFixture plain;
    const std::string k0 = sim::runCacheKey(plain.inputs());

    // Trace mode never aliases workload mode.
    KeyFixture fa;
    fa.opts.traceFile = a;
    const std::string ka = sim::runCacheKey(fa.inputs());
    EXPECT_NE(ka, k0);

    // Identical bytes under a different path: same key. A cache hit
    // must be content-addressed, not path-addressed.
    KeyFixture fb;
    fb.opts.traceFile = b;
    EXPECT_EQ(sim::runCacheKey(fb.inputs()), ka);

    // Rewriting the file moves the key even though the path did not.
    { std::ofstream(b, std::ios::binary | std::ios::trunc)
          << "sstr-bytes-v2"; }
    EXPECT_NE(sim::runCacheKey(fb.inputs()), ka);

    // An unreadable trace gets a distinct, non-aliasing key rather
    // than silently matching some real file's hash.
    KeyFixture fm;
    fm.opts.traceFile = dir.path() + "/missing.sstr";
    const std::string km = sim::runCacheKey(fm.inputs());
    EXPECT_NE(km, k0);
    EXPECT_NE(km, ka);
}

TEST(RunKeyTest, JobSpecKeyIsStableAndValidates)
{
    sim::JobSpec spec;
    spec.workload = "vpr";
    spec.insts = 10'000;
    spec.warmup = 2'000;

    std::string e1, e2;
    const std::string k1 = sim::jobCacheKey(spec, e1);
    const std::string k2 = sim::jobCacheKey(spec, e2);
    EXPECT_EQ(k1, k2);
    EXPECT_EQ(k1.size(), 64u);

    sim::JobSpec other = spec;
    other.seed = 7;
    std::string e3;
    EXPECT_NE(sim::jobCacheKey(other, e3), k1);

    sim::JobSpec bad = spec;
    bad.workload = "nosuch";
    std::string err;
    EXPECT_EQ(sim::jobCacheKey(bad, err), "");
    EXPECT_NE(err.find("nosuch"), std::string::npos);
}

TEST(RunKeyTest, CheckpointKeyCoversIdentityAndDepth)
{
    sim::Workload wl = smallWorkload();
    const std::string k = sim::checkpointCacheKey(wl, 1, 10'000);
    EXPECT_EQ(k.size(), 16u);
    EXPECT_EQ(k, sim::checkpointCacheKey(wl, 1, 10'000));
    EXPECT_NE(k, sim::checkpointCacheKey(wl, 2, 10'000));
    EXPECT_NE(k, sim::checkpointCacheKey(wl, 1, 20'000));
    sim::Workload other = smallWorkload("mcf");
    EXPECT_NE(k, sim::checkpointCacheKey(other, 1, 10'000));
}

// ---------------------------------------------------------------
// Store
// ---------------------------------------------------------------

TEST(ResultCacheTest, StoreLookupRoundTrip)
{
    TempCacheDir dir;
    sim::ResultCache cache(dir.path());

    const std::string key(64, 'a');
    const std::string payload = "{\"cycles\": 123}\nwith a newline";
    EXPECT_FALSE(cache.lookup(key).has_value());
    std::string err;
    ASSERT_TRUE(cache.store(key, payload, err)) << err;

    auto back = cache.lookup(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.entryCount(), 1u);

    // A second cache over the same directory (another process, in
    // spirit) sees the entry.
    sim::ResultCache reopened(dir.path());
    auto again = reopened.lookup(key);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, payload);
}

TEST(ResultCacheTest, TruncatedEntryIsRejectedAndRemoved)
{
    TempCacheDir dir;
    sim::ResultCache cache(dir.path());
    const std::string key(64, 'b');
    std::string err;
    ASSERT_TRUE(cache.store(key, "a payload of some length", err));

    // Chop the file mid-payload.
    const std::string file = entryFile(dir.path(), key);
    ASSERT_TRUE(std::filesystem::exists(file));
    std::filesystem::resize_file(
        file, std::filesystem::file_size(file) - 5);

    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().rejected, 1u);
    // The corpse must be gone so the next store gets a clean slate.
    EXPECT_FALSE(std::filesystem::exists(file));
    ASSERT_TRUE(cache.store(key, "replacement", err));
    auto back = cache.lookup(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, "replacement");
}

TEST(ResultCacheTest, BadMagicIsRejected)
{
    TempCacheDir dir;
    sim::ResultCache cache(dir.path());
    const std::string key(64, 'c');
    std::string err;
    ASSERT_TRUE(cache.store(key, "payload", err));

    const std::string file = entryFile(dir.path(), key);
    {
        std::ofstream os(file, std::ios::trunc);
        os << "XXXX " << key << " 7\npayload";
    }
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_GE(cache.stats().rejected, 1u);
    EXPECT_FALSE(std::filesystem::exists(file));
}

TEST(ResultCacheTest, KeyMismatchInsideEntryIsRejected)
{
    // An entry renamed/copied to the wrong path must not be served
    // under the wrong key.
    TempCacheDir dir;
    sim::ResultCache cache(dir.path());
    const std::string key1(64, 'd'), key2(64, 'e');
    std::string err;
    ASSERT_TRUE(cache.store(key1, "payload-one", err));

    std::filesystem::create_directories(
        std::filesystem::path(entryFile(dir.path(), key2))
            .parent_path());
    std::filesystem::copy_file(entryFile(dir.path(), key1),
                               entryFile(dir.path(), key2));
    EXPECT_FALSE(cache.lookup(key2).has_value());
    EXPECT_GE(cache.stats().rejected, 1u);
}

TEST(ResultCacheTest, LruEvictionUnderSizeCap)
{
    TempCacheDir dir;
    // Cap fits ~3 payloads of 1000 bytes.
    sim::ResultCache cache(dir.path(), 3'000);

    const std::string payload(1'000, 'x');
    std::vector<std::string> keys;
    for (int i = 0; i < 3; ++i)
        keys.push_back(std::string(64, static_cast<char>('f' + i)));
    std::string err;
    for (const std::string &k : keys)
        ASSERT_TRUE(cache.store(k, payload, err)) << err;
    EXPECT_EQ(cache.entryCount(), 3u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // Touch the oldest so it is no longer LRU.
    EXPECT_TRUE(cache.lookup(keys[0]).has_value());

    // A fourth store must evict exactly one entry — keys[1], the
    // least recently used after the touch.
    const std::string k4(64, 'z');
    ASSERT_TRUE(cache.store(k4, payload, err));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.entryCount(), 3u);
    EXPECT_TRUE(cache.lookup(keys[0]).has_value());
    EXPECT_FALSE(cache.lookup(keys[1]).has_value());
    EXPECT_TRUE(cache.lookup(keys[2]).has_value());
    EXPECT_TRUE(cache.lookup(k4).has_value());
}

TEST(ResultCacheTest, ZeroCapMeansUnlimited)
{
    TempCacheDir dir;
    sim::ResultCache cache(dir.path(), 0);
    std::string err;
    for (int i = 0; i < 8; ++i) {
        std::string key = sha256Hex("unlimited " + std::to_string(i));
        ASSERT_TRUE(cache.store(key, std::string(10'000, 'y'), err));
    }
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.entryCount(), 8u);
}

TEST(ResultCacheTest, ConcurrentSameKeyStoresConvergeOnOneEntry)
{
    TempCacheDir dir;
    const std::string key(64, '9');
    const std::string payload(4'096, 'p');

    // Many threads, each with its own cache instance (the server's
    // worker processes in miniature), all storing the same key.
    std::vector<std::thread> threads;
    std::vector<int> failures(8, 0);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t]() {
            sim::ResultCache cache(dir.path());
            for (int i = 0; i < 5; ++i) {
                std::string err;
                if (!cache.store(key, payload, err))
                    failures[t] = 1;
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (int f : failures)
        EXPECT_EQ(f, 0);

    sim::ResultCache cache(dir.path());
    auto back = cache.lookup(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
    // Exactly one entry, listed exactly once.
    EXPECT_EQ(cache.entryCount(), 1u);
    // No stray temp files left behind in the fanout directory.
    unsigned files = 0;
    for (const auto &e : std::filesystem::recursive_directory_iterator(
             dir.path()))
        if (e.is_regular_file() &&
            e.path().filename().string().rfind("index", 0) != 0)
            ++files;
    EXPECT_EQ(files, 1u);
}

TEST(ResultCacheTest, ConcurrentMixedKeysAllLand)
{
    TempCacheDir dir;
    sim::ResultCache shared(dir.path());
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t]() {
            for (int i = 0; i < 10; ++i) {
                std::string key = sha256Hex(
                    "mixed " + std::to_string(t * 10 + i));
                std::string err;
                ASSERT_TRUE(
                    shared.store(key, "payload " + key, err));
                auto back = shared.lookup(key);
                ASSERT_TRUE(back.has_value());
                EXPECT_EQ(*back, "payload " + key);
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(shared.entryCount(), 40u);
}

// ---------------------------------------------------------------
// Corruption, degradation, scrub
// ---------------------------------------------------------------

namespace
{

/** XOR the file's last byte (the payload tail) in place. */
void
flipLastByte(const std::string &file)
{
    std::fstream fs(file,
                    std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(fs.good()) << file;
    fs.seekg(0, std::ios::end);
    std::streamoff len = fs.tellg();
    ASSERT_GT(len, 0);
    char c = 0;
    fs.seekg(len - 1);
    fs.read(&c, 1);
    c ^= 0x1;
    fs.seekp(len - 1);
    fs.write(&c, 1);
}

} // namespace

TEST(ResultCacheTest, FlippedPayloadByteIsQuarantinedOnRead)
{
    TempCacheDir dir;
    sim::ResultCache cache(dir.path());
    const std::string key(64, 'f');
    std::string err;
    ASSERT_TRUE(cache.store(key, "checksummed payload bytes", err))
        << err;

    const std::string file = entryFile(dir.path(), key);
    flipLastByte(file);

    // Silent corruption must never be served: checksum mismatch ->
    // miss, and the corpse moves to quarantine/ for postmortem.
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_EQ(cache.stats().quarantined, 1u);
    EXPECT_FALSE(std::filesystem::exists(file));
    EXPECT_TRUE(std::filesystem::exists(dir.path() + "/quarantine/" +
                                        key));

    // The slot is reusable immediately.
    ASSERT_TRUE(cache.store(key, "fresh replacement", err));
    auto back = cache.lookup(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, "fresh replacement");
}

TEST(ResultCacheTest, InjectedDiskFullDegradesToPassthrough)
{
    fault::FaultPlan plan;
    std::string perr;
    ASSERT_TRUE(
        fault::FaultPlan::parse("cache.enospc@n1", plan, perr))
        << perr;
    plan.seed = 7;
    fault::Injector inj(plan);
    fault::setServiceInjector(&inj);

    TempCacheDir dir;
    sim::ResultCache cache(dir.path());
    std::string err;
    const std::string key(64, 'e');
    // A full disk must not fail the run: the store is absorbed.
    EXPECT_TRUE(cache.store(key, "payload", err)) << err;
    fault::setServiceInjector(nullptr);

    EXPECT_TRUE(cache.degraded());
    EXPECT_EQ(cache.stats().passthrough, 1u);
    EXPECT_FALSE(cache.lookup(key).has_value());

    // Degradation is sticky: the injector is gone, but the cache
    // stays in pass-through for its lifetime.
    EXPECT_TRUE(cache.store(key, "payload", err));
    EXPECT_EQ(cache.stats().passthrough, 2u);
    EXPECT_FALSE(cache.lookup(key).has_value());
    EXPECT_EQ(cache.entryCount(), 0u);
}

TEST(ResultCacheTest, InjectedReadFlipRejectsEntry)
{
    TempCacheDir dir;
    sim::ResultCache cache(dir.path());
    const std::string key(64, 'a');
    std::string err;
    ASSERT_TRUE(cache.store(key, "healthy on disk", err)) << err;

    fault::FaultPlan plan;
    std::string perr;
    ASSERT_TRUE(fault::FaultPlan::parse("cache.flip@n1", plan, perr))
        << perr;
    plan.seed = 7;
    fault::Injector inj(plan);
    fault::setServiceInjector(&inj);
    // The flip tap corrupts the bytes between disk and caller; the
    // checksum catches it and the lookup misses instead of serving
    // garbage.
    EXPECT_FALSE(cache.lookup(key).has_value());
    fault::setServiceInjector(nullptr);
    EXPECT_EQ(cache.stats().rejected, 1u);
    EXPECT_EQ(cache.stats().quarantined, 1u);
}

TEST(ResultCacheTest, ScrubQuarantinesCorruptAndRepairsIndex)
{
    TempCacheDir dir;
    sim::ResultCache cache(dir.path());
    std::string err;
    const std::string k1(64, '1'), k2(64, '2'), k3(64, '3');
    ASSERT_TRUE(cache.store(k1, "payload one", err));
    ASSERT_TRUE(cache.store(k2, "payload two", err));
    ASSERT_TRUE(cache.store(k3, "payload three", err));

    // Corrupt k2 in place, delete k3 behind the cache's back, drop a
    // crashed writer's staging file next to k1.
    flipLastByte(entryFile(dir.path(), k2));
    std::filesystem::remove(entryFile(dir.path(), k3));
    std::ofstream(entryFile(dir.path(), k1) + ".tmp.9999") << "junk";

    sim::ResultCache::ScrubReport rep;
    ASSERT_TRUE(cache.scrub(rep, err)) << err;
    EXPECT_EQ(rep.scanned, 2u); // k3's file is already gone
    EXPECT_EQ(rep.ok, 1u);
    EXPECT_EQ(rep.quarantined, 1u);
    EXPECT_EQ(rep.deleted, 0u);
    EXPECT_EQ(rep.tmpRemoved, 1u);
    EXPECT_EQ(rep.indexDropped, 2u); // k2 corrupt + k3 missing
    EXPECT_EQ(rep.indexAdded, 0u);
    EXPECT_EQ(rep.bytes, std::string("payload one").size());

    EXPECT_EQ(cache.entryCount(), 1u);
    EXPECT_TRUE(cache.lookup(k1).has_value());
    EXPECT_TRUE(std::filesystem::exists(dir.path() + "/quarantine/" +
                                        k2));

    // --fsck-delete mode: corrupt entries are unlinked, not kept.
    ASSERT_TRUE(cache.store(k3, "fresh three", err));
    flipLastByte(entryFile(dir.path(), k3));
    ASSERT_TRUE(cache.scrub(rep, err, /*delete_corrupt=*/true)) << err;
    EXPECT_EQ(rep.deleted, 1u);
    EXPECT_FALSE(std::filesystem::exists(entryFile(dir.path(), k3)));

    // A lost index is rebuilt from the verified survivors.
    std::filesystem::remove(dir.path() + "/index");
    ASSERT_TRUE(cache.scrub(rep, err)) << err;
    EXPECT_EQ(rep.indexAdded, 1u);
    EXPECT_EQ(cache.entryCount(), 1u);
}
