/**
 * @file
 * Service-metrics registry tests: handle/registration semantics,
 * histogram percentile math and both render formats, and the
 * property the shared-memory page design exists for — values
 * recorded by forked workers survive the worker (even a SIGKILLed
 * one) and aggregate in the parent's scrape, with a respawned
 * worker resuming the dead one's page.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "obs/metrics.hh"

using namespace specslice;

namespace
{

/** Block until the peer writes one byte (returns false on EOF). */
bool
waitByte(int fd)
{
    char c;
    ssize_t n;
    do {
        n = ::read(fd, &c, 1);
    } while (n < 0 && errno == EINTR);
    return n == 1;
}

void
sendByte(int fd)
{
    char c = 1;
    ssize_t n;
    do {
        n = ::write(fd, &c, 1);
    } while (n < 0 && errno == EINTR);
    (void)n;
}

} // namespace

// ---------------------------------------------------------------
// Registration and handle semantics
// ---------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndIdempotentRegistration)
{
    obs::MetricsRegistry reg(1);

    obs::Counter c = reg.counter("t_requests_total", "requests");
    EXPECT_EQ(reg.value("t_requests_total"), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(reg.value("t_requests_total"), 5u);

    // Re-registering the same name is a lookup, not a new slot: both
    // handles feed one value.
    obs::Counter c2 = reg.counter("t_requests_total");
    c2.inc(10);
    EXPECT_EQ(reg.value("t_requests_total"), 15u);

    obs::Gauge g = reg.gauge("t_depth");
    g.set(7);
    EXPECT_EQ(reg.value("t_depth"), 7u);
    g.add(3);
    EXPECT_EQ(reg.value("t_depth"), 10u);
    g.set(2);
    EXPECT_EQ(reg.value("t_depth"), 2u);

    // Unregistered names read as zero rather than erroring: scrapes
    // must not crash on a name a worker never touched.
    EXPECT_EQ(reg.value("t_never_registered"), 0u);
}

TEST(MetricsRegistry, DefaultConstructedHandlesAreNoOps)
{
    // Deep layers (ResultCache, serve_job) hold default handles when
    // no ambient registry is installed; recording must be safe.
    obs::Counter c;
    obs::Gauge g;
    obs::Histogram h;
    c.inc();
    c.inc(100);
    g.set(5);
    g.add(2);
    h.observe(1234);
    SUCCEED();
}

TEST(MetricsRegistry, AmbientRegistryInstallAndClear)
{
    EXPECT_EQ(obs::ambientMetrics(), nullptr);
    {
        obs::MetricsRegistry reg(1);
        obs::setAmbientMetrics(&reg);
        EXPECT_EQ(obs::ambientMetrics(), &reg);
        obs::setAmbientMetrics(nullptr);
    }
    EXPECT_EQ(obs::ambientMetrics(), nullptr);
}

// ---------------------------------------------------------------
// Histograms: percentile math and rendering
// ---------------------------------------------------------------

TEST(MetricsRegistry, BucketBoundsAreStrictlyIncreasing)
{
    const std::uint64_t *bounds = obs::MetricsRegistry::bucketBounds();
    for (unsigned i = 1; i < obs::MetricsRegistry::numFiniteBuckets;
         ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]) << "bucket " << i;
}

TEST(MetricsRegistry, HistogramCountSumAndPercentiles)
{
    obs::MetricsRegistry reg(1);
    obs::Histogram h = reg.histogram("t_latency_usec", "latency");

    obs::MetricsRegistry::HistogramSnapshot snap;
    ASSERT_TRUE(reg.histogramSnapshot("t_latency_usec", snap));
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.percentile(0.5), 0.0);

    // A bimodal sample: 90 fast observations and 10 slow ones.
    for (int i = 0; i < 90; ++i)
        h.observe(100);
    for (int i = 0; i < 10; ++i)
        h.observe(50'000);

    ASSERT_TRUE(reg.histogramSnapshot("t_latency_usec", snap));
    EXPECT_EQ(snap.count, 100u);
    EXPECT_EQ(snap.sum, 90u * 100 + 10u * 50'000);

    const double p50 = snap.percentile(0.50);
    const double p95 = snap.percentile(0.95);
    const double p99 = snap.percentile(0.99);
    // p50 lands in the bucket covering 100us; p95/p99 in the one
    // covering 50ms. Exact values interpolate inside the bucket, so
    // assert containment and ordering rather than equality.
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, 1'000.0);
    EXPECT_GT(p95, 10'000.0);
    EXPECT_GE(p99, p95);
    EXPECT_GE(p95, p50);

    // An observation beyond every finite bound lands in +Inf and the
    // extreme percentile clamps to the largest finite bound instead
    // of inventing a number.
    h.observe(std::uint64_t(1) << 40);
    ASSERT_TRUE(reg.histogramSnapshot("t_latency_usec", snap));
    EXPECT_EQ(snap.count, 101u);
    const std::uint64_t *bounds = obs::MetricsRegistry::bucketBounds();
    const std::uint64_t largest =
        bounds[obs::MetricsRegistry::numFiniteBuckets - 1];
    EXPECT_LE(snap.percentile(1.0), double(largest));

    EXPECT_FALSE(reg.histogramSnapshot("t_no_such", snap));
}

TEST(MetricsRegistry, PrometheusAndJsonRenderingsAgree)
{
    obs::MetricsRegistry reg(1);
    obs::Counter c = reg.counter("t_hits_total", "cache hits");
    obs::Gauge g = reg.gauge("t_workers", "pool size");
    obs::Histogram h = reg.histogram("t_req_usec", "request latency");
    c.inc(3);
    g.set(4);
    h.observe(250);
    h.observe(750);

    const std::string prom = reg.renderPrometheus();
    EXPECT_NE(prom.find("# HELP t_hits_total cache hits"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE t_hits_total counter"),
              std::string::npos);
    EXPECT_NE(prom.find("t_hits_total 3\n"), std::string::npos);
    EXPECT_NE(prom.find("# TYPE t_workers gauge"), std::string::npos);
    EXPECT_NE(prom.find("t_workers 4\n"), std::string::npos);
    EXPECT_NE(prom.find("# TYPE t_req_usec histogram"),
              std::string::npos);
    EXPECT_NE(prom.find("t_req_usec_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(prom.find("t_req_usec_sum 1000\n"), std::string::npos);
    EXPECT_NE(prom.find("t_req_usec_count 2\n"), std::string::npos);

    // Cumulative le buckets: counts never decrease across the series.
    std::uint64_t prev = 0;
    std::size_t pos = 0, seen = 0;
    while ((pos = prom.find("t_req_usec_bucket{le=", pos)) !=
           std::string::npos) {
        std::size_t brace = prom.find("} ", pos);
        ASSERT_NE(brace, std::string::npos);
        std::uint64_t n = std::strtoull(
            prom.c_str() + brace + 2, nullptr, 10);
        EXPECT_GE(n, prev);
        prev = n;
        ++seen;
        pos = brace;
    }
    EXPECT_EQ(seen, obs::MetricsRegistry::numBuckets);

    const std::string json = reg.renderJson();
    EXPECT_NE(json.find("\"t_hits_total\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"t_workers\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"t_req_usec\": {"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"sum_usec\": 1000"), std::string::npos);
    EXPECT_NE(json.find("\"p50_usec\""), std::string::npos);
    EXPECT_NE(json.find("\"p95_usec\""), std::string::npos);
    EXPECT_NE(json.find("\"p99_usec\""), std::string::npos);
}

// ---------------------------------------------------------------
// Cross-process aggregation (the reason the pages are shared mmap)
// ---------------------------------------------------------------

TEST(MetricsCrossProcess, WorkerValuesSurviveSigkill)
{
    obs::MetricsRegistry reg(3);
    // Registration before fork: children inherit the schema.
    obs::Counter jobs = reg.counter("x_jobs_total");
    obs::Histogram lat = reg.histogram("x_job_usec");
    jobs.inc();  // parent page 0 contributes 1

    int ready[2];
    ASSERT_EQ(::pipe(ready), 0);

    pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Worker: bind page 1, record, report ready, then hang until
        // the parent SIGKILLs us mid-"job".
        reg.bindProcess(1);
        obs::Counter cj = reg.counter("x_jobs_total");
        obs::Histogram cl = reg.histogram("x_job_usec");
        cj.inc(5);
        cl.observe(2'000);
        cl.observe(3'000);
        sendByte(ready[1]);
        for (;;)
            ::pause();
        ::_exit(0);  // unreachable
    }

    ASSERT_TRUE(waitByte(ready[0]));
    ASSERT_EQ(::kill(child, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    // The dead worker's recorded values are still visible: the pages
    // live in the parent-owned shared mapping, not the worker.
    EXPECT_EQ(reg.value("x_jobs_total"), 6u);
    obs::MetricsRegistry::HistogramSnapshot snap;
    ASSERT_TRUE(reg.histogramSnapshot("x_job_usec", snap));
    EXPECT_EQ(snap.count, 2u);
    EXPECT_EQ(snap.sum, 5'000u);

    // A respawned worker resumes the same page: its increments stack
    // on top of its predecessor's, as the pool's respawn path relies
    // on.
    pid_t respawn = ::fork();
    ASSERT_GE(respawn, 0);
    if (respawn == 0) {
        reg.bindProcess(1);
        obs::Counter cj = reg.counter("x_jobs_total");
        cj.inc(2);
        ::_exit(0);
    }
    ASSERT_EQ(::waitpid(respawn, &status, 0), respawn);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    EXPECT_EQ(reg.value("x_jobs_total"), 8u);

    ::close(ready[0]);
    ::close(ready[1]);
}

TEST(MetricsCrossProcess, PagesIsolatePerProcessWrites)
{
    obs::MetricsRegistry reg(4);
    obs::Counter c = reg.counter("x_per_page_total");

    // Three "workers", each on its own page, each adding its index.
    for (unsigned w = 1; w <= 3; ++w) {
        pid_t child = ::fork();
        ASSERT_GE(child, 0);
        if (child == 0) {
            reg.bindProcess(w);
            obs::Counter cc = reg.counter("x_per_page_total");
            cc.inc(w);
            ::_exit(0);
        }
        int status = 0;
        ASSERT_EQ(::waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    // 1 + 2 + 3 across pages 1..3, nothing on the parent page.
    EXPECT_EQ(reg.value("x_per_page_total"), 6u);

    // The scrape renders the aggregated value, not any single page's.
    const std::string prom = reg.renderPrometheus();
    EXPECT_NE(prom.find("x_per_page_total 6\n"), std::string::npos);
}
