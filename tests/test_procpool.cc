/**
 * @file
 * ProcPool tests: the forked-worker tier underneath the sweep service.
 * Batches come back complete and in submission order, a thrown
 * exception is a typed Failed result, a worker killed with SIGKILL
 * mid-job surfaces as one Crashed result and is replaced by a fresh
 * fork (with the rest of the batch unaffected), and an idle pool
 * burns ~no CPU — the workers block on the shared condvar rather
 * than spinning.
 */

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/proc_pool.hh"

using namespace specslice;

namespace
{

/** Sort a batch's results into ticket order. */
void
byTicket(std::vector<sim::ProcPool::Result> &rs)
{
    std::sort(rs.begin(), rs.end(),
              [](const auto &a, const auto &b) {
                  return a.ticket < b.ticket;
              });
}

/** utime+stime clock ticks of a process, from /proc/<pid>/stat. */
long
cpuTicks(int pid)
{
    std::ifstream is("/proc/" + std::to_string(pid) + "/stat");
    std::string line;
    if (!std::getline(is, line))
        return -1;
    // Field 2 (comm) may contain spaces; skip past its closing paren.
    auto paren = line.rfind(')');
    std::istringstream rest(line.substr(paren + 2));
    std::string tok;
    long utime = 0, stime = 0;
    // Fields 3..15 after comm: state, ppid, ..., utime(14), stime(15).
    for (int field = 3; field <= 15 && (rest >> tok); ++field) {
        if (field == 14)
            utime = std::atol(tok.c_str());
        if (field == 15)
            stime = std::atol(tok.c_str());
    }
    return utime + stime;
}

} // namespace

TEST(ProcPoolTest, BatchCompletesInSubmissionOrder)
{
    sim::ProcPool pool(3, [](const std::string &in) {
        return "echo:" + in;
    });
    EXPECT_EQ(pool.workerCount(), 3u);

    std::vector<std::string> jobs;
    for (int i = 0; i < 20; ++i)
        jobs.push_back("job" + std::to_string(i));
    auto results = pool.runBatch(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].status, sim::ProcPool::JobStatus::Done);
        EXPECT_EQ(results[i].payload, "echo:" + jobs[i]);
    }
    EXPECT_EQ(pool.respawns(), 0u);
    EXPECT_EQ(pool.inFlight(), 0u);
}

TEST(ProcPoolTest, ThrownExceptionBecomesFailedResult)
{
    sim::ProcPool pool(2, [](const std::string &in) -> std::string {
        if (in == "bad")
            throw std::runtime_error("worker exception text");
        return "ok:" + in;
    });
    auto results = pool.runBatch({"fine", "bad", "alsofine"});
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].status, sim::ProcPool::JobStatus::Done);
    EXPECT_EQ(results[1].status, sim::ProcPool::JobStatus::Failed);
    EXPECT_NE(results[1].payload.find("worker exception text"),
              std::string::npos);
    EXPECT_EQ(results[2].status, sim::ProcPool::JobStatus::Done);
    // The throw must not cost the pool a worker.
    EXPECT_EQ(pool.respawns(), 0u);
}

TEST(ProcPoolTest, OversizedPayloadIsRefusedUpFront)
{
    sim::ProcPool pool(1, [](const std::string &in) { return in; });
    std::string err;
    std::string huge(sim::ProcPool::maxPayloadBytes + 1, 'x');
    EXPECT_EQ(pool.submit(huge, err), 0u);
    EXPECT_FALSE(err.empty());
    // And the pool still works afterwards.
    auto results = pool.runBatch({"small"});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, sim::ProcPool::JobStatus::Done);
}

TEST(ProcPoolTest, SigkilledWorkerIsReportedCrashedAndRespawned)
{
    sim::ProcPool pool(1, [](const std::string &in) -> std::string {
        if (in == "hang")
            for (;;)
                ::usleep(10'000);
        return "done:" + in;
    });
    ASSERT_EQ(pool.workerCount(), 1u);
    std::vector<int> before = pool.workerPids();
    ASSERT_EQ(before.size(), 1u);

    std::string err;
    std::uint64_t ticket = pool.submit("hang", err);
    ASSERT_NE(ticket, 0u) << err;
    // Let the worker pick the job up, then kill it hard.
    ::usleep(200 * 1000);
    ASSERT_EQ(::kill(before[0], SIGKILL), 0);

    // The crash must surface as a typed result for that ticket.
    std::vector<sim::ProcPool::Result> results;
    for (int tries = 0; tries < 100 && results.empty(); ++tries) {
        auto batch = pool.poll(100);
        results.insert(results.end(), batch.begin(), batch.end());
    }
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].ticket, ticket);
    EXPECT_EQ(results[0].status, sim::ProcPool::JobStatus::Crashed);
    EXPECT_NE(results[0].payload.find("signal"), std::string::npos);

    // A replacement worker exists and serves new jobs.
    EXPECT_EQ(pool.respawns(), 1u);
    std::vector<int> after = pool.workerPids();
    ASSERT_EQ(after.size(), 1u);
    EXPECT_NE(after[0], before[0]);
    auto again = pool.runBatch({"next"});
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].status, sim::ProcPool::JobStatus::Done);
    EXPECT_EQ(again[0].payload, "done:next");
}

TEST(ProcPoolTest, CrashMidBatchOnlyLosesTheCrashedJob)
{
    // With several workers, killing one mid-batch must cost exactly
    // the job it held; every other job completes normally.
    sim::ProcPool pool(3, [](const std::string &in) -> std::string {
        if (in == "hang")
            for (;;)
                ::usleep(10'000);
        ::usleep(20'000);
        return "ok:" + in;
    });

    std::vector<std::string> jobs = {"a", "hang", "b", "c", "d", "e"};
    std::vector<std::uint64_t> tickets;
    std::string err;
    for (const std::string &j : jobs) {
        std::uint64_t t = pool.submit(j, err);
        ASSERT_NE(t, 0u) << err;
        tickets.push_back(t);
    }
    ::usleep(150 * 1000);
    // Kill every current worker: one of them is holding "hang" (the
    // others may already be onto later jobs — their in-flight jobs
    // crash too, which the final accounting below absorbs by only
    // requiring every ticket to settle exactly once).
    std::vector<int> pids = pool.workerPids();
    ASSERT_FALSE(pids.empty());
    for (int pid : pids)
        ::kill(pid, SIGKILL);

    std::vector<sim::ProcPool::Result> results;
    for (int tries = 0; tries < 200 && results.size() < jobs.size();
         ++tries) {
        auto batch = pool.poll(100);
        results.insert(results.end(), batch.begin(), batch.end());
    }
    ASSERT_EQ(results.size(), jobs.size());
    byTicket(results);
    unsigned crashed = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].ticket, tickets[i]);
        if (results[i].status == sim::ProcPool::JobStatus::Crashed)
            ++crashed;
        else
            EXPECT_EQ(results[i].status,
                      sim::ProcPool::JobStatus::Done);
    }
    // "hang" definitely crashed; jobs still queued at kill time were
    // re-picked by respawned workers and finished.
    EXPECT_GE(crashed, 1u);
    EXPECT_GE(pool.respawns(), 1u);
    EXPECT_EQ(pool.inFlight(), 0u);
}

TEST(ProcPoolTest, IdleWorkersBlockInsteadOfSpinning)
{
    sim::ProcPool pool(4, [](const std::string &in) { return in; });
    // Prove the pipeline is live first.
    auto warm = pool.runBatch({"x"});
    ASSERT_EQ(warm.size(), 1u);

    std::vector<int> pids = pool.workerPids();
    ASSERT_EQ(pids.size(), 4u);
    std::vector<long> before;
    for (int pid : pids)
        before.push_back(cpuTicks(pid));

    // Half a second of enforced idleness.
    ::usleep(500 * 1000);

    // A spinning worker would burn ~50 ticks (at USER_HZ=100) in that
    // window; a blocked one advances at most a tick or two.
    for (std::size_t i = 0; i < pids.size(); ++i) {
        long after = cpuTicks(pids[i]);
        ASSERT_GE(after, 0);
        ASSERT_GE(before[i], 0);
        EXPECT_LE(after - before[i], 5)
            << "worker " << pids[i] << " burned CPU while idle";
    }
}

TEST(ProcPoolTest, PoisonJobIsFailedPermanentlyAfterAttemptCap)
{
    sim::ProcPool pool(
        2,
        [](const std::string &in) -> std::string {
            if (in == "poison")
                ::raise(SIGKILL);
            return "ok:" + in;
        },
        /*max_job_attempts=*/3);

    std::string err;
    std::uint64_t ticket = pool.submit("poison", err);
    ASSERT_NE(ticket, 0u) << err;

    std::vector<sim::ProcPool::Result> results;
    for (int tries = 0; tries < 200 && results.empty(); ++tries) {
        auto batch = pool.poll(100);
        results.insert(results.end(), batch.begin(), batch.end());
    }
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].ticket, ticket);
    EXPECT_EQ(results[0].status, sim::ProcPool::JobStatus::Poisoned);
    EXPECT_NE(results[0].payload.find("poisoned"), std::string::npos);
    // 3 attempts = 2 requeues; every crash cost (and replaced) a
    // worker.
    EXPECT_EQ(pool.crashRetries(), 2u);
    EXPECT_GE(pool.respawns(), 3u);
    EXPECT_EQ(pool.inFlight(), 0u);

    // The poison job must not have wedged the pool.
    auto after = pool.runBatch({"still"});
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].status, sim::ProcPool::JobStatus::Done);
    EXPECT_EQ(after[0].payload, "ok:still");
}

TEST(ProcPoolTest, TransientCrashIsRetriedToSuccess)
{
    // The job crashes its worker twice, then succeeds: cross-process
    // attempt memory lives in a scratch file (workers are forks and
    // share the cwd).
    const std::string marker =
        "procpool_retry_" + std::to_string(::getpid()) + ".tmp";
    ::unlink(marker.c_str());
    sim::ProcPool pool(
        1,
        [marker](const std::string &in) -> std::string {
            if (in != "flaky")
                return "ok";
            std::ifstream is(marker);
            std::string text((std::istreambuf_iterator<char>(is)),
                             std::istreambuf_iterator<char>());
            if (text.size() >= 2)
                return "survived";
            std::ofstream(marker, std::ios::app) << "x";
            ::raise(SIGKILL);
            return "unreachable";
        },
        /*max_job_attempts=*/3);

    std::string err;
    std::uint64_t ticket = pool.submit("flaky", err);
    ASSERT_NE(ticket, 0u) << err;
    std::vector<sim::ProcPool::Result> results;
    for (int tries = 0; tries < 200 && results.empty(); ++tries) {
        auto batch = pool.poll(100);
        results.insert(results.end(), batch.begin(), batch.end());
    }
    ::unlink(marker.c_str());
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].ticket, ticket);
    EXPECT_EQ(results[0].status, sim::ProcPool::JobStatus::Done);
    EXPECT_EQ(results[0].payload, "survived");
    EXPECT_EQ(pool.crashRetries(), 2u);
}

TEST(ProcPoolTest, KillActiveCondemnsJobDespiteRetryBudget)
{
    sim::ProcPool pool(
        1,
        [](const std::string &in) -> std::string {
            if (in == "hang")
                for (;;)
                    ::usleep(100 * 1000);
            return "ok:" + in;
        },
        /*max_job_attempts=*/5);

    std::string err;
    std::uint64_t ticket = pool.submit("hang", err);
    ASSERT_NE(ticket, 0u) << err;
    // Give the worker time to pick the job up and publish its ticket.
    bool killed = false;
    for (int tries = 0; tries < 100 && !killed; ++tries) {
        ::usleep(50 * 1000);
        killed = pool.killActive(ticket);
    }
    ASSERT_TRUE(killed);
    EXPECT_FALSE(pool.killActive(ticket + 999)); // unknown ticket

    std::vector<sim::ProcPool::Result> results;
    for (int tries = 0; tries < 200 && results.empty(); ++tries) {
        auto batch = pool.poll(100);
        results.insert(results.end(), batch.begin(), batch.end());
    }
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].ticket, ticket);
    // Condemned: surfaces as Crashed once, never re-queued.
    EXPECT_EQ(results[0].status, sim::ProcPool::JobStatus::Crashed);
    EXPECT_EQ(pool.crashRetries(), 0u);
    EXPECT_EQ(pool.inFlight(), 0u);

    auto after = pool.runBatch({"next"});
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].status, sim::ProcPool::JobStatus::Done);
}

TEST(ProcPoolTest, CancelQueuedRetiresUnstartedJob)
{
    sim::ProcPool pool(1, [](const std::string &in) -> std::string {
        if (in == "hang")
            for (;;)
                ::usleep(100 * 1000);
        return "ok:" + in;
    });

    std::string err;
    std::uint64_t running = pool.submit("hang", err);
    ASSERT_NE(running, 0u) << err;
    // Wait until the single worker owns "hang" so the next submit
    // stays queued.
    bool picked = false;
    for (int tries = 0; tries < 100 && !picked; ++tries) {
        ::usleep(50 * 1000);
        picked = pool.queueDepth() == 0;
    }
    ASSERT_TRUE(picked);
    std::uint64_t queued = pool.submit("never-runs", err);
    ASSERT_NE(queued, 0u) << err;
    EXPECT_EQ(pool.inFlight(), 2u);

    EXPECT_TRUE(pool.cancelQueued(queued));
    EXPECT_FALSE(pool.cancelQueued(queued)); // already gone
    EXPECT_FALSE(pool.cancelQueued(running)); // running, not queued
    EXPECT_EQ(pool.inFlight(), 1u);
    EXPECT_EQ(pool.queueDepth(), 0u);

    // Unblock the lane and confirm only the running job reports.
    ASSERT_TRUE(pool.killActive(running));
    std::vector<sim::ProcPool::Result> results;
    for (int tries = 0; tries < 200 && results.empty(); ++tries) {
        auto batch = pool.poll(100);
        results.insert(results.end(), batch.begin(), batch.end());
    }
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].ticket, running);
    EXPECT_EQ(results[0].status, sim::ProcPool::JobStatus::Crashed);
    EXPECT_EQ(pool.inFlight(), 0u);
}
