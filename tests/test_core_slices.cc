/**
 * @file
 * Core-level slice-execution tests (Section 4): forking and register
 * communication, the ignored-fork rule, fork-squash on wrong paths,
 * slice termination by iteration limit / fault / SliceEnd, the
 * prefetch effect through the shared L1D, and end-to-end prediction
 * delivery through the correlator.
 */

#include <gtest/gtest.h>

#include "arch/memimg.hh"
#include "core/smt_core.hh"
#include "isa/assembler.hh"
#include "isa/program.hh"

using namespace specslice;
using namespace specslice::isa;

namespace
{

constexpr Addr codeBase = 0x10000;
constexpr Addr sliceBase = 0x8000;
constexpr Addr dataBase = 0x100000;

core::RunOptions
quickOpts(std::uint64_t n = 200'000)
{
    core::RunOptions o;
    o.maxMainInstructions = n;
    return o;
}

/**
 * A mini-workload: a loop that loads a pointer-chased value and
 * branches on it. The slice mirrors the chase one element ahead.
 * Returns {program, descriptor}.
 */
struct Mini
{
    Program prog;
    slice::SliceDescriptor sd;
    Addr entry;
};

Mini
makeChase(unsigned iterations, unsigned max_iters = 64)
{
    Assembler as(codeBase);
    as.label("start");
    as.ldi64(30, dataBase);
    as.ldi(2, static_cast<std::int32_t>(iterations));
    as.ldq(21, 30, 0);             // head pointer (live-in)
    as.label("outer");
    as.label("work_fn");           // fork PC
    // Filler so the slice has lead time.
    for (int i = 0; i < 10; ++i)
        as.addi(9, 9, 1);
    as.ldq(15, 21, 8);             // node->val      (problem load)
    as.andi(16, 15, 1);
    as.label("problem_branch");
    as.beq(16, "skip");            // problem branch
    as.addi(25, 25, 1);
    as.label("skip");
    as.label("tail");              // loop kill
    as.ldq(21, 21, 0);             // advance
    as.subi(2, 2, 1);
    as.label("region_end");        // slice kill
    as.bgt(2, "outer");
    as.halt();
    Mini m;
    m.prog.addSection(as.finish());
    auto sym = as.symbols();

    Assembler sl(sliceBase);
    sl.label("slice");
    sl.ldq(15, 21, 8);
    sl.label("slice_pgi");
    sl.andi(regZero, 15, 1);
    sl.ldq(21, 21, 0);
    sl.label("slice_backedge");
    sl.br("slice");
    m.prog.addSection(sl.finish());
    auto ssym = sl.symbols();
    m.prog.addSymbols(sym);
    m.prog.addSymbols(ssym);
    m.entry = sym.at("start");

    m.sd.name = "mini";
    m.sd.forkPc = sym.at("work_fn");
    m.sd.slicePc = ssym.at("slice");
    m.sd.liveIns = {21};
    m.sd.maxLoopIters = max_iters;
    m.sd.loopBackEdgePc = ssym.at("slice_backedge");
    m.sd.staticSize = 4;
    m.sd.staticSizeInLoop = 4;
    slice::PgiSpec pgi;
    pgi.sliceInstPc = ssym.at("slice_pgi");
    pgi.problemBranchPc = sym.at("problem_branch");
    pgi.invert = true;  // beq taken iff (val & 1) == 0
    pgi.loopKillPc = sym.at("tail");
    pgi.sliceKillPc = sym.at("region_end");
    m.sd.pgis = {pgi};
    return m;
}

/** Scattered circular list with pseudo-random values. */
void
initChase(arch::MemoryImage &mem, unsigned nodes,
          std::uint64_t span = 1u << 20)
{
    Addr first = dataBase + 0x1000;
    std::uint64_t x = 88172645463325252ull;
    Addr prev = first;
    mem.writeQ(dataBase, first);
    for (unsigned i = 1; i <= nodes; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        Addr node = (i == nodes)
                        ? first
                        : dataBase + 0x1000 + (x % span) / 64 * 64;
        if (node == prev)
            node += 64;
        mem.writeQ(prev + 8, x >> 32);
        mem.writeQ(prev + 0, node);
        prev = node;
    }
}

} // namespace

TEST(CoreSlices, ForksAndGeneratesPredictions)
{
    Mini m = makeChase(2000);
    arch::MemoryImage mem;
    initChase(mem, 4096);
    core::CoreConfig cfg = core::CoreConfig::fourWide();
    core::SmtCore machine(cfg, m.prog, mem);
    machine.loadSlice(m.sd);
    auto res = machine.run(m.entry, quickOpts());

    EXPECT_GT(res.forks, 100u);
    EXPECT_GT(res.predictionsGenerated, 100u);
    EXPECT_GT(res.correlatorUsed + res.latePredictions, 100u);
    // The slice mirrors the main computation exactly: overrides are
    // essentially always right.
    EXPECT_LE(res.correlatorWrong * 100, res.correlatorUsed * 2 + 100);
}

TEST(CoreSlices, DisabledSlicesNeverFork)
{
    Mini m = makeChase(500);
    arch::MemoryImage mem;
    initChase(mem, 1024);
    core::CoreConfig cfg = core::CoreConfig::fourWide();
    cfg.slicesEnabled = false;
    core::SmtCore machine(cfg, m.prog, mem);
    machine.loadSlice(m.sd);
    auto res = machine.run(m.entry, quickOpts());
    EXPECT_EQ(res.forks, 0u);
    EXPECT_EQ(res.sliceFetched, 0u);
}

TEST(CoreSlices, SingleContextIgnoresForks)
{
    Mini m = makeChase(500);
    arch::MemoryImage mem;
    initChase(mem, 1024);
    core::CoreConfig cfg = core::CoreConfig::fourWide();
    cfg.numThreads = 1;  // no idle helper contexts at all
    core::SmtCore machine(cfg, m.prog, mem);
    machine.loadSlice(m.sd);
    auto res = machine.run(m.entry, quickOpts());
    EXPECT_EQ(res.forks, 0u);
    EXPECT_GT(res.forksIgnored, 100u);
}

TEST(CoreSlices, MaxIterationCountBoundsSliceLength)
{
    Mini m = makeChase(400, /*max_iters=*/3);
    arch::MemoryImage mem;
    initChase(mem, 1024);
    core::CoreConfig cfg = core::CoreConfig::fourWide();
    core::SmtCore machine(cfg, m.prog, mem);
    machine.loadSlice(m.sd);
    auto res = machine.run(m.entry, quickOpts());
    ASSERT_GT(res.forks, 50u);
    // 4 instructions per iteration, at most 3 iterations (runaway
    // protection) — slices may be cut shorter by dead-entry stops.
    EXPECT_LE(res.sliceFetched, res.forks * (3 * 4 + 2));
}

TEST(CoreSlices, NullDereferenceTerminatesSlice)
{
    // Non-circular chase: the last node's next is null; slices that
    // run past the end dereference null and must terminate instead of
    // running away ("linked list traversals will automatically
    // terminate", Section 3.2).
    Mini m = makeChase(40, 64);
    arch::MemoryImage mem;
    // Short list ending in null.
    Addr first = dataBase + 0x1000;
    mem.writeQ(dataBase, first);
    Addr prev = first;
    for (int i = 0; i < 8; ++i) {
        Addr node = first + (i + 1) * 128;
        mem.writeQ(prev + 8, i * 3 + 1);
        mem.writeQ(prev + 0, i == 7 ? 0 : node);
        prev = node;
    }
    // Main walks exactly 8 nodes (iterations = 8) then halts.
    Mini m8 = makeChase(8, 64);
    arch::MemoryImage mem8;
    mem8.writeQ(dataBase, first);
    prev = first;
    for (int i = 0; i < 9; ++i) {
        Addr node = first + (i + 1) * 128;
        mem8.writeQ(prev + 8, i * 3 + 1);
        mem8.writeQ(prev + 0, i == 8 ? 0 : node);
        prev = node;
    }
    core::CoreConfig cfg = core::CoreConfig::fourWide();
    core::SmtCore machine(cfg, m8.prog, mem8);
    machine.loadSlice(m8.sd);
    auto res = machine.run(m8.entry, quickOpts());
    EXPECT_GT(res.detail.get("slice_faults"), 0u);
    // And the machine still completed the program.
    EXPECT_GT(res.mainRetired, 8u);
}

TEST(CoreSlices, RegisterCommunicationCopiesLiveIns)
{
    // The slice's predictions are computed from the live-in pointer;
    // if the copy were broken the slice would fault immediately and
    // generate nothing.
    Mini m = makeChase(1000);
    arch::MemoryImage mem;
    initChase(mem, 2048);
    core::CoreConfig cfg = core::CoreConfig::fourWide();
    core::SmtCore machine(cfg, m.prog, mem);
    machine.loadSlice(m.sd);
    auto res = machine.run(m.entry, quickOpts());
    EXPECT_EQ(res.detail.get("slice_faults"), 0u);
    EXPECT_GT(res.predictionsGenerated, res.forks / 2);
}

TEST(CoreSlices, SlicePrefetchCoversMainMisses)
{
    Mini m = makeChase(3000);
    arch::MemoryImage mem, mem2;
    initChase(mem, 16384, 8u << 20);   // 8 MB footprint: misses
    initChase(mem2, 16384, 8u << 20);

    core::CoreConfig cfg = core::CoreConfig::fourWide();
    core::SmtCore base(cfg, m.prog, mem);
    auto b = base.run(m.entry, quickOpts());

    core::SmtCore sliced(cfg, m.prog, mem2);
    sliced.loadSlice(m.sd);
    auto s = sliced.run(m.entry, quickOpts());

    EXPECT_GT(b.l1dMissesMain, 500u);
    EXPECT_GT(s.coveredMisses + s.detail.get("delayed_hits"), 200u);
    EXPECT_LT(s.cycles, b.cycles);  // net win on a chase workload
}

TEST(CoreSlices, ForkOnWrongPathIsSquashed)
{
    // Put the fork point behind an unpredictable branch: forks taken
    // on mispredicted paths must be squashed.
    Assembler as(codeBase);
    as.label("start");
    as.ldi64(30, dataBase);
    as.ldi(2, 3000);
    as.label("loop");
    as.ldq(5, 30, 0);          // xorshift state
    as.srli(6, 5, 12);
    as.xor_(5, 5, 6);
    as.slli(6, 5, 25);
    as.xor_(5, 5, 6);
    as.srli(6, 5, 27);
    as.xor_(5, 5, 6);
    as.stq(5, 30, 0);
    as.andi(7, 5, 1);
    as.beq(7, "no_fork");      // unbiased guard
    as.label("fork_pt");       // fork here: often speculative
    as.addi(9, 9, 1);
    as.label("no_fork");
    as.subi(2, 2, 1);
    as.label("region_end");
    as.bgt(2, "loop");
    as.halt();
    Program prog;
    prog.addSection(as.finish());
    auto sym = as.symbols();

    Assembler sl(sliceBase);
    sl.label("slice");
    sl.addi(3, 3, 1);
    sl.label("slice_pgi");
    sl.andi(regZero, 3, 1);
    sl.sliceEnd();
    prog.addSection(sl.finish());
    auto ssym = sl.symbols();

    slice::SliceDescriptor sd;
    sd.name = "guarded";
    sd.forkPc = sym.at("fork_pt");
    sd.slicePc = ssym.at("slice");
    sd.staticSize = 3;
    slice::PgiSpec pgi;
    pgi.sliceInstPc = ssym.at("slice_pgi");
    pgi.problemBranchPc = sym.at("region_end");
    pgi.sliceKillPc = sym.at("region_end");
    sd.pgis = {pgi};

    arch::MemoryImage mem;
    mem.writeQ(dataBase, 0x123456789ull);
    core::SmtCore machine(core::CoreConfig::fourWide(), prog, mem);
    machine.loadSlice(sd);
    auto res = machine.run(sym.at("start"), quickOpts());

    EXPECT_GT(res.forks, 100u);
    EXPECT_GT(res.forksSquashed, 20u)
        << "speculative forks must be squashed with their fork points";
}

TEST(CoreSlices, SmtRunsConcurrently)
{
    // With slices on, total fetched (main + slice) exceeds main-only,
    // and both threads interleave within the same cycles.
    Mini m = makeChase(2000);
    arch::MemoryImage mem;
    initChase(mem, 8192);
    core::SmtCore machine(core::CoreConfig::fourWide(), m.prog, mem);
    machine.loadSlice(m.sd);
    auto res = machine.run(m.entry, quickOpts());
    EXPECT_GT(res.sliceFetched, 0u);
    EXPECT_GT(res.sliceRetired, 0u);
    // Slice instructions never write architected memory: the chase
    // values are unchanged (spot check: head pointer intact).
    EXPECT_EQ(mem.readQ(dataBase), dataBase + 0x1000);
}
