/**
 * @file
 * Command-line driver: run any workload on any machine configuration
 * and dump results — the scripting surface of the simulator.
 *
 *   specslice_run --workload vpr --insts 200000 --warmup 50000
 *   specslice_run --workload mcf --width 8 --no-slices --stats
 *   specslice_run --workload twolf --limit        # constrained limit
 *   specslice_run --workload gcc --check --inject slice.kill@n5
 *   specslice_run --workload vpr --disasm         # dump the code
 *   specslice_run --workload gcc --fastforward 1000000 --sample 4
 *   specslice_run --workload gcc --fastforward 1000000 \
 *       --save-checkpoint gcc.ckpt   # then: --load-checkpoint
 *   specslice_run --list
 *
 * Exit codes (scripts and CI depend on these):
 *   0  run completed (or --allow-partial was given)
 *   1  retirement checker latched a divergence
 *   2  usage error (unknown flag/workload/trace flag/inject spec)
 *   3  run did not complete (cycle limit / watchdog) without
 *      --allow-partial
 *   4  simulation error (panic/fatal/timeout); with --json a
 *      machine-readable error document is still emitted on stdout
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench_common.hh"
#include "common/failure.hh"
#include "fault/fault.hh"
#include "obs/events.hh"
#include "obs/interval.hh"
#include "obs/trace.hh"
#include "sim/experiments.hh"
#include "sim/serve_job.hh"
#include "sim/simulator.hh"
#include "trace/frontend.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

struct Options
{
    std::string workload = "vpr";
    std::string traceFile;  // run from an sstr trace instead
    unsigned width = 4;
    std::uint64_t insts = 300'000;
    std::uint64_t warmup = 100'000;
    std::uint64_t seed = 1;
    unsigned threads = 4;
    int bias = -1;          // <0: keep default
    bool slices = true;
    bool check = false;     // retirement-time architectural checker
    bool limit = false;
    bool profile = false;
    bool stats = false;
    bool json = false;      // machine-readable result on stdout
    bool noWall = false;    // omit nondeterministic wall-clock fields
    bool disasm = false;
    bool list = false;
    bool compare = false;   // run baseline AND slices, print speedup
    unsigned jobs = 0;      // --compare parallelism (0: pool default)
    std::uint64_t fastforward = 0;   // insts skipped before region 1
    unsigned sampleRegions = 0;      // --sample region count (0: off)
    std::uint64_t sampleStride = 0;  // region spacing (0: contiguous)
    bool noWarmPredictors = false;   // cold predictors per region
    bool noWarmCaches = false;       // cold caches per region
    bool coldIcache = false;         // no I-side warmth replay
    std::string saveCheckpoint;      // write state after fast-forward
    std::string loadCheckpoint;      // resume from a saved state
    std::string inject;         // --inject fault spec (adds to SS_INJECT)
    Cycle watchdog = 0;         // --watchdog threshold (0: default)
    bool noWatchdog = false;
    Cycle maxCycles = 0;        // --max-cycles (0: 50x inst budget)
    bool allowPartial = false;  // exit 0 even on a truncated run
    std::string trace;          // --trace flag list (adds to SS_TRACE)
    std::string intervalsPath;  // --intervals CSV destination
    std::uint64_t intervalCycles = 10'000;
    bool intervalsRequested = false;
    std::string chromeTracePath;  // --chrome-trace JSON destination
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: specslice_run [options]\n"
        "  --workload NAME   benchmark to run (--list to enumerate)\n"
        "  --trace-file FILE run the workload embedded in an sstr\n"
        "                    trace (specslice_replay --emit) instead\n"
        "                    of a named builder workload\n"
        "  --width 4|8       Table 1 machine width (default 4)\n"
        "  --insts N         measured instructions (default 300000)\n"
        "  --warmup N        warm-up instructions (default 100000)\n"
        "  --seed N          workload construction seed (also seeds\n"
        "                    fault injection)\n"
        "  --threads N       SMT contexts, 1..64 (default 4)\n"
        "  --bias N          ICOUNT main-thread fetch bias\n"
        "  --no-slices       baseline run (helper threads idle)\n"
        "  --fastforward N   functionally execute N instructions (from\n"
        "                    program entry, absolute position) before\n"
        "                    the first timing region\n"
        "  --sample R        measure R regions of --warmup + --insts\n"
        "                    each and aggregate the counters\n"
        "  --sample-stride N region starts are N instructions apart\n"
        "                    (default: contiguous, warmup+insts)\n"
        "  --cold-predictors do not replay branch history into the\n"
        "                    predictors at each region start\n"
        "  --cold-caches     do not replay data accesses into the\n"
        "                    cache hierarchy at each region start\n"
        "  --cold-icache     do not replay executed-line history into\n"
        "                    the I-cache at each region start\n"
        "  --save-checkpoint FILE  write the architectural state at\n"
        "                    the fast-forward point, then keep running\n"
        "  --load-checkpoint FILE  restore state instead of executing\n"
        "                    from entry (same workload flags required;\n"
        "                    --fastforward N is absolute, so reaching\n"
        "                    a checkpoint taken at N costs nothing)\n"
        "  --check           co-simulate the in-order architectural\n"
        "                    reference; divergence is fatal with a\n"
        "                    first-divergence report (SS_CHECK=1 in\n"
        "                    the environment also works)\n"
        "  --compare         run baseline and slices, print speedup\n"
        "  --jobs N          simulations run in parallel for --compare\n"
        "                    (default: SS_JOBS or the core count)\n"
        "  --inject SPEC     seeded deterministic fault injection\n"
        "                    (merged with SS_INJECT from the\n"
        "                    environment; --help-inject for grammar)\n"
        "  --watchdog N      forward-progress watchdog: terminate when\n"
        "                    the main thread retires nothing for N\n"
        "                    cycles (default 250000)\n"
        "  --no-watchdog     disable the forward-progress watchdog\n"
        "  --max-cycles N    hard cycle limit (default 50x --insts)\n"
        "  --allow-partial   exit 0 even when the run was cut short by\n"
        "                    the watchdog or cycle limit\n"
        "  --limit           constrained limit study instead of slices\n"
        "  --profile         print the problem-instruction profile\n"
        "  --stats           dump all detail counters\n"
        "  --json            print the result as JSON on stdout\n"
        "  --no-wall         omit the nondeterministic wall-clock\n"
        "                    fields from --json output, making the\n"
        "                    document byte-reproducible (the form the\n"
        "                    sweep service caches and serves)\n"
        "  --trace FLAGS     arm debug tracing (comma list of\n"
        "                    fetch,smt,corr,slice,mem,pred or 'all';\n"
        "                    SS_TRACE in the environment also works)\n"
        "  --intervals FILE  write the interval time-series CSV\n"
        "  --interval-cycles N  interval window length (default 10000)\n"
        "  --chrome-trace FILE  write pipeline/slice events as Chrome\n"
        "                    trace JSON (chrome://tracing, Perfetto)\n"
        "  --disasm          print the program and slice disassembly\n"
        "  --list            list available workloads\n"
        "exit codes: 0 completed, 1 checker divergence, 2 usage,\n"
        "            3 incomplete run (no --allow-partial), 4 sim "
        "error\n");
    std::exit(code);
}

std::uint64_t
parseNum(const char *s)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0' || *s == '\0' || *s == '-')
        usage(2);
    return v;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (a == "--workload")
            o.workload = next();
        else if (a == "--trace-file")
            o.traceFile = next();
        else if (a == "--width")
            o.width = static_cast<unsigned>(parseNum(next()));
        else if (a == "--insts")
            o.insts = parseNum(next());
        else if (a == "--warmup")
            o.warmup = parseNum(next());
        else if (a == "--seed")
            o.seed = parseNum(next());
        else if (a == "--threads")
            o.threads = static_cast<unsigned>(parseNum(next()));
        else if (a == "--bias")
            o.bias = static_cast<int>(parseNum(next()));
        else if (a == "--no-slices")
            o.slices = false;
        else if (a == "--fastforward")
            o.fastforward = parseNum(next());
        else if (a == "--sample") {
            o.sampleRegions = static_cast<unsigned>(parseNum(next()));
            if (o.sampleRegions == 0)
                usage(2);
        }
        else if (a == "--sample-stride") {
            o.sampleStride = parseNum(next());
            if (o.sampleStride == 0)
                usage(2);
        }
        else if (a == "--cold-predictors")
            o.noWarmPredictors = true;
        else if (a == "--cold-caches")
            o.noWarmCaches = true;
        else if (a == "--cold-icache")
            o.coldIcache = true;
        else if (a == "--save-checkpoint")
            o.saveCheckpoint = next();
        else if (a == "--load-checkpoint")
            o.loadCheckpoint = next();
        else if (a == "--check")
            o.check = true;
        else if (a == "--compare")
            o.compare = true;
        else if (a == "--jobs") {
            o.jobs = static_cast<unsigned>(parseNum(next()));
            if (o.jobs == 0 || o.jobs > 4096)
                usage(2);
        }
        else if (a == "--inject")
            o.inject = next();
        else if (a.rfind("--inject=", 0) == 0)
            o.inject = a.substr(9);
        else if (a == "--help-inject") {
            std::printf("%s", fault::FaultPlan::grammarHelp().c_str());
            std::exit(0);
        }
        else if (a == "--watchdog")
            o.watchdog = parseNum(next());
        else if (a == "--no-watchdog")
            o.noWatchdog = true;
        else if (a == "--max-cycles")
            o.maxCycles = parseNum(next());
        else if (a == "--allow-partial")
            o.allowPartial = true;
        else if (a == "--trace")
            o.trace = next();
        else if (a.rfind("--trace=", 0) == 0)
            o.trace = a.substr(8);
        else if (a == "--intervals") {
            o.intervalsPath = next();
            o.intervalsRequested = true;
        }
        else if (a == "--interval-cycles") {
            o.intervalCycles = parseNum(next());
            o.intervalsRequested = true;
            if (o.intervalCycles == 0)
                usage(2);
        }
        else if (a == "--chrome-trace")
            o.chromeTracePath = next();
        else if (a == "--limit")
            o.limit = true;
        else if (a == "--profile")
            o.profile = true;
        else if (a == "--stats")
            o.stats = true;
        else if (a == "--json")
            o.json = true;
        else if (a == "--no-wall")
            o.noWall = true;
        else if (a == "--disasm")
            o.disasm = true;
        else if (a == "--list")
            o.list = true;
        else if (a == "--help" || a == "-h")
            usage(0);
        else {
            std::fprintf(stderr, "error: unknown option '%s'\n",
                         a.c_str());
            usage(2);
        }
    }
    return o;
}

/** Run one configuration, timing the simulation wall clock. */
bench::WorkloadPerf
timedRun(const std::string &name, sim::Simulator &machine,
         const sim::Workload &wl, const sim::RunOptions &opts,
         bool slices)
{
    bench::WorkloadPerf p;
    p.name = name;
    auto t0 = std::chrono::steady_clock::now();
    p.result = slices ? machine.run(wl, opts, true)
                      : machine.runBaseline(wl, opts);
    auto t1 = std::chrono::steady_clock::now();
    p.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    return p;
}

void
printResult(const char *tag, const sim::RunResult &r)
{
    std::printf("%-10s %10llu cycles  IPC %.3f  mispred %llu  "
                "L1-miss %llu",
                tag, static_cast<unsigned long long>(r.cycles), r.ipc(),
                static_cast<unsigned long long>(r.mispredictions),
                static_cast<unsigned long long>(r.l1dMissesMain));
    if (r.forks)
        std::printf("  forks %llu  preds-used %llu (wrong %llu)",
                    static_cast<unsigned long long>(r.forks),
                    static_cast<unsigned long long>(r.correlatorUsed),
                    static_cast<unsigned long long>(r.correlatorWrong));
    if (r.outcome != sim::SimOutcome::Completed)
        std::printf("  [%s]", sim::outcomeName(r.outcome));
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);

    obs::TraceSink::instance().initFromEnv();
    if (!o.trace.empty()) {
        std::string terr;
        if (!obs::TraceSink::instance().trySetFlags(o.trace, terr)) {
            std::fprintf(stderr, "error: %s\n", terr.c_str());
            return 2;
        }
    }

    if (o.list) {
        for (const auto &n : workloads::allWorkloadNames())
            std::printf("%s\n", n.c_str());
        return 0;
    }

    if (o.width != 4 && o.width != 8) {
        std::fprintf(stderr,
                     "error: --width %u is not a Table 1 machine "
                     "width (valid: 4, 8)\n",
                     o.width);
        return 2;
    }
    if (o.threads == 0 || o.threads > 64) {
        std::fprintf(stderr,
                     "error: --threads %u out of range (valid: "
                     "1..64)\n",
                     o.threads);
        return 2;
    }

    if (o.traceFile.empty()) {
        const std::vector<std::string> &all =
            workloads::allWorkloadNames();
        if (std::find(all.begin(), all.end(), o.workload) ==
            all.end()) {
            std::string valid;
            for (const auto &n : all)
                valid += (valid.empty() ? "" : " ") + n;
            std::fprintf(stderr,
                         "error: unknown workload '%s' (valid: %s)\n",
                         o.workload.c_str(), valid.c_str());
            return 2;
        }
    }

    // Injection spec: SS_INJECT from the environment plus --inject,
    // merged (duplicate sites are rejected by the parser, so the two
    // sources cannot silently override each other).
    std::string inject_spec;
    if (const char *env = std::getenv("SS_INJECT"))
        inject_spec = env;
    if (!o.inject.empty())
        inject_spec += (inject_spec.empty() ? "" : ",") + o.inject;
    fault::FaultPlan plan;
    {
        std::string perr;
        if (!fault::FaultPlan::parse(inject_spec, plan, perr)) {
            std::fprintf(stderr, "error: %s\n%s", perr.c_str(),
                         fault::FaultPlan::grammarHelp().c_str());
            return 2;
        }
    }
    plan.seed = o.seed;
    if (plan.hasServiceSites()) {
        std::fprintf(stderr,
                     "error: the plan names service-level sites "
                     "(serve.*/cache.*/sock.*); those inject into "
                     "the sweep daemon — pass them to "
                     "specslice_serve --inject instead\n");
        return 2;
    }

    if (!o.saveCheckpoint.empty() && o.compare) {
        std::fprintf(stderr,
                     "error: --save-checkpoint cannot be combined "
                     "with --compare (both runs would race writing "
                     "the same file); save it in a single run, then "
                     "--compare --load-checkpoint\n");
        return 2;
    }

    // The workload must outlast the whole sampling span, not just one
    // measurement window (regions defaults to 1 so a full run keeps
    // the historical scale of (insts + warmup) * 2).
    const std::uint64_t per_region = o.insts + o.warmup;
    const std::uint64_t span =
        o.fastforward +
        (std::max(1u, o.sampleRegions) - 1) *
            (o.sampleStride ? o.sampleStride : per_region) +
        per_region;

    sim::Workload wl;
    if (!o.traceFile.empty()) {
        std::string lerr;
        std::optional<trace::LoadedTrace> loaded =
            trace::loadTraceWorkload(o.traceFile, lerr);
        if (!loaded) {
            std::fprintf(stderr, "error: %s\n", lerr.c_str());
            return 2;
        }
        wl = std::move(loaded->workload);
    } else {
        workloads::Params params;
        params.scale = span * 2;
        params.seed = o.seed;
        wl = workloads::buildWorkload(o.workload, params);
    }

    if (o.disasm) {
        std::printf("%s", wl.program.disassemble().c_str());
        return 0;
    }

    sim::MachineConfig cfg = o.width == 8
                                 ? sim::MachineConfig::eightWide()
                                 : sim::MachineConfig::fourWide();
    cfg.numThreads = o.threads;
    if (o.bias >= 0)
        cfg.mainThreadFetchBias = o.bias;

    sim::Simulator machine(cfg);
    sim::RunOptions opts;
    opts.traceFile = o.traceFile;
    opts.maxMainInstructions = o.insts;
    opts.warmupInstructions = o.warmup;
    opts.maxCycles = o.maxCycles;
    opts.watchdogCycles = o.watchdog;
    opts.watchdogEnabled = !o.noWatchdog;
    opts.faults = plan;
    opts.profile = o.profile;
    opts.check = o.check;
    opts.fastForwardInstructions = o.fastforward;
    opts.sampleRegions = o.sampleRegions;
    opts.sampleStride = o.sampleStride;
    opts.warmPredictors = !o.noWarmPredictors;
    opts.warmCaches = !o.noWarmCaches;
    opts.warmInstCache = !o.coldIcache;
    opts.saveCheckpoint = o.saveCheckpoint;
    opts.restoreCheckpoint = o.loadCheckpoint;
    if (o.json || o.intervalsRequested)
        opts.intervalCycles = o.intervalCycles;

    // The event buffer is attached to the run of interest only: the
    // slices run under --compare (the baseline never forks), otherwise
    // whatever single run executes.
    std::unique_ptr<obs::EventBuffer> events;
    if (!o.chromeTracePath.empty())
        events = std::make_unique<obs::EventBuffer>();

    // Crash resilience: intervals accumulate into a caller-owned sink
    // (single-run paths only — --compare runs would race on it) and a
    // crash-dump handler flushes whatever artifacts exist if a run
    // dies through the non-throwing panic/fatal path.
    std::vector<obs::IntervalRecord> interval_live;
    if (!o.compare)
        opts.intervalSink = &interval_live;

    auto writePartialArtifacts = [&]() {
        if (!o.intervalsPath.empty() && !interval_live.empty()) {
            std::ofstream os(o.intervalsPath);
            if (os)
                obs::writeIntervalsCsv(os, interval_live);
        }
        if (events && events->size()) {
            std::ofstream os(o.chromeTracePath);
            if (os)
                events->writeChromeTrace(os);
        }
    };
    ScopedCrashDump crash_dump(writePartialArtifacts);

    // A failed run still produces a machine-readable record: with
    // --json an {"error": {...}} document goes to stdout, and partial
    // observability artifacts are flushed either way.
    auto simFailure = [&](const std::string &kind,
                          const std::string &message) -> int {
        writePartialArtifacts();
        if (o.json)
            std::printf("%s\n",
                        sim::errorDocument(wl.name, o.seed, kind,
                                           message)
                            .c_str());
        std::fprintf(stderr, "error: simulation failed (%s): %s\n",
                     kind.c_str(), message.c_str());
        return 4;
    };

    if (!o.json)
        std::printf("%s on the %u-wide machine (%llu measured insts, "
                    "%llu warm-up)\n",
                    wl.name.c_str(), o.width,
                    static_cast<unsigned long long>(o.insts),
                    static_cast<unsigned long long>(o.warmup));

    std::vector<bench::WorkloadPerf> runs;
    sim::RunResult result;
    if (o.limit) {
        sim::ExperimentConfig ecfg;
        ecfg.measureInsts = o.insts;
        ecfg.warmupInsts = o.warmup;
        ecfg.seed = o.seed;
        auto lo = sim::limitOptions(wl, ecfg);
        lo.profile = o.profile;
        lo.check = o.check;
        lo.maxCycles = opts.maxCycles;
        lo.watchdogCycles = opts.watchdogCycles;
        lo.watchdogEnabled = opts.watchdogEnabled;
        lo.faults = opts.faults;
        lo.intervalCycles = opts.intervalCycles;
        lo.intervalSink = opts.intervalSink;
        lo.fastForwardInstructions = opts.fastForwardInstructions;
        lo.sampleRegions = opts.sampleRegions;
        lo.sampleStride = opts.sampleStride;
        lo.warmPredictors = opts.warmPredictors;
        lo.warmCaches = opts.warmCaches;
        lo.warmInstCache = opts.warmInstCache;
        lo.saveCheckpoint = opts.saveCheckpoint;
        lo.restoreCheckpoint = opts.restoreCheckpoint;
        lo.events = events.get();
        try {
            ScopedThrowErrors throwing;
            runs.push_back(timedRun("limit", machine, wl, lo, false));
        } catch (const SimError &e) {
            return simFailure(SimError::kindName(e.kind()), e.what());
        }
        result = runs.back().result;
    } else if (o.compare) {
        // The two runs are independent (each gets its own simulator
        // instance; wl is shared read-only), so they overlap on a
        // multicore host. mapSettled isolates a failing configuration:
        // the surviving run's numbers are still printed before the
        // error is reported.
        struct RunSpec
        {
            const char *tag;
            bool slices;
        };
        const std::vector<RunSpec> specs = {{"baseline", false},
                                            {"slices", true}};
        sim::JobPool pool(o.jobs);
        auto settled = pool.mapSettled(specs, [&](const RunSpec &s) {
            sim::Simulator m(cfg);
            sim::RunOptions ro = opts;
            if (s.slices)
                ro.events = events.get();
            return timedRun(s.tag, m, wl, ro, s.slices);
        });
        for (auto &slot : settled) {
            if (!slot.ok())
                return simFailure(
                    slot.status.state == sim::JobState::TimedOut
                        ? "timeout"
                        : "failed",
                    slot.status.error);
            runs.push_back(std::move(*slot.value));
        }
        result = runs.back().result;
    } else {
        opts.events = events.get();
        try {
            ScopedThrowErrors throwing;
            runs.push_back(timedRun(o.slices ? "slices" : "baseline",
                                    machine, wl, opts, o.slices));
        } catch (const SimError &e) {
            return simFailure(SimError::kindName(e.kind()), e.what());
        }
        result = runs.back().result;
    }

    std::uint64_t checked = 0;
    for (const auto &p : runs)
        checked += p.result.checkedRetired;
    sim::SimOutcome worst = sim::worstOutcome(runs);

    if (o.json) {
        // The document assembly is shared with the sweep service so a
        // served result is byte-identical to this path (--no-wall).
        sim::DocMeta meta;
        meta.workload = wl.name;
        meta.width = o.width;
        meta.insts = o.insts;
        meta.warmup = o.warmup;
        meta.seed = o.seed;
        meta.injectDescription = plan.empty() ? "" : plan.describe();
        meta.compare = o.compare;
        std::printf("%s\n",
                    sim::perfDocument(meta, runs, !o.noWall).c_str());
    } else {
        for (const auto &p : runs)
            printResult(p.name.c_str(), p.result);
        if (result.sampledRegions)
            std::printf("sampling: fast-forwarded %llu insts, "
                        "%u region%s measured\n",
                        static_cast<unsigned long long>(
                            result.fastForwarded),
                        result.sampledRegions,
                        result.sampledRegions == 1 ? "" : "s");
        if (o.compare)
            std::printf("speedup: %+.1f%%\n",
                        sim::speedupPct(runs[0].result,
                                        runs[1].result));
        if (!plan.empty()) {
            for (const auto &p : runs)
                std::printf("faults[%s]: %s\n", p.name.c_str(),
                            p.result.faultsInjected
                                ? p.result.faultSummary.c_str()
                                : "(armed, none fired)");
        }
        if (checked) {
            if (worst == sim::SimOutcome::CheckerDivergence)
                std::printf("checker: DIVERGED after %llu matched "
                            "retirements\n",
                            static_cast<unsigned long long>(checked));
            else
                std::printf("checker: %llu retirements matched the "
                            "architectural reference\n",
                            static_cast<unsigned long long>(checked));
        }
        if (worst != sim::SimOutcome::Completed)
            std::printf("outcome: %s%s\n", sim::outcomeName(worst),
                        o.allowPartial ? " (partial result accepted)"
                                       : "");
    }

    if (!o.intervalsPath.empty()) {
        std::ofstream os(o.intervalsPath);
        if (!os)
            SS_FATAL("cannot open --intervals file '", o.intervalsPath,
                     "'");
        obs::writeIntervalsCsv(os, result.intervals);
    }

    if (events) {
        std::ofstream os(o.chromeTracePath);
        if (!os)
            SS_FATAL("cannot open --chrome-trace file '",
                     o.chromeTracePath, "'");
        events->writeChromeTrace(os);
        if (!o.json)
            std::printf("chrome trace: %s (%zu events%s)\n",
                        o.chromeTracePath.c_str(), events->size(),
                        events->dropped() ? ", ring overflowed" : "");
    }

    if (o.profile) {
        auto prob =
            profile::classifyProblemInstructions(result.profile);
        std::printf("\nproblem instructions: %zu loads/stores, "
                    "%zu branches\n",
                    prob.problemLoads.size(),
                    prob.problemBranches.size());
        for (Addr pc : prob.problemLoads) {
            const auto &c = result.profile.perPc.at(pc);
            std::printf("  load   0x%llx  %llu/%llu miss   %s\n",
                        static_cast<unsigned long long>(pc),
                        static_cast<unsigned long long>(c.loadMiss +
                                                        c.storeMiss),
                        static_cast<unsigned long long>(c.loadExec +
                                                        c.storeExec),
                        wl.program.fetch(pc)->disassemble().c_str());
        }
        for (Addr pc : prob.problemBranches) {
            const auto &c = result.profile.perPc.at(pc);
            std::printf("  branch 0x%llx  %llu/%llu mispred  %s\n",
                        static_cast<unsigned long long>(pc),
                        static_cast<unsigned long long>(c.branchMispred),
                        static_cast<unsigned long long>(c.branchExec),
                        wl.program.fetch(pc)->disassemble().c_str());
        }
    }

    if (o.stats) {
        if (o.json) {
            // Keep stdout pure JSON; detail goes to stderr.
            std::cerr << "outcome: " << sim::outcomeName(worst) << "\n";
            result.detail.dump(std::cerr);
        } else {
            std::printf("\noutcome: %s\n", sim::outcomeName(worst));
            result.detail.dump(std::cout);
        }
    }

    if (worst == sim::SimOutcome::CheckerDivergence)
        return 1;
    if (worst != sim::SimOutcome::Completed && !o.allowPartial)
        return 3;
    return 0;
}
