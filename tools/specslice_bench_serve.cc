/**
 * @file
 * Sweep-service benchmark: spawn a fresh specslice_serve daemon, push
 * the full workload sweep through it cold (every request simulates),
 * push the identical sweep again warm (every request must be served
 * from the result cache), and report the cold/warm wall-clock ratio —
 * the headline number for the caching layer. A third phase hammers the
 * warm cache from several concurrent clients to measure service
 * throughput. Results land in BENCH_serve.json.
 *
 * The workload shape follows the bench conventions (SS_BENCH_INSTS /
 * SS_BENCH_WARMUP / SS_BENCH_WORKLOADS / SS_BENCH_SEED), so the smoke
 * ctest can run a tiny sweep while the real benchmark uses the full
 * one.
 *
 * Exit codes: 0 on success, 1 if any response is an error, if the
 * warm pass missed the cache, or if the server misbehaves.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_common.hh"
#include "common/jsonio.hh"
#include "serve_client.hh"

using namespace specslice;

namespace
{

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Directory holding this binary (and therefore specslice_serve). */
std::string
selfDir()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return ".";
    buf[n] = '\0';
    std::string path(buf);
    auto slash = path.rfind('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

/** Spawn the daemon; @return its pid or -1. */
pid_t
spawnServer(const std::string &server_bin, const std::string &socket,
            const std::string &cache_dir, unsigned workers)
{
    pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    std::string workers_s = std::to_string(workers);
    ::execl(server_bin.c_str(), server_bin.c_str(), "--socket",
            socket.c_str(), "--cache", cache_dir.c_str(), "--workers",
            workers_s.c_str(), static_cast<char *>(nullptr));
    std::fprintf(stderr, "error: exec %s: %s\n", server_bin.c_str(),
                 std::strerror(errno));
    _exit(127);
}

/** Poll-connect until the daemon answers a ping (or ~10s elapse). */
bool
waitReady(const std::string &socket)
{
    for (int i = 0; i < 200; ++i) {
        std::string response, err;
        if (serve_client::requestOnce(socket, "{\"op\": \"ping\"}",
                                      response, err))
            return true;
        ::usleep(50 * 1000);
    }
    return false;
}

struct SweepResult
{
    double seconds = 0.0;
    std::atomic<unsigned> errors{0};
    std::atomic<unsigned> cached{0};
    std::atomic<unsigned> retries{0};
};

/**
 * Drain `requests` through `clients` concurrent connections; each
 * thread pulls the next request off a shared cursor.
 */
void
runSweep(const std::string &socket,
         const std::vector<std::string> &requests, unsigned clients,
         SweepResult &out)
{
    std::atomic<std::size_t> cursor{0};
    double t0 = now();
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < clients; ++t) {
        threads.emplace_back([&, t]() {
            serve_client::RetryPolicy policy;
            policy.seed = 0xb5eedull * (t + 1);
            for (;;) {
                std::size_t i = cursor.fetch_add(1);
                if (i >= requests.size())
                    return;
                std::string response, err;
                serve_client::RetryStats rs;
                if (!serve_client::requestRetry(socket, requests[i],
                                                response, err, policy,
                                                {}, &rs)) {
                    std::fprintf(stderr, "error: %s\n", err.c_str());
                    out.retries += rs.retries;
                    ++out.errors;
                    continue;
                }
                out.retries += rs.retries;
                std::string perr;
                auto env = json::parse(response, perr);
                if (!env || !env->getBool("ok") ||
                    env->getU64("exit_code", 99) != 0) {
                    std::fprintf(stderr,
                                 "error: bad response: %.300s\n",
                                 response.c_str());
                    ++out.errors;
                    continue;
                }
                if (env->getBool("cached"))
                    ++out.cached;
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    out.seconds = now() - t0;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned clients = 4;
    unsigned workers = 4;
    std::string socket = "bench_serve.sock";
    std::string cache_dir = "bench_serve_cache";
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--clients")
            clients = static_cast<unsigned>(std::atoi(next()));
        else if (a == "--workers")
            workers = static_cast<unsigned>(std::atoi(next()));
        else if (a == "--socket")
            socket = next();
        else if (a == "--cache")
            cache_dir = next();
        else {
            std::fprintf(stderr,
                         "usage: specslice_bench_serve [--clients N] "
                         "[--workers N] [--socket PATH] [--cache DIR]\n");
            return 2;
        }
    }

    // A benchmark must start cold: wipe any cache left from a
    // previous invocation (the directory is ours by convention).
    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);

    const std::string server_bin = selfDir() + "/specslice_serve";
    pid_t server = spawnServer(server_bin, socket, cache_dir, workers);
    if (server < 0) {
        std::perror("fork");
        return 1;
    }
    if (!waitReady(socket)) {
        std::fprintf(stderr, "error: server never became ready\n");
        ::kill(server, SIGKILL);
        ::waitpid(server, nullptr, 0);
        return 1;
    }

    const std::uint64_t insts = bench::benchInsts();
    const std::uint64_t warmup = bench::benchWarmup();
    const std::uint64_t seed = bench::envOr("SS_BENCH_SEED", 1);
    std::vector<std::string> names = bench::benchWorkloadNames();
    std::vector<std::string> requests;
    for (const std::string &name : names) {
        json::JsonObject req;
        // --compare form: each cell simulates baseline AND slices,
        // the sweep the golden gate and the paper tables re-run.
        req.field("op", std::string("run"))
            .field("workload", name)
            .field("insts", insts)
            .field("warmup", warmup)
            .field("seed", seed)
            .raw("compare", "true");
        requests.push_back(req.str());
    }

    std::printf("serve bench: %zu workloads x %llu insts, %u clients, "
                "%u workers\n",
                names.size(),
                static_cast<unsigned long long>(insts), clients,
                workers);

    SweepResult cold, warm;
    runSweep(socket, requests, clients, cold);
    std::printf("cold sweep: %.2fs (%u cached, %u errors)\n",
                cold.seconds, cold.cached.load(), cold.errors.load());
    runSweep(socket, requests, clients, warm);
    std::printf("warm sweep: %.2fs (%u cached, %u errors)\n",
                warm.seconds, warm.cached.load(), warm.errors.load());
    double speedup =
        warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
    std::printf("warm speedup: %.1fx\n", speedup);

    // Throughput phase: hammer one warm request per workload, several
    // rounds, all clients at once.
    std::vector<std::string> hammer;
    for (int round = 0; round < 8; ++round)
        for (const std::string &r : requests)
            hammer.push_back(r);
    SweepResult burst;
    runSweep(socket, hammer, clients, burst);
    double rps = burst.seconds > 0.0
                     ? static_cast<double>(hammer.size()) /
                           burst.seconds
                     : 0.0;
    std::printf("throughput: %zu warm requests in %.2fs (%.0f req/s)\n",
                hammer.size(), burst.seconds, rps);

    // Pull the daemon's own accounting for the artifact.
    std::string stats_response, err;
    bool have_stats = serve_client::requestOnce(
        socket, "{\"op\": \"stats\"}", stats_response, err);

    std::string bye;
    serve_client::requestOnce(socket, "{\"op\": \"shutdown\"}", bye,
                              err);
    int wstatus = 0;
    ::waitpid(server, &wstatus, 0);

    json::JsonObject concurrent;
    concurrent.field("clients", std::uint64_t{clients})
        .field("requests", std::uint64_t{hammer.size()})
        .field("seconds", burst.seconds)
        .field("requests_per_sec", rps);
    std::vector<std::string> name_elems;
    for (const std::string &n : names)
        name_elems.push_back("\"" + json::jsonEscape(n) + "\"");
    json::JsonObject doc;
    doc.field("schema_version", bench::benchSchemaVersion)
        .field("bench", std::string("serve"))
        .field("insts", insts)
        .field("warmup", warmup)
        .raw("workloads", json::jsonArray(name_elems))
        .field("cold_seconds", cold.seconds)
        .field("warm_seconds", warm.seconds)
        .field("warm_speedup_x", speedup)
        .field("warm_cached", std::uint64_t{warm.cached.load()})
        .field("client_retries",
               std::uint64_t{cold.retries.load() +
                             warm.retries.load() +
                             burst.retries.load()})
        .raw("server_stats",
             have_stats ? stats_response : "null");
    std::ofstream os("BENCH_serve.json");
    os << doc.str() << "\n";
    std::printf("wrote BENCH_serve.json\n");

    unsigned errors = cold.errors.load() + warm.errors.load() +
                      burst.errors.load();
    if (errors) {
        std::fprintf(stderr, "error: %u failed requests\n", errors);
        return 1;
    }
    if (warm.cached.load() != requests.size()) {
        std::fprintf(stderr,
                     "error: warm sweep expected %zu cache hits, got "
                     "%u\n",
                     requests.size(), warm.cached.load());
        return 1;
    }
    if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0) {
        std::fprintf(stderr, "error: server exited abnormally\n");
        return 1;
    }
    return 0;
}
