#!/usr/bin/env bash
# Observability smoke gate for the sweep service.
#
# Starts a fully-instrumented daemon (access log + per-request worker
# traces), drives a mixed cold/warm sweep, and asserts the service's
# observability contract end to end:
#
#   1. `GET /metrics` on the HTTP shim parses as Prometheus text and
#      its counters agree exactly with the `--stats` envelope —
#      including work done inside forked workers (cross-process
#      aggregation).
#   2. The NDJSON access log is consistent with the scraped counters:
#      cached=true lines == ss_served_cache_hits_total, cached=false
#      lines == ss_served_cache_misses_total == ss_worker_jobs_total.
#   3. `--trace-merge` stitches the per-request worker fragments into
#      one multi-process trace that trace_lint --merged accepts
#      (distinct pid lanes, monotonic per-lane timestamps, request-id
#      args).
#
# Usage: metrics_smoke.sh <tool-bin-dir>
set -euo pipefail

BIN="${1:?usage: metrics_smoke.sh <tool-bin-dir>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/metrics_smoke.XXXXXX")"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/serve.sock"
CACHE="$WORK/cache"
ACCESS="$WORK/access.ndjson"
TRACES="$WORK/traces"

"$BIN/specslice_serve" --socket "$SOCK" --cache "$CACHE" --workers 2 \
    --access-log "$ACCESS" --trace-dir "$TRACES" &
SERVER_PID=$!

for _ in $(seq 1 100); do
    if "$BIN/specslice_serve" --connect "$SOCK" --ping \
            > /dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== ping reports a client-measured round trip"
PING="$("$BIN/specslice_serve" --connect "$SOCK" --ping)"
echo "$PING"
printf '%s' "$PING" | grep -q '"rtt_usec": [0-9]' || {
    echo "FAIL: ping response carries no rtt_usec" >&2
    exit 1
}

run_req() {
    # Client mode prints the extracted result document (byte-equal to
    # specslice_run --json --no-wall), not the envelope.
    "$BIN/specslice_serve" --connect "$SOCK" --request "$1" > "$2"
    grep -q '"outcome": "completed"' "$2" || {
        echo "FAIL: no completed document in response for $1" >&2
        exit 1
    }
}

echo "== cold sweep (3 distinct specs, one sampled) + 2 warm repeats"
REQ_VPR='{"workload": "vpr", "insts": 15000, "warmup": 4000}'
REQ_GZIP='{"workload": "gzip", "insts": 15000, "warmup": 4000}'
# One line: the wire protocol is newline-delimited JSON.
REQ_SAMPLED='{"workload": "vpr", "insts": 6000, "warmup": 2000, "fastforward": 20000, "sample": 2, "sample_stride": 15000}'
run_req "$REQ_VPR" "$WORK/cold.vpr.json"
run_req "$REQ_GZIP" "$WORK/cold.gzip.json"
run_req "$REQ_SAMPLED" "$WORK/cold.sampled.json"
run_req "$REQ_VPR" "$WORK/warm.vpr.json"
run_req "$REQ_GZIP" "$WORK/warm.gzip.json"
diff "$WORK/cold.vpr.json" "$WORK/warm.vpr.json"
diff "$WORK/cold.gzip.json" "$WORK/warm.gzip.json"

echo "== GET /metrics over the HTTP shim"
curl --silent --fail --unix-socket "$SOCK" http://localhost/metrics \
    > "$WORK/metrics.prom"
grep -q '^# TYPE ss_requests_total counter$' "$WORK/metrics.prom"
grep -q '^# TYPE ss_request_usec histogram$' "$WORK/metrics.prom"
grep -q 'ss_request_usec_bucket{le="+Inf"}' "$WORK/metrics.prom"

prom() {
    awk -v name="$1" '$1 == name { print $2 }' "$WORK/metrics.prom"
}
HITS="$(prom ss_served_cache_hits_total)"
MISSES="$(prom ss_served_cache_misses_total)"
JOBS="$(prom ss_worker_jobs_total)"
CRASHES="$(prom ss_worker_crashes_total)"
echo "   hits=$HITS misses=$MISSES worker_jobs=$JOBS crashes=$CRASHES"
[ "$HITS" = 2 ] || {
    echo "FAIL: expected 2 served cache hits, got '$HITS'" >&2
    exit 1
}
[ "$MISSES" = 3 ] || {
    echo "FAIL: expected 3 served cache misses, got '$MISSES'" >&2
    exit 1
}
[ "$JOBS" = "$MISSES" ] || {
    echo "FAIL: worker jobs ($JOBS) != cold runs ($MISSES)" >&2
    exit 1
}
[ "$CRASHES" = 0 ] || {
    echo "FAIL: unexpected worker crashes: $CRASHES" >&2
    exit 1
}

echo "== /metrics agrees with --stats (cross-process aggregation)"
STATS="$("$BIN/specslice_serve" --connect "$SOCK" --stats)"
for pair in \
    "served.cache_hits $HITS" \
    "served.cache_misses $MISSES" \
    "served.worker_jobs $JOBS" \
    "metrics.ss_served_cache_hits_total $HITS" \
    "metrics.ss_worker_jobs_total $JOBS"; do
    path="${pair% *}"
    want="${pair#* }"
    got="$(printf '%s' "$STATS" | jq -r ".$path")"
    [ "$got" = "$want" ] || {
        echo "FAIL: stats .$path = '$got', /metrics says '$want'" >&2
        exit 1
    }
done
# Worker-side stores land on worker metric pages; the daemon's scrape
# must still see every cold run's store.
CACHE_STORES="$(printf '%s' "$STATS" | jq -r '.cache.stores')"
[ "$CACHE_STORES" = "$(prom ss_cache_stores_total)" ] || {
    echo "FAIL: stats .cache.stores=$CACHE_STORES !=" \
         "/metrics ss_cache_stores_total" >&2
    exit 1
}
[ "$CACHE_STORES" = "$MISSES" ] || {
    echo "FAIL: expected $MISSES worker-side stores, got" \
         "'$CACHE_STORES'" >&2
    exit 1
}

echo "== access log is consistent with the scraped counters"
CACHED_TRUE="$(grep -c '"op": "run".*"cached": true' "$ACCESS" || true)"
CACHED_FALSE="$(grep -c '"op": "run".*"cached": false' "$ACCESS" || true)"
[ "$CACHED_TRUE" = "$HITS" ] || {
    echo "FAIL: $CACHED_TRUE cached=true log lines but $HITS" \
         "scraped hits" >&2
    exit 1
}
[ "$CACHED_FALSE" = "$MISSES" ] || {
    echo "FAIL: $CACHED_FALSE cached=false log lines but $MISSES" \
         "scraped misses" >&2
    exit 1
}
# Every run record carries the full phase breakdown.
grep '"op": "run".*"cached": false' "$ACCESS" | while read -r line; do
    for phase in parse_usec key_usec cache_probe_usec \
                 queue_wait_usec worker_run_usec render_usec; do
        printf '%s' "$line" | grep -q "\"$phase\": [0-9]" || {
            echo "FAIL: run record missing $phase: $line" >&2
            exit 1
        }
    done
done

echo "== merged worker trace lints as a multi-process timeline"
MERGE="$("$BIN/specslice_serve" --connect "$SOCK" --trace-merge)"
echo "$MERGE"
FRAGS="$(printf '%s' "$MERGE" | jq -r '.fragments')"
[ "$FRAGS" = "$MISSES" ] || {
    echo "FAIL: expected $MISSES trace fragments, got '$FRAGS'" >&2
    exit 1
}
"$BIN/trace_lint" --merged "$TRACES/merged_trace.json"

echo "== clean shutdown"
"$BIN/specslice_serve" --connect "$SOCK" --shutdown > /dev/null
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
wait "$SERVER_PID" || {
    echo "FAIL: server exited abnormally" >&2
    exit 1
}
SERVER_PID=""

echo "PASS: metrics smoke ok (hits=$HITS misses=$MISSES jobs=$JOBS)"
