/**
 * @file
 * Standalone validator for the golden digest corpus: parses every
 * golden/<workload>.digest, runs the structural lint (schema version,
 * required sections and counters, finite non-negative ratios), and
 * checks the corpus covers exactly the workload suite — no missing
 * workloads, no strays. Runs no simulation, so it is cheap enough to
 * gate every CI configuration.
 *
 *   golden_lint golden/
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "check/digest.hh"
#include "workloads/workloads.hh"

using namespace specslice;

int
main(int argc, char **argv)
{
    if (argc != 2 || std::string(argv[1]) == "--help") {
        std::printf("usage: golden_lint DIR\n");
        return argc == 2 ? 0 : 2;
    }
    const std::filesystem::path dir = argv[1];

    std::error_code ec;
    std::vector<std::filesystem::path> files;
    for (const auto &e : std::filesystem::directory_iterator(dir, ec))
        if (e.path().extension() == ".digest")
            files.push_back(e.path());
    if (ec) {
        std::printf("golden_lint: cannot scan %s: %s\n",
                    dir.string().c_str(), ec.message().c_str());
        return 1;
    }
    std::sort(files.begin(), files.end());

    bool failed = false;
    auto problem = [&](const std::filesystem::path &p,
                       const std::string &msg) {
        failed = true;
        std::printf("%s: %s\n", p.string().c_str(), msg.c_str());
    };

    std::set<std::string> seen;
    for (const auto &path : files) {
        std::ifstream is(path);
        if (!is) {
            problem(path, "cannot open");
            continue;
        }
        std::string perr;
        auto d = check::parseDigest(is, perr);
        if (!d) {
            problem(path, "parse error: " + perr);
            continue;
        }
        for (const std::string &msg : check::lintDigest(*d))
            problem(path, msg);
        // The filename is the workload key the verifier looks up by;
        // a digest claiming a different workload would silently gate
        // the wrong runs.
        if (d->workload != path.stem().string())
            problem(path, "workload '" + d->workload +
                              "' does not match filename");
        seen.insert(path.stem().string());
    }

    const std::vector<std::string> &all = workloads::allWorkloadNames();
    std::set<std::string> known(all.begin(), all.end());
    for (const std::string &name : all)
        if (!seen.count(name))
            problem(dir / (name + ".digest"),
                    "missing digest for workload '" + name + "'");
    for (const std::string &name : seen)
        if (!known.count(name))
            problem(dir / (name + ".digest"),
                    "stray digest: no workload named '" + name + "'");

    if (!failed)
        std::printf("golden_lint: %zu digests ok, all %zu workloads "
                    "covered\n",
                    files.size(), all.size());
    return failed ? 1 : 0;
}
