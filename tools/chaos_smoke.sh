#!/usr/bin/env bash
# Chaos gate for the sweep service.
#
# Starts a specslice_serve daemon with a seeded service-layer fault
# plan (wedged workers, crashed workers, disk-full cache stores,
# bit-flipped cache reads, dropped sockets), plus a short request
# deadline and a small admission cap, then drives two 12-workload
# sweeps with concurrent retrying clients. Asserts the hardening
# contract end to end:
#
#   1. Bounded outcomes: every client exits with a typed code —
#      0 (served), 4 (typed terminal run failure: deadline_exceeded,
#      poisoned, ...), or 5 (transport budget exhausted). No client
#      hangs: per-attempt I/O deadlines plus the retry budget bound
#      the wall clock, and the ctest TIMEOUT backstops the whole run.
#   2. Correctness under injection: any workload served OK in both
#      passes yields byte-identical documents.
#   3. Accounting: the failure counters in /metrics exactly match the
#      access log — shed == "overloaded" lines, deadline_exceeded ==
#      "deadline_exceeded" lines, job retries == op="job_retry" lines,
#      quarantines == op="cache_quarantine" lines, poisoned ==
#      "poisoned" lines.
#   4. The chaos actually bit (some failure counter moved), the daemon
#      still shuts down cleanly, and --fsck over the surviving cache
#      reports ok.
#
# Artifacts (access log, traces, responses) stay in $WORK; set
# SS_CHAOS_ARTIFACTS to a directory to keep them for CI upload.
#
# Usage: chaos_smoke.sh <tool-bin-dir>
set -euo pipefail

BIN="${1:?usage: chaos_smoke.sh <tool-bin-dir>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/chaos_smoke.XXXXXX")"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    if [ -n "${SS_CHAOS_ARTIFACTS:-}" ]; then
        mkdir -p "$SS_CHAOS_ARTIFACTS"
        cp -r "$WORK"/. "$SS_CHAOS_ARTIFACTS"/ 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/serve.sock"
CACHE="$WORK/cache"
INSTS=10000
WARMUP=2000
WORKLOADS=(bzip2 crafty eon gap gcc gzip mcf parser perl twolf
           vortex vpr)
PLAN='serve.wedge:4000@p0.15,serve.crash@n2,cache.enospc@p0.2'
PLAN="$PLAN,cache.flip@n4,sock.drop@n6"

"$BIN/specslice_serve" --socket "$SOCK" --cache "$CACHE" \
    --workers 4 --deadline-ms 2500 --max-pending 6 \
    --max-attempts 2 --inject "$PLAN" --inject-seed 42 \
    --access-log "$WORK/access.ndjson" --trace-dir "$WORK/traces" &
SERVER_PID=$!

for _ in $(seq 1 100); do
    if "$BIN/specslice_serve" --connect "$SOCK" --ping \
            > /dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        exit 1
    fi
    sleep 0.1
done

request() {
    printf '{"workload": "%s", "insts": %d, "warmup": %d}' \
        "$1" "$INSTS" "$WARMUP"
}

# One concurrent retrying client per workload. Client exit codes land
# in $WORK/<pass>.<wl>.rc; responses in $WORK/<pass>.<wl>.json.
sweep() {
    local pass="$1" pids=() wl
    for wl in "${WORKLOADS[@]}"; do
        (
            rc=0
            "$BIN/specslice_serve" --connect "$SOCK" \
                --request "$(request "$wl")" \
                --timeout-ms 20000 --retries 4 \
                > "$WORK/$pass.$wl.json" 2>> "$WORK/client.err" \
                || rc=$?
            echo "$rc" > "$WORK/$pass.$wl.rc"
        ) &
        pids+=($!)
    done
    local p
    for p in "${pids[@]}"; do
        wait "$p" || true
    done
}

echo "== pass 1: cold 12-workload sweep under injection"
sweep pass1
echo "== pass 2: warm sweep (hits, flips, drops)"
sweep pass2

SERVED=0
for pass in pass1 pass2; do
    for wl in "${WORKLOADS[@]}"; do
        rc="$(cat "$WORK/$pass.$wl.rc")"
        case "$rc" in
            0) SERVED=$((SERVED + 1)) ;;
            4|5) ;;  # typed terminal failure / transport budget spent
            *)
                echo "FAIL: $pass/$wl exited $rc (untyped)" >&2
                exit 1
                ;;
        esac
    done
done
if [ "$SERVED" -lt 6 ]; then
    echo "FAIL: only $SERVED/24 requests served OK under chaos" >&2
    exit 1
fi
echo "   $SERVED/24 requests served OK, rest typed"

echo "== byte-identity for workloads served OK in both passes"
IDENTICAL=0
for wl in "${WORKLOADS[@]}"; do
    if [ "$(cat "$WORK/pass1.$wl.rc")" = 0 ] &&
           [ "$(cat "$WORK/pass2.$wl.rc")" = 0 ]; then
        diff "$WORK/pass1.$wl.json" "$WORK/pass2.$wl.json"
        IDENTICAL=$((IDENTICAL + 1))
    fi
done
echo "   $IDENTICAL workloads byte-identical across passes"

echo "== counters reconcile with the access log"
METRICS="$("$BIN/specslice_serve" --connect "$SOCK" --metrics \
               --timeout-ms 20000)"
counter() {
    printf '%s' "$METRICS" \
        | sed -n "s/.*\"$1\": \([0-9]*\).*/\1/p" | head -n 1
}
logged() {
    grep -c "$1" "$WORK/access.ndjson" || true
}
SHED="$(counter ss_shed_total)"
DEADLINE="$(counter ss_deadline_exceeded_total)"
RETRIES="$(counter ss_job_retries_total)"
QUARANTINE="$(counter ss_cache_quarantined_total)"
POISONED="$(counter ss_jobs_poisoned_total)"
DROPS="$(counter ss_sock_drops_total)"
for v in SHED DEADLINE RETRIES QUARANTINE POISONED DROPS; do
    if [ -z "${!v}" ]; then
        echo "FAIL: counter $v missing from /metrics" >&2
        exit 1
    fi
done

reconcile() {
    local name="$1" counted="$2" lines="$3"
    if [ "$counted" -ne "$lines" ]; then
        echo "FAIL: $name counter=$counted but access log has" \
             "$lines matching lines" >&2
        exit 1
    fi
    echo "   $name: counter == log == $counted"
}
reconcile shed "$SHED" "$(logged '"error": "overloaded"')"
reconcile deadline "$DEADLINE" \
    "$(logged '"error": "deadline_exceeded"')"
reconcile job_retries "$RETRIES" "$(logged '"op": "job_retry"')"
reconcile quarantined "$QUARANTINE" \
    "$(logged '"op": "cache_quarantine"')"
reconcile poisoned "$POISONED" "$(logged '"error": "poisoned"')"

CHAOS=$((SHED + DEADLINE + RETRIES + QUARANTINE + POISONED + DROPS))
if [ "$CHAOS" -eq 0 ]; then
    echo "FAIL: injection plan never fired (no failure counter" \
         "moved)" >&2
    exit 1
fi
echo "   chaos events: shed=$SHED deadline=$DEADLINE" \
     "retries=$RETRIES quarantined=$QUARANTINE poisoned=$POISONED" \
     "sock_drops=$DROPS"

echo "== clean shutdown despite the chaos"
"$BIN/specslice_serve" --connect "$SOCK" --shutdown \
    --timeout-ms 20000 > /dev/null
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server ignored shutdown request" >&2
    exit 1
fi
wait "$SERVER_PID" || {
    echo "FAIL: server exited abnormally" >&2
    exit 1
}
SERVER_PID=""

echo "== offline fsck over the survivor cache"
FSCK="$("$BIN/specslice_serve" --fsck --cache "$CACHE")"
echo "$FSCK"
case "$FSCK" in
    *'"ok": true'*) ;;
    *)
        echo "FAIL: --fsck reported failure" >&2
        exit 1
        ;;
esac

echo "PASS: chaos smoke ok (served=$SERVED chaos_events=$CHAOS)"
