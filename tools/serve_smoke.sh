#!/usr/bin/env bash
# Serve-path smoke gate.
#
# Starts a specslice_serve daemon on a private socket, drives it with
# concurrent clients, and asserts the service's three load-bearing
# properties end to end:
#
#   1. Byte-identity: a served document equals `specslice_run --json
#      --no-wall` output for the same flags, byte for byte.
#   2. Caching: repeating the sweep is served from .sscache with > 0
#      hits and zero fresh simulations.
#   3. Stability: concurrent clients all get complete envelopes and
#      the daemon shuts down cleanly.
#
# Usage: serve_smoke.sh <tool-bin-dir>
set -euo pipefail

BIN="${1:?usage: serve_smoke.sh <tool-bin-dir>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/serve_smoke.XXXXXX")"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/serve.sock"
CACHE="$WORK/cache"
INSTS=20000
WARMUP=5000
WORKLOADS=(vpr mcf twolf gzip)

# Full instrumentation stays on while the byte-identity diffs run:
# access logging and per-request worker tracing must never perturb
# the served documents.
"$BIN/specslice_serve" --socket "$SOCK" --cache "$CACHE" --workers 4 \
    --access-log "$WORK/access.ndjson" --trace-dir "$WORK/traces" &
SERVER_PID=$!

for _ in $(seq 1 100); do
    if "$BIN/specslice_serve" --connect "$SOCK" --ping \
            > /dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited during startup" >&2
        exit 1
    fi
    sleep 0.1
done

request() {
    printf '{"workload": "%s", "insts": %d, "warmup": %d}' \
        "$1" "$INSTS" "$WARMUP"
}

sweep() {
    # One client per workload, all in flight at once.
    local pass="$1" pids=() wl
    for wl in "${WORKLOADS[@]}"; do
        "$BIN/specslice_serve" --connect "$SOCK" \
            --request "$(request "$wl")" \
            > "$WORK/$pass.$wl.json" &
        pids+=($!)
    done
    local rc=0 p
    for p in "${pids[@]}"; do
        wait "$p" || rc=$?
    done
    return "$rc"
}

echo "== pass 1: cold sweep, ${#WORKLOADS[@]} concurrent clients"
sweep pass1

echo "== served document is byte-identical to specslice_run"
"$BIN/specslice_run" --workload vpr --insts "$INSTS" \
    --warmup "$WARMUP" --json --no-wall > "$WORK/direct.vpr.json"
diff "$WORK/direct.vpr.json" "$WORK/pass1.vpr.json"

echo "== pass 2: warm sweep must be all cache hits"
sweep pass2
for wl in "${WORKLOADS[@]}"; do
    diff "$WORK/pass1.$wl.json" "$WORK/pass2.$wl.json"
done

STATS="$("$BIN/specslice_serve" --connect "$SOCK" --stats)"
echo "$STATS"
HITS="$(printf '%s' "$STATS" | sed -n 's/.*"hits": \([0-9]*\).*/\1/p')"
MISSES="$(printf '%s' "$STATS" \
    | sed -n 's/.*"misses": \([0-9]*\).*/\1/p')"
if [ -z "$HITS" ] || [ "$HITS" -lt "${#WORKLOADS[@]}" ]; then
    echo "FAIL: expected >= ${#WORKLOADS[@]} cache hits, got '$HITS'" >&2
    exit 1
fi
if [ -z "$MISSES" ] || [ "$MISSES" -ne "${#WORKLOADS[@]}" ]; then
    echo "FAIL: expected exactly ${#WORKLOADS[@]} misses (cold pass)," \
         "got '$MISSES'" >&2
    exit 1
fi

echo "== trace-mode requests: byte-identity and warm-pass hits"
"$BIN/specslice_replay" --emit --workload vpr --insts "$INSTS" \
    --warmup "$WARMUP" --out "$WORK/vpr.sstr" > /dev/null
trace_request() {
    printf '{"trace_file": "%s", "insts": %d, "warmup": %d}' \
        "$WORK/vpr.sstr" "$INSTS" "$WARMUP"
}
"$BIN/specslice_serve" --connect "$SOCK" \
    --request "$(trace_request)" > "$WORK/trace1.vpr.json"
"$BIN/specslice_run" --trace-file "$WORK/vpr.sstr" --insts "$INSTS" \
    --warmup "$WARMUP" --json --no-wall > "$WORK/direct-trace.vpr.json"
diff "$WORK/direct-trace.vpr.json" "$WORK/trace1.vpr.json"

# The warm pass over the same trace request must be all cache hits:
# the run key fingerprints the trace *content*, so an unchanged file
# can never miss (and a rewritten one can never falsely hit).
STATS="$("$BIN/specslice_serve" --connect "$SOCK" --stats)"
MISSES_COLD="$(printf '%s' "$STATS" \
    | sed -n 's/.*"misses": \([0-9]*\).*/\1/p')"
"$BIN/specslice_serve" --connect "$SOCK" \
    --request "$(trace_request)" > "$WORK/trace2.vpr.json"
diff "$WORK/trace1.vpr.json" "$WORK/trace2.vpr.json"
STATS="$("$BIN/specslice_serve" --connect "$SOCK" --stats)"
MISSES_WARM="$(printf '%s' "$STATS" \
    | sed -n 's/.*"misses": \([0-9]*\).*/\1/p')"
if [ -z "$MISSES_COLD" ] || [ -z "$MISSES_WARM" ] ||
       [ "$MISSES_WARM" -ne "$MISSES_COLD" ]; then
    echo "FAIL: warm trace-mode request missed the cache" \
         "($MISSES_COLD -> $MISSES_WARM)" >&2
    exit 1
fi

echo "== clean shutdown"
"$BIN/specslice_serve" --connect "$SOCK" --shutdown > /dev/null
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server ignored shutdown request" >&2
    exit 1
fi
wait "$SERVER_PID" || {
    echo "FAIL: server exited abnormally" >&2
    exit 1
}
SERVER_PID=""

echo "PASS: serve smoke ok (hits=$HITS misses=$MISSES)"
