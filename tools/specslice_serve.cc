/**
 * @file
 * The resident experiment server: accepts schema-versioned JSON run
 * requests, serves repeats from the content-addressed result cache
 * without simulating, and shards misses across a pool of forked
 * worker processes so a crashing simulation cannot take the daemon
 * (or any other client's batch) down.
 *
 *   specslice_serve --socket /tmp/ss.sock --cache .sscache   # daemon
 *   specslice_serve --connect /tmp/ss.sock \
 *       --request '{"op":"run","workload":"vpr","insts":20000,
 *                   "warmup":5000}'                          # client
 *   specslice_serve --connect /tmp/ss.sock --stats
 *   specslice_serve --connect /tmp/ss.sock --shutdown
 *
 * Protocol (newline-delimited JSON over a Unix-domain socket):
 *   {"op":"run", ...JobSpec fields}  -> run/serve one simulation
 *   {"op":"ping"} | {"op":"stats"} | {"op":"shutdown"}
 * Every response is one JSON line. Run responses carry the result
 * document as their LAST member ("doc"), byte-identical to
 * `specslice_run --json --no-wall` for the same flags, so clients can
 * slice it out verbatim (serve_client.hh::extractDoc) and diff against
 * direct CLI output.
 *
 * The same socket also speaks just enough HTTP/1.1 for curl: the
 * first bytes of a connection are sniffed, and `POST /run` (body =
 * run request), `GET /ping`, `GET /stats`, `POST /shutdown` map onto
 * the operations above, one request per connection.
 *
 * Execution discipline: requests are deduplicated in flight (N
 * clients asking for the same key while it simulates produce one
 * simulation and N responses), workers commit results to the cache
 * themselves (so a crash after commit loses nothing), and a worker
 * killed mid-job is observed via waitpid, respawned, and reported to
 * the waiting clients as one typed error response.
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/hash.hh"
#include "common/jsonio.hh"
#include "serve_client.hh"
#include "sim/proc_pool.hh"
#include "sim/result_cache.hh"
#include "sim/result_json.hh"
#include "sim/serve_job.hh"

using namespace specslice;

namespace
{

/** Same resolution order as the other cache-aware clients. */
std::string
defaultCacheDir()
{
    if (const char *env = std::getenv("SS_CACHE_DIR"))
        return env;
    return ".sscache";
}

struct Options
{
    // Daemon mode.
    std::string socketPath;
    std::string cacheDir = defaultCacheDir();
    std::uint64_t cacheBytes = sim::ResultCache::defaultMaxBytes;
    unsigned workers = 0;  ///< 0 = hardware concurrency, capped
    bool verbose = false;

    // Client mode.
    std::string connectPath;
    std::string request;  ///< full request line (client)
    std::string op;       ///< ping | stats | shutdown (client)
    bool raw = false;     ///< print the envelope, not the doc
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: specslice_serve --socket PATH [daemon options]\n"
        "       specslice_serve --connect PATH (--request JSON |\n"
        "                       --ping | --stats | --shutdown)\n"
        "daemon options:\n"
        "  --socket PATH     Unix-domain socket to listen on (the\n"
        "                    path is unlinked and rebound)\n"
        "  --cache DIR       content-addressed result store (default\n"
        "                    $SS_CACHE_DIR or .sscache)\n"
        "  --cache-bytes N   LRU size cap in bytes (default 256 MiB;\n"
        "                    0 = unlimited)\n"
        "  --workers N       simulation worker processes (default:\n"
        "                    min(cores, 8))\n"
        "  --verbose         log requests to stderr\n"
        "client options:\n"
        "  --connect PATH    talk to the daemon at PATH\n"
        "  --request JSON    send one request line; prints the result\n"
        "                    document and exits with its exit_code\n"
        "  --raw             print the whole response envelope\n"
        "  --ping | --stats | --shutdown\n"
        "exit codes (client): the run's specslice_run-compatible exit\n"
        "code; 5 on transport or protocol errors\n");
    std::exit(code);
}

std::uint64_t
parseNum(const char *s)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0' || *s == '\0' || *s == '-')
        usage(2);
    return v;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (a == "--socket")
            o.socketPath = next();
        else if (a == "--cache")
            o.cacheDir = next();
        else if (a == "--cache-bytes")
            o.cacheBytes = parseNum(next());
        else if (a == "--workers") {
            o.workers = static_cast<unsigned>(parseNum(next()));
            if (o.workers == 0 || o.workers > 64)
                usage(2);
        } else if (a == "--verbose")
            o.verbose = true;
        else if (a == "--connect")
            o.connectPath = next();
        else if (a == "--request")
            o.request = next();
        else if (a == "--ping")
            o.op = "ping";
        else if (a == "--stats")
            o.op = "stats";
        else if (a == "--shutdown")
            o.op = "shutdown";
        else if (a == "--raw")
            o.raw = true;
        else if (a == "--help" || a == "-h")
            usage(0);
        else {
            std::fprintf(stderr, "error: unknown option '%s'\n",
                         a.c_str());
            usage(2);
        }
    }
    if (o.socketPath.empty() == o.connectPath.empty()) {
        std::fprintf(stderr,
                     "error: exactly one of --socket (daemon) or "
                     "--connect (client) is required\n");
        usage(2);
    }
    return o;
}

// ---------------------------------------------------------------
// Response envelopes
// ---------------------------------------------------------------

std::string
errorEnvelope(const std::string &op, const std::string &kind,
              const std::string &message)
{
    json::JsonObject err;
    err.field("kind", kind).field("message", message);
    json::JsonObject doc;
    doc.raw("ok", "false")
        .field("op", op)
        .field("schema_version", sim::resultSchemaVersion)
        .raw("error", err.str());
    return doc.str();
}

/** Run response; `doc` MUST be the last member (see extractDoc). */
std::string
runEnvelope(const std::string &workload, std::uint64_t seed,
            bool cached, const std::string &key, int exit_code,
            const std::string &doc)
{
    json::JsonObject o;
    o.raw("ok", "true")
        .field("op", std::string("run"))
        .field("schema_version", sim::resultSchemaVersion)
        .field("workload", workload)
        .field("seed", seed)
        .raw("cached", cached ? "true" : "false")
        .field("key", key)
        .field("exit_code", std::uint64_t(exit_code))
        .raw("doc", doc);
    return o.str();
}

// ---------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------

volatile sig_atomic_t g_terminate = 0;

void
onTerminate(int)
{
    g_terminate = 1;
}

class Server
{
  public:
    Server(const Options &o)
        : opts_(o), cache_(o.cacheDir, o.cacheBytes),
          pool_(workerCountFor(o),
                [dir = o.cacheDir, bytes = o.cacheBytes](
                    const std::string &payload) {
                    return workerRun(dir, bytes, payload);
                })
    {
    }

    int run();

  private:
    struct Conn
    {
        int fd = -1;
        bool http = false;
        bool sniffed = false;
        bool closing = false;  ///< close once `out` drains
        std::string in;
        std::string out;
    };

    struct Pending
    {
        std::string key;
        std::string workload;
        std::uint64_t seed = 1;
        /** Connection ids (not fds: fds are reused) awaiting this. */
        std::vector<std::uint64_t> waiters;
    };

    static unsigned
    workerCountFor(const Options &o)
    {
        if (o.workers)
            return o.workers;
        unsigned hw = std::max(1u, std::thread::hardware_concurrency());
        return std::min(hw, 8u);
    }

    /** Runs in the worker process: "key\nspec-json" in,
     *  "exit\ndoc" out; commits cacheable outcomes itself. */
    static std::string
    workerRun(const std::string &cache_dir, std::uint64_t cache_bytes,
              const std::string &payload)
    {
        auto nl = payload.find('\n');
        if (nl == std::string::npos)
            throw std::runtime_error("malformed worker payload");
        const std::string key = payload.substr(0, nl);
        std::string err;
        auto doc = json::parse(payload.substr(nl + 1), err);
        if (!doc)
            throw std::runtime_error("malformed worker spec: " + err);
        sim::JobSpec spec;
        if (!sim::JobSpec::fromJson(*doc, spec, err))
            throw std::runtime_error("bad worker spec: " + err);

        sim::JobOutcome out = sim::runJob(spec);
        // Usage (2) and sim-error (4) outcomes are not cached: the
        // former is a client bug, the latter may be environmental
        // (and a panic message can carry addresses). Completed,
        // divergence, and truncated runs are all deterministic.
        if (out.exitCode == 0 || out.exitCode == 1 ||
            out.exitCode == 3) {
            sim::ResultCache cache(cache_dir, cache_bytes);
            std::string serr;
            cache.store(key, std::to_string(out.exitCode) + "\n" +
                                 out.document,
                        serr);
        }
        return std::to_string(out.exitCode) + "\n" + out.document;
    }

    bool listenOn(const std::string &path);
    void acceptClients();
    void handleReadable(Conn &c);
    void processNdjson(Conn &c);
    void processHttp(Conn &c);
    void handleRequest(Conn &c, const std::string &line);
    void respond(Conn &c, const std::string &envelope);
    void drainPool();
    void flushWrites();
    std::string statsEnvelope();

    Options opts_;
    sim::ResultCache cache_;
    sim::ProcPool pool_;
    int listenFd_ = -1;
    std::uint64_t nextConnId_ = 1;
    std::map<std::uint64_t, Conn> conns_;
    /** ticket -> waiters */
    std::map<std::uint64_t, Pending> pending_;
    /** key -> ticket (in-flight dedup) */
    std::map<std::string, std::uint64_t> inFlightKeys_;
    bool shuttingDown_ = false;
    std::uint64_t requests_ = 0;
    std::uint64_t runRequests_ = 0;
    std::uint64_t servedHits_ = 0;
    std::uint64_t servedMisses_ = 0;
};

bool
Server::listenOn(const std::string &path)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
        std::fprintf(stderr, "error: socket path too long: %s\n",
                     path.c_str());
        return false;
    }
    ::unlink(path.c_str());
    listenFd_ = ::socket(AF_UNIX,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listenFd_ < 0) {
        std::perror("socket");
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        std::perror("bind/listen");
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    return true;
}

void
Server::acceptClients()
{
    for (;;) {
        int fd = ::accept4(listenFd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            return;
        Conn c;
        c.fd = fd;
        conns_.emplace(nextConnId_++, std::move(c));
    }
}

void
Server::handleReadable(Conn &c)
{
    char buf[16384];
    for (;;) {
        ssize_t n = ::read(c.fd, buf, sizeof(buf));
        if (n > 0) {
            c.in.append(buf, static_cast<std::size_t>(n));
            if (c.in.size() > 64 * 1024 * 1024) {
                c.closing = true;  // abuse guard: drop the flooder
                c.out.clear();
                return;
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        // EOF or error: process what we have, then close.
        c.closing = true;
        break;
    }
    if (!c.sniffed && !c.in.empty()) {
        c.http = c.in.rfind("POST ", 0) == 0 ||
                 c.in.rfind("GET ", 0) == 0;
        c.sniffed = true;
    }
    if (c.http)
        processHttp(c);
    else
        processNdjson(c);
}

void
Server::processNdjson(Conn &c)
{
    std::size_t start = 0;
    for (;;) {
        auto nl = c.in.find('\n', start);
        if (nl == std::string::npos)
            break;
        std::string line = c.in.substr(start, nl - start);
        start = nl + 1;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        handleRequest(c, line);
    }
    c.in.erase(0, start);
}

void
Server::processHttp(Conn &c)
{
    auto hdr_end = c.in.find("\r\n\r\n");
    if (hdr_end == std::string::npos)
        return;  // headers incomplete
    const std::string headers = c.in.substr(0, hdr_end);
    std::size_t content_length = 0;
    {
        // Case-insensitive Content-Length scan.
        std::string lower = headers;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char ch) {
                           return static_cast<char>(
                               std::tolower(ch));
                       });
        auto pos = lower.find("content-length:");
        if (pos != std::string::npos)
            content_length = std::strtoull(
                headers.c_str() + pos + 15, nullptr, 10);
    }
    if (c.in.size() < hdr_end + 4 + content_length)
        return;  // body incomplete
    const std::string body =
        c.in.substr(hdr_end + 4, content_length);
    c.in.clear();

    auto sp1 = headers.find(' ');
    auto sp2 = headers.find(' ', sp1 + 1);
    const std::string method = headers.substr(0, sp1);
    const std::string path =
        sp2 == std::string::npos
            ? ""
            : headers.substr(sp1 + 1, sp2 - sp1 - 1);

    std::string request;
    int status = 200;
    if (method == "POST" && path == "/run") {
        // The body IS the run request: op defaults to "run" when the
        // object omits it, so no rewriting (which could perturb the
        // client's bytes) is needed.
        request = body;
    } else if (method == "GET" && path == "/ping") {
        request = "{\"op\": \"ping\"}";
    } else if (method == "GET" && path == "/stats") {
        request = "{\"op\": \"stats\"}";
    } else if (method == "POST" && path == "/shutdown") {
        request = "{\"op\": \"shutdown\"}";
    } else {
        status = 404;
    }

    if (status != 200) {
        const std::string body404 =
            errorEnvelope("http", "not_found",
                          method + " " + path +
                              " is not a service route") +
            "\n";
        c.out += "HTTP/1.1 404 Not Found\r\nContent-Type: "
                 "application/json\r\nContent-Length: " +
                 std::to_string(body404.size()) +
                 "\r\nConnection: close\r\n\r\n" + body404;
        c.closing = true;
        return;
    }
    // handleRequest appends the NDJSON line via respond(); wrap it.
    handleRequest(c, request);
}

void
Server::respond(Conn &c, const std::string &envelope)
{
    if (c.http) {
        const std::string body = envelope + "\n";
        c.out += "HTTP/1.1 200 OK\r\nContent-Type: application/"
                 "json\r\nContent-Length: " +
                 std::to_string(body.size()) +
                 "\r\nConnection: close\r\n\r\n" + body;
        c.closing = true;
    } else {
        c.out += envelope + "\n";
    }
}

std::string
Server::statsEnvelope()
{
    const sim::ResultCache::Stats &cs = cache_.stats();
    json::JsonObject cache;
    cache.field("dir", cache_.dir())
        .field("entries", cache_.entryCount())
        .field("hits", cs.hits)
        .field("misses", cs.misses)
        .field("stores", cs.stores)
        .field("evictions", cs.evictions)
        .field("rejected", cs.rejected);
    std::vector<std::string> pids;
    for (int pid : pool_.workerPids())
        pids.push_back(std::to_string(pid));
    json::JsonObject pool;
    pool.field("workers", std::uint64_t{pool_.workerCount()})
        .raw("worker_pids", json::jsonArray(pids))
        .field("respawns", pool_.respawns())
        .field("in_flight", std::uint64_t{pool_.inFlight()});
    json::JsonObject served;
    served.field("requests", requests_)
        .field("run_requests", runRequests_)
        .field("cache_hits", servedHits_)
        .field("cache_misses", servedMisses_);
    json::JsonObject doc;
    doc.raw("ok", "true")
        .field("op", std::string("stats"))
        .field("schema_version", sim::resultSchemaVersion)
        .raw("cache", cache.str())
        .raw("pool", pool.str())
        .raw("served", served.str());
    return doc.str();
}

void
Server::handleRequest(Conn &c, const std::string &line)
{
    ++requests_;
    std::string err;
    auto doc = json::parse(line, err);
    if (!doc || !doc->isObject()) {
        respond(c, errorEnvelope("", "parse",
                                 "request is not a JSON object: " +
                                     err));
        return;
    }
    const std::string op = doc->getStr("op", "run");
    if (opts_.verbose)
        std::fprintf(stderr, "serve: %s request (%zu bytes)\n",
                     op.c_str(), line.size());

    if (op == "ping") {
        json::JsonObject pong;
        pong.raw("ok", "true")
            .field("op", std::string("ping"))
            .field("schema_version", sim::resultSchemaVersion);
        respond(c, pong.str());
        return;
    }
    if (op == "stats") {
        respond(c, statsEnvelope());
        return;
    }
    if (op == "shutdown") {
        json::JsonObject bye;
        bye.raw("ok", "true")
            .field("op", std::string("shutdown"))
            .field("schema_version", sim::resultSchemaVersion)
            .field("draining", std::uint64_t{pending_.size()});
        respond(c, bye.str());
        shuttingDown_ = true;
        return;
    }
    if (op != "run") {
        respond(c, errorEnvelope(op, "usage",
                                 "unknown op '" + op + "'"));
        return;
    }

    ++runRequests_;
    if (shuttingDown_) {
        respond(c, errorEnvelope("run", "shutdown",
                                 "server is draining"));
        return;
    }
    sim::JobSpec spec;
    if (!sim::JobSpec::fromJson(*doc, spec, err)) {
        respond(c, errorEnvelope("run", "usage", err));
        return;
    }
    std::string key = sim::jobCacheKey(spec, err);
    if (key.empty()) {
        respond(c, errorEnvelope("run", "usage", err));
        return;
    }

    if (auto payload = cache_.lookup(key)) {
        auto nl = payload->find('\n');
        if (nl != std::string::npos) {
            ++servedHits_;
            int exit_code = std::atoi(payload->substr(0, nl).c_str());
            respond(c, runEnvelope(spec.workload, spec.seed, true,
                                   key, exit_code,
                                   payload->substr(nl + 1)));
            return;
        }
        // Structurally odd payload: fall through and recompute.
    }
    ++servedMisses_;

    // In-flight dedup: piggyback on an identical running job.
    std::uint64_t conn_id = 0;
    for (auto &[id, conn] : conns_)
        if (&conn == &c)
            conn_id = id;
    auto it = inFlightKeys_.find(key);
    if (it != inFlightKeys_.end()) {
        pending_[it->second].waiters.push_back(conn_id);
        return;
    }
    std::string serr;
    std::uint64_t ticket =
        pool_.submit(key + "\n" + spec.toJson(), serr);
    if (!ticket) {
        respond(c, errorEnvelope("run", "overload", serr));
        return;
    }
    Pending p;
    p.key = key;
    p.workload = spec.workload;
    p.seed = spec.seed;
    p.waiters.push_back(conn_id);
    pending_.emplace(ticket, std::move(p));
    inFlightKeys_.emplace(key, ticket);
}

void
Server::drainPool()
{
    for (sim::ProcPool::Result &r : pool_.poll(0)) {
        auto it = pending_.find(r.ticket);
        if (it == pending_.end())
            continue;
        Pending p = std::move(it->second);
        pending_.erase(it);
        inFlightKeys_.erase(p.key);

        std::string envelope;
        if (r.status == sim::ProcPool::JobStatus::Done) {
            auto nl = r.payload.find('\n');
            int exit_code =
                nl == std::string::npos
                    ? 4
                    : std::atoi(r.payload.substr(0, nl).c_str());
            std::string doc =
                nl == std::string::npos
                    ? sim::errorDocument(p.workload, p.seed, "failed",
                                         "malformed worker result")
                    : r.payload.substr(nl + 1);
            envelope = runEnvelope(p.workload, p.seed, false, p.key,
                                   exit_code, doc);
        } else {
            // Failed (exception) or Crashed (worker died): one typed
            // error document per the batch contract; the pool has
            // already respawned a replacement for a crash.
            const char *kind =
                r.status == sim::ProcPool::JobStatus::Crashed
                    ? "crashed"
                    : "failed";
            std::string doc = sim::errorDocument(p.workload, p.seed,
                                                 kind, r.payload);
            json::JsonObject o;
            o.raw("ok", "false")
                .field("op", std::string("run"))
                .field("schema_version", sim::resultSchemaVersion)
                .field("workload", p.workload)
                .field("seed", p.seed)
                .raw("cached", "false")
                .field("key", p.key)
                .field("exit_code", std::uint64_t{4})
                .field("error_kind", std::string(kind))
                .raw("doc", doc);
            envelope = o.str();
        }
        for (std::uint64_t id : p.waiters) {
            auto cit = conns_.find(id);
            if (cit != conns_.end())
                respond(cit->second, envelope);
        }
    }
}

void
Server::flushWrites()
{
    for (auto it = conns_.begin(); it != conns_.end();) {
        Conn &c = it->second;
        while (!c.out.empty()) {
            ssize_t n = ::write(c.fd, c.out.data(), c.out.size());
            if (n > 0) {
                c.out.erase(0, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            c.closing = true;  // broken pipe: drop the connection
            c.out.clear();
            break;
        }
        bool waiting = false;
        for (const auto &[ticket, p] : pending_) {
            (void)ticket;
            if (std::find(p.waiters.begin(), p.waiters.end(),
                          it->first) != p.waiters.end()) {
                waiting = true;
                break;
            }
        }
        if (c.closing && c.out.empty() && !waiting) {
            ::close(c.fd);
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

int
Server::run()
{
    signal(SIGPIPE, SIG_IGN);
    signal(SIGTERM, onTerminate);
    signal(SIGINT, onTerminate);

    if (!listenOn(opts_.socketPath))
        return 1;
    std::fprintf(stderr,
                 "specslice_serve: listening on %s (cache %s, %u "
                 "workers)\n",
                 opts_.socketPath.c_str(), cache_.dir().c_str(),
                 pool_.workerCount());

    while (!g_terminate) {
        if (shuttingDown_ && pending_.empty()) {
            // Flush remaining bytes, then leave.
            flushWrites();
            bool all_flushed = true;
            for (const auto &[id, c] : conns_) {
                (void)id;
                if (!c.out.empty())
                    all_flushed = false;
            }
            if (all_flushed)
                break;
        }

        std::vector<pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        std::vector<std::uint64_t> conn_ids;
        for (auto &[id, c] : conns_) {
            short ev = POLLIN;
            if (!c.out.empty())
                ev |= POLLOUT;
            fds.push_back({c.fd, ev, 0});
            conn_ids.push_back(id);
        }
        std::vector<int> pool_fds = pool_.resultFds();
        for (int fd : pool_fds)
            fds.push_back({fd, POLLIN, 0});

        int rc = ::poll(fds.data(), fds.size(),
                        pending_.empty() ? 1000 : 200);
        if (rc < 0 && errno != EINTR)
            break;

        if (fds[0].revents & POLLIN)
            acceptClients();
        for (std::size_t i = 0; i < conn_ids.size(); ++i) {
            auto it = conns_.find(conn_ids[i]);
            if (it == conns_.end())
                continue;
            short re = fds[1 + i].revents;
            if (re & (POLLIN | POLLHUP | POLLERR))
                handleReadable(it->second);
        }
        // Always drain the pool: results may be ready even when the
        // poll woke for another reason (or a worker died without
        // writing — reapAndRespawn runs inside poll(0)).
        drainPool();
        flushWrites();
    }

    ::close(listenFd_);
    ::unlink(opts_.socketPath.c_str());
    std::fprintf(stderr, "specslice_serve: shut down (%llu requests, "
                         "%llu hits, %llu misses)\n",
                 static_cast<unsigned long long>(requests_),
                 static_cast<unsigned long long>(servedHits_),
                 static_cast<unsigned long long>(servedMisses_));
    return 0;
}

// ---------------------------------------------------------------
// Client mode
// ---------------------------------------------------------------

int
clientMain(const Options &o)
{
    std::string request = o.request;
    if (request.empty()) {
        if (o.op.empty()) {
            std::fprintf(stderr,
                         "error: client mode needs --request or one "
                         "of --ping/--stats/--shutdown\n");
            return 5;
        }
        request = "{\"op\": \"" + o.op + "\"}";
    }

    std::string response, err;
    if (!serve_client::requestOnce(o.connectPath, request, response,
                                   err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 5;
    }
    if (o.raw || o.request.empty()) {
        std::printf("%s\n", response.c_str());
        std::string perr;
        auto env = json::parse(response, perr);
        return env && env->getBool("ok") ? 0 : 5;
    }

    // Run request: print the byte-exact result document, exit with
    // the run's exit code.
    std::string perr;
    auto env = json::parse(response, perr);
    if (!env) {
        std::fprintf(stderr, "error: unparseable response: %s\n",
                     perr.c_str());
        return 5;
    }
    std::string doc;
    if (serve_client::extractDoc(response, doc))
        std::printf("%s\n", doc.c_str());
    else
        std::printf("%s\n", response.c_str());
    if (!env->getBool("ok")) {
        const json::Value *e = env->get("error");
        std::fprintf(stderr, "error: %s\n",
                     e ? e->getStr("message", "request failed").c_str()
                       : env->getStr("error_kind", "request failed")
                             .c_str());
        // A served-but-failed run (crashed worker, sim error) carries
        // the run's exit code; 5 stays reserved for transport and
        // protocol failures where no run happened at all.
        return static_cast<int>(env->getU64("exit_code", 5));
    }
    return static_cast<int>(env->getU64("exit_code", 5));
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);
    if (!o.connectPath.empty())
        return clientMain(o);
    Server server(o);
    return server.run();
}
