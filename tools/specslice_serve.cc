/**
 * @file
 * The resident experiment server: accepts schema-versioned JSON run
 * requests, serves repeats from the content-addressed result cache
 * without simulating, and shards misses across a pool of forked
 * worker processes so a crashing simulation cannot take the daemon
 * (or any other client's batch) down.
 *
 *   specslice_serve --socket /tmp/ss.sock --cache .sscache   # daemon
 *   specslice_serve --connect /tmp/ss.sock \
 *       --request '{"op":"run","workload":"vpr","insts":20000,
 *                   "warmup":5000}'                          # client
 *   specslice_serve --connect /tmp/ss.sock --stats
 *   specslice_serve --connect /tmp/ss.sock --shutdown
 *
 * Protocol (newline-delimited JSON over a Unix-domain socket):
 *   {"op":"run", ...JobSpec fields}  -> run/serve one simulation
 *   {"op":"ping"} | {"op":"stats"} | {"op":"shutdown"}
 * Every response is one JSON line. Run responses carry the result
 * document as their LAST member ("doc"), byte-identical to
 * `specslice_run --json --no-wall` for the same flags, so clients can
 * slice it out verbatim (serve_client.hh::extractDoc) and diff against
 * direct CLI output.
 *
 * The same socket also speaks just enough HTTP/1.1 for curl: the
 * first bytes of a connection are sniffed, and `POST /run` (body =
 * run request), `GET /ping`, `GET /stats`, `POST /shutdown` map onto
 * the operations above, one request per connection.
 *
 * Execution discipline: requests are deduplicated in flight (N
 * clients asking for the same key while it simulates produce one
 * simulation and N responses), workers commit results to the cache
 * themselves (so a crash after commit loses nothing), and a worker
 * killed mid-job is observed via waitpid, respawned, and reported to
 * the waiting clients as one typed error response.
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/hash.hh"
#include "common/jsonio.hh"
#include "fault/fault.hh"
#include "obs/events.hh"
#include "obs/metrics.hh"
#include "obs/trace_merge.hh"
#include "serve_client.hh"
#include "sim/proc_pool.hh"
#include "sim/result_cache.hh"
#include "sim/result_json.hh"
#include "sim/serve_job.hh"

using namespace specslice;

namespace
{

/** Same resolution order as the other cache-aware clients. */
std::string
defaultCacheDir()
{
    if (const char *env = std::getenv("SS_CACHE_DIR"))
        return env;
    return ".sscache";
}

/** Monotonic microseconds (phase timings, queue waits, RTTs). */
std::uint64_t
nowUsec()
{
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000 +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000;
}

/** Wall-clock microseconds (access-log timestamps). */
std::uint64_t
wallUsec()
{
    timespec ts{};
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000 +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000;
}

/** Zero-padded request id ("r000042"): lexical order == arrival
 *  order, so sorted trace-fragment filenames replay in order. */
std::string
reqIdStr(std::uint64_t id)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "r%06" PRIu64, id);
    return buf;
}

struct Options
{
    // Daemon mode.
    std::string socketPath;
    std::string cacheDir = defaultCacheDir();
    std::uint64_t cacheBytes = sim::ResultCache::defaultMaxBytes;
    unsigned workers = 0;  ///< 0 = hardware concurrency, capped
    bool verbose = false;
    std::string accessLog;  ///< NDJSON per-request log ("" = off)
    std::string traceDir;   ///< worker trace fragments ("" = off)
    std::uint64_t deadlineMs = 0;  ///< default per-request deadline
                                   ///< (0 = none; requests may set
                                   ///< their own "deadline_ms")
    std::uint64_t maxPending = 48; ///< admission cap: distinct jobs
                                   ///< in flight before shedding
    unsigned maxJobAttempts = 2;   ///< crash-retry cap per job
    std::string inject;            ///< service-site fault plan
    std::uint64_t injectSeed = 1;
    bool fsck = false;      ///< scrub the cache and exit
    bool fsckDelete = false;  ///< --fsck deletes instead of
                              ///< quarantining

    // Client mode.
    std::string connectPath;
    std::string request;  ///< full request line (client)
    std::string op;       ///< ping | stats | shutdown (client)
    bool raw = false;     ///< print the envelope, not the doc
    int timeoutMs = 120000;  ///< client I/O deadline per attempt
    unsigned retries = 4;    ///< client retries after first attempt
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: specslice_serve --socket PATH [daemon options]\n"
        "       specslice_serve --connect PATH (--request JSON |\n"
        "                       --ping | --stats | --shutdown)\n"
        "daemon options:\n"
        "  --socket PATH     Unix-domain socket to listen on (the\n"
        "                    path is unlinked and rebound)\n"
        "  --cache DIR       content-addressed result store (default\n"
        "                    $SS_CACHE_DIR or .sscache)\n"
        "  --cache-bytes N   LRU size cap in bytes (default 256 MiB;\n"
        "                    0 = unlimited)\n"
        "  --workers N       simulation worker processes (default:\n"
        "                    min(cores, 8))\n"
        "  --verbose         log requests to stderr\n"
        "  --access-log PATH append one NDJSON line per request with\n"
        "                    request id and phase timings\n"
        "  --trace-dir DIR   workers write per-request --chrome-trace\n"
        "                    fragments here; the trace_merge op\n"
        "                    stitches them into merged_trace.json\n"
        "  --deadline-ms N   default per-request deadline: a run past\n"
        "                    it gets a typed deadline_exceeded error\n"
        "                    and its worker is SIGKILLed (default 0 =\n"
        "                    none; requests may set \"deadline_ms\")\n"
        "  --max-pending N   admission cap: distinct jobs in flight\n"
        "                    before new work is shed with a typed\n"
        "                    overloaded error (default 48)\n"
        "  --max-attempts N  times one job may crash a worker before\n"
        "                    it is failed as poisoned (default 2)\n"
        "  --inject SPEC     service-site fault plan (serve.wedge,\n"
        "                    serve.crash, cache.enospc, cache.flip,\n"
        "                    sock.drop; also read from SS_INJECT)\n"
        "  --inject-seed N   fault plan seed (default 1)\n"
        "maintenance:\n"
        "  --fsck            scrub --cache: verify every entry's\n"
        "                    header + checksum, quarantine corrupt\n"
        "                    ones, rebuild the LRU index; prints a\n"
        "                    JSON report and exits (no daemon)\n"
        "  --fsck-delete     with --fsck: delete corrupt entries\n"
        "                    instead of quarantining them\n"
        "client options:\n"
        "  --connect PATH    talk to the daemon at PATH\n"
        "  --request JSON    send one request line; prints the result\n"
        "                    document and exits with its exit_code\n"
        "  --raw             print the whole response envelope\n"
        "  --ping | --stats | --shutdown\n"
        "  --metrics         fetch the service metrics (JSON form;\n"
        "                    GET /metrics serves Prometheus text)\n"
        "  --trace-merge     merge worker trace fragments now\n"
        "  --timeout-ms N    per-attempt I/O deadline (default\n"
        "                    120000; a wedged daemon turns into a\n"
        "                    typed timeout, never a hang)\n"
        "  --retries N       retries after the first attempt for\n"
        "                    transport failures and retryable\n"
        "                    envelopes (default 4)\n"
        "exit codes (client): the run's specslice_run-compatible exit\n"
        "code; 5 on transport or protocol errors\n");
    std::exit(code);
}

std::uint64_t
parseNum(const char *s)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0' || *s == '\0' || *s == '-')
        usage(2);
    return v;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (a == "--socket")
            o.socketPath = next();
        else if (a == "--cache")
            o.cacheDir = next();
        else if (a == "--cache-bytes")
            o.cacheBytes = parseNum(next());
        else if (a == "--workers") {
            o.workers = static_cast<unsigned>(parseNum(next()));
            if (o.workers == 0 || o.workers > 64)
                usage(2);
        } else if (a == "--verbose")
            o.verbose = true;
        else if (a == "--access-log")
            o.accessLog = next();
        else if (a == "--trace-dir")
            o.traceDir = next();
        else if (a == "--deadline-ms")
            o.deadlineMs = parseNum(next());
        else if (a == "--max-pending") {
            o.maxPending = parseNum(next());
            if (o.maxPending == 0)
                usage(2);
        } else if (a == "--max-attempts") {
            o.maxJobAttempts =
                static_cast<unsigned>(parseNum(next()));
            if (o.maxJobAttempts == 0)
                usage(2);
        } else if (a == "--inject")
            o.inject = next();
        else if (a == "--inject-seed")
            o.injectSeed = parseNum(next());
        else if (a == "--fsck")
            o.fsck = true;
        else if (a == "--fsck-delete")
            o.fsckDelete = true;
        else if (a == "--timeout-ms") {
            o.timeoutMs = static_cast<int>(parseNum(next()));
            if (o.timeoutMs <= 0)
                usage(2);
        } else if (a == "--retries")
            o.retries = static_cast<unsigned>(parseNum(next()));
        else if (a == "--connect")
            o.connectPath = next();
        else if (a == "--request")
            o.request = next();
        else if (a == "--ping")
            o.op = "ping";
        else if (a == "--stats")
            o.op = "stats";
        else if (a == "--shutdown")
            o.op = "shutdown";
        else if (a == "--metrics")
            o.op = "metrics";
        else if (a == "--trace-merge")
            o.op = "trace_merge";
        else if (a == "--raw")
            o.raw = true;
        else if (a == "--help" || a == "-h")
            usage(0);
        else {
            std::fprintf(stderr, "error: unknown option '%s'\n",
                         a.c_str());
            usage(2);
        }
    }
    if (o.fsck) {
        if (!o.socketPath.empty() || !o.connectPath.empty()) {
            std::fprintf(stderr, "error: --fsck runs offline; drop "
                                 "--socket/--connect\n");
            usage(2);
        }
        return o;
    }
    if (o.socketPath.empty() == o.connectPath.empty()) {
        std::fprintf(stderr,
                     "error: exactly one of --socket (daemon) or "
                     "--connect (client) is required\n");
        usage(2);
    }
    return o;
}

// ---------------------------------------------------------------
// Response envelopes
// ---------------------------------------------------------------

std::string
errorEnvelope(const std::string &op, const std::string &kind,
              const std::string &message)
{
    json::JsonObject err;
    err.field("kind", kind).field("message", message);
    json::JsonObject doc;
    doc.raw("ok", "false")
        .field("op", op)
        .field("schema_version", sim::resultSchemaVersion)
        .raw("error", err.str());
    return doc.str();
}

/** Run response; `doc` MUST be the last member (see extractDoc). */
std::string
runEnvelope(const std::string &workload, std::uint64_t seed,
            bool cached, const std::string &key, int exit_code,
            const std::string &doc)
{
    json::JsonObject o;
    o.raw("ok", "true")
        .field("op", std::string("run"))
        .field("schema_version", sim::resultSchemaVersion)
        .field("workload", workload)
        .field("seed", seed)
        .raw("cached", cached ? "true" : "false")
        .field("key", key)
        .field("exit_code", std::uint64_t(exit_code))
        .raw("doc", doc);
    return o.str();
}

// ---------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------

volatile sig_atomic_t g_terminate = 0;

void
onTerminate(int)
{
    g_terminate = 1;
}

/**
 * Owns the shared-memory metrics registry and installs it as the
 * ambient one. MUST be the first Server member: ResultCache and
 * ProcPool register their metrics at construction, and every slot
 * workers touch has to exist before ProcPool's ctor forks — so all
 * service-level names are pre-registered here too (the worker-side
 * ss_run_* histograms are observed inside runJob via the ambient
 * registry and would otherwise land on process-private slots).
 */
struct MetricsHost
{
    obs::MetricsRegistry reg{obs::MetricsRegistry::maxProcesses};

    MetricsHost()
    {
        obs::setAmbientMetrics(&reg);
        reg.counter("ss_requests_total",
                    "Requests handled (all ops)");
        reg.counter("ss_run_requests_total", "Run requests handled");
        reg.counter("ss_served_cache_hits_total",
                    "Run requests answered from the result cache");
        reg.counter("ss_served_cache_misses_total",
                    "Run requests that needed a simulation");
        reg.counter("ss_worker_crashes_total",
                    "Jobs lost to a worker process death");
        reg.counter("ss_shed_total",
                    "Run requests shed by admission control");
        reg.counter("ss_deadline_exceeded_total",
                    "Run requests that missed their deadline");
        reg.counter("ss_sock_drops_total",
                    "Connections dropped mid-response (injected)");
        reg.gauge("ss_pool_queue_depth",
                  "Jobs queued in the shared ring, unclaimed");
        reg.gauge("ss_pool_in_flight",
                  "Jobs submitted but not yet resolved");
        reg.gauge("ss_pool_workers", "Live worker processes");
        reg.gauge("ss_pool_respawns",
                  "Workers respawned after a death");
        reg.gauge("ss_pool_busy_ppm",
                  "Worker busy fraction, parts per million");
        reg.gauge("ss_uptime_usec", "Daemon uptime in microseconds");
        reg.histogram("ss_request_usec",
                      "End-to-end request latency");
        reg.histogram("ss_phase_parse_usec",
                      "Request parse phase latency");
        reg.histogram("ss_phase_key_usec",
                      "Cache-key derivation phase latency");
        reg.histogram("ss_phase_cache_probe_usec",
                      "Result-cache probe phase latency");
        reg.histogram("ss_phase_queue_wait_usec",
                      "Submit-to-completion wait minus run time");
        reg.histogram("ss_phase_worker_run_usec",
                      "Worker-side job execution latency");
        reg.histogram("ss_phase_render_usec",
                      "Response render phase latency");
        reg.histogram("ss_run_fastforward_usec",
                      "Per-run fast-forward wall time");
        reg.histogram("ss_run_warmup_usec",
                      "Per-run warm-up wall time");
        reg.histogram("ss_run_measure_usec",
                      "Per-run measured-region wall time");
    }

    ~MetricsHost() { obs::setAmbientMetrics(nullptr); }
};

class Server
{
  public:
    Server(const Options &o, const fault::FaultPlan &plan)
        : opts_(o), injectPlan_(plan),
          cache_(o.cacheDir, o.cacheBytes),
          pool_(workerCountFor(o),
                [dir = o.cacheDir, bytes = o.cacheBytes,
                 trace_dir = o.traceDir,
                 wplan = plan](const std::string &payload) {
                    return workerRun(dir, bytes, trace_dir, wplan,
                                     payload);
                },
                o.maxJobAttempts)
    {
        // Post-fork on purpose: the workers install their own
        // per-lane injectors inside workerRun; the daemon's instance
        // drives the daemon-side sites (cache.flip on lookup,
        // sock.drop on respond).
        daemonInjector_ = fault::Injector(injectPlan_);
        fault::setServiceInjector(&daemonInjector_);

        obs::MetricsRegistry &r = metrics_.reg;
        mRequests_ = r.counter("ss_requests_total");
        mRunRequests_ = r.counter("ss_run_requests_total");
        mServedHits_ = r.counter("ss_served_cache_hits_total");
        mServedMisses_ = r.counter("ss_served_cache_misses_total");
        mCrashes_ = r.counter("ss_worker_crashes_total");
        mShed_ = r.counter("ss_shed_total");
        mDeadline_ = r.counter("ss_deadline_exceeded_total");
        mSockDrops_ = r.counter("ss_sock_drops_total");
        gQueueDepth_ = r.gauge("ss_pool_queue_depth");
        gInFlight_ = r.gauge("ss_pool_in_flight");
        gWorkers_ = r.gauge("ss_pool_workers");
        gRespawns_ = r.gauge("ss_pool_respawns");
        gBusyPpm_ = r.gauge("ss_pool_busy_ppm");
        gUptime_ = r.gauge("ss_uptime_usec");
        hRequest_ = r.histogram("ss_request_usec");
        hParse_ = r.histogram("ss_phase_parse_usec");
        hKey_ = r.histogram("ss_phase_key_usec");
        hProbe_ = r.histogram("ss_phase_cache_probe_usec");
        hQueueWait_ = r.histogram("ss_phase_queue_wait_usec");
        hWorkerRun_ = r.histogram("ss_phase_worker_run_usec");
        hRender_ = r.histogram("ss_phase_render_usec");
        startUsec_ = nowUsec();
    }

    int run();

  private:
    struct Conn
    {
        int fd = -1;
        bool http = false;
        bool sniffed = false;
        bool closing = false;  ///< close once `out` drains
        std::string in;
        std::string out;
    };

    /** One client awaiting an in-flight job, with the phase clocks
     *  captured up to the moment it joined the queue. */
    struct Waiter
    {
        /** Connection id (not fd: fds are reused). */
        std::uint64_t connId = 0;
        std::uint64_t reqId = 0;
        std::uint64_t t0 = 0;  ///< request arrival, nowUsec()
        std::uint64_t parseUsec = 0;
        std::uint64_t keyUsec = 0;
        std::uint64_t probeUsec = 0;
        std::uint64_t submitUsec = 0;  ///< joined the queue
        std::uint64_t deadlineUsec = 0;  ///< absolute; 0 = none
    };

    struct Pending
    {
        std::string key;
        std::string workload;
        std::uint64_t seed = 1;
        std::vector<Waiter> waiters;
    };

    static unsigned
    workerCountFor(const Options &o)
    {
        if (o.workers)
            return o.workers;
        unsigned hw = std::max(1u, std::thread::hardware_concurrency());
        return std::min(hw, 8u);
    }

    /** Runs in the worker process: "key reqid\nspec-json" in,
     *  "exit run_usec\ndoc" out; commits cacheable outcomes itself
     *  (cache payloads stay "exit\ndoc" — byte-identical to what a
     *  hit must serve). With a trace dir, the whole job records into
     *  an EventBuffer written out as one per-request fragment tagged
     *  with the request id and this worker's lane. */
    static std::string
    workerRun(const std::string &cache_dir, std::uint64_t cache_bytes,
              const std::string &trace_dir,
              const fault::FaultPlan &plan,
              const std::string &payload)
    {
        // First job in this worker process: install the per-lane
        // service injector. Each lane gets its own seed stream so a
        // plan's firing pattern is deterministic per worker, not
        // dependent on which worker claims which job.
        static bool s_injector_installed = false;
        static fault::Injector s_injector;
        if (!s_injector_installed) {
            if (plan.hasServiceSites()) {
                unsigned lane = 0;
                if (obs::MetricsRegistry *reg =
                        obs::ambientMetrics())
                    lane = reg->boundProcess();
                fault::FaultPlan lane_plan = plan;
                lane_plan.seed =
                    plan.seed ^
                    (0xd1b54a32d192ed03ull * (lane + 1));
                s_injector = fault::Injector(lane_plan);
                fault::setServiceInjector(&s_injector);
            }
            s_injector_installed = true;
        }

        auto nl = payload.find('\n');
        if (nl == std::string::npos)
            throw std::runtime_error("malformed worker payload");
        std::string key = payload.substr(0, nl);
        std::string req_id;
        if (auto sp = key.find(' '); sp != std::string::npos) {
            req_id = key.substr(sp + 1);
            key.resize(sp);
        }
        std::string err;
        auto doc = json::parse(payload.substr(nl + 1), err);
        if (!doc)
            throw std::runtime_error("malformed worker spec: " + err);
        sim::JobSpec spec;
        if (!sim::JobSpec::fromJson(*doc, spec, err))
            throw std::runtime_error("bad worker spec: " + err);

        // Chaos taps, after the job is marked active in the shared
        // record (so the daemon can diagnose/kill this lane):
        // serve.wedge stalls as a wedged simulation would; a request
        // deadline is what ends it. serve.crash dies exactly as a
        // SIGSEGV'd simulation does.
        if (fault::serviceFire(fault::Site::ServeWedge)) {
            std::uint64_t ms =
                fault::serviceArg(fault::Site::ServeWedge);
            while (ms) {
                int chunk = static_cast<int>(
                    std::min<std::uint64_t>(ms, 1000));
                ::poll(nullptr, 0, chunk);
                ms -= static_cast<std::uint64_t>(chunk);
            }
        }
        if (fault::serviceFire(fault::Site::ServeCrash))
            ::raise(SIGKILL);

        const bool tracing = !trace_dir.empty() && !req_id.empty();
        std::unique_ptr<obs::EventBuffer> events;
        if (tracing)
            events = std::make_unique<obs::EventBuffer>(1u << 16);

        const std::uint64_t run_start = nowUsec();
        sim::JobOutcome out = sim::runJob(spec, events.get());
        const std::uint64_t run_usec = nowUsec() - run_start;

        if (tracing)
            writeTraceFragment(trace_dir, req_id, *events);

        // Usage (2) and sim-error (4) outcomes are not cached: the
        // former is a client bug, the latter may be environmental
        // (and a panic message can carry addresses). Completed,
        // divergence, and truncated runs are all deterministic.
        if (out.exitCode == 0 || out.exitCode == 1 ||
            out.exitCode == 3) {
            sim::ResultCache cache(cache_dir, cache_bytes);
            std::string serr;
            cache.store(key, std::to_string(out.exitCode) + "\n" +
                                 out.document,
                        serr);
        }
        return std::to_string(out.exitCode) + " " +
               std::to_string(run_usec) + "\n" + out.document;
    }

    /** Commit one worker's Chrome-trace fragment via temp + rename
     *  so the merger never reads a half-written file. */
    static void
    writeTraceFragment(const std::string &trace_dir,
                       const std::string &req_id,
                       const obs::EventBuffer &events)
    {
        unsigned lane = static_cast<unsigned>(::getpid());
        if (obs::MetricsRegistry *reg = obs::ambientMetrics())
            if (reg->boundProcess())
                lane = reg->boundProcess();
        obs::ChromeTraceMeta meta;
        meta.pid = lane;
        meta.processName = "worker " + std::to_string(lane);
        meta.requestId = req_id;
        const std::string path = trace_dir + "/frag-" + req_id +
                                 "-w" + std::to_string(lane) +
                                 ".json";
        const std::string tmp =
            path + ".tmp." + std::to_string(::getpid());
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return;
        events.writeChromeTrace(os, meta);
        os.flush();
        if (!os || ::rename(tmp.c_str(), path.c_str()) != 0)
            ::unlink(tmp.c_str());
    }

    bool listenOn(const std::string &path);
    void acceptClients();
    void handleReadable(Conn &c);
    void processNdjson(Conn &c);
    void processHttp(Conn &c);
    void handleRequest(Conn &c, const std::string &line);
    /** Queue one response line (or its HTTP wrapping). `droppable`
     *  marks run responses the sock.drop chaos site may truncate;
     *  `retry_after_ms >= 0` adds the HTTP Retry-After header. */
    void respond(Conn &c, const std::string &envelope,
                 bool droppable = false, int retry_after_ms = -1);
    void respondHttpText(Conn &c, const std::string &body,
                         const char *content_type);
    /** The typed run-failure envelope (crashed/poisoned/deadline/
     *  overloaded all share this shape; doc stays last). */
    std::string runFailEnvelope(const std::string &workload,
                                std::uint64_t seed,
                                const std::string &key,
                                const std::string &kind,
                                const std::string &message,
                                int retry_after_ms = -1);
    void drainPool();
    /** Expire waiters past their deadline: typed responses now, the
     *  queued job cancelled or its worker SIGKILLed. */
    void expireDeadlines();
    /** Emit synthetic op="job_retry" access lines so the log stays
     *  reconcilable with ss_job_retries_total. */
    void logPoolRetries();
    /** Poll timeout bounded by the nearest waiter deadline. */
    int pollTimeoutMs() const;
    void flushWrites();
    std::string statsEnvelope();
    std::string metricsEnvelope();
    std::string traceMergeEnvelope();
    /** Refresh the point-in-time gauges; call before any scrape so
     *  /metrics, --stats, and the JSON block all agree. */
    void updateGauges();
    void logAccess(const json::JsonObject &fields);
    /** The common access-log prefix for one request. */
    json::JsonObject accessRecord(std::uint64_t req_id,
                                  const char *op);

    Options opts_;
    /** Declared before cache_ and pool_ on purpose: their ctors
     *  register metrics, and the pool ctor forks. */
    MetricsHost metrics_;
    fault::FaultPlan injectPlan_;
    fault::Injector daemonInjector_;
    sim::ResultCache cache_;
    sim::ProcPool pool_;
    int listenFd_ = -1;
    std::uint64_t nextConnId_ = 1;
    std::uint64_t nextReqId_ = 1;
    std::uint64_t startUsec_ = 0;
    std::FILE *accessLog_ = nullptr;
    std::map<std::uint64_t, Conn> conns_;
    /** ticket -> waiters */
    std::map<std::uint64_t, Pending> pending_;
    /** key -> ticket (in-flight dedup) */
    std::map<std::string, std::uint64_t> inFlightKeys_;
    bool shuttingDown_ = false;
    std::uint64_t loggedRetries_ = 0;     ///< crashRetries() watermark
    std::uint64_t loggedQuarantines_ = 0; ///< cache quarantine mark

    obs::Counter mRequests_, mRunRequests_, mServedHits_,
        mServedMisses_, mCrashes_, mShed_, mDeadline_, mSockDrops_;
    obs::Gauge gQueueDepth_, gInFlight_, gWorkers_, gRespawns_,
        gBusyPpm_, gUptime_;
    obs::Histogram hRequest_, hParse_, hKey_, hProbe_, hQueueWait_,
        hWorkerRun_, hRender_;
};

bool
Server::listenOn(const std::string &path)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
        std::fprintf(stderr, "error: socket path too long: %s\n",
                     path.c_str());
        return false;
    }
    ::unlink(path.c_str());
    listenFd_ = ::socket(AF_UNIX,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listenFd_ < 0) {
        std::perror("socket");
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        std::perror("bind/listen");
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    return true;
}

void
Server::acceptClients()
{
    for (;;) {
        int fd = ::accept4(listenFd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            return;
        Conn c;
        c.fd = fd;
        conns_.emplace(nextConnId_++, std::move(c));
    }
}

void
Server::handleReadable(Conn &c)
{
    char buf[16384];
    for (;;) {
        ssize_t n = ::read(c.fd, buf, sizeof(buf));
        if (n > 0) {
            c.in.append(buf, static_cast<std::size_t>(n));
            if (c.in.size() > 64 * 1024 * 1024) {
                c.closing = true;  // abuse guard: drop the flooder
                c.out.clear();
                return;
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        // EOF or error: process what we have, then close.
        c.closing = true;
        break;
    }
    if (!c.sniffed && !c.in.empty()) {
        c.http = c.in.rfind("POST ", 0) == 0 ||
                 c.in.rfind("GET ", 0) == 0;
        c.sniffed = true;
    }
    if (c.http)
        processHttp(c);
    else
        processNdjson(c);
}

void
Server::processNdjson(Conn &c)
{
    std::size_t start = 0;
    for (;;) {
        auto nl = c.in.find('\n', start);
        if (nl == std::string::npos)
            break;
        std::string line = c.in.substr(start, nl - start);
        start = nl + 1;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        handleRequest(c, line);
    }
    c.in.erase(0, start);
}

void
Server::processHttp(Conn &c)
{
    auto hdr_end = c.in.find("\r\n\r\n");
    if (hdr_end == std::string::npos)
        return;  // headers incomplete
    const std::string headers = c.in.substr(0, hdr_end);
    std::size_t content_length = 0;
    {
        // Case-insensitive Content-Length scan.
        std::string lower = headers;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char ch) {
                           return static_cast<char>(
                               std::tolower(ch));
                       });
        auto pos = lower.find("content-length:");
        if (pos != std::string::npos)
            content_length = std::strtoull(
                headers.c_str() + pos + 15, nullptr, 10);
    }
    if (c.in.size() < hdr_end + 4 + content_length)
        return;  // body incomplete
    const std::string body =
        c.in.substr(hdr_end + 4, content_length);
    c.in.clear();

    auto sp1 = headers.find(' ');
    auto sp2 = headers.find(' ', sp1 + 1);
    const std::string method = headers.substr(0, sp1);
    const std::string path =
        sp2 == std::string::npos
            ? ""
            : headers.substr(sp1 + 1, sp2 - sp1 - 1);

    std::string request;
    int status = 200;
    if (method == "POST" && path == "/run") {
        // The body IS the run request: op defaults to "run" when the
        // object omits it, so no rewriting (which could perturb the
        // client's bytes) is needed.
        request = body;
    } else if (method == "GET" && path == "/ping") {
        request = "{\"op\": \"ping\"}";
    } else if (method == "GET" && path == "/stats") {
        request = "{\"op\": \"stats\"}";
    } else if (method == "GET" && path == "/metrics") {
        // Prometheus text exposition, not a JSON envelope: this is
        // the scrape endpoint (`curl --unix-socket ... /metrics`).
        updateGauges();
        respondHttpText(c, metrics_.reg.renderPrometheus(),
                        "text/plain; version=0.0.4");
        logAccess(accessRecord(nextReqId_++, "metrics")
                      .field("http", std::string("GET /metrics")));
        return;
    } else if (method == "POST" && path == "/trace/merge") {
        request = "{\"op\": \"trace_merge\"}";
    } else if (method == "POST" && path == "/shutdown") {
        request = "{\"op\": \"shutdown\"}";
    } else {
        status = 404;
    }

    if (status != 200) {
        const std::string body404 =
            errorEnvelope("http", "not_found",
                          method + " " + path +
                              " is not a service route") +
            "\n";
        c.out += "HTTP/1.1 404 Not Found\r\nContent-Type: "
                 "application/json\r\nContent-Length: " +
                 std::to_string(body404.size()) +
                 "\r\nConnection: close\r\n\r\n" + body404;
        c.closing = true;
        return;
    }
    // handleRequest appends the NDJSON line via respond(); wrap it.
    handleRequest(c, request);
}

void
Server::respondHttpText(Conn &c, const std::string &body,
                        const char *content_type)
{
    c.out += "HTTP/1.1 200 OK\r\nContent-Type: " +
             std::string(content_type) +
             "\r\nContent-Length: " + std::to_string(body.size()) +
             "\r\nConnection: close\r\n\r\n" + body;
    c.closing = true;
}

void
Server::respond(Conn &c, const std::string &envelope, bool droppable,
                int retry_after_ms)
{
    std::string wire;
    if (c.http) {
        const std::string body = envelope + "\n";
        wire = "HTTP/1.1 200 OK\r\nContent-Type: application/"
               "json\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\n";
        if (retry_after_ms >= 0)
            wire += "Retry-After: " +
                    std::to_string((retry_after_ms + 999) / 1000) +
                    "\r\n";
        wire += "Connection: close\r\n\r\n" + body;
        c.closing = true;
    } else {
        wire = envelope + "\n";
    }
    // sock.drop: ship half the response, then slam the connection —
    // the client sees a stream truncated mid-envelope (a typed
    // transport error it retries; the rerun is served from cache).
    if (droppable && fault::serviceFire(fault::Site::SockDrop)) {
        mSockDrops_.inc();
        c.out += wire.substr(0, wire.size() / 2);
        c.closing = true;
        return;
    }
    c.out += wire;
}

void
Server::updateGauges()
{
    gQueueDepth_.set(pool_.queueDepth());
    gInFlight_.set(pool_.inFlight());
    gWorkers_.set(pool_.workerCount());
    gRespawns_.set(pool_.respawns());
    const std::uint64_t up = nowUsec() - startUsec_;
    gUptime_.set(up);
    const std::uint64_t busy =
        metrics_.reg.value("ss_worker_busy_usec_total");
    const std::uint64_t denom =
        up * std::max(1u, pool_.workerCount());
    gBusyPpm_.set(denom ? busy * 1'000'000 / denom : 0);
}

void
Server::logAccess(const json::JsonObject &fields)
{
    if (!accessLog_)
        return;
    const std::string line = fields.str();
    std::fwrite(line.data(), 1, line.size(), accessLog_);
    std::fputc('\n', accessLog_);
    std::fflush(accessLog_);
}

json::JsonObject
Server::accessRecord(std::uint64_t req_id, const char *op)
{
    json::JsonObject o;
    o.field("ts_usec", wallUsec())
        .field("req", reqIdStr(req_id))
        .field("op", std::string(op));
    return o;
}

std::string
Server::statsEnvelope()
{
    updateGauges();
    obs::MetricsRegistry &reg = metrics_.reg;
    // The cache block is sourced from the registry, not the parent
    // ResultCache's private Stats: lookups all happen in the daemon
    // (so hits/misses/rejected match the old parent-only numbers),
    // but stores are committed by workers and only the shared pages
    // see them. /metrics reads the same slots, so the two surfaces
    // agree exactly.
    json::JsonObject cache;
    cache.field("dir", cache_.dir())
        .field("entries", cache_.entryCount())
        .field("hits", reg.value("ss_cache_hits_total"))
        .field("misses", reg.value("ss_cache_misses_total"))
        .field("stores", reg.value("ss_cache_stores_total"))
        .field("evictions", reg.value("ss_cache_evictions_total"))
        .field("rejected", reg.value("ss_cache_rejected_total"))
        .field("quarantined",
               reg.value("ss_cache_quarantined_total"))
        .field("passthrough",
               reg.value("ss_cache_passthrough_total"))
        .raw("degraded", cache_.degraded() ? "true" : "false");
    std::vector<std::string> pids;
    for (int pid : pool_.workerPids())
        pids.push_back(std::to_string(pid));
    json::JsonObject pool;
    pool.field("workers", std::uint64_t{pool_.workerCount()})
        .raw("worker_pids", json::jsonArray(pids))
        .field("respawns", pool_.respawns())
        .field("in_flight", std::uint64_t{pool_.inFlight()})
        .field("queue_depth", std::uint64_t{pool_.queueDepth()});
    json::JsonObject served;
    served.field("requests", reg.value("ss_requests_total"))
        .field("run_requests", reg.value("ss_run_requests_total"))
        .field("cache_hits",
               reg.value("ss_served_cache_hits_total"))
        .field("cache_misses",
               reg.value("ss_served_cache_misses_total"))
        .field("worker_jobs", reg.value("ss_worker_jobs_total"))
        .field("worker_crashes",
               reg.value("ss_worker_crashes_total"))
        .field("shed", reg.value("ss_shed_total"))
        .field("deadline_exceeded",
               reg.value("ss_deadline_exceeded_total"))
        .field("poisoned", reg.value("ss_jobs_poisoned_total"))
        .field("job_retries", reg.value("ss_job_retries_total"))
        .field("sock_drops", reg.value("ss_sock_drops_total"));
    json::JsonObject doc;
    doc.raw("ok", "true")
        .field("op", std::string("stats"))
        .field("schema_version", sim::resultSchemaVersion)
        .raw("cache", cache.str())
        .raw("pool", pool.str())
        .raw("served", served.str())
        .raw("metrics", reg.renderJson());
    return doc.str();
}

std::string
Server::metricsEnvelope()
{
    updateGauges();
    json::JsonObject doc;
    doc.raw("ok", "true")
        .field("op", std::string("metrics"))
        .field("schema_version", sim::resultSchemaVersion)
        .raw("metrics", metrics_.reg.renderJson());
    return doc.str();
}

std::string
Server::traceMergeEnvelope()
{
    if (opts_.traceDir.empty())
        return errorEnvelope("trace_merge", "usage",
                             "daemon was started without --trace-dir");
    std::vector<std::string> frags;
    if (DIR *d = ::opendir(opts_.traceDir.c_str())) {
        while (dirent *e = ::readdir(d)) {
            const std::string n = e->d_name;
            if (n.rfind("frag-", 0) == 0 && n.size() > 5 &&
                n.compare(n.size() - 5, 5, ".json") == 0)
                frags.push_back(opts_.traceDir + "/" + n);
        }
        ::closedir(d);
    } else {
        return errorEnvelope("trace_merge", "io",
                             "cannot open trace dir '" +
                                 opts_.traceDir + "'");
    }
    // Request ids are zero-padded, so lexical order is arrival order.
    std::sort(frags.begin(), frags.end());

    const std::string out_path =
        opts_.traceDir + "/merged_trace.json";
    const std::string tmp = out_path + ".tmp";
    std::string merr;
    obs::MergeStats ms;
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return errorEnvelope("trace_merge", "io",
                                 "cannot write '" + tmp + "'");
        if (!obs::mergeChromeTraces(frags, os, merr, &ms)) {
            ::unlink(tmp.c_str());
            return errorEnvelope("trace_merge", "merge", merr);
        }
        os.flush();
        if (!os) {
            ::unlink(tmp.c_str());
            return errorEnvelope("trace_merge", "io",
                                 "write to '" + tmp + "' failed");
        }
    }
    if (::rename(tmp.c_str(), out_path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return errorEnvelope("trace_merge", "io",
                             "cannot commit '" + out_path + "'");
    }
    json::JsonObject doc;
    doc.raw("ok", "true")
        .field("op", std::string("trace_merge"))
        .field("schema_version", sim::resultSchemaVersion)
        .field("path", out_path)
        .field("fragments", std::uint64_t{ms.fragments})
        .field("events", std::uint64_t{ms.events})
        .field("lanes", std::uint64_t{ms.lanes});
    return doc.str();
}

std::string
Server::runFailEnvelope(const std::string &workload,
                        std::uint64_t seed, const std::string &key,
                        const std::string &kind,
                        const std::string &message,
                        int retry_after_ms)
{
    std::string doc =
        sim::errorDocument(workload, seed, kind, message);
    json::JsonObject err;
    err.field("kind", kind).field("message", message);
    json::JsonObject o;
    o.raw("ok", "false")
        .field("op", std::string("run"))
        .field("schema_version", sim::resultSchemaVersion)
        .field("workload", workload)
        .field("seed", seed)
        .raw("cached", "false")
        .field("key", key)
        .field("exit_code", std::uint64_t{4})
        .field("error_kind", kind);
    if (retry_after_ms >= 0)
        o.field("retry_after_ms",
                std::uint64_t(retry_after_ms));
    o.raw("error", err.str()).raw("doc", doc);
    return o.str();
}

void
Server::handleRequest(Conn &c, const std::string &line)
{
    const std::uint64_t req_id = nextReqId_++;
    const std::uint64_t t0 = nowUsec();
    mRequests_.inc();
    std::string err;
    auto doc = json::parse(line, err);
    const std::uint64_t t_parse = nowUsec();
    hParse_.observe(t_parse - t0);
    if (!doc || !doc->isObject()) {
        respond(c, errorEnvelope("", "parse",
                                 "request is not a JSON object: " +
                                     err));
        logAccess(accessRecord(req_id, "").field(
            "error", std::string("parse")));
        return;
    }
    const std::string op = doc->getStr("op", "run");
    if (opts_.verbose)
        std::fprintf(stderr, "serve: %s request %s (%zu bytes)\n",
                     op.c_str(), reqIdStr(req_id).c_str(),
                     line.size());

    if (op == "ping") {
        json::JsonObject pong;
        pong.raw("ok", "true")
            .field("op", std::string("ping"))
            .field("schema_version", sim::resultSchemaVersion);
        respond(c, pong.str());
        logAccess(accessRecord(req_id, "ping")
                      .field("total_usec", nowUsec() - t0));
        return;
    }
    if (op == "stats") {
        respond(c, statsEnvelope());
        logAccess(accessRecord(req_id, "stats")
                      .field("total_usec", nowUsec() - t0));
        return;
    }
    if (op == "metrics") {
        respond(c, metricsEnvelope());
        logAccess(accessRecord(req_id, "metrics")
                      .field("total_usec", nowUsec() - t0));
        return;
    }
    if (op == "trace_merge") {
        respond(c, traceMergeEnvelope());
        logAccess(accessRecord(req_id, "trace_merge")
                      .field("total_usec", nowUsec() - t0));
        return;
    }
    if (op == "shutdown") {
        json::JsonObject bye;
        bye.raw("ok", "true")
            .field("op", std::string("shutdown"))
            .field("schema_version", sim::resultSchemaVersion)
            .field("draining", std::uint64_t{pending_.size()});
        respond(c, bye.str());
        shuttingDown_ = true;
        logAccess(accessRecord(req_id, "shutdown")
                      .field("total_usec", nowUsec() - t0));
        return;
    }
    if (op != "run") {
        respond(c, errorEnvelope(op, "usage",
                                 "unknown op '" + op + "'"));
        logAccess(accessRecord(req_id, op.c_str())
                      .field("error", std::string("usage")));
        return;
    }

    mRunRequests_.inc();
    if (shuttingDown_) {
        respond(c, errorEnvelope("run", "draining",
                                 "server is draining"));
        logAccess(accessRecord(req_id, "run")
                      .field("error", std::string("draining")));
        return;
    }
    sim::JobSpec spec;
    if (!sim::JobSpec::fromJson(*doc, spec, err)) {
        respond(c, errorEnvelope("run", "usage", err));
        logAccess(accessRecord(req_id, "run")
                      .field("error", std::string("usage")));
        return;
    }
    std::string key = sim::jobCacheKey(spec, err);
    const std::uint64_t t_key = nowUsec();
    hKey_.observe(t_key - t_parse);
    if (key.empty()) {
        respond(c, errorEnvelope("run", "usage", err));
        logAccess(accessRecord(req_id, "run")
                      .field("error", std::string("usage")));
        return;
    }

    // Per-request deadline: explicit "deadline_ms" beats the daemon
    // default. JobSpec::fromJson ignores unknown members, so the
    // field never perturbs the cache key.
    const std::uint64_t deadline_ms =
        doc->getU64("deadline_ms", opts_.deadlineMs);

    auto payload = cache_.lookup(key);
    const std::uint64_t t_probe = nowUsec();
    hProbe_.observe(t_probe - t_key);
    if (cache_.stats().quarantined > loggedQuarantines_) {
        // That probe just quarantined a corrupt entry; keep the
        // access log reconcilable with ss_cache_quarantined_total.
        loggedQuarantines_ = cache_.stats().quarantined;
        logAccess(accessRecord(req_id, "cache_quarantine")
                      .field("key", key));
    }
    if (payload) {
        auto nl = payload->find('\n');
        if (nl != std::string::npos) {
            mServedHits_.inc();
            int exit_code = std::atoi(payload->substr(0, nl).c_str());
            respond(c,
                    runEnvelope(spec.workload, spec.seed, true, key,
                                exit_code, payload->substr(nl + 1)),
                    /*droppable=*/true);
            const std::uint64_t t_end = nowUsec();
            hRender_.observe(t_end - t_probe);
            hRequest_.observe(t_end - t0);
            logAccess(accessRecord(req_id, "run")
                          .field("workload", spec.workload)
                          .field("key", key)
                          .raw("cached", "true")
                          .field("exit_code",
                                 std::uint64_t(exit_code))
                          .field("parse_usec", t_parse - t0)
                          .field("key_usec", t_key - t_parse)
                          .field("cache_probe_usec",
                                 t_probe - t_key)
                          .field("queue_wait_usec", std::uint64_t{0})
                          .field("worker_run_usec", std::uint64_t{0})
                          .field("render_usec", t_end - t_probe)
                          .field("total_usec", t_end - t0));
            return;
        }
        // Structurally odd payload: fall through and recompute.
    }
    mServedMisses_.inc();

    Waiter w;
    w.reqId = req_id;
    w.t0 = t0;
    w.parseUsec = t_parse - t0;
    w.keyUsec = t_key - t_parse;
    w.probeUsec = t_probe - t_key;
    w.deadlineUsec = deadline_ms ? t0 + deadline_ms * 1000 : 0;
    for (auto &[id, conn] : conns_)
        if (&conn == &c)
            w.connId = id;

    // In-flight dedup: piggyback on an identical running job.
    auto it = inFlightKeys_.find(key);
    if (it != inFlightKeys_.end()) {
        w.submitUsec = nowUsec();
        pending_[it->second].waiters.push_back(w);
        return;
    }

    // Admission control: past the cap, shed instead of queueing.
    // The cap sits below the pool's slot ring so submit() can never
    // block the accept loop, and the typed envelope + Retry-After
    // hint turn the overload into client backoff instead of a pile-
    // up. (Piggybacked waiters above are exempt: they add no work.)
    if (pending_.size() >= opts_.maxPending) {
        const int hint_ms = 250;
        mShed_.inc();
        respond(c,
                runFailEnvelope(spec.workload, spec.seed, key,
                                "overloaded",
                                std::to_string(pending_.size()) +
                                    " jobs in flight (cap " +
                                    std::to_string(opts_.maxPending) +
                                    "); retry after backoff",
                                hint_ms),
                /*droppable=*/false, hint_ms);
        logAccess(accessRecord(req_id, "run")
                      .field("workload", spec.workload)
                      .field("key", key)
                      .field("error", std::string("overloaded")));
        return;
    }

    std::string serr;
    std::uint64_t ticket = pool_.submit(
        key + " " + reqIdStr(req_id) + "\n" + spec.toJson(), serr);
    if (!ticket) {
        respond(c, errorEnvelope("run", "overloaded", serr));
        mShed_.inc();
        logAccess(accessRecord(req_id, "run")
                      .field("error", std::string("overloaded")));
        return;
    }
    w.submitUsec = nowUsec();
    Pending p;
    p.key = key;
    p.workload = spec.workload;
    p.seed = spec.seed;
    p.waiters.push_back(w);
    pending_.emplace(ticket, std::move(p));
    inFlightKeys_.emplace(key, ticket);
}

void
Server::drainPool()
{
    for (sim::ProcPool::Result &r : pool_.poll(0)) {
        auto it = pending_.find(r.ticket);
        if (it == pending_.end())
            continue;
        Pending p = std::move(it->second);
        pending_.erase(it);
        inFlightKeys_.erase(p.key);

        const std::uint64_t t_done = nowUsec();
        std::string envelope;
        int exit_code = 4;
        std::uint64_t run_usec = 0;
        const char *kind = "";
        if (r.status == sim::ProcPool::JobStatus::Done) {
            // Result head: "exit run_usec" (run_usec optional for
            // robustness against a torn frame).
            auto nl = r.payload.find('\n');
            std::string doc;
            if (nl == std::string::npos) {
                doc = sim::errorDocument(p.workload, p.seed,
                                         "failed",
                                         "malformed worker result");
            } else {
                const std::string head = r.payload.substr(0, nl);
                unsigned long long usec = 0;
                if (std::sscanf(head.c_str(), "%d %llu", &exit_code,
                                &usec) >= 1)
                    run_usec = usec;
                else
                    exit_code = 4;
                doc = r.payload.substr(nl + 1);
            }
            hWorkerRun_.observe(run_usec);
            envelope = runEnvelope(p.workload, p.seed, false, p.key,
                                   exit_code, doc);
        } else {
            // Failed (exception), Crashed (worker died), or Poisoned
            // (crashed max_job_attempts workers): one typed error
            // document per the batch contract; the pool has already
            // respawned a replacement for a crash.
            switch (r.status) {
            case sim::ProcPool::JobStatus::Crashed:
                kind = "crashed";
                mCrashes_.inc();
                break;
            case sim::ProcPool::JobStatus::Poisoned:
                kind = "poisoned";
                mCrashes_.inc();
                break;
            default:
                kind = "failed";
                break;
            }
            envelope = runFailEnvelope(p.workload, p.seed, p.key,
                                       kind, r.payload);
        }
        for (const Waiter &w : p.waiters) {
            auto cit = conns_.find(w.connId);
            if (cit != conns_.end())
                respond(cit->second, envelope, /*droppable=*/true);
            const std::uint64_t t_end = nowUsec();
            const std::uint64_t waited = t_done - w.submitUsec;
            const std::uint64_t queue_wait =
                waited > run_usec ? waited - run_usec : 0;
            hQueueWait_.observe(queue_wait);
            hRender_.observe(t_end - t_done);
            hRequest_.observe(t_end - w.t0);
            json::JsonObject rec = accessRecord(w.reqId, "run");
            rec.field("workload", p.workload)
                .field("key", p.key)
                .raw("cached", "false")
                .field("exit_code", std::uint64_t(
                                        static_cast<unsigned>(
                                            exit_code)));
            if (*kind)
                rec.field("error", std::string(kind));
            rec.field("parse_usec", w.parseUsec)
                .field("key_usec", w.keyUsec)
                .field("cache_probe_usec", w.probeUsec)
                .field("queue_wait_usec", queue_wait)
                .field("worker_run_usec", run_usec)
                .field("render_usec", t_end - t_done)
                .field("total_usec", t_end - w.t0);
            logAccess(rec);
        }
    }
}

void
Server::expireDeadlines()
{
    const std::uint64_t now = nowUsec();
    for (auto it = pending_.begin(); it != pending_.end();) {
        Pending &p = it->second;
        std::vector<Waiter> keep, expired;
        for (Waiter &w : p.waiters) {
            if (w.deadlineUsec && now >= w.deadlineUsec)
                expired.push_back(w);
            else
                keep.push_back(w);
        }
        if (expired.empty()) {
            ++it;
            continue;
        }
        p.waiters = std::move(keep);

        const std::string envelope = runFailEnvelope(
            p.workload, p.seed, p.key, "deadline_exceeded",
            "request exceeded its deadline; job " +
                std::string(p.waiters.empty() ? "cancelled"
                                              : "still running for "
                                                "other waiters"));
        for (const Waiter &w : expired) {
            mDeadline_.inc();
            auto cit = conns_.find(w.connId);
            if (cit != conns_.end())
                respond(cit->second, envelope, /*droppable=*/true);
            const std::uint64_t t_end = nowUsec();
            logAccess(accessRecord(w.reqId, "run")
                          .field("workload", p.workload)
                          .field("key", p.key)
                          .raw("cached", "false")
                          .field("exit_code", std::uint64_t{4})
                          .field("error",
                                 std::string("deadline_exceeded"))
                          .field("total_usec", t_end - w.t0));
            hRequest_.observe(t_end - w.t0);
        }

        if (!p.waiters.empty()) {
            ++it;
            continue;
        }
        // Nobody is waiting any more: reclaim the job. Still queued
        // -> free the slot and forget the key; already running ->
        // SIGKILL the lane (never retried) and keep the waiterless
        // entry so drainPool swallows the late Crashed result.
        if (pool_.cancelQueued(it->first)) {
            inFlightKeys_.erase(p.key);
            it = pending_.erase(it);
        } else {
            pool_.killActive(it->first);
            ++it;
        }
    }
}

void
Server::logPoolRetries()
{
    const std::uint64_t retries = pool_.crashRetries();
    while (loggedRetries_ < retries) {
        ++loggedRetries_;
        logAccess(accessRecord(0, "job_retry")
                      .field("retry", loggedRetries_));
    }
}

int
Server::pollTimeoutMs() const
{
    int timeout = pending_.empty() ? 1000 : 200;
    const std::uint64_t now = nowUsec();
    for (const auto &[ticket, p] : pending_) {
        (void)ticket;
        for (const Waiter &w : p.waiters) {
            if (!w.deadlineUsec)
                continue;
            std::uint64_t left_ms = w.deadlineUsec > now
                                        ? (w.deadlineUsec - now) / 1000
                                        : 0;
            if (static_cast<int>(std::min<std::uint64_t>(
                    left_ms, 1000)) < timeout)
                timeout = static_cast<int>(
                    std::min<std::uint64_t>(left_ms, 1000));
        }
    }
    return std::max(timeout, 1);
}

void
Server::flushWrites()
{
    for (auto it = conns_.begin(); it != conns_.end();) {
        Conn &c = it->second;
        while (!c.out.empty()) {
            ssize_t n = ::write(c.fd, c.out.data(), c.out.size());
            if (n > 0) {
                c.out.erase(0, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            c.closing = true;  // broken pipe: drop the connection
            c.out.clear();
            break;
        }
        bool waiting = false;
        for (const auto &[ticket, p] : pending_) {
            (void)ticket;
            for (const Waiter &w : p.waiters) {
                if (w.connId == it->first) {
                    waiting = true;
                    break;
                }
            }
            if (waiting)
                break;
        }
        if (c.closing && c.out.empty() && !waiting) {
            ::close(c.fd);
            it = conns_.erase(it);
        } else {
            ++it;
        }
    }
}

int
Server::run()
{
    signal(SIGPIPE, SIG_IGN);
    signal(SIGTERM, onTerminate);
    signal(SIGINT, onTerminate);

    if (!opts_.traceDir.empty())
        ::mkdir(opts_.traceDir.c_str(), 0777);
    if (!opts_.accessLog.empty()) {
        accessLog_ = std::fopen(opts_.accessLog.c_str(), "a");
        if (!accessLog_)
            std::fprintf(stderr,
                         "specslice_serve: cannot open access log "
                         "'%s': %s\n",
                         opts_.accessLog.c_str(),
                         std::strerror(errno));
    }

    if (!listenOn(opts_.socketPath))
        return 1;
    std::fprintf(stderr,
                 "specslice_serve: listening on %s (cache %s, %u "
                 "workers)\n",
                 opts_.socketPath.c_str(), cache_.dir().c_str(),
                 pool_.workerCount());

    while (!g_terminate) {
        if (shuttingDown_ && pending_.empty()) {
            // Flush remaining bytes, then leave.
            flushWrites();
            bool all_flushed = true;
            for (const auto &[id, c] : conns_) {
                (void)id;
                if (!c.out.empty())
                    all_flushed = false;
            }
            if (all_flushed)
                break;
        }

        std::vector<pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        std::vector<std::uint64_t> conn_ids;
        for (auto &[id, c] : conns_) {
            short ev = POLLIN;
            if (!c.out.empty())
                ev |= POLLOUT;
            fds.push_back({c.fd, ev, 0});
            conn_ids.push_back(id);
        }
        std::vector<int> pool_fds = pool_.resultFds();
        for (int fd : pool_fds)
            fds.push_back({fd, POLLIN, 0});

        int rc = ::poll(fds.data(), fds.size(), pollTimeoutMs());
        if (rc < 0 && errno != EINTR)
            break;

        if (fds[0].revents & POLLIN)
            acceptClients();
        for (std::size_t i = 0; i < conn_ids.size(); ++i) {
            auto it = conns_.find(conn_ids[i]);
            if (it == conns_.end())
                continue;
            short re = fds[1 + i].revents;
            if (re & (POLLIN | POLLHUP | POLLERR))
                handleReadable(it->second);
        }
        // Always drain the pool: results may be ready even when the
        // poll woke for another reason (or a worker died without
        // writing — reapAndRespawn runs inside poll(0)).
        drainPool();
        logPoolRetries();
        expireDeadlines();
        flushWrites();
    }

    ::close(listenFd_);
    ::unlink(opts_.socketPath.c_str());
    if (accessLog_) {
        std::fclose(accessLog_);
        accessLog_ = nullptr;
    }
    std::fprintf(
        stderr,
        "specslice_serve: shut down (%llu requests, "
        "%llu hits, %llu misses)\n",
        static_cast<unsigned long long>(
            metrics_.reg.value("ss_requests_total")),
        static_cast<unsigned long long>(
            metrics_.reg.value("ss_served_cache_hits_total")),
        static_cast<unsigned long long>(
            metrics_.reg.value("ss_served_cache_misses_total")));
    return 0;
}

// ---------------------------------------------------------------
// Client mode
// ---------------------------------------------------------------

int
clientMain(const Options &o)
{
    std::string request = o.request;
    if (request.empty()) {
        if (o.op.empty()) {
            std::fprintf(stderr,
                         "error: client mode needs --request or one "
                         "of --ping/--stats/--shutdown\n");
            return 5;
        }
        request = "{\"op\": \"" + o.op + "\"}";
    }

    serve_client::RequestOpts net;
    net.ioTimeoutMs = o.timeoutMs;

    std::string response, err;
    if (o.op == "ping") {
        // Liveness plus distance: measure the round trip on the
        // client's monotonic clock and splice it into the envelope.
        std::uint64_t rtt = 0;
        if (!serve_client::requestTimed(o.connectPath, request,
                                        response, rtt, err, net)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            return 5;
        }
        if (!response.empty() && response.back() == '}')
            response = response.substr(0, response.size() - 1) +
                       ", \"rtt_usec\": " + std::to_string(rtt) +
                       "}";
        std::printf("%s\n", response.c_str());
        std::string perr;
        auto env = json::parse(response, perr);
        return env && env->getBool("ok") ? 0 : 5;
    }
    serve_client::RetryPolicy policy;
    policy.attempts = o.retries + 1;
    policy.seed = static_cast<std::uint64_t>(::getpid());
    serve_client::RetryStats rstats;
    if (!serve_client::requestRetry(o.connectPath, request, response,
                                    err, policy, net, &rstats)) {
        std::fprintf(stderr, "error: %s (%u attempts)\n", err.c_str(),
                     rstats.attempts);
        return 5;
    }
    if (rstats.retries && o.verbose)
        std::fprintf(stderr,
                     "specslice_serve: %u retries, %llu ms backoff\n",
                     rstats.retries,
                     static_cast<unsigned long long>(
                         rstats.backoffMs));
    if (o.raw || o.request.empty()) {
        std::printf("%s\n", response.c_str());
        std::string perr;
        auto env = json::parse(response, perr);
        return env && env->getBool("ok") ? 0 : 5;
    }

    // Run request: print the byte-exact result document, exit with
    // the run's exit code.
    std::string perr;
    auto env = json::parse(response, perr);
    if (!env) {
        std::fprintf(stderr, "error: unparseable response: %s\n",
                     perr.c_str());
        return 5;
    }
    std::string doc;
    if (serve_client::extractDoc(response, doc))
        std::printf("%s\n", doc.c_str());
    else
        std::printf("%s\n", response.c_str());
    if (!env->getBool("ok")) {
        const json::Value *e = env->get("error");
        std::fprintf(stderr, "error: %s\n",
                     e ? e->getStr("message", "request failed").c_str()
                       : env->getStr("error_kind", "request failed")
                             .c_str());
        // A served-but-failed run (crashed worker, sim error) carries
        // the run's exit code; 5 stays reserved for transport and
        // protocol failures where no run happened at all.
        return static_cast<int>(env->getU64("exit_code", 5));
    }
    return static_cast<int>(env->getU64("exit_code", 5));
}

// ---------------------------------------------------------------
// Offline cache fsck
// ---------------------------------------------------------------

int
fsckMain(const Options &o)
{
    sim::ResultCache cache(o.cacheDir, o.cacheBytes);
    sim::ResultCache::ScrubReport rep;
    std::string err;
    const bool ok = cache.scrub(rep, err, o.fsckDelete);
    json::JsonObject doc;
    doc.raw("ok", ok ? "true" : "false")
        .field("op", std::string("fsck"))
        .field("dir", o.cacheDir)
        .field("scanned", rep.scanned)
        .field("verified", rep.ok)
        .field("quarantined", rep.quarantined)
        .field("deleted", rep.deleted)
        .field("tmp_removed", rep.tmpRemoved)
        .field("index_dropped", rep.indexDropped)
        .field("index_added", rep.indexAdded)
        .field("bytes_verified", rep.bytes);
    if (!ok)
        doc.field("error", err);
    std::printf("%s\n", doc.str().c_str());
    if (!ok)
        std::fprintf(stderr, "error: %s\n", err.c_str());
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);
    if (o.fsck)
        return fsckMain(o);
    if (!o.connectPath.empty())
        return clientMain(o);

    // The daemon's injection plan: SS_INJECT from the environment
    // plus --inject, merged (the parser rejects duplicate sites, so
    // the sources cannot silently override each other). Only
    // service-level sites belong here — simulation sites inject into
    // the workers' simulated machines and go on the *request*, where
    // they perturb the cache key like any other run parameter.
    std::string inject_spec;
    if (const char *env = std::getenv("SS_INJECT"))
        inject_spec = env;
    if (!o.inject.empty())
        inject_spec += (inject_spec.empty() ? "" : ",") + o.inject;
    fault::FaultPlan plan;
    {
        std::string perr;
        if (!fault::FaultPlan::parse(inject_spec, plan, perr)) {
            std::fprintf(stderr, "error: %s\n%s", perr.c_str(),
                         fault::FaultPlan::grammarHelp().c_str());
            return 2;
        }
    }
    plan.seed = o.injectSeed;
    if (plan.hasSimSites()) {
        std::fprintf(
            stderr,
            "error: the daemon plan names simulation sites; those "
            "belong in the run request's \"inject\" field (they "
            "change the result, hence the cache key) — the daemon "
            "--inject takes only serve.*/cache.*/sock.* sites\n");
        return 2;
    }

    Server server(o, plan);
    return server.run();
}
