/**
 * @file
 * Minimal blocking client plumbing for the sweep service's
 * newline-delimited-JSON protocol, shared by specslice_serve's client
 * mode, specslice_bench_serve, and the CI smoke test. One request per
 * call; matching request/response pairs across a shared connection is
 * the caller's problem (the helpers here use one connection per
 * request, which the Unix-domain transport makes cheap).
 *
 * Robustness: every transport primitive is bounded. connectUnix
 * performs a nonblocking connect raced against a deadline, then arms
 * SO_RCVTIMEO/SO_SNDTIMEO so a wedged daemon turns into a typed
 * ErrKind::timeout instead of a client hung forever. requestRetry
 * layers jittered-exponential-backoff retries on top, retrying
 * transport failures and the retryable envelope kinds (`draining`,
 * `overloaded`, `crashed`) while passing terminal envelopes
 * (`deadline_exceeded`, `poisoned`, `bad_request`, ...) straight
 * through.
 */

#ifndef SPECSLICE_TOOLS_SERVE_CLIENT_HH
#define SPECSLICE_TOOLS_SERVE_CLIENT_HH

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <ctime>
#include <string>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/jsonio.hh"

namespace specslice::serve_client
{

/** What broke, when something broke. Lets callers distinguish "the
 *  daemon is slow/wedged" (timeout — retryable, the server may still
 *  be working) from "the daemon is gone" (connect) from "the stream
 *  died mid-exchange" (transport). */
enum class ErrKind
{
    none,
    connect,   ///< could not reach the socket (incl. connect timeout)
    timeout,   ///< read/write exceeded the io deadline
    transport, ///< stream error / connection closed mid-response
};

/** Per-request transport deadlines (milliseconds; 0 = no bound). */
struct RequestOpts
{
    int connectTimeoutMs = 5000;
    int ioTimeoutMs = 120000;
};

/**
 * Connect to the server's Unix-domain socket within
 * opts.connectTimeoutMs, then arm send/receive timeouts of
 * opts.ioTimeoutMs on the fd.
 * @return the fd, or -1 with error (and kind, if non-null) set.
 */
inline int
connectUnix(const std::string &path, std::string &error,
            const RequestOpts &opts = {}, ErrKind *kind = nullptr)
{
    auto fail = [&](ErrKind k, const std::string &msg) {
        if (kind)
            *kind = k;
        error = msg;
        return -1;
    };
    if (path.size() >= sizeof(sockaddr_un{}.sun_path))
        return fail(ErrKind::connect, "socket path too long: " + path);
    int fd = ::socket(AF_UNIX,
                      SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fd < 0)
        return fail(ErrKind::connect,
                    std::string("socket: ") + std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS && errno != EAGAIN) {
            ::close(fd);
            return fail(ErrKind::connect, "connect " + path + ": " +
                                              std::strerror(errno));
        }
        // Nonblocking connect in flight: wait for writability.
        pollfd pfd{fd, POLLOUT, 0};
        int rc = ::poll(&pfd, 1,
                        opts.connectTimeoutMs > 0
                            ? opts.connectTimeoutMs
                            : -1);
        if (rc == 0) {
            ::close(fd);
            return fail(ErrKind::connect,
                        "connect " + path + ": timed out after " +
                            std::to_string(opts.connectTimeoutMs) +
                            " ms");
        }
        int soerr = 0;
        socklen_t slen = sizeof(soerr);
        if (rc < 0 ||
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) !=
                0 ||
            soerr != 0) {
            ::close(fd);
            return fail(ErrKind::connect,
                        "connect " + path + ": " +
                            std::strerror(soerr ? soerr : errno));
        }
    }

    // Back to blocking, with kernel-enforced per-call deadlines so a
    // wedged daemon cannot hang readLine/writeAll forever.
    int flags = ::fcntl(fd, F_GETFL);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    if (opts.ioTimeoutMs > 0) {
        timeval tv{};
        tv.tv_sec = opts.ioTimeoutMs / 1000;
        tv.tv_usec = (opts.ioTimeoutMs % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    if (kind)
        *kind = ErrKind::none;
    return fd;
}

/** Write the whole buffer, retrying on EINTR / partial writes. */
inline bool
writeAll(int fd, const std::string &data, std::string &error,
         ErrKind *kind = nullptr)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (kind)
                    *kind = ErrKind::timeout;
                error = "write timed out (daemon wedged?)";
                return false;
            }
            if (kind)
                *kind = ErrKind::transport;
            error = std::string("write: ") + std::strerror(errno);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Read up to (and consuming) one '\n'-terminated line. */
inline bool
readLine(int fd, std::string &line, std::string &error,
         ErrKind *kind = nullptr)
{
    line.clear();
    char c;
    for (;;) {
        ssize_t n = ::read(fd, &c, 1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                if (kind)
                    *kind = ErrKind::timeout;
                error = "read timed out waiting for the response "
                        "(daemon wedged?)";
                return false;
            }
            if (kind)
                *kind = ErrKind::transport;
            error = std::string("read: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            if (kind)
                *kind = ErrKind::transport;
            error = "server closed the connection mid-response";
            return false;
        }
        if (c == '\n')
            return true;
        line += c;
        if (line.size() > 64 * 1024 * 1024) {
            if (kind)
                *kind = ErrKind::transport;
            error = "response line unreasonably large";
            return false;
        }
    }
}

/**
 * One round trip on a fresh connection: send `request` (a single-line
 * JSON document, newline appended here) and read the response line.
 * @return false with error (and kind, if non-null) set on any
 *         transport failure.
 */
inline bool
requestOnce(const std::string &socket_path, const std::string &request,
            std::string &response, std::string &error,
            const RequestOpts &opts = {}, ErrKind *kind = nullptr)
{
    int fd = connectUnix(socket_path, error, opts, kind);
    if (fd < 0)
        return false;
    bool ok = writeAll(fd, request + "\n", error, kind) &&
              readLine(fd, response, error, kind);
    ::close(fd);
    return ok;
}

/**
 * requestOnce plus a client-side monotonic round-trip measurement
 * (connect through response line). `--ping` reports this so "is the
 * daemon alive" comes with "and how far away is it".
 */
inline bool
requestTimed(const std::string &socket_path, const std::string &request,
             std::string &response, std::uint64_t &rtt_usec,
             std::string &error, const RequestOpts &opts = {})
{
    timespec t0{}, t1{};
    ::clock_gettime(CLOCK_MONOTONIC, &t0);
    if (!requestOnce(socket_path, request, response, error, opts))
        return false;
    ::clock_gettime(CLOCK_MONOTONIC, &t1);
    rtt_usec = static_cast<std::uint64_t>(t1.tv_sec - t0.tv_sec) *
                   1000000 +
               static_cast<std::uint64_t>(t1.tv_nsec / 1000 -
                                          t0.tv_nsec / 1000);
    return true;
}

/** Retry schedule: exponential backoff with deterministic jitter. */
struct RetryPolicy
{
    unsigned attempts = 5;      ///< total tries (1 = no retry)
    unsigned baseDelayMs = 50;  ///< first backoff step
    unsigned maxDelayMs = 2000; ///< backoff ceiling
    std::uint64_t seed = 0x5eed; ///< jitter stream (vary per client)
};

/** What requestRetry did, for logs/BENCH docs. */
struct RetryStats
{
    unsigned attempts = 0;  ///< tries actually made
    unsigned retries = 0;   ///< attempts - 1 when any retry happened
    std::uint64_t backoffMs = 0; ///< total time slept between tries
};

/** Is this envelope's error kind worth retrying? Retryable kinds are
 *  the transient ones the server itself recovers from; the rest
 *  (`bad_request`, `deadline_exceeded`, `poisoned`, `run_failed`,
 *  ...) would fail identically on every retry. */
inline bool
retryableEnvelopeKind(const std::string &error_kind)
{
    return error_kind == "draining" || error_kind == "shutdown" ||
           error_kind == "overloaded" || error_kind == "crashed";
}

/**
 * requestOnce with retries: transport failures (connect refused,
 * connect/read/write timeout, dropped connection) and retryable error
 * envelopes are retried up to policy.attempts times with jittered
 * exponential backoff; an `overloaded` envelope's `retry_after_ms`
 * hint overrides the computed delay.
 *
 * @return true when a *response* was obtained — possibly a terminal
 *         error envelope the caller still has to interpret; false
 *         only when every attempt failed at the transport layer or
 *         retries were exhausted on retryable envelopes (in which
 *         case `response` holds the last envelope if any was seen).
 */
inline bool
requestRetry(const std::string &socket_path,
             const std::string &request, std::string &response,
             std::string &error, const RetryPolicy &policy = {},
             const RequestOpts &opts = {},
             RetryStats *stats = nullptr)
{
    std::uint64_t jitter = policy.seed * 0x9e3779b97f4a7c15ull + 1;
    RetryStats local;
    RetryStats &st = stats ? *stats : local;
    st = RetryStats{};

    const unsigned tries = policy.attempts ? policy.attempts : 1;
    for (unsigned attempt = 0; attempt < tries; ++attempt) {
        ++st.attempts;
        ErrKind kind = ErrKind::none;
        response.clear();
        bool got =
            requestOnce(socket_path, request, response, error, opts,
                        &kind);

        std::int64_t hint_ms = -1;
        if (got) {
            // A response arrived. ok envelopes and terminal errors
            // both end the loop; only retryable kinds continue it.
            std::string perr;
            auto env = json::parse(response, perr);
            bool retry_env = false;
            if (env && env->isObject() &&
                !env->getBool("ok", true)) {
                // The kind lives at the top level on run-failure
                // envelopes and nested under "error" on the rest.
                std::string ek = env->getStr("error_kind");
                if (ek.empty())
                    if (const json::Value *e = env->get("error"))
                        ek = e->getStr("kind");
                if (retryableEnvelopeKind(ek)) {
                    retry_env = true;
                    if (const json::Value *h =
                            env->get("retry_after_ms"))
                        if (h->isNumber())
                            hint_ms = static_cast<std::int64_t>(
                                env->getU64("retry_after_ms"));
                    error = "server answered '" + ek + "'";
                }
            }
            if (!retry_env)
                return true;
        }
        if (attempt + 1 >= tries)
            return false;

        // Exponential backoff with full jitter in the upper half,
        // deterministic from policy.seed so test runs reproduce.
        std::uint64_t step =
            std::uint64_t(policy.baseDelayMs ? policy.baseDelayMs : 1)
            << (attempt < 16 ? attempt : 16);
        if (step > policy.maxDelayMs)
            step = policy.maxDelayMs;
        if (hint_ms >= 0)
            step = static_cast<std::uint64_t>(hint_ms);
        jitter = jitter * 6364136223846793005ull +
                 1442695040888963407ull;
        std::uint64_t delay =
            step / 2 + (step ? jitter % (step / 2 + 1) : 0);
        if (delay) {
            ::poll(nullptr, 0, static_cast<int>(delay));
            st.backoffMs += delay;
        }
        ++st.retries;
    }
    return false;
}

/**
 * Slice the raw result document out of a run-response envelope. The
 * server renders "doc" as the envelope's LAST member precisely so the
 * bytes can be recovered without a parse/re-print round trip (which
 * could perturb number formatting).
 * @return false if the envelope has no doc member.
 */
inline bool
extractDoc(const std::string &envelope, std::string &doc)
{
    const std::string marker = "\"doc\": ";
    auto pos = envelope.find(marker);
    if (pos == std::string::npos || envelope.empty() ||
        envelope.back() != '}')
        return false;
    pos += marker.size();
    doc = envelope.substr(pos, envelope.size() - pos - 1);
    return true;
}

} // namespace specslice::serve_client

#endif // SPECSLICE_TOOLS_SERVE_CLIENT_HH
