/**
 * @file
 * Minimal blocking client plumbing for the sweep service's
 * newline-delimited-JSON protocol, shared by specslice_serve's client
 * mode, specslice_bench_serve, and the CI smoke test. One request per
 * call; matching request/response pairs across a shared connection is
 * the caller's problem (the helpers here use one connection per
 * request, which the Unix-domain transport makes cheap).
 */

#ifndef SPECSLICE_TOOLS_SERVE_CLIENT_HH
#define SPECSLICE_TOOLS_SERVE_CLIENT_HH

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <ctime>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace specslice::serve_client
{

/** Connect to the server's Unix-domain socket.
 *  @return the fd, or -1 with error set. */
inline int
connectUnix(const std::string &path, std::string &error)
{
    if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
        error = "socket path too long: " + path;
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = "connect " + path + ": " + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Write the whole buffer, retrying on EINTR / partial writes. */
inline bool
writeAll(int fd, const std::string &data, std::string &error)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = std::string("write: ") + std::strerror(errno);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Read up to (and consuming) one '\n'-terminated line. */
inline bool
readLine(int fd, std::string &line, std::string &error)
{
    line.clear();
    char c;
    for (;;) {
        ssize_t n = ::read(fd, &c, 1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = std::string("read: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            error = "server closed the connection mid-response";
            return false;
        }
        if (c == '\n')
            return true;
        line += c;
        if (line.size() > 64 * 1024 * 1024) {
            error = "response line unreasonably large";
            return false;
        }
    }
}

/**
 * One round trip on a fresh connection: send `request` (a single-line
 * JSON document, newline appended here) and read the response line.
 * @return false with error set on any transport failure.
 */
inline bool
requestOnce(const std::string &socket_path, const std::string &request,
            std::string &response, std::string &error)
{
    int fd = connectUnix(socket_path, error);
    if (fd < 0)
        return false;
    bool ok = writeAll(fd, request + "\n", error) &&
              readLine(fd, response, error);
    ::close(fd);
    return ok;
}

/**
 * requestOnce plus a client-side monotonic round-trip measurement
 * (connect through response line). `--ping` reports this so "is the
 * daemon alive" comes with "and how far away is it".
 */
inline bool
requestTimed(const std::string &socket_path, const std::string &request,
             std::string &response, std::uint64_t &rtt_usec,
             std::string &error)
{
    timespec t0{}, t1{};
    ::clock_gettime(CLOCK_MONOTONIC, &t0);
    if (!requestOnce(socket_path, request, response, error))
        return false;
    ::clock_gettime(CLOCK_MONOTONIC, &t1);
    rtt_usec = static_cast<std::uint64_t>(t1.tv_sec - t0.tv_sec) *
                   1000000 +
               static_cast<std::uint64_t>(t1.tv_nsec / 1000 -
                                          t0.tv_nsec / 1000);
    return true;
}

/**
 * Slice the raw result document out of a run-response envelope. The
 * server renders "doc" as the envelope's LAST member precisely so the
 * bytes can be recovered without a parse/re-print round trip (which
 * could perturb number formatting).
 * @return false if the envelope has no doc member.
 */
inline bool
extractDoc(const std::string &envelope, std::string &doc)
{
    const std::string marker = "\"doc\": ";
    auto pos = envelope.find(marker);
    if (pos == std::string::npos || envelope.empty() ||
        envelope.back() != '}')
        return false;
    pos += marker.size();
    doc = envelope.substr(pos, envelope.size() - pos - 1);
    return true;
}

} // namespace specslice::serve_client

#endif // SPECSLICE_TOOLS_SERVE_CLIENT_HH
