/**
 * @file
 * Validator for the --chrome-trace output: checks that the file is
 * well-formed JSON (a strict recursive-descent parse, no external
 * dependency) and that it has the Chrome trace_event shape — a
 * top-level object whose "traceEvents" member is an array of objects
 * each carrying the required "name"/"ph"/"ts"/"pid"/"tid" keys.
 *
 *     trace_lint trace.json
 *     trace_lint --merged merged_trace.json
 *
 * --merged additionally validates the shape the cross-process merger
 * (obs/trace_merge) guarantees: every complete ("ph":"X") event has a
 * "ts", timestamps are monotonically non-decreasing within each
 * (pid, tid) lane, every event's pid lane carries process_name
 * metadata, and every event's args carry the "req" request id the
 * daemon propagated into the worker.
 *
 * Exits 0 when the file would load in chrome://tracing / Perfetto,
 * 1 with a diagnostic otherwise. Used by the trace_smoke and
 * metrics_smoke ctests.
 */

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &msg)
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
            if (text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        std::ostringstream os;
        os << msg << " at line " << line << ", column " << col;
        error = os.str();
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    parseString()
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("truncated escape");
                char e = text[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= text.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text[pos])))
                            return fail("bad \\u escape");
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return fail("bad escape character");
                }
            }
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber()
    {
        skipWs();
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (pos >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[pos])))
            return fail("expected digit");
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("expected fraction digits");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("expected exponent digits");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        return pos > start;
    }

    bool
    parseLiteral(const char *word)
    {
        skipWs();
        std::size_t n = std::strlen(word);
        if (text.compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        return true;
    }

    bool
    parseValue()
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        switch (text[pos]) {
          case '{':
            return parseObject(nullptr);
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
            return parseLiteral("true");
          case 'f':
            return parseLiteral("false");
          case 'n':
            return parseLiteral("null");
          default:
            return parseNumber();
        }
    }

    /** Parse an object; when kv is non-null, collect each key and
     *  the raw text of its value. */
    bool
    parseObject(std::vector<std::pair<std::string, std::string>> *kv)
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::size_t key_start = pos;
            if (!parseString())
                return false;
            std::string key;
            if (kv) {
                // The raw key without surrounding quotes (escapes are
                // fine: none of the checked keys contain any).
                std::size_t s = key_start;
                while (s < text.size() && text[s] != '"')
                    ++s;
                std::size_t e = s + 1;
                while (e < text.size() && text[e] != '"')
                    ++e;
                key = text.substr(s + 1, e - s - 1);
            }
            if (!consume(':'))
                return false;
            skipWs();
            std::size_t vstart = pos;
            if (!parseValue())
                return false;
            if (kv)
                kv->emplace_back(std::move(key),
                                 text.substr(vstart, pos - vstart));
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return consume('}');
        }
    }

    bool
    parseArray()
    {
        if (!consume('['))
            return false;
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            if (!parseValue())
                return false;
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return consume(']');
        }
    }
};

/** Cross-event state for --merged validation. */
struct MergedState
{
    /** (pid, tid) -> last seen ts: per-lane monotonicity. */
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
        lastTs;
    std::set<std::uint64_t> eventPids;  ///< pids of "X" events
    std::set<std::uint64_t> namedPids;  ///< pids with process_name
};

/** Does the event object starting at `pos` carry all required keys
 *  (and, in merged mode, the merger's guarantees)? */
bool
checkEvent(Parser &p, MergedState *merged)
{
    std::vector<std::pair<std::string, std::string>> kv;
    if (!p.parseObject(&kv))
        return false;
    auto find = [&kv](const char *key) -> const std::string * {
        for (const auto &[k, v] : kv)
            if (k == key)
                return &v;
        return nullptr;
    };
    for (const char *req : {"name", "ph", "pid", "tid"}) {
        if (!find(req))
            return p.fail(std::string("event missing \"") + req +
                          "\" key");
    }
    if (!merged)
        return true;

    const std::string &ph = *find("ph");
    const std::uint64_t pid =
        std::strtoull(find("pid")->c_str(), nullptr, 10);
    const std::uint64_t tid =
        std::strtoull(find("tid")->c_str(), nullptr, 10);
    if (ph == "\"M\"") {
        if (*find("name") == "\"process_name\"")
            merged->namedPids.insert(pid);
        return true;
    }
    // Complete events: a timestamp, monotonic within its lane, and
    // the propagated request id in args.
    const std::string *ts_text = find("ts");
    if (!ts_text)
        return p.fail("merged event missing \"ts\"");
    const std::uint64_t ts =
        std::strtoull(ts_text->c_str(), nullptr, 10);
    auto lane = std::make_pair(pid, tid);
    auto it = merged->lastTs.find(lane);
    if (it != merged->lastTs.end() && ts < it->second)
        return p.fail("ts went backwards within lane pid=" +
                      std::to_string(pid) +
                      " tid=" + std::to_string(tid));
    merged->lastTs[lane] = ts;
    merged->eventPids.insert(pid);
    const std::string *args = find("args");
    if (!args || args->find("\"req\"") == std::string::npos)
        return p.fail("merged event args carry no \"req\" id");
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool merged = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--merged") == 0)
            merged = true;
        else if (!path)
            path = argv[i];
        else
            path = "";  // too many operands
    }
    if (!path || !*path) {
        std::fprintf(stderr,
                     "usage: trace_lint [--merged] <trace.json>\n");
        return 2;
    }
    argv[1] = const_cast<char *>(path);

    std::ifstream is(argv[1]);
    if (!is) {
        std::fprintf(stderr, "trace_lint: cannot open '%s'\n", argv[1]);
        return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();

    // Pass 1: the whole document must be strictly well-formed JSON.
    {
        Parser p(text);
        if (!p.parseValue()) {
            std::fprintf(stderr, "trace_lint: %s: %s\n", argv[1],
                         p.error.c_str());
            return 1;
        }
        p.skipWs();
        if (p.pos != text.size()) {
            std::fprintf(stderr,
                         "trace_lint: %s: trailing garbage after "
                         "document\n",
                         argv[1]);
            return 1;
        }
    }

    // Pass 2: Chrome trace_event shape — {"traceEvents": [{...}, ...]}
    // with the keys the viewers require on every event.
    Parser p(text);
    p.skipWs();
    if (p.pos >= text.size() || text[p.pos] != '{') {
        std::fprintf(stderr,
                     "trace_lint: %s: top level is not an object\n",
                     argv[1]);
        return 1;
    }
    std::size_t te = text.find("\"traceEvents\"");
    if (te == std::string::npos) {
        std::fprintf(stderr,
                     "trace_lint: %s: no \"traceEvents\" member\n",
                     argv[1]);
        return 1;
    }
    p.pos = te + std::strlen("\"traceEvents\"");
    if (!p.consume(':') || !p.consume('[')) {
        std::fprintf(stderr,
                     "trace_lint: %s: \"traceEvents\" is not an "
                     "array\n",
                     argv[1]);
        return 1;
    }
    MergedState mstate;
    std::size_t events = 0;
    p.skipWs();
    if (p.pos < text.size() && text[p.pos] != ']') {
        for (;;) {
            if (!checkEvent(p, merged ? &mstate : nullptr)) {
                std::fprintf(stderr, "trace_lint: %s: %s\n", argv[1],
                             p.error.c_str());
                return 1;
            }
            ++events;
            p.skipWs();
            if (p.pos < text.size() && text[p.pos] == ',') {
                ++p.pos;
                continue;
            }
            break;
        }
    }

    if (merged) {
        for (std::uint64_t pid : mstate.eventPids) {
            if (!mstate.namedPids.count(pid)) {
                std::fprintf(stderr,
                             "trace_lint: %s: pid lane %llu has no "
                             "process_name metadata\n",
                             argv[1],
                             static_cast<unsigned long long>(pid));
                return 1;
            }
        }
        std::printf("trace_lint: %s: ok (%zu events, %zu lanes)\n",
                    argv[1], events, mstate.eventPids.size());
        return 0;
    }

    std::printf("trace_lint: %s: ok (%zu events)\n", argv[1], events);
    return 0;
}
