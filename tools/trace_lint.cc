/**
 * @file
 * Validator for the --chrome-trace output: checks that the file is
 * well-formed JSON (a strict recursive-descent parse, no external
 * dependency) and that it has the Chrome trace_event shape — a
 * top-level object whose "traceEvents" member is an array of objects
 * each carrying the required "name"/"ph"/"ts"/"pid"/"tid" keys.
 *
 *     trace_lint trace.json
 *
 * Exits 0 when the file would load in chrome://tracing / Perfetto,
 * 1 with a diagnostic otherwise. Used by the trace_smoke ctest.
 */

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &msg)
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos && i < text.size(); ++i) {
            if (text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        std::ostringstream os;
        os << msg << " at line " << line << ", column " << col;
        error = os.str();
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    parseString()
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < text.size()) {
            char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c == '\\') {
                ++pos;
                if (pos >= text.size())
                    return fail("truncated escape");
                char e = text[pos];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos;
                        if (pos >= text.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text[pos])))
                            return fail("bad \\u escape");
                    }
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return fail("bad escape character");
                }
            }
            ++pos;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber()
    {
        skipWs();
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (pos >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[pos])))
            return fail("expected digit");
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("expected fraction digits");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("expected exponent digits");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        return pos > start;
    }

    bool
    parseLiteral(const char *word)
    {
        skipWs();
        std::size_t n = std::strlen(word);
        if (text.compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        return true;
    }

    bool
    parseValue()
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        switch (text[pos]) {
          case '{':
            return parseObject(nullptr);
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
            return parseLiteral("true");
          case 'f':
            return parseLiteral("false");
          case 'n':
            return parseLiteral("null");
          default:
            return parseNumber();
        }
    }

    /** Parse an object; when keys is non-null, collect its keys. */
    bool
    parseObject(std::vector<std::string> *keys)
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::size_t key_start = pos;
            if (!parseString())
                return false;
            if (keys) {
                // The raw key without surrounding quotes (escapes are
                // fine: none of the checked keys contain any).
                skipWs();
                std::size_t s = key_start;
                while (s < text.size() && text[s] != '"')
                    ++s;
                std::size_t e = s + 1;
                while (e < text.size() && text[e] != '"')
                    ++e;
                keys->push_back(text.substr(s + 1, e - s - 1));
            }
            if (!consume(':') || !parseValue())
                return false;
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return consume('}');
        }
    }

    bool
    parseArray()
    {
        if (!consume('['))
            return false;
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            if (!parseValue())
                return false;
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return consume(']');
        }
    }
};

/** Does the event object starting at `pos` carry all required keys? */
bool
checkEventKeys(Parser &p)
{
    std::vector<std::string> keys;
    if (!p.parseObject(&keys))
        return false;
    for (const char *req : {"name", "ph", "pid", "tid"}) {
        bool found = false;
        for (const std::string &k : keys)
            if (k == req)
                found = true;
        if (!found)
            return p.fail(std::string("event missing \"") + req +
                          "\" key");
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: trace_lint <trace.json>\n");
        return 2;
    }

    std::ifstream is(argv[1]);
    if (!is) {
        std::fprintf(stderr, "trace_lint: cannot open '%s'\n", argv[1]);
        return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();

    // Pass 1: the whole document must be strictly well-formed JSON.
    {
        Parser p(text);
        if (!p.parseValue()) {
            std::fprintf(stderr, "trace_lint: %s: %s\n", argv[1],
                         p.error.c_str());
            return 1;
        }
        p.skipWs();
        if (p.pos != text.size()) {
            std::fprintf(stderr,
                         "trace_lint: %s: trailing garbage after "
                         "document\n",
                         argv[1]);
            return 1;
        }
    }

    // Pass 2: Chrome trace_event shape — {"traceEvents": [{...}, ...]}
    // with the keys the viewers require on every event.
    Parser p(text);
    p.skipWs();
    if (p.pos >= text.size() || text[p.pos] != '{') {
        std::fprintf(stderr,
                     "trace_lint: %s: top level is not an object\n",
                     argv[1]);
        return 1;
    }
    std::size_t te = text.find("\"traceEvents\"");
    if (te == std::string::npos) {
        std::fprintf(stderr,
                     "trace_lint: %s: no \"traceEvents\" member\n",
                     argv[1]);
        return 1;
    }
    p.pos = te + std::strlen("\"traceEvents\"");
    if (!p.consume(':') || !p.consume('[')) {
        std::fprintf(stderr,
                     "trace_lint: %s: \"traceEvents\" is not an "
                     "array\n",
                     argv[1]);
        return 1;
    }
    std::size_t events = 0;
    p.skipWs();
    if (p.pos < text.size() && text[p.pos] != ']') {
        for (;;) {
            if (!checkEventKeys(p)) {
                std::fprintf(stderr, "trace_lint: %s: %s\n", argv[1],
                             p.error.c_str());
                return 1;
            }
            ++events;
            p.skipWs();
            if (p.pos < text.size() && text[p.pos] == ',') {
                ++p.pos;
                continue;
            }
            break;
        }
    }

    std::printf("trace_lint: %s: ok (%zu events)\n", argv[1], events);
    return 0;
}
