/**
 * @file
 * Trace-driven replay driver: the consumer side of the sstr trace
 * frontend. Three modes share one binary so the CI replay gate is a
 * single tool:
 *
 *   Emit a reference trace from a registered workload:
 *     specslice_replay --emit --workload vpr --out vpr.sstr
 *         [--insts N --warmup N --seed S]
 *
 *   Stream a trace through the CVP-style predictor clients:
 *     specslice_replay --trace vpr.sstr [--predictor paper,yags]
 *         [--max-records N] [--json]
 *         [--golden golden/vpr.rdigest | --generate golden/vpr.rdigest]
 *
 *   Reproduce the execution-mode golden stats from the trace alone:
 *     specslice_replay --trace vpr.sstr --sim
 *         [--sim-golden golden/vpr.digest] [--json]
 *
 *   Sweep many traces in parallel and record throughput:
 *     specslice_replay --bench --traces a.sstr,b.sstr [--jobs N]
 *
 * --sim rebuilds the embedded workload (program, slices, initial
 * memory) and runs the full timing simulator in both configurations,
 * so the digest it produces is built from the exact same counter set
 * as the committed execution-mode corpus (sim::digestSection); with
 * --sim-golden the committed digest supplies the run parameters and
 * the live digest must diff clean against it. Before simulating, the
 * record stream itself is verified against a functional re-execution
 * (verifyTraceFidelity), so both halves of the file — the workload
 * sections and the records — are proven faithful.
 *
 * Replay digests (.rdigest) reuse the digest container/diff rules:
 * integer counters exact, accuracy ratios within epsilon.
 *
 * Exit codes: 0 pass, 1 mismatch or unreadable/corrupt trace,
 * 2 usage errors.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "branch/predictor_client.hh"
#include "check/digest.hh"
#include "sim/job_pool.hh"
#include "sim/result_json.hh"
#include "sim/simulator.hh"
#include "trace/frontend.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

struct Options
{
    // Modes (exactly one).
    bool emit = false;
    bool bench = false;
    std::string traceFile;  ///< replay mode when set (unless --emit)

    // --emit
    std::string workload;
    std::string out;
    std::uint64_t insts = 20'000;
    std::uint64_t warmup = 5'000;
    std::uint64_t seed = 1;

    // replay
    std::vector<std::string> predictors;  ///< empty = all registered
    std::uint64_t maxRecords = 0;
    std::string golden;    ///< diff against this .rdigest
    std::string generate;  ///< (re)write this .rdigest
    bool json = false;

    // --sim
    bool sim = false;
    std::string simGolden;  ///< execution-mode .digest to diff against

    // --bench
    std::vector<std::string> traces;
    unsigned jobs = 0;
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: specslice_replay --emit --workload NAME --out FILE "
        "[options]\n"
        "       specslice_replay --trace FILE [options]\n"
        "       specslice_replay --trace FILE --sim [options]\n"
        "       specslice_replay --bench --traces F1,F2,... [options]\n"
        "  --emit            run NAME functionally and write an sstr\n"
        "                    reference trace (program + slices + memory\n"
        "                    + one record per retired instruction)\n"
        "  --workload NAME   workload to trace (emit mode)\n"
        "  --out FILE        trace file to write (emit mode)\n"
        "  --insts N         measured instructions (emit; %llu)\n"
        "  --warmup N        warm-up instructions (emit; %llu); the\n"
        "                    trace records warmup+insts instructions\n"
        "                    and the workload is built at the golden\n"
        "                    corpus scale, so --sim reproduces the\n"
        "                    committed execution-mode digests\n"
        "  --seed N          workload data seed (emit; 1)\n"
        "  --trace FILE      replay FILE's record stream through the\n"
        "                    predictor clients\n"
        "  --predictor A,B   restrict to these clients (default all)\n"
        "  --max-records N   stop after N records (0 = all)\n"
        "  --golden FILE     diff the replay digest against FILE\n"
        "                    (.rdigest; exit 1 on any mismatch)\n"
        "  --generate FILE   (re)write the replay digest to FILE\n"
        "  --sim             rebuild the embedded workload and run the\n"
        "                    full timing simulator (baseline + slices,\n"
        "                    checker on); verifies record fidelity\n"
        "                    against functional re-execution first\n"
        "  --sim-golden FILE execution-mode .digest that supplies the\n"
        "                    run parameters; the live digest must diff\n"
        "                    clean against it\n"
        "  --bench           replay every trace in --traces through\n"
        "                    every client and write BENCH_replay.json\n"
        "  --traces F1,F2    trace files for --bench\n"
        "  --jobs N          parallel replay jobs (bench; default\n"
        "                    SS_JOBS or the core count)\n"
        "  --json            machine-readable result on stdout\n",
        static_cast<unsigned long long>(Options{}.insts),
        static_cast<unsigned long long>(Options{}.warmup));
    std::exit(code);
}

std::uint64_t
parseNum(const char *s)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0' || *s == '\0' || *s == '-')
        usage(2);
    return v;
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (a == "--emit") {
            o.emit = true;
        } else if (a == "--workload") {
            o.workload = next();
        } else if (a == "--out") {
            o.out = next();
        } else if (a == "--insts") {
            o.insts = parseNum(next());
        } else if (a == "--warmup") {
            o.warmup = parseNum(next());
        } else if (a == "--seed") {
            o.seed = parseNum(next());
        } else if (a == "--trace") {
            o.traceFile = next();
        } else if (a == "--predictor") {
            o.predictors = splitCsv(next());
        } else if (a == "--max-records") {
            o.maxRecords = parseNum(next());
        } else if (a == "--golden") {
            o.golden = next();
        } else if (a == "--generate") {
            o.generate = next();
        } else if (a == "--sim") {
            o.sim = true;
        } else if (a == "--sim-golden") {
            o.simGolden = next();
        } else if (a == "--bench") {
            o.bench = true;
        } else if (a == "--traces") {
            o.traces = splitCsv(next());
        } else if (a == "--jobs") {
            o.jobs = static_cast<unsigned>(parseNum(next()));
            if (o.jobs == 0 || o.jobs > 4096)
                usage(2);
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--help" || a == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "error: unknown option '%s'\n",
                         a.c_str());
            usage(2);
        }
    }
    const int modes = (o.emit ? 1 : 0) + (o.bench ? 1 : 0) +
                      (!o.traceFile.empty() ? 1 : 0);
    if (modes != 1)
        usage(2);
    if (o.emit && (o.workload.empty() || o.out.empty()))
        usage(2);
    if (o.bench && o.traces.empty())
        usage(2);
    if (!o.golden.empty() && !o.generate.empty())
        usage(2);
    if (o.sim && (!o.golden.empty() || !o.generate.empty()))
        usage(2);
    return o;
}

/** The registered client subset this invocation replays. */
std::vector<std::string>
clientNames(const Options &o)
{
    const std::vector<std::string> &all =
        branch::predictorClientNames();
    if (o.predictors.empty())
        return all;
    for (const std::string &name : o.predictors) {
        if (std::find(all.begin(), all.end(), name) == all.end()) {
            std::string valid;
            for (const auto &n : all)
                valid += (valid.empty() ? "" : " ") + n;
            std::fprintf(stderr,
                         "error: unknown predictor '%s' (valid: %s)\n",
                         name.c_str(), valid.c_str());
            std::exit(2);
        }
    }
    return o.predictors;
}

int
runEmit(const Options &o)
{
    const std::vector<std::string> &all = workloads::allWorkloadNames();
    if (std::find(all.begin(), all.end(), o.workload) == all.end()) {
        std::string valid;
        for (const auto &n : all)
            valid += (valid.empty() ? "" : " ") + n;
        std::fprintf(stderr,
                     "error: unknown workload '%s' (valid: %s)\n",
                     o.workload.c_str(), valid.c_str());
        return 2;
    }

    // Mirror the golden corpus's workload construction exactly: the
    // embedded program/memory must be the same ones specslice_verify
    // ran, or --sim can never reproduce the committed digests.
    workloads::Params wp;
    wp.scale = (o.insts + o.warmup) * 2;
    wp.seed = o.seed;
    sim::Workload wl = workloads::buildWorkload(o.workload, wp);

    std::string err;
    auto res = trace::emitWorkloadTrace(wl, o.seed, o.insts + o.warmup,
                                        o.out, err);
    if (!res) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }
    if (o.json) {
        json::JsonObject doc;
        doc.field("schema_version", sim::resultSchemaVersion)
            .field("trace", o.out)
            .field("workload", o.workload)
            .field("records", res->records)
            .field("seed", o.seed);
        std::printf("%s\n", doc.str().c_str());
    } else {
        std::printf("wrote %s: %llu records (%s)\n", o.out.c_str(),
                    static_cast<unsigned long long>(res->records),
                    o.workload.c_str());
    }
    return 0;
}

/** Replay one trace file through the named clients. @return false on
 *  a reader error (partial stats are discarded by the caller). */
bool
replayAll(const trace::TraceFile &file,
          const std::vector<std::string> &clients,
          std::uint64_t max_records,
          std::vector<std::pair<std::string, trace::ReplayStats>> &out,
          std::string &error)
{
    for (const std::string &name : clients) {
        auto client = branch::makePredictorClient(name);
        trace::TraceReader rd = file.records();
        trace::ReplayStats stats =
            trace::replayRecords(rd, *client, max_records);
        if (!rd.ok()) {
            error = rd.error();
            return false;
        }
        out.emplace_back(name, stats);
    }
    return true;
}

void
printReplayTable(const trace::TraceMeta &meta,
                 const std::vector<std::pair<std::string,
                                             trace::ReplayStats>> &rows)
{
    std::printf("trace %s: %llu records\n", meta.name.c_str(),
                static_cast<unsigned long long>(meta.recordCount));
    std::printf("%-10s %12s %12s %10s %12s %10s\n", "predictor",
                "cond", "cond_miss", "cond_acc", "indir_miss",
                "ret_miss");
    for (const auto &[name, s] : rows) {
        std::printf("%-10s %12llu %12llu %9.4f%% %12llu %10llu\n",
                    name.c_str(),
                    static_cast<unsigned long long>(s.condBranches),
                    static_cast<unsigned long long>(s.condMispredicts),
                    100.0 * s.condAccuracy(),
                    static_cast<unsigned long long>(
                        s.indirectMispredicts),
                    static_cast<unsigned long long>(
                        s.returnMispredicts));
    }
}

/** The per-trace replay document (--json, and --bench rows). */
json::JsonObject
replayDocument(const std::string &path, const trace::TraceMeta &meta,
               const std::vector<std::pair<std::string,
                                           trace::ReplayStats>> &rows)
{
    std::vector<std::string> sections;
    for (const auto &[name, s] : rows) {
        check::Digest::Section sec = trace::replaySection(name, s);
        json::JsonObject js;
        js.field("predictor", name);
        for (const auto &[k, v] : sec.counters)
            js.field(k, v);
        for (const auto &[k, v] : sec.ratios)
            js.field(k, v);
        sections.push_back(js.str());
    }
    json::JsonObject doc;
    doc.field("schema_version", sim::resultSchemaVersion)
        .field("trace", path)
        .field("workload", meta.name)
        .field("records", meta.recordCount)
        .field("seed", meta.dataSeed)
        .raw("predictors", json::jsonArray(sections));
    return doc;
}

int
runReplay(const Options &o)
{
    std::string err;
    auto file = trace::TraceFile::open(o.traceFile, err);
    if (!file) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }

    std::vector<std::pair<std::string, trace::ReplayStats>> rows;
    if (!replayAll(*file, clientNames(o), o.maxRecords, rows, err)) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }
    check::Digest live = trace::replayDigest(file->meta(), rows);

    if (!o.generate.empty()) {
        // formatDigest stamps the execution-corpus regeneration hint;
        // replace it so the file documents its own provenance.
        std::string text = check::formatDigest(live);
        while (!text.empty() && text[0] == '#')
            text.erase(0, text.find('\n') + 1);
        std::ofstream os(o.generate);
        if (os)
            os << "# specslice replay-accuracy digest (do not edit "
                  "by hand; regenerate:\n"
                  "# specslice_replay --emit --workload NAME --out "
                  "NAME.sstr &&\n"
                  "# specslice_replay --trace NAME.sstr --generate "
                  "golden/NAME.rdigest)\n"
               << text;
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         o.generate.c_str());
            return 1;
        }
        std::printf("wrote %s\n", o.generate.c_str());
        return 0;
    }

    if (o.json)
        std::printf("%s\n",
                    replayDocument(o.traceFile, file->meta(), rows)
                        .str()
                        .c_str());
    else
        printReplayTable(file->meta(), rows);

    if (!o.golden.empty()) {
        std::ifstream is(o.golden);
        if (!is) {
            std::fprintf(stderr, "error: missing golden digest %s\n",
                         o.golden.c_str());
            return 1;
        }
        auto golden = check::parseDigest(is, err);
        if (!golden) {
            std::fprintf(stderr, "error: malformed %s: %s\n",
                         o.golden.c_str(), err.c_str());
            return 1;
        }
        std::vector<std::string> diffs =
            check::diffDigests(*golden, live);
        for (const std::string &d : diffs)
            std::fprintf(stderr, "MISMATCH %s: %s\n",
                         file->meta().name.c_str(), d.c_str());
        if (!diffs.empty())
            return 1;
        std::fprintf(stderr, "replay digest matches %s\n",
                     o.golden.c_str());
    }
    return 0;
}

int
runSim(const Options &o)
{
    std::string err;

    // Fidelity first: the record stream must be exactly what the
    // embedded program does, or the trace is not a faithful witness
    // of the workload it claims to carry.
    auto checked = trace::verifyTraceFidelity(o.traceFile, err);
    if (!checked) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "record fidelity: %llu records match functional "
                 "re-execution\n",
                 static_cast<unsigned long long>(*checked));

    auto loaded = trace::loadTraceWorkload(o.traceFile, err);
    if (!loaded) {
        std::fprintf(stderr, "error: %s\n", err.c_str());
        return 1;
    }

    // Run parameters: the committed digest's when diffing against one
    // (the corpus, not the invoker, defines the regression run —
    // exactly specslice_verify's rule), this binary's golden-matching
    // defaults otherwise.
    check::Digest golden;
    bool haveGolden = false;
    if (!o.simGolden.empty()) {
        std::ifstream is(o.simGolden);
        if (!is) {
            std::fprintf(stderr, "error: missing golden digest %s\n",
                         o.simGolden.c_str());
            return 1;
        }
        auto parsed = check::parseDigest(is, err);
        if (!parsed) {
            std::fprintf(stderr, "error: malformed %s: %s\n",
                         o.simGolden.c_str(), err.c_str());
            return 1;
        }
        golden = std::move(*parsed);
        haveGolden = true;
    }

    const std::uint64_t insts = haveGolden ? golden.insts : o.insts;
    const std::uint64_t warmup = haveGolden ? golden.warmup : o.warmup;
    const unsigned width =
        haveGolden ? std::max(golden.width, 4u) : 4u;
    const unsigned threads = haveGolden ? golden.threads : 4u;

    sim::MachineConfig cfg = width == 8
                                 ? sim::MachineConfig::eightWide()
                                 : sim::MachineConfig::fourWide();
    cfg.numThreads = threads;
    sim::Simulator machine(cfg);

    sim::RunOptions opts;
    opts.maxMainInstructions = insts;
    opts.warmupInstructions = warmup;
    opts.check = true;
    opts.traceFile = o.traceFile;
    if (haveGolden) {
        opts.fastForwardInstructions = golden.fastforward;
        opts.sampleRegions = static_cast<unsigned>(golden.regions);
        opts.sampleStride = golden.stride;
    }

    check::Digest live;
    live.workload = loaded->workload.name;
    live.insts = insts;
    live.warmup = warmup;
    live.seed = loaded->meta.dataSeed;
    live.width = width;
    live.threads = threads;
    if (haveGolden) {
        live.fastforward = golden.fastforward;
        live.regions = golden.regions;
        live.stride = golden.stride;
    }
    live.sections.push_back(sim::digestSection(
        "baseline", machine.runBaseline(loaded->workload, opts)));
    live.sections.push_back(sim::digestSection(
        "slices", machine.run(loaded->workload, opts, true)));

    if (o.json)
        std::printf("%s\n",
                    json::JsonObject()
                        .field("schema_version",
                               sim::resultSchemaVersion)
                        .field("trace", o.traceFile)
                        .field("workload", live.workload)
                        .field("records", loaded->meta.recordCount)
                        .raw("digest",
                             "\"" +
                                 json::jsonEscape(
                                     check::formatDigest(live)) +
                                 "\"")
                        .str()
                        .c_str());
    else
        std::printf("%s", check::formatDigest(live).c_str());

    if (haveGolden) {
        std::vector<std::string> diffs =
            check::diffDigests(golden, live);
        for (const std::string &d : diffs)
            std::fprintf(stderr, "MISMATCH %s: %s\n",
                         live.workload.c_str(), d.c_str());
        if (!diffs.empty())
            return 1;
        std::fprintf(stderr,
                     "trace-mode digest matches %s (execution-mode "
                     "stats reproduced from the trace alone)\n",
                     o.simGolden.c_str());
    }
    return 0;
}

int
runBench(const Options &o)
{
    const std::vector<std::string> clients = clientNames(o);
    struct Row
    {
        std::string path;
        trace::TraceMeta meta;
        std::vector<std::pair<std::string, trace::ReplayStats>> rows;
        double wallSeconds = 0.0;
        std::string error;
    };

    sim::JobPool pool(o.jobs);
    const auto sweep_start = std::chrono::steady_clock::now();
    std::vector<Row> results =
        pool.map(o.traces, [&](const std::string &path) {
            Row row;
            row.path = path;
            const auto start = std::chrono::steady_clock::now();
            std::string err;
            auto file = trace::TraceFile::open(path, err);
            if (!file) {
                row.error = err;
                return row;
            }
            row.meta = file->meta();
            if (!replayAll(*file, clients, o.maxRecords, row.rows,
                           err))
                row.error = err;
            row.wallSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            return row;
        });
    const double sweep_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();

    bool failed = false;
    std::vector<std::string> elems;
    std::uint64_t total_records = 0;
    for (const Row &row : results) {
        if (!row.error.empty()) {
            std::fprintf(stderr, "error: %s: %s\n", row.path.c_str(),
                         row.error.c_str());
            failed = true;
            continue;
        }
        json::JsonObject doc =
            replayDocument(row.path, row.meta, row.rows);
        doc.field("wall_seconds", row.wallSeconds)
            .field("records_per_sec",
                   row.wallSeconds > 0.0
                       ? static_cast<double>(row.meta.recordCount) *
                             static_cast<double>(clients.size()) /
                             row.wallSeconds
                       : 0.0);
        elems.push_back(doc.str());
        total_records += row.meta.recordCount;
        if (!o.json)
            printReplayTable(row.meta, row.rows);
    }

    json::JsonObject aggregate;
    aggregate.field("traces", std::uint64_t{elems.size()})
        .field("records", total_records)
        .field("sweep_wall_seconds", sweep_wall)
        .field("sweep_records_per_sec",
               sweep_wall > 0.0
                   ? static_cast<double>(total_records) *
                         static_cast<double>(clients.size()) /
                         sweep_wall
                   : 0.0);
    json::JsonObject doc;
    doc.field("schema_version", sim::resultSchemaVersion)
        .field("bench", std::string("replay"))
        .raw("traces", json::jsonArray(elems))
        .raw("aggregate", aggregate.str());

    const std::string path = "BENCH_replay.json";
    std::ofstream os(path);
    os << doc.str() << "\n";
    if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        return 1;
    }
    if (o.json)
        std::printf("%s\n", doc.str().c_str());
    else
        std::printf("wrote %s (%zu traces)\n", path.c_str(),
                    elems.size());
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);
    if (o.emit)
        return runEmit(o);
    if (o.bench)
        return runBench(o);
    if (o.sim)
        return runSim(o);
    return runReplay(o);
}
