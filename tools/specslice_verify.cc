/**
 * @file
 * The golden-stats regression gate: runs every workload in its
 * baseline and slice-enabled configurations — with the retirement
 * checker co-simulating — and diffs the resulting stat digests
 * against the committed corpus under golden/.
 *
 *   specslice_verify --golden golden/            # regression check
 *   specslice_verify --generate golden/          # refresh the corpus
 *   specslice_verify --golden golden/ --jobs 8 --workloads vpr,mcf
 *   specslice_verify --golden golden/ --inject slice.kill@n3 --json
 *
 * Verification reads the run parameters (insts/warmup/seed/width/
 * threads) out of each digest, so the committed corpus — not the
 * invoker — defines the regression workload. Comparison rules:
 * integer counters must match exactly; cycle-derived ratios compare
 * within a relative epsilon (decimal round-trip). Any retirement-
 * checker divergence fails the workload with a first-divergence
 * report.
 *
 * With --inject the gate flips into fault-tolerance mode: each
 * workload runs under the injection plan with the checker
 * co-simulating, and PASSES only when (a) the checker reports zero
 * divergences, (b) the run completes (no watchdog/cycle-limit
 * truncation), and (c) the stats digest actually differs from the
 * golden one — i.e. the faults perturbed timing without corrupting
 * architectural state. The counter diff is skipped (perturbed stats
 * are the point).
 *
 * The sweep is crash-resilient: workloads run via JobPool::mapSettled,
 * so one panicking or deadline-exceeded configuration is reported in
 * the summary (state "error"/"timeout") while the rest complete.
 * Exits 0 only when every workload passes; 2 on usage errors.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "check/digest.hh"
#include "common/logging.hh"
#include "fault/fault.hh"
#include "sim/experiments.hh"
#include "sim/job_pool.hh"
#include "sim/result_cache.hh"
#include "sim/run_key.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

struct RunParams
{
    std::uint64_t insts = 20'000;
    std::uint64_t warmup = 5'000;
    std::uint64_t seed = 1;
    unsigned width = 4;
    unsigned threads = 4;
    // Sampling configuration (all 0 = full run). Recorded in the
    // digest, so a sampled corpus re-verifies with the same regions.
    std::uint64_t fastforward = 0;
    unsigned regions = 0;
    std::uint64_t stride = 0;
};

struct Options
{
    std::string dir = "golden";
    bool generate = false;
    std::vector<std::string> workloads;  ///< empty = all (+ coverage)
    RunParams params;
    unsigned jobs = 0;  ///< 0 = SS_JOBS or hardware concurrency
    /** Checkpoint cache dir: first run per workload saves the
     *  fast-forward state, later runs restore it (empty = off). */
    std::string checkpoints;
    /** Incremental mode: route every run through the content-
     *  addressed result cache, so an unchanged binary re-verifies
     *  without simulating at all. */
    bool serve = false;
    std::string cacheDir;  ///< "" = SS_CACHE_DIR or .sscache
    bool check = true;
    bool verbose = false;
    bool json = false;            ///< sweep summary JSON on stdout
    double deadline = 0.0;        ///< per-workload wall clock (s)
    fault::FaultPlan inject;      ///< plan applied to every workload
    /** Per-workload plans (--inject-workload NAME:SPEC); override the
     *  global plan for that workload. */
    std::map<std::string, fault::FaultPlan> injectWorkload;
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: specslice_verify [--golden DIR | --generate DIR] "
        "[options]\n"
        "  --golden DIR      diff live runs against the digest corpus\n"
        "                    in DIR (default mode, DIR 'golden')\n"
        "  --generate DIR    (re)write the digest corpus into DIR\n"
        "  --workloads A,B   restrict to these workloads (default all;\n"
        "                    a restricted verify skips the coverage\n"
        "                    check)\n"
        "  --inject SPEC     fault-tolerance mode: run every workload\n"
        "                    under this injection plan; pass = checker\n"
        "                    clean + run completed + stats perturbed\n"
        "                    (counter diff skipped; not with\n"
        "                    --generate)\n"
        "  --inject-workload NAME:SPEC  per-workload plan (overrides\n"
        "                    --inject for NAME; repeatable)\n"
        "  --deadline SECS   per-workload wall-clock deadline (one\n"
        "                    retry on timeout; 0 = none)\n"
        "  --json            print the sweep summary as JSON on\n"
        "                    stdout\n"
        "  --insts N         measured instructions (generate; %llu)\n"
        "  --warmup N        warm-up instructions (generate; %llu)\n"
        "  --fastforward N   generate: skip N instructions before the\n"
        "                    measured region(s); recorded in the\n"
        "                    digest, so verify replays it\n"
        "  --sample R        generate: aggregate R sampled regions of\n"
        "                    warmup+insts each (recorded in digest)\n"
        "  --sample-stride N generate: instructions between region\n"
        "                    starts (default warmup+insts)\n"
        "  --checkpoints DIR cache the fast-forward state per workload\n"
        "                    (first run saves DIR/<name>-<key>.ckpt,\n"
        "                    later runs restore instead of\n"
        "                    re-executing; the key covers workload,\n"
        "                    seed, fast-forward depth, and binary, so\n"
        "                    a stale checkpoint is never restored)\n"
        "  --serve           incremental verify: serve runs from the\n"
        "                    content-addressed result cache, simulate\n"
        "                    only what the cache is missing (after a\n"
        "                    no-op rebuild the whole sweep is served)\n"
        "  --cache DIR       result-cache directory for --serve\n"
        "                    (default $SS_CACHE_DIR or .sscache)\n"
        "  --seed N          workload seed (generate; 1)\n"
        "  --width 4|8       machine width (generate; 4)\n"
        "  --threads N       SMT contexts (generate; 4)\n"
        "  --jobs N          parallel workload jobs (default SS_JOBS\n"
        "                    or the core count)\n"
        "  --no-check        skip retirement-checker co-simulation\n"
        "  --verbose         per-workload detail\n",
        static_cast<unsigned long long>(RunParams{}.insts),
        static_cast<unsigned long long>(RunParams{}.warmup));
    std::exit(code);
}

std::uint64_t
parseNum(const char *s)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0' || *s == '\0' || *s == '-')
        usage(2);
    return v;
}

fault::FaultPlan
parsePlanOrDie(const std::string &spec)
{
    fault::FaultPlan plan;
    std::string err;
    if (!fault::FaultPlan::parse(spec, plan, err)) {
        std::fprintf(stderr, "error: %s\n%s", err.c_str(),
                     fault::FaultPlan::grammarHelp().c_str());
        std::exit(2);
    }
    return plan;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (a == "--golden") {
            o.dir = next();
            o.generate = false;
        } else if (a == "--generate") {
            o.dir = next();
            o.generate = true;
        } else if (a == "--workloads") {
            std::stringstream ss(next());
            std::string name;
            while (std::getline(ss, name, ','))
                if (!name.empty())
                    o.workloads.push_back(name);
        } else if (a == "--inject") {
            o.inject = parsePlanOrDie(next());
        } else if (a == "--inject-workload") {
            std::string v = next();
            auto colon = v.find(':');
            if (colon == std::string::npos || colon == 0) {
                std::fprintf(stderr,
                             "error: --inject-workload wants "
                             "NAME:SPEC, got '%s'\n",
                             v.c_str());
                std::exit(2);
            }
            o.injectWorkload[v.substr(0, colon)] =
                parsePlanOrDie(v.substr(colon + 1));
        } else if (a == "--deadline") {
            const char *v = next();
            char *end = nullptr;
            o.deadline = std::strtod(v, &end);
            if (!end || *end != '\0' || o.deadline < 0.0)
                usage(2);
        } else if (a == "--json") {
            o.json = true;
        } else if (a == "--insts") {
            o.params.insts = parseNum(next());
        } else if (a == "--warmup") {
            o.params.warmup = parseNum(next());
        } else if (a == "--fastforward") {
            o.params.fastforward = parseNum(next());
        } else if (a == "--sample") {
            o.params.regions = static_cast<unsigned>(parseNum(next()));
            if (o.params.regions == 0)
                usage(2);
        } else if (a == "--sample-stride") {
            o.params.stride = parseNum(next());
            if (o.params.stride == 0)
                usage(2);
        } else if (a == "--checkpoints") {
            o.checkpoints = next();
        } else if (a == "--serve") {
            o.serve = true;
        } else if (a == "--cache") {
            o.cacheDir = next();
        } else if (a == "--seed") {
            o.params.seed = parseNum(next());
        } else if (a == "--width") {
            o.params.width = static_cast<unsigned>(parseNum(next()));
            if (o.params.width != 4 && o.params.width != 8)
                usage(2);
        } else if (a == "--threads") {
            o.params.threads = static_cast<unsigned>(parseNum(next()));
            if (o.params.threads == 0)
                usage(2);
        } else if (a == "--jobs") {
            o.jobs = static_cast<unsigned>(parseNum(next()));
            if (o.jobs == 0 || o.jobs > 4096)
                usage(2);
        } else if (a == "--no-check") {
            o.check = false;
        } else if (a == "--check") {
            o.check = true;
        } else if (a == "--verbose" || a == "-v") {
            o.verbose = true;
        } else if (a == "--help" || a == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "error: unknown option '%s'\n",
                         a.c_str());
            usage(2);
        }
    }
    if (o.generate &&
        (!o.inject.empty() || !o.injectWorkload.empty())) {
        std::fprintf(stderr,
                     "error: --inject cannot be combined with "
                     "--generate (the corpus must be built from "
                     "unperturbed runs)\n");
        std::exit(2);
    }
    return o;
}

/** The injection plan for one workload ({} when injection is off). */
const fault::FaultPlan &
planFor(const std::string &name, const Options &o)
{
    auto it = o.injectWorkload.find(name);
    return it != o.injectWorkload.end() ? it->second : o.inject;
}

/** One config's digest section from a finished run. The counter set
 *  lives in sim::digestSection so specslice_replay --sim builds its
 *  trace-mode sections from the exact same fields. */
check::Digest::Section
sectionFrom(const std::string &config, const sim::RunResult &r)
{
    return sim::digestSection(config, r);
}

/** A live two-config run: the digest plus robustness telemetry. */
struct LiveRun
{
    check::Digest digest;
    sim::SimOutcome worst = sim::SimOutcome::Completed;
    bool diverged = false;
    std::string checkReport;
    std::uint64_t faultsInjected = 0;
    std::string faultSummary;
};

/** Run one workload in both configurations and digest the results.
 *  With a result cache, runs the cache already holds are served
 *  without simulating (incremental --serve verify). */
LiveRun
buildLiveRun(const std::string &name, const RunParams &p, bool check,
             const fault::FaultPlan &plan,
             const std::string &ckpt_dir = {},
             sim::ResultCache *cache = nullptr)
{
    // The workload must outlast the whole sampling span; with no
    // sampling this reduces to the historical (insts + warmup) * 2.
    const std::uint64_t per_region = p.insts + p.warmup;
    const std::uint64_t span =
        p.fastforward +
        (std::max(1u, p.regions) - 1) *
            (p.stride ? p.stride : per_region) +
        per_region;

    workloads::Params wp;
    wp.scale = span * 2;
    wp.seed = p.seed;
    sim::Workload wl = workloads::buildWorkload(name, wp);

    sim::MachineConfig cfg = p.width == 8
                                 ? sim::MachineConfig::eightWide()
                                 : sim::MachineConfig::fourWide();
    cfg.numThreads = p.threads;
    sim::Simulator machine(cfg);

    sim::RunOptions opts;
    opts.maxMainInstructions = p.insts;
    opts.warmupInstructions = p.warmup;
    opts.check = check;
    opts.faults = plan;
    opts.faults.seed = p.seed;
    // Under injection, a divergence must latch into the result (and
    // fail the workload with a report) instead of killing the sweep.
    opts.checkFatal = plan.empty();
    opts.fastForwardInstructions = p.fastforward;
    opts.sampleRegions = p.regions;
    opts.sampleStride = p.stride;

    // Checkpoint cache: whoever runs this workload first pays for the
    // fast-forward and saves the state; every later run (the second
    // config here, or a whole future sweep) restores it. The sweep is
    // parallel across *workloads* only, so the file is never raced.
    // The filename embeds checkpointCacheKey (workload identity, data
    // seed, fast-forward depth, binary fingerprint), so a checkpoint
    // from a different binary or parameterization is never restored —
    // it simply isn't found, and a fresh one is saved.
    //
    // With a result cache the checkpoint machinery is bypassed
    // entirely: served runs skip the fast-forward anyway, and keeping
    // checkpoint paths out of the run options keeps the cache key for
    // a given configuration stable across passes (first pass would
    // otherwise save, second restore — two different keys).
    std::string ckpt;
    if (!ckpt_dir.empty() && !cache)
        ckpt = (std::filesystem::path(ckpt_dir) /
                (name + "-" +
                 sim::checkpointCacheKey(wl, p.seed, p.fastforward) +
                 ".ckpt"))
                   .string();
    auto optsFor = [&](bool first) {
        sim::RunOptions per = opts;
        if (!ckpt.empty()) {
            if (first && !std::filesystem::exists(ckpt))
                per.saveCheckpoint = ckpt;
            else
                per.restoreCheckpoint = ckpt;
        }
        return per;
    };

    LiveRun live;
    live.digest.workload = name;
    live.digest.insts = p.insts;
    live.digest.warmup = p.warmup;
    live.digest.seed = p.seed;
    live.digest.width = p.width;
    live.digest.threads = p.threads;
    live.digest.fastforward = p.fastforward;
    live.digest.regions = p.regions;
    live.digest.stride = p.stride;

    auto absorb = [&](const char *config, const sim::RunResult &r) {
        live.digest.sections.push_back(sectionFrom(config, r));
        if (static_cast<int>(r.outcome) >
            static_cast<int>(live.worst))
            live.worst = r.outcome;
        if (r.checkDiverged && !live.diverged) {
            live.diverged = true;
            live.checkReport = r.checkReport;
        }
        live.faultsInjected += r.faultsInjected;
        if (!r.faultSummary.empty()) {
            if (!live.faultSummary.empty())
                live.faultSummary += "; ";
            live.faultSummary += config;
            live.faultSummary += ": ";
            live.faultSummary += r.faultSummary;
        }
    };
    if (cache) {
        sim::ExperimentConfig ecfg;
        ecfg.seed = p.seed;
        ecfg.cache = cache;
        absorb("baseline",
               sim::cachedRun(cfg, machine, wl, ecfg, opts, false));
        absorb("slices",
               sim::cachedRun(cfg, machine, wl, ecfg, opts, true));
    } else {
        absorb("baseline", machine.runBaseline(wl, optsFor(true)));
        absorb("slices", machine.run(wl, optsFor(false), true));
    }
    return live;
}

std::filesystem::path
digestPath(const std::string &dir, const std::string &workload)
{
    return std::filesystem::path(dir) / (workload + ".digest");
}

struct Outcome
{
    std::string name;
    bool ok = false;
    /** ok | mismatch | error | timeout (for --json). */
    std::string state = "mismatch";
    std::vector<std::string> messages;
};

Outcome
verifyWorkload(const std::string &name, const Options &o,
               sim::ResultCache *cache)
{
    Outcome out;
    out.name = name;

    std::ifstream is(digestPath(o.dir, name));
    if (!is) {
        out.messages.push_back("missing digest file " +
                               digestPath(o.dir, name).string());
        return out;
    }
    std::string perr;
    auto golden = check::parseDigest(is, perr);
    if (!golden) {
        out.messages.push_back("malformed digest: " + perr);
        return out;
    }
    for (std::string &msg : check::lintDigest(*golden))
        out.messages.push_back("lint: " + std::move(msg));
    if (!out.messages.empty())
        return out;

    // The committed digest defines the regression run.
    RunParams p;
    p.insts = golden->insts;
    p.warmup = golden->warmup;
    p.seed = golden->seed;
    p.width = golden->width;
    p.threads = golden->threads;
    p.fastforward = golden->fastforward;
    p.regions = static_cast<unsigned>(golden->regions);
    p.stride = golden->stride;

    const fault::FaultPlan &plan = planFor(name, o);
    LiveRun live =
        buildLiveRun(name, p, o.check, plan, o.checkpoints, cache);

    if (plan.empty()) {
        out.messages = check::diffDigests(*golden, live.digest);
        out.ok = out.messages.empty();
        if (out.ok)
            out.state = "ok";
        return out;
    }

    // Fault-tolerance mode: stats are expected to differ; the pass
    // criteria are architectural cleanliness and forward progress.
    if (live.diverged)
        out.messages.push_back(
            "checker diverged under injection '" + plan.describe() +
            "':\n" + live.checkReport);
    if (live.worst != sim::SimOutcome::Completed)
        out.messages.push_back(
            std::string("run did not complete under injection: "
                        "outcome ") +
            sim::outcomeName(live.worst));
    bool perturbed = !check::diffDigests(*golden, live.digest).empty();
    if (live.faultsInjected > 0 && !perturbed)
        out.messages.push_back(
            "injection '" + plan.describe() + "' fired " +
            std::to_string(live.faultsInjected) +
            " times but did not perturb the stats digest (identical "
            "to golden — fault has no observable effect here)");
    out.ok = out.messages.empty();
    if (out.ok) {
        out.state = "ok";
        if (live.faultsInjected == 0)
            out.messages.push_back(
                "injection '" + plan.describe() +
                "' armed but never fired (site not exercised by this "
                "workload); digest matches golden");
        else
            out.messages.push_back(
                "checker clean under '" + plan.describe() + "' (" +
                std::to_string(live.faultsInjected) +
                " faults fired: " + live.faultSummary + ")");
    }
    return out;
}

Outcome
generateWorkload(const std::string &name, const Options &o,
                 sim::ResultCache *cache)
{
    Outcome out;
    out.name = name;
    check::Digest d = buildLiveRun(name, o.params, o.check,
                                   fault::FaultPlan{}, o.checkpoints,
                                   cache)
                          .digest;
    for (std::string &msg : check::lintDigest(d)) {
        // A digest that fails its own lint must never reach golden/.
        out.messages.push_back("generated digest fails lint: " +
                               std::move(msg));
    }
    if (!out.messages.empty())
        return out;

    auto path = digestPath(o.dir, name);
    std::ofstream os(path);
    if (!os) {
        out.messages.push_back("cannot write " + path.string());
        return out;
    }
    os << check::formatDigest(d);
    out.ok = static_cast<bool>(os);
    if (out.ok)
        out.state = "ok";
    else
        out.messages.push_back("write failed: " + path.string());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);

    const std::vector<std::string> &all = workloads::allWorkloadNames();
    std::vector<std::string> names =
        o.workloads.empty() ? all : o.workloads;
    auto known = [&](const std::string &n) {
        return std::find(all.begin(), all.end(), n) != all.end();
    };
    std::string valid;
    for (const auto &n : all)
        valid += (valid.empty() ? "" : " ") + n;
    for (const std::string &n : names) {
        if (!known(n)) {
            std::fprintf(stderr,
                         "error: unknown workload '%s' (valid: %s)\n",
                         n.c_str(), valid.c_str());
            return 2;
        }
    }
    for (const auto &[n, plan] : o.injectWorkload) {
        if (!known(n)) {
            std::fprintf(stderr,
                         "error: --inject-workload names unknown "
                         "workload '%s' (valid: %s)\n",
                         n.c_str(), valid.c_str());
            return 2;
        }
    }

    if (o.generate)
        std::filesystem::create_directories(o.dir);
    if (!o.checkpoints.empty())
        std::filesystem::create_directories(o.checkpoints);

    // --serve: one shared cache; ResultCache is thread-safe, so the
    // JobPool workers hit it concurrently.
    std::unique_ptr<sim::ResultCache> cache;
    if (o.serve) {
        std::string dir = o.cacheDir;
        if (dir.empty())
            if (const char *env = std::getenv("SS_CACHE_DIR"))
                dir = env;
        if (dir.empty())
            dir = ".sscache";
        cache = std::make_unique<sim::ResultCache>(dir);
    }

    sim::JobPool pool(o.jobs);
    sim::SettleOptions sopts;
    sopts.deadlineSeconds = o.deadline;
    auto settled = pool.mapSettled(
        names,
        [&](const std::string &name) {
            return o.generate
                       ? generateWorkload(name, o, cache.get())
                       : verifyWorkload(name, o, cache.get());
        },
        sopts);

    std::vector<Outcome> outcomes;
    std::vector<sim::JobStatus> statuses;
    for (std::size_t i = 0; i < settled.size(); ++i) {
        if (settled[i].ok()) {
            outcomes.push_back(std::move(*settled[i].value));
        } else {
            Outcome out;
            out.name = names[i];
            out.state = settled[i].status.state ==
                                sim::JobState::TimedOut
                            ? "timeout"
                            : "error";
            out.messages.push_back(settled[i].status.error);
            outcomes.push_back(std::move(out));
        }
        statuses.push_back(settled[i].status);
    }

    bool failed = false;
    for (const Outcome &out : outcomes) {
        if (out.ok)
            continue;
        failed = true;
        if (o.json)
            continue;
        std::printf("%-8s FAILED (%s)\n", out.name.c_str(),
                    out.state.c_str());
        for (const std::string &m : out.messages)
            std::printf("    %s\n", m.c_str());
    }
    if (!o.json) {
        for (const Outcome &out : outcomes) {
            if (!out.ok || !(o.verbose || o.generate))
                continue;
            std::printf("%-8s %s\n", out.name.c_str(),
                        o.generate ? "digest written" : "ok");
            if (o.verbose)
                for (const std::string &m : out.messages)
                    std::printf("    %s\n", m.c_str());
        }
    }

    // Coverage: a full verify also rejects stray digests so the
    // corpus cannot silently drift from the workload suite.
    std::vector<std::string> coverage_errors;
    if (!o.generate && o.workloads.empty()) {
        std::set<std::string> known_set(all.begin(), all.end());
        std::error_code ec;
        for (const auto &e :
             std::filesystem::directory_iterator(o.dir, ec)) {
            if (e.path().extension() != ".digest")
                continue;
            std::string stem = e.path().stem().string();
            if (!known_set.count(stem)) {
                failed = true;
                coverage_errors.push_back(
                    "stray digest for unknown workload: " +
                    e.path().string());
            }
        }
        if (ec) {
            failed = true;
            coverage_errors.push_back("cannot scan " + o.dir + ": " +
                                      ec.message());
        }
        if (!o.json)
            for (const std::string &m : coverage_errors)
                std::printf("%s\n", m.c_str());
    }

    std::size_t ok_count = static_cast<std::size_t>(
        std::count_if(outcomes.begin(), outcomes.end(),
                      [](const Outcome &x) { return x.ok; }));

    if (o.json) {
        std::vector<std::string> elems;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const Outcome &out = outcomes[i];
            bench::JsonObject rec;
            rec.field("name", out.name)
                .raw("ok", out.ok ? "true" : "false")
                .field("state", out.state)
                .field("wall_seconds", statuses[i].wallSeconds)
                .field("attempts",
                       std::uint64_t{statuses[i].attempts});
            std::vector<std::string> msgs;
            for (const std::string &m : out.messages)
                msgs.push_back("\"" + bench::jsonEscape(m) + "\"");
            rec.raw("messages", bench::jsonArray(msgs));
            elems.push_back(rec.str());
        }
        std::vector<std::string> cov;
        for (const std::string &m : coverage_errors)
            cov.push_back("\"" + bench::jsonEscape(m) + "\"");
        bench::JsonObject doc;
        doc.field("schema_version", bench::benchSchemaVersion)
            .field("mode",
                   std::string(o.generate ? "generate" : "verify"));
        if (!o.inject.empty())
            doc.field("inject", o.inject.describe());
        doc.field("check", std::uint64_t{o.check ? 1u : 0u})
            .raw("workloads", bench::jsonArray(elems))
            .raw("coverage_errors", bench::jsonArray(cov))
            .field("ok_count", std::uint64_t{ok_count})
            .field("total", std::uint64_t{outcomes.size()});
        if (cache) {
            const sim::ResultCache::Stats &cs = cache->stats();
            bench::JsonObject cj;
            cj.field("dir", cache->dir())
                .field("hits", cs.hits)
                .field("misses", cs.misses)
                .field("stores", cs.stores);
            doc.raw("cache", cj.str());
        }
        doc.raw("failed", failed ? "true" : "false");
        std::printf("%s\n", doc.str().c_str());
    } else {
        std::printf("%s: %zu/%zu workloads %s (%s)\n",
                    o.generate ? "generate" : "verify", ok_count,
                    outcomes.size(),
                    o.generate ? "written" : "match",
                    o.check ? "retirement checker on"
                            : "retirement checker off");
        if (cache) {
            const sim::ResultCache::Stats &cs = cache->stats();
            std::printf("cache %s: %llu served, %llu simulated\n",
                        cache->dir().c_str(),
                        static_cast<unsigned long long>(cs.hits),
                        static_cast<unsigned long long>(cs.misses));
        }
    }
    return failed ? 1 : 0;
}
