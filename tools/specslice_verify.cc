/**
 * @file
 * The golden-stats regression gate: runs every workload in its
 * baseline and slice-enabled configurations — with the retirement
 * checker co-simulating — and diffs the resulting stat digests
 * against the committed corpus under golden/.
 *
 *   specslice_verify --golden golden/            # regression check
 *   specslice_verify --generate golden/          # refresh the corpus
 *   specslice_verify --golden golden/ --jobs 8 --workloads vpr,mcf
 *
 * Verification reads the run parameters (insts/warmup/seed/width/
 * threads) out of each digest, so the committed corpus — not the
 * invoker — defines the regression workload. Comparison rules:
 * integer counters must match exactly; cycle-derived ratios compare
 * within a relative epsilon (decimal round-trip). Any retirement-
 * checker divergence aborts immediately with a first-divergence
 * report. Exits 0 only when every workload matches.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check/digest.hh"
#include "common/logging.hh"
#include "sim/job_pool.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

struct RunParams
{
    std::uint64_t insts = 20'000;
    std::uint64_t warmup = 5'000;
    std::uint64_t seed = 1;
    unsigned width = 4;
    unsigned threads = 4;
};

struct Options
{
    std::string dir = "golden";
    bool generate = false;
    std::vector<std::string> workloads;  ///< empty = all (+ coverage)
    RunParams params;
    unsigned jobs = 0;  ///< 0 = SS_JOBS or hardware concurrency
    bool check = true;
    bool verbose = false;
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: specslice_verify [--golden DIR | --generate DIR] "
        "[options]\n"
        "  --golden DIR      diff live runs against the digest corpus\n"
        "                    in DIR (default mode, DIR 'golden')\n"
        "  --generate DIR    (re)write the digest corpus into DIR\n"
        "  --workloads A,B   restrict to these workloads (default all;\n"
        "                    a restricted verify skips the coverage\n"
        "                    check)\n"
        "  --insts N         measured instructions (generate; %llu)\n"
        "  --warmup N        warm-up instructions (generate; %llu)\n"
        "  --seed N          workload seed (generate; 1)\n"
        "  --width 4|8       machine width (generate; 4)\n"
        "  --threads N       SMT contexts (generate; 4)\n"
        "  --jobs N          parallel workload jobs (default SS_JOBS\n"
        "                    or the core count)\n"
        "  --no-check        skip retirement-checker co-simulation\n"
        "  --verbose         per-workload detail\n",
        static_cast<unsigned long long>(RunParams{}.insts),
        static_cast<unsigned long long>(RunParams{}.warmup));
    std::exit(code);
}

std::uint64_t
parseNum(const char *s)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(s, &end, 10);
    if (!end || *end != '\0' || *s == '\0' || *s == '-')
        usage(2);
    return v;
}

Options
parseArgs(int argc, char **argv)
{
    Options o;
    bool mode_set = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (a == "--golden") {
            o.dir = next();
            o.generate = false;
            mode_set = true;
        } else if (a == "--generate") {
            o.dir = next();
            o.generate = true;
            mode_set = true;
        } else if (a == "--workloads") {
            std::stringstream ss(next());
            std::string name;
            while (std::getline(ss, name, ','))
                if (!name.empty())
                    o.workloads.push_back(name);
        } else if (a == "--insts") {
            o.params.insts = parseNum(next());
        } else if (a == "--warmup") {
            o.params.warmup = parseNum(next());
        } else if (a == "--seed") {
            o.params.seed = parseNum(next());
        } else if (a == "--width") {
            o.params.width = static_cast<unsigned>(parseNum(next()));
            if (o.params.width != 4 && o.params.width != 8)
                usage(2);
        } else if (a == "--threads") {
            o.params.threads = static_cast<unsigned>(parseNum(next()));
            if (o.params.threads == 0)
                usage(2);
        } else if (a == "--jobs") {
            o.jobs = static_cast<unsigned>(parseNum(next()));
            if (o.jobs == 0 || o.jobs > 4096)
                usage(2);
        } else if (a == "--no-check") {
            o.check = false;
        } else if (a == "--check") {
            o.check = true;
        } else if (a == "--verbose" || a == "-v") {
            o.verbose = true;
        } else if (a == "--help" || a == "-h") {
            usage(0);
        } else {
            usage(2);
        }
    }
    (void)mode_set;
    return o;
}

/** One config's digest section from a finished run. */
check::Digest::Section
sectionFrom(const std::string &config, const sim::RunResult &r)
{
    check::Digest::Section s;
    s.config = config;
    auto &c = s.counters;
    c["cycles"] = r.cycles;
    c["main_retired"] = r.mainRetired;
    c["main_fetched"] = r.mainFetched;
    c["main_fetched_wrongpath"] = r.mainFetchedWrongPath;
    c["slice_fetched"] = r.sliceFetched;
    c["slice_retired"] = r.sliceRetired;
    c["cond_branches"] = r.condBranches;
    c["mispredictions"] = r.mispredictions;
    c["main_loads"] = r.loads;
    c["l1d_misses_main"] = r.l1dMissesMain;
    c["covered_misses"] = r.coveredMisses;
    c["slice_prefetches"] = r.slicePrefetches;
    c["forks"] = r.forks;
    c["forks_squashed"] = r.forksSquashed;
    c["forks_ignored"] = r.forksIgnored;
    c["predictions_generated"] = r.predictionsGenerated;
    c["correlator_used"] = r.correlatorUsed;
    c["correlator_wrong"] = r.correlatorWrong;
    c["late_predictions"] = r.latePredictions;
    c["late_reversals"] = r.lateReversals;
    // Every detail counter rides along (prefixed: several share names
    // with the top-level fields above), so any behavioural drift in
    // any subsystem shows up in the diff.
    for (const auto &[k, v] : r.detail.counters())
        c["detail." + k] = v.value();
    s.ratios["ipc"] = r.ipc();
    return s;
}

/** Run one workload in both configurations and digest the results. */
check::Digest
buildLiveDigest(const std::string &name, const RunParams &p, bool check)
{
    workloads::Params wp;
    wp.scale = (p.insts + p.warmup) * 2;
    wp.seed = p.seed;
    sim::Workload wl = workloads::buildWorkload(name, wp);

    sim::MachineConfig cfg = p.width == 8
                                 ? sim::MachineConfig::eightWide()
                                 : sim::MachineConfig::fourWide();
    cfg.numThreads = p.threads;
    sim::Simulator machine(cfg);

    sim::RunOptions opts;
    opts.maxMainInstructions = p.insts;
    opts.warmupInstructions = p.warmup;
    opts.check = check;  // divergence is fatal with a full report

    check::Digest d;
    d.workload = name;
    d.insts = p.insts;
    d.warmup = p.warmup;
    d.seed = p.seed;
    d.width = p.width;
    d.threads = p.threads;
    d.sections.push_back(
        sectionFrom("baseline", machine.runBaseline(wl, opts)));
    d.sections.push_back(
        sectionFrom("slices", machine.run(wl, opts, true)));
    return d;
}

std::filesystem::path
digestPath(const std::string &dir, const std::string &workload)
{
    return std::filesystem::path(dir) / (workload + ".digest");
}

struct Outcome
{
    std::string name;
    bool ok = false;
    std::vector<std::string> messages;
};

Outcome
verifyWorkload(const std::string &name, const Options &o)
{
    Outcome out;
    out.name = name;

    std::ifstream is(digestPath(o.dir, name));
    if (!is) {
        out.messages.push_back("missing digest file " +
                               digestPath(o.dir, name).string());
        return out;
    }
    std::string perr;
    auto golden = check::parseDigest(is, perr);
    if (!golden) {
        out.messages.push_back("malformed digest: " + perr);
        return out;
    }
    for (std::string &msg : check::lintDigest(*golden))
        out.messages.push_back("lint: " + std::move(msg));
    if (!out.messages.empty())
        return out;

    // The committed digest defines the regression run.
    RunParams p;
    p.insts = golden->insts;
    p.warmup = golden->warmup;
    p.seed = golden->seed;
    p.width = golden->width;
    p.threads = golden->threads;

    check::Digest live = buildLiveDigest(name, p, o.check);
    out.messages = check::diffDigests(*golden, live);
    out.ok = out.messages.empty();
    return out;
}

Outcome
generateWorkload(const std::string &name, const Options &o)
{
    Outcome out;
    out.name = name;
    check::Digest d = buildLiveDigest(name, o.params, o.check);
    for (std::string &msg : check::lintDigest(d)) {
        // A digest that fails its own lint must never reach golden/.
        out.messages.push_back("generated digest fails lint: " +
                               std::move(msg));
    }
    if (!out.messages.empty())
        return out;

    auto path = digestPath(o.dir, name);
    std::ofstream os(path);
    if (!os) {
        out.messages.push_back("cannot write " + path.string());
        return out;
    }
    os << check::formatDigest(d);
    out.ok = static_cast<bool>(os);
    if (!out.ok)
        out.messages.push_back("write failed: " + path.string());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parseArgs(argc, argv);

    const std::vector<std::string> &all = workloads::allWorkloadNames();
    std::vector<std::string> names =
        o.workloads.empty() ? all : o.workloads;
    for (const std::string &n : names) {
        if (std::find(all.begin(), all.end(), n) == all.end())
            SS_FATAL("unknown workload '", n, "'");
    }

    if (o.generate)
        std::filesystem::create_directories(o.dir);

    sim::JobPool pool(o.jobs);
    std::vector<Outcome> outcomes =
        pool.map(names, [&](const std::string &name) {
            return o.generate ? generateWorkload(name, o)
                              : verifyWorkload(name, o);
        });

    bool failed = false;
    for (const Outcome &out : outcomes) {
        if (out.ok) {
            if (o.verbose || o.generate)
                std::printf("%-8s %s\n", out.name.c_str(),
                            o.generate ? "digest written" : "ok");
            continue;
        }
        failed = true;
        std::printf("%-8s FAILED\n", out.name.c_str());
        for (const std::string &m : out.messages)
            std::printf("    %s\n", m.c_str());
    }

    // Coverage: a full verify also rejects stray digests so the
    // corpus cannot silently drift from the workload suite.
    if (!o.generate && o.workloads.empty()) {
        std::set<std::string> known(all.begin(), all.end());
        std::error_code ec;
        for (const auto &e :
             std::filesystem::directory_iterator(o.dir, ec)) {
            if (e.path().extension() != ".digest")
                continue;
            std::string stem = e.path().stem().string();
            if (!known.count(stem)) {
                failed = true;
                std::printf("stray digest for unknown workload: %s\n",
                            e.path().string().c_str());
            }
        }
        if (ec) {
            failed = true;
            std::printf("cannot scan %s: %s\n", o.dir.c_str(),
                        ec.message().c_str());
        }
    }

    std::printf("%s: %zu/%zu workloads %s (%s)\n",
                o.generate ? "generate" : "verify",
                static_cast<std::size_t>(
                    std::count_if(outcomes.begin(), outcomes.end(),
                                  [](const Outcome &x) { return x.ok; })),
                outcomes.size(), o.generate ? "written" : "match",
                o.check ? "retirement checker on"
                        : "retirement checker off");
    return failed ? 1 : 0;
}
