file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fork.dir/bench_ablation_fork.cc.o"
  "CMakeFiles/bench_ablation_fork.dir/bench_ablation_fork.cc.o.d"
  "bench_ablation_fork"
  "bench_ablation_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
