# Empty dependencies file for bench_ablation_fork.
# This may be replaced when dependencies are built.
