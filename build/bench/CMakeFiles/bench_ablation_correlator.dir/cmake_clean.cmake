file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_correlator.dir/bench_ablation_correlator.cc.o"
  "CMakeFiles/bench_ablation_correlator.dir/bench_ablation_correlator.cc.o.d"
  "bench_ablation_correlator"
  "bench_ablation_correlator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_correlator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
