# Empty compiler generated dependencies file for bench_ablation_correlator.
# This may be replaced when dependencies are built.
