
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2.cc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cc.o" "gcc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ss_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ss_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ss_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/slice/CMakeFiles/ss_slice.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ss_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/ss_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ss_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
