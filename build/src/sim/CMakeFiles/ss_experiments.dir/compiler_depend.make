# Empty compiler generated dependencies file for ss_experiments.
# This may be replaced when dependencies are built.
