file(REMOVE_RECURSE
  "libss_experiments.a"
)
