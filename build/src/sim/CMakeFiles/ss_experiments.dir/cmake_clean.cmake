file(REMOVE_RECURSE
  "CMakeFiles/ss_experiments.dir/experiments.cc.o"
  "CMakeFiles/ss_experiments.dir/experiments.cc.o.d"
  "libss_experiments.a"
  "libss_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
