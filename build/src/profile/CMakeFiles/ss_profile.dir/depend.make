# Empty dependencies file for ss_profile.
# This may be replaced when dependencies are built.
