file(REMOVE_RECURSE
  "CMakeFiles/ss_profile.dir/pde_profile.cc.o"
  "CMakeFiles/ss_profile.dir/pde_profile.cc.o.d"
  "libss_profile.a"
  "libss_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
