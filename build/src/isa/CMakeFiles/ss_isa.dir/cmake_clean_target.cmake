file(REMOVE_RECURSE
  "libss_isa.a"
)
