file(REMOVE_RECURSE
  "CMakeFiles/ss_isa.dir/assembler.cc.o"
  "CMakeFiles/ss_isa.dir/assembler.cc.o.d"
  "CMakeFiles/ss_isa.dir/encoding.cc.o"
  "CMakeFiles/ss_isa.dir/encoding.cc.o.d"
  "CMakeFiles/ss_isa.dir/instruction.cc.o"
  "CMakeFiles/ss_isa.dir/instruction.cc.o.d"
  "CMakeFiles/ss_isa.dir/opcodes.cc.o"
  "CMakeFiles/ss_isa.dir/opcodes.cc.o.d"
  "CMakeFiles/ss_isa.dir/program.cc.o"
  "CMakeFiles/ss_isa.dir/program.cc.o.d"
  "libss_isa.a"
  "libss_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
