# Empty compiler generated dependencies file for ss_isa.
# This may be replaced when dependencies are built.
