file(REMOVE_RECURSE
  "libss_arch.a"
)
