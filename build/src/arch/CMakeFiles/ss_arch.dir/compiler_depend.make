# Empty compiler generated dependencies file for ss_arch.
# This may be replaced when dependencies are built.
