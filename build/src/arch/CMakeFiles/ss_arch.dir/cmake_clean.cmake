file(REMOVE_RECURSE
  "CMakeFiles/ss_arch.dir/exec.cc.o"
  "CMakeFiles/ss_arch.dir/exec.cc.o.d"
  "CMakeFiles/ss_arch.dir/memimg.cc.o"
  "CMakeFiles/ss_arch.dir/memimg.cc.o.d"
  "CMakeFiles/ss_arch.dir/tracer.cc.o"
  "CMakeFiles/ss_arch.dir/tracer.cc.o.d"
  "libss_arch.a"
  "libss_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
