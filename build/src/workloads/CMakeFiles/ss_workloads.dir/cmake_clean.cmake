file(REMOVE_RECURSE
  "CMakeFiles/ss_workloads.dir/bzip2_sort.cc.o"
  "CMakeFiles/ss_workloads.dir/bzip2_sort.cc.o.d"
  "CMakeFiles/ss_workloads.dir/crafty_bits.cc.o"
  "CMakeFiles/ss_workloads.dir/crafty_bits.cc.o.d"
  "CMakeFiles/ss_workloads.dir/eon_poly.cc.o"
  "CMakeFiles/ss_workloads.dir/eon_poly.cc.o.d"
  "CMakeFiles/ss_workloads.dir/factory.cc.o"
  "CMakeFiles/ss_workloads.dir/factory.cc.o.d"
  "CMakeFiles/ss_workloads.dir/gap_bag.cc.o"
  "CMakeFiles/ss_workloads.dir/gap_bag.cc.o.d"
  "CMakeFiles/ss_workloads.dir/gcc_rtx.cc.o"
  "CMakeFiles/ss_workloads.dir/gcc_rtx.cc.o.d"
  "CMakeFiles/ss_workloads.dir/gzip_match.cc.o"
  "CMakeFiles/ss_workloads.dir/gzip_match.cc.o.d"
  "CMakeFiles/ss_workloads.dir/mcf_tree.cc.o"
  "CMakeFiles/ss_workloads.dir/mcf_tree.cc.o.d"
  "CMakeFiles/ss_workloads.dir/parser_hash.cc.o"
  "CMakeFiles/ss_workloads.dir/parser_hash.cc.o.d"
  "CMakeFiles/ss_workloads.dir/perl_hash.cc.o"
  "CMakeFiles/ss_workloads.dir/perl_hash.cc.o.d"
  "CMakeFiles/ss_workloads.dir/twolf_net.cc.o"
  "CMakeFiles/ss_workloads.dir/twolf_net.cc.o.d"
  "CMakeFiles/ss_workloads.dir/vortex_db.cc.o"
  "CMakeFiles/ss_workloads.dir/vortex_db.cc.o.d"
  "CMakeFiles/ss_workloads.dir/vpr_heap.cc.o"
  "CMakeFiles/ss_workloads.dir/vpr_heap.cc.o.d"
  "libss_workloads.a"
  "libss_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
