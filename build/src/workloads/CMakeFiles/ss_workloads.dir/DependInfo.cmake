
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bzip2_sort.cc" "src/workloads/CMakeFiles/ss_workloads.dir/bzip2_sort.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/bzip2_sort.cc.o.d"
  "/root/repo/src/workloads/crafty_bits.cc" "src/workloads/CMakeFiles/ss_workloads.dir/crafty_bits.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/crafty_bits.cc.o.d"
  "/root/repo/src/workloads/eon_poly.cc" "src/workloads/CMakeFiles/ss_workloads.dir/eon_poly.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/eon_poly.cc.o.d"
  "/root/repo/src/workloads/factory.cc" "src/workloads/CMakeFiles/ss_workloads.dir/factory.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/factory.cc.o.d"
  "/root/repo/src/workloads/gap_bag.cc" "src/workloads/CMakeFiles/ss_workloads.dir/gap_bag.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/gap_bag.cc.o.d"
  "/root/repo/src/workloads/gcc_rtx.cc" "src/workloads/CMakeFiles/ss_workloads.dir/gcc_rtx.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/gcc_rtx.cc.o.d"
  "/root/repo/src/workloads/gzip_match.cc" "src/workloads/CMakeFiles/ss_workloads.dir/gzip_match.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/gzip_match.cc.o.d"
  "/root/repo/src/workloads/mcf_tree.cc" "src/workloads/CMakeFiles/ss_workloads.dir/mcf_tree.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/mcf_tree.cc.o.d"
  "/root/repo/src/workloads/parser_hash.cc" "src/workloads/CMakeFiles/ss_workloads.dir/parser_hash.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/parser_hash.cc.o.d"
  "/root/repo/src/workloads/perl_hash.cc" "src/workloads/CMakeFiles/ss_workloads.dir/perl_hash.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/perl_hash.cc.o.d"
  "/root/repo/src/workloads/twolf_net.cc" "src/workloads/CMakeFiles/ss_workloads.dir/twolf_net.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/twolf_net.cc.o.d"
  "/root/repo/src/workloads/vortex_db.cc" "src/workloads/CMakeFiles/ss_workloads.dir/vortex_db.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/vortex_db.cc.o.d"
  "/root/repo/src/workloads/vpr_heap.cc" "src/workloads/CMakeFiles/ss_workloads.dir/vpr_heap.cc.o" "gcc" "src/workloads/CMakeFiles/ss_workloads.dir/vpr_heap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ss_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ss_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ss_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/ss_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/slice/CMakeFiles/ss_slice.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ss_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
