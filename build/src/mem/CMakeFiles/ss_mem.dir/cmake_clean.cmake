file(REMOVE_RECURSE
  "CMakeFiles/ss_mem.dir/cache.cc.o"
  "CMakeFiles/ss_mem.dir/cache.cc.o.d"
  "CMakeFiles/ss_mem.dir/hierarchy.cc.o"
  "CMakeFiles/ss_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/ss_mem.dir/stream_prefetcher.cc.o"
  "CMakeFiles/ss_mem.dir/stream_prefetcher.cc.o.d"
  "CMakeFiles/ss_mem.dir/victim_buffer.cc.o"
  "CMakeFiles/ss_mem.dir/victim_buffer.cc.o.d"
  "CMakeFiles/ss_mem.dir/write_buffer.cc.o"
  "CMakeFiles/ss_mem.dir/write_buffer.cc.o.d"
  "libss_mem.a"
  "libss_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
