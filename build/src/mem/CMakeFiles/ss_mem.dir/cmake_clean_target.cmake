file(REMOVE_RECURSE
  "libss_mem.a"
)
