# Empty compiler generated dependencies file for ss_mem.
# This may be replaced when dependencies are built.
