# Empty dependencies file for ss_branch.
# This may be replaced when dependencies are built.
