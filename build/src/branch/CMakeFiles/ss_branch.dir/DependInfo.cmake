
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/indirect.cc" "src/branch/CMakeFiles/ss_branch.dir/indirect.cc.o" "gcc" "src/branch/CMakeFiles/ss_branch.dir/indirect.cc.o.d"
  "/root/repo/src/branch/predictor_unit.cc" "src/branch/CMakeFiles/ss_branch.dir/predictor_unit.cc.o" "gcc" "src/branch/CMakeFiles/ss_branch.dir/predictor_unit.cc.o.d"
  "/root/repo/src/branch/yags.cc" "src/branch/CMakeFiles/ss_branch.dir/yags.cc.o" "gcc" "src/branch/CMakeFiles/ss_branch.dir/yags.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ss_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
