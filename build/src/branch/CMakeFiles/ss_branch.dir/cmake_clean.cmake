file(REMOVE_RECURSE
  "CMakeFiles/ss_branch.dir/indirect.cc.o"
  "CMakeFiles/ss_branch.dir/indirect.cc.o.d"
  "CMakeFiles/ss_branch.dir/predictor_unit.cc.o"
  "CMakeFiles/ss_branch.dir/predictor_unit.cc.o.d"
  "CMakeFiles/ss_branch.dir/yags.cc.o"
  "CMakeFiles/ss_branch.dir/yags.cc.o.d"
  "libss_branch.a"
  "libss_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
