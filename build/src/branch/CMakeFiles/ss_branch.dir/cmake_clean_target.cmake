file(REMOVE_RECURSE
  "libss_branch.a"
)
