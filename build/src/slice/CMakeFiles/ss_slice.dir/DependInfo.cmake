
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slice/correlator.cc" "src/slice/CMakeFiles/ss_slice.dir/correlator.cc.o" "gcc" "src/slice/CMakeFiles/ss_slice.dir/correlator.cc.o.d"
  "/root/repo/src/slice/slice_table.cc" "src/slice/CMakeFiles/ss_slice.dir/slice_table.cc.o" "gcc" "src/slice/CMakeFiles/ss_slice.dir/slice_table.cc.o.d"
  "/root/repo/src/slice/validator.cc" "src/slice/CMakeFiles/ss_slice.dir/validator.cc.o" "gcc" "src/slice/CMakeFiles/ss_slice.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ss_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
