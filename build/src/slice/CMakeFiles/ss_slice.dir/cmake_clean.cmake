file(REMOVE_RECURSE
  "CMakeFiles/ss_slice.dir/correlator.cc.o"
  "CMakeFiles/ss_slice.dir/correlator.cc.o.d"
  "CMakeFiles/ss_slice.dir/slice_table.cc.o"
  "CMakeFiles/ss_slice.dir/slice_table.cc.o.d"
  "CMakeFiles/ss_slice.dir/validator.cc.o"
  "CMakeFiles/ss_slice.dir/validator.cc.o.d"
  "libss_slice.a"
  "libss_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
