# Empty compiler generated dependencies file for ss_slice.
# This may be replaced when dependencies are built.
