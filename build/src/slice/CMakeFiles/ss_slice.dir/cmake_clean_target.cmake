file(REMOVE_RECURSE
  "libss_slice.a"
)
