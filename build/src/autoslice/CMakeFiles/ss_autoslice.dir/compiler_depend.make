# Empty compiler generated dependencies file for ss_autoslice.
# This may be replaced when dependencies are built.
