file(REMOVE_RECURSE
  "CMakeFiles/ss_autoslice.dir/analyzer.cc.o"
  "CMakeFiles/ss_autoslice.dir/analyzer.cc.o.d"
  "libss_autoslice.a"
  "libss_autoslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_autoslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
