file(REMOVE_RECURSE
  "libss_autoslice.a"
)
