
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autoslice/analyzer.cc" "src/autoslice/CMakeFiles/ss_autoslice.dir/analyzer.cc.o" "gcc" "src/autoslice/CMakeFiles/ss_autoslice.dir/analyzer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/ss_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ss_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
