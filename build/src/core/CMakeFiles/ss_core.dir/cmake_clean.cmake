file(REMOVE_RECURSE
  "CMakeFiles/ss_core.dir/fetch.cc.o"
  "CMakeFiles/ss_core.dir/fetch.cc.o.d"
  "CMakeFiles/ss_core.dir/smt_core.cc.o"
  "CMakeFiles/ss_core.dir/smt_core.cc.o.d"
  "libss_core.a"
  "libss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
