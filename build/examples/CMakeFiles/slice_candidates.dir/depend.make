# Empty dependencies file for slice_candidates.
# This may be replaced when dependencies are built.
