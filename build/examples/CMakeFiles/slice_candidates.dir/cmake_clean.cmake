file(REMOVE_RECURSE
  "CMakeFiles/slice_candidates.dir/slice_candidates.cpp.o"
  "CMakeFiles/slice_candidates.dir/slice_candidates.cpp.o.d"
  "slice_candidates"
  "slice_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
