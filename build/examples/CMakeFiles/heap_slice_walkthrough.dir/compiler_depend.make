# Empty compiler generated dependencies file for heap_slice_walkthrough.
# This may be replaced when dependencies are built.
