file(REMOVE_RECURSE
  "CMakeFiles/heap_slice_walkthrough.dir/heap_slice_walkthrough.cpp.o"
  "CMakeFiles/heap_slice_walkthrough.dir/heap_slice_walkthrough.cpp.o.d"
  "heap_slice_walkthrough"
  "heap_slice_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_slice_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
