file(REMOVE_RECURSE
  "CMakeFiles/specslice_run.dir/specslice_run.cc.o"
  "CMakeFiles/specslice_run.dir/specslice_run.cc.o.d"
  "specslice_run"
  "specslice_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specslice_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
