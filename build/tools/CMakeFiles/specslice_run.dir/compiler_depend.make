# Empty compiler generated dependencies file for specslice_run.
# This may be replaced when dependencies are built.
