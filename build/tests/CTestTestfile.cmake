# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_branch[1]_include.cmake")
include("/root/repo/build/tests/test_correlator[1]_include.cmake")
include("/root/repo/build/tests/test_validator[1]_include.cmake")
include("/root/repo/build/tests/test_core_basic[1]_include.cmake")
include("/root/repo/build/tests/test_vpr_workload[1]_include.cmake")
include("/root/repo/build/tests/test_core_slices[1]_include.cmake")
include("/root/repo/build/tests/test_perfect_and_profile[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_reversal_and_stress[1]_include.cmake")
include("/root/repo/build/tests/test_autoslice[1]_include.cmake")
include("/root/repo/build/tests/test_overhead_features[1]_include.cmake")
