file(REMOVE_RECURSE
  "CMakeFiles/test_overhead_features.dir/test_overhead_features.cc.o"
  "CMakeFiles/test_overhead_features.dir/test_overhead_features.cc.o.d"
  "test_overhead_features"
  "test_overhead_features.pdb"
  "test_overhead_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overhead_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
