# Empty compiler generated dependencies file for test_overhead_features.
# This may be replaced when dependencies are built.
