# Empty compiler generated dependencies file for test_core_basic.
# This may be replaced when dependencies are built.
