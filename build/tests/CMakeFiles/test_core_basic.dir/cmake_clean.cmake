file(REMOVE_RECURSE
  "CMakeFiles/test_core_basic.dir/test_core_basic.cc.o"
  "CMakeFiles/test_core_basic.dir/test_core_basic.cc.o.d"
  "test_core_basic"
  "test_core_basic.pdb"
  "test_core_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
