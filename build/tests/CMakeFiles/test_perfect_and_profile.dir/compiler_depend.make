# Empty compiler generated dependencies file for test_perfect_and_profile.
# This may be replaced when dependencies are built.
