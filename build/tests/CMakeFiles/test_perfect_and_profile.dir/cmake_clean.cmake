file(REMOVE_RECURSE
  "CMakeFiles/test_perfect_and_profile.dir/test_perfect_and_profile.cc.o"
  "CMakeFiles/test_perfect_and_profile.dir/test_perfect_and_profile.cc.o.d"
  "test_perfect_and_profile"
  "test_perfect_and_profile.pdb"
  "test_perfect_and_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfect_and_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
