file(REMOVE_RECURSE
  "CMakeFiles/test_autoslice.dir/test_autoslice.cc.o"
  "CMakeFiles/test_autoslice.dir/test_autoslice.cc.o.d"
  "test_autoslice"
  "test_autoslice.pdb"
  "test_autoslice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autoslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
