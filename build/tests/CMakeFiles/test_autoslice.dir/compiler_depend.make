# Empty compiler generated dependencies file for test_autoslice.
# This may be replaced when dependencies are built.
