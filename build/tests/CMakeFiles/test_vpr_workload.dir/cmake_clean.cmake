file(REMOVE_RECURSE
  "CMakeFiles/test_vpr_workload.dir/test_vpr_workload.cc.o"
  "CMakeFiles/test_vpr_workload.dir/test_vpr_workload.cc.o.d"
  "test_vpr_workload"
  "test_vpr_workload.pdb"
  "test_vpr_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vpr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
