# Empty dependencies file for test_vpr_workload.
# This may be replaced when dependencies are built.
