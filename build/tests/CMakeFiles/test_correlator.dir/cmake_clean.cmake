file(REMOVE_RECURSE
  "CMakeFiles/test_correlator.dir/test_correlator.cc.o"
  "CMakeFiles/test_correlator.dir/test_correlator.cc.o.d"
  "test_correlator"
  "test_correlator.pdb"
  "test_correlator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_correlator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
