# Empty dependencies file for test_correlator.
# This may be replaced when dependencies are built.
