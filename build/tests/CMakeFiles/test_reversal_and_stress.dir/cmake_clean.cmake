file(REMOVE_RECURSE
  "CMakeFiles/test_reversal_and_stress.dir/test_reversal_and_stress.cc.o"
  "CMakeFiles/test_reversal_and_stress.dir/test_reversal_and_stress.cc.o.d"
  "test_reversal_and_stress"
  "test_reversal_and_stress.pdb"
  "test_reversal_and_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reversal_and_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
