# Empty compiler generated dependencies file for test_reversal_and_stress.
# This may be replaced when dependencies are built.
