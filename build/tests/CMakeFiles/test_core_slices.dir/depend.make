# Empty dependencies file for test_core_slices.
# This may be replaced when dependencies are built.
