file(REMOVE_RECURSE
  "CMakeFiles/test_core_slices.dir/test_core_slices.cc.o"
  "CMakeFiles/test_core_slices.dir/test_core_slices.cc.o.d"
  "test_core_slices"
  "test_core_slices.pdb"
  "test_core_slices[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
