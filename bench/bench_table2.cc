/**
 * @file
 * Table 2: coverage of performance degrading events by problem
 * instructions. For each benchmark, a profiling run on the baseline
 * 4-wide machine attributes L1 misses and branch mispredictions to
 * static instructions; the Section 2.2 classifier then marks problem
 * instructions (>=10 % PDE rate, non-trivial count) and this harness
 * prints how few static instructions cover how many PDEs.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/experiments.hh"

using namespace specslice;

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    sim::ExperimentConfig cfg = bench::experimentConfig();
    auto cache = bench::openCacheOption(argc, argv);
    cfg.cache = cache.get();
    sim::JobPool pool(bench::jobsOption(argc, argv));
    std::printf("Table 2: coverage of performance degrading events by "
                "problem instructions\n");
    std::printf("(baseline 4-wide machine, %llu measured instructions "
                "per benchmark)\n\n",
                static_cast<unsigned long long>(cfg.measureInsts));

    sim::Table table({"Program", "#SI(mem)", "mem", "mis", "#SI(br)",
                      "br", "mis"});

    auto rows = pool.map(
        bench::benchWorkloadNames(), [&](const std::string &name) {
            return sim::runTable2Row(sim::MachineConfig::fourWide(),
                                     name, cfg);
        });
    for (const sim::Table2Row &row : rows) {
        const auto &p = row.problem;
        table.addRow({
            row.program,
            row.insufficientMisses
                ? "-"
                : sim::Table::count(p.problemLoads.size()),
            row.insufficientMisses ? "insuff."
                                   : sim::Table::pct(p.memOpFraction()),
            row.insufficientMisses ? "misses"
                                   : sim::Table::pct(p.missCoverage()),
            sim::Table::count(p.problemBranches.size()),
            sim::Table::pct(p.branchFraction()),
            sim::Table::pct(p.mispredCoverage()),
        });
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Columns as in the paper: #SI = static instructions "
                "marked as problem\ninstructions; mem/br = fraction of "
                "dynamic memory ops / branches they are;\nmis = fraction "
                "of all L1 misses / mispredictions they cover.\n");
    std::printf("Expected shape: a handful of static instructions cover "
                "most PDEs.\n");
    return 0;
}
