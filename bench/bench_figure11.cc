/**
 * @file
 * Figure 11: speedup of slice-assisted execution and of the
 * constrained limit study (magically perfecting exactly the problem
 * instructions the slices cover), both relative to the baseline 4-wide
 * machine. The paper's shape: speedups between ~1 % and 43 % with the
 * slice case on the order of half the limit case; gcc, parser and
 * vortex show no significant speedup (Section 6.2), and crafty sees
 * none (footnote 3).
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/experiments.hh"

using namespace specslice;

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    sim::ExperimentConfig cfg = bench::experimentConfig();
    auto cache = bench::openCacheOption(argc, argv);
    cfg.cache = cache.get();
    sim::JobPool pool(bench::jobsOption(argc, argv));
    std::printf("Figure 11: speedup of slices and of the constrained "
                "limit study (4-wide)\n\n");

    sim::Table table({"Program", "base IPC", "slice IPC", "slice %",
                      "limit %"});

    auto rows = pool.map(
        bench::benchWorkloadNames(), [&](const std::string &name) {
            return sim::runFigure11Row(sim::MachineConfig::fourWide(),
                                       name, cfg);
        });
    for (const sim::Figure11Row &row : rows) {
        table.addRow({
            row.program,
            sim::Table::fmt(row.base.ipc()),
            sim::Table::fmt(row.sliced.ipc()),
            sim::Table::fmt(row.slicePct(), 1),
            sim::Table::fmt(row.limitPct(), 1),
        });
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: speedups up to tens of percent, slice "
                "on the order of half\nthe limit; ~0%% for gcc/parser/"
                "vortex (slice-construction failures) and crafty.\n");
    return 0;
}
