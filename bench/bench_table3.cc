/**
 * @file
 * Table 3: characterization of the hand-constructed slices. Static
 * size (instructions in the loop in parentheses), live-in register
 * count, prefetching loads, predictions generated, kill PCs used for
 * correlation, and the profile-derived maximum iteration count.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace specslice;

namespace
{

std::string
inLoop(unsigned total, unsigned in_loop)
{
    std::string s = std::to_string(total);
    if (in_loop)
        s += " (" + std::to_string(in_loop) + ")";
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    sim::JobPool pool(bench::jobsOption(argc, argv));
    std::printf("Table 3: characterization of the speculative slices\n");
    std::printf("(static size, live-ins, prefetches, predictions, kills; "
                "loop contents in parens)\n\n");

    sim::Table table({"Prog.", "slice", "static", "live-ins", "pref",
                      "pred", "kills", "max iter"});

    // Workload construction (not simulation) dominates here; each
    // benchmark builds in its own job and returns its rendered rows.
    auto row_groups = pool.map(
        bench::benchWorkloadNames(), [&](const std::string &name) {
            std::vector<std::vector<std::string>> rows;
            auto wl =
                workloads::buildWorkload(name, bench::benchParams());
            if (wl.slices.empty()) {
                rows.push_back({name, "(none: Sec. 6.2)", "-", "-", "-",
                                "-", "-", "-"});
                return rows;
            }
            for (const auto &sd : wl.slices) {
                bool has_loop = sd.maxLoopIters > 0;
                unsigned pref = static_cast<unsigned>(
                    sd.prefetchLoadPcs.size());
                unsigned pred = static_cast<unsigned>(sd.pgis.size());
                rows.push_back({
                    name,
                    sd.name,
                    inLoop(sd.staticSize, sd.staticSizeInLoop),
                    sim::Table::count(sd.liveIns.size()),
                    has_loop ? inLoop(pref, pref)
                             : sim::Table::count(pref),
                    has_loop ? inLoop(pred, pred)
                             : sim::Table::count(pred),
                    sim::Table::count(sd.killCount()),
                    has_loop ? sim::Table::count(sd.maxLoopIters)
                             : "-",
                });
            }
            return rows;
        });
    for (const auto &rows : row_groups) {
        for (const auto &row : rows)
            table.addRow(row);
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape (paper): slices of ~4-31 static "
                "instructions, <=4 live-ins,\na prediction or prefetch "
                "every 2-4 slice instructions, 1-3 kills.\n");
    return 0;
}
