/**
 * @file
 * Ablation: slice execution resources. Section 6.1 notes that most
 * programs benefit from more than one idle thread context ("often
 * there is one long-running background slice and a number of periodic,
 * localized slices") and that the opportunity cost of slice execution
 * depends on how hard slices compete with the main thread for fetch
 * slots. This harness sweeps the number of SMT contexts and the
 * ICOUNT main-thread bias.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace specslice;
using bench::benchOpts;
using bench::benchParams;
using sim::speedupPct;

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    sim::JobPool pool(bench::jobsOption(argc, argv));
    std::printf("Ablation: helper-thread contexts and ICOUNT bias "
                "(speedup over baseline, %%)\n\n");

    const std::vector<std::string> benches = {"vpr", "gzip", "twolf",
                                              "mcf"};

    {
        sim::Table table({"Program", "2 threads", "3 threads",
                          "4 threads", "ignored@2", "ignored@4"});
        auto rows = pool.map(benches, [&](const std::string &name) {
            auto wl = workloads::buildWorkload(name, benchParams());
            sim::Simulator base_sim(sim::MachineConfig::fourWide());
            auto base = base_sim.runBaseline(wl, benchOpts());

            double spd[3];
            std::uint64_t ignored2 = 0, ignored4 = 0;
            unsigned threads[3] = {2, 3, 4};
            for (int i = 0; i < 3; ++i) {
                sim::MachineConfig cfg = sim::MachineConfig::fourWide();
                cfg.numThreads = threads[i];
                sim::Simulator simr(cfg);
                auto res = simr.run(wl, benchOpts(), true);
                spd[i] = speedupPct(base, res);
                if (threads[i] == 2)
                    ignored2 = res.forksIgnored;
                if (threads[i] == 4)
                    ignored4 = res.forksIgnored;
            }
            return std::vector<std::string>{
                name, sim::Table::fmt(spd[0], 1),
                sim::Table::fmt(spd[1], 1), sim::Table::fmt(spd[2], 1),
                sim::Table::count(ignored2),
                sim::Table::count(ignored4)};
        });
        for (const auto &row : rows)
            table.addRow(row);
        std::printf("Idle helper contexts (1 / 2 / 3 helpers):\n%s\n",
                    table.render().c_str());
    }

    {
        sim::Table table({"Program", "bias 0", "bias 8", "bias 16",
                          "bias 48"});
        auto rows = pool.map(benches, [&](const std::string &name) {
            auto wl = workloads::buildWorkload(name, benchParams());
            sim::Simulator base_sim(sim::MachineConfig::fourWide());
            auto base = base_sim.runBaseline(wl, benchOpts());

            int biases[4] = {0, 8, 16, 48};
            std::vector<std::string> row = {name};
            for (int b : biases) {
                sim::MachineConfig cfg = sim::MachineConfig::fourWide();
                cfg.mainThreadFetchBias = b;
                sim::Simulator simr(cfg);
                auto res = simr.run(wl, benchOpts(), true);
                row.push_back(sim::Table::fmt(speedupPct(base, res), 1));
            }
            return row;
        });
        for (const auto &row : rows)
            table.addRow(row);
        std::printf("ICOUNT main-thread fetch bias:\n%s\n",
                    table.render().c_str());
    }

    std::printf("Expected shape: a single helper context loses forks "
                "(ignored rises); the\nbias trades slice timeliness "
                "against main-thread fetch bandwidth.\n");
    return 0;
}
