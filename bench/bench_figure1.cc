/**
 * @file
 * Figure 1: performance impact of problem instructions. For each
 * benchmark and both machine widths, prints the baseline IPC, the IPC
 * with the problem instructions "magically" perfected (per-static-
 * instruction perfect cache and branch prediction), and the IPC with
 * everything perfect. The reproduction target is the paper's shape:
 * perfecting the problem instructions recovers much of the gap to the
 * all-perfect machine, and the 8-wide machine gains more.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/experiments.hh"

using namespace specslice;

int
main()
{
    sim::ExperimentConfig cfg = bench::experimentConfig();
    std::printf("Figure 1: IPC of baseline vs problem-instructions-"
                "perfect vs all-perfect\n");
    std::printf("Machine parameters per Table 1 (4-wide: 128-entry "
                "window, 2 mem ports;\n8-wide: 256-entry window, 4 mem "
                "ports; 14-stage pipeline; 64KB L1s, 2MB L2).\n\n");

    sim::Table table({"Program", "W", "baseline", "prob.perfect",
                      "all perfect"});

    for (const std::string &name : workloads::allWorkloadNames()) {
        auto r4 = sim::runFigure1Row(sim::MachineConfig::fourWide(),
                                     name, cfg);
        auto r8 = sim::runFigure1Row(sim::MachineConfig::eightWide(),
                                     name, cfg);
        table.addRow({name, "4", sim::Table::fmt(r4.baselineIpc),
                      sim::Table::fmt(r4.problemPerfectIpc),
                      sim::Table::fmt(r4.allPerfectIpc)});
        table.addRow({"", "8", sim::Table::fmt(r8.baselineIpc),
                      sim::Table::fmt(r8.problemPerfectIpc),
                      sim::Table::fmt(r8.allPerfectIpc)});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: problem-instruction-perfect recovers "
                "much of the baseline\nvs all-perfect gap; 8-wide "
                "benefits more than 4-wide.\n");
    return 0;
}
