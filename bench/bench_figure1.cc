/**
 * @file
 * Figure 1: performance impact of problem instructions. For each
 * benchmark and both machine widths, prints the baseline IPC, the IPC
 * with the problem instructions "magically" perfected (per-static-
 * instruction perfect cache and branch prediction), and the IPC with
 * everything perfect. The reproduction target is the paper's shape:
 * perfecting the problem instructions recovers much of the gap to the
 * all-perfect machine, and the 8-wide machine gains more.
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/experiments.hh"

using namespace specslice;

namespace
{

/** One (benchmark, machine width) cell of the figure. */
struct Config
{
    std::string name;
    bool wide = false;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    sim::ExperimentConfig cfg = bench::experimentConfig();
    auto cache = bench::openCacheOption(argc, argv);
    cfg.cache = cache.get();
    sim::JobPool pool(bench::jobsOption(argc, argv));
    std::printf("Figure 1: IPC of baseline vs problem-instructions-"
                "perfect vs all-perfect\n");
    std::printf("Machine parameters per Table 1 (4-wide: 128-entry "
                "window, 2 mem ports;\n8-wide: 256-entry window, 4 mem "
                "ports; 14-stage pipeline; 64KB L1s, 2MB L2).\n\n");

    sim::Table table({"Program", "W", "baseline", "prob.perfect",
                      "all perfect"});

    // The two widths of one benchmark are independent runs, so each
    // gets its own job; results come back in submission order, which
    // keeps the 4/8 row pairing.
    std::vector<Config> configs;
    for (const std::string &name : bench::benchWorkloadNames()) {
        configs.push_back({name, false});
        configs.push_back({name, true});
    }
    auto rows = pool.map(configs, [&](const Config &c) {
        return sim::runFigure1Row(c.wide
                                      ? sim::MachineConfig::eightWide()
                                      : sim::MachineConfig::fourWide(),
                                  c.name, cfg);
    });
    for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
        const sim::Figure1Row &r4 = rows[i];
        const sim::Figure1Row &r8 = rows[i + 1];
        table.addRow({r4.program, "4", sim::Table::fmt(r4.baselineIpc),
                      sim::Table::fmt(r4.problemPerfectIpc),
                      sim::Table::fmt(r4.allPerfectIpc)});
        table.addRow({"", "8", sim::Table::fmt(r8.baselineIpc),
                      sim::Table::fmt(r8.problemPerfectIpc),
                      sim::Table::fmt(r8.allPerfectIpc)});
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: problem-instruction-perfect recovers "
                "much of the baseline\nvs all-perfect gap; 8-wide "
                "benefits more than 4-wide.\n");
    return 0;
}
