/**
 * @file
 * Shared plumbing for the experiment harnesses: run-length defaults
 * (overridable via SS_BENCH_INSTS / SS_BENCH_WARMUP for quick or long
 * runs), standard run helpers, speedup math, and the machine-readable
 * result emitter (BENCH_<name>.json) used to track simulator
 * performance across changes.
 *
 * Each bench binary regenerates one table or figure of the paper; the
 * absolute numbers depend on this simulator rather than the authors'
 * testbed, but the shapes (who wins, roughly by how much, where the
 * failures are) are the reproduction targets recorded in
 * EXPERIMENTS.md.
 */

#ifndef SPECSLICE_BENCH_COMMON_HH
#define SPECSLICE_BENCH_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/jsonio.hh"
#include "sim/result_cache.hh"
#include "obs/interval.hh"
#include "obs/trace.hh"
#include "profile/pde_profile.hh"
#include "sim/experiments.hh"
#include "sim/job_pool.hh"
#include "sim/result_json.hh"
#include "sim/simulator.hh"
#include "sim/table.hh"
#include "workloads/workloads.hh"

namespace specslice::bench
{

/**
 * Version of the machine-readable result documents (BENCH_*.json and
 * specslice_run --json). Bump when fields change meaning or move:
 *   1 — flat per-workload records (implicit, pre-versioning)
 *   2 — schema_version field, optional per-run "intervals" array
 *   3 — per-run "outcome" field (completed/cycle_limit/watchdog/
 *       checker_divergence/fault), optional "faults_injected"/
 *       "fault_summary" fields, top-level "error" document on a
 *       failed specslice_run (additive)
 *   4 — optional per-run "fast_forwarded"/"sampled_regions" fields on
 *       sampled runs (additive; absent means a full run)
 *   5 — wall-clock fields ("wall_seconds"/"sim_insts_per_sec") become
 *       omittable (--no-wall, sweep-service documents); optional
 *       "cached" marker on served results (additive)
 *   6 — trace-driven runs: job specs accept "trace_file" (serve
 *       requests, specslice_run --trace-file) and specslice_replay
 *       emits per-trace replay documents/BENCH_replay.json stamped
 *       with this version
 *
 * The constant itself lives in sim/result_json.hh so the sweep
 * service stamps the same version.
 */
constexpr std::uint64_t benchSchemaVersion = sim::resultSchemaVersion;

/**
 * Arm debug tracing for a bench/driver binary: SS_TRACE from the
 * environment plus any `--trace FLAGS` / `--trace=FLAGS` argument.
 * Call once at the top of main(); an unknown flag name is a usage
 * error (exit 2) listing the valid names.
 */
inline void
initObservability(int argc, char **argv)
{
    obs::TraceSink::instance().initFromEnv();
    auto arm = [](const char *csv) {
        std::string err;
        if (!obs::TraceSink::instance().trySetFlags(csv, err)) {
            std::fprintf(stderr, "error: %s\n", err.c_str());
            std::exit(2);
        }
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--trace") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "error: --trace requires a flag list\n");
                std::exit(2);
            }
            arm(argv[i + 1]);
        } else if (std::strncmp(a, "--trace=", 8) == 0) {
            arm(a + 8);
        }
    }
}

/**
 * Read an unsigned integer from the environment, falling back to dflt
 * when the variable is unset. Malformed values (empty, negative,
 * trailing garbage, overflow) abort with a clear message instead of
 * being silently truncated to something surprising.
 */
inline std::uint64_t
envOr(const char *name, std::uint64_t dflt)
{
    const char *v = std::getenv(name);
    if (!v)
        return dflt;
    char *end = nullptr;
    errno = 0;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    bool negative = v[0] == '-';
    bool empty = *v == '\0';
    bool trailing = end == nullptr || *end != '\0';
    if (empty || negative || trailing || errno == ERANGE) {
        std::fprintf(stderr,
                     "error: %s='%s' is not a valid non-negative "
                     "integer\n",
                     name, v);
        std::exit(2);
    }
    return parsed;
}

/** Measured instructions per run (paper: 100 M; scaled down here). */
inline std::uint64_t
benchInsts()
{
    return envOr("SS_BENCH_INSTS", 300'000);
}

/** Cache/predictor warm-up instructions before measurement. */
inline std::uint64_t
benchWarmup()
{
    return envOr("SS_BENCH_WARMUP", 100'000);
}

inline sim::ExperimentConfig
experimentConfig()
{
    sim::ExperimentConfig cfg;
    cfg.measureInsts = benchInsts();
    cfg.warmupInsts = benchWarmup();
    cfg.seed = envOr("SS_BENCH_SEED", 1);
    return cfg;
}

inline workloads::Params
benchParams()
{
    workloads::Params p;
    p.scale = (benchInsts() + benchWarmup()) * 2;
    p.seed = envOr("SS_BENCH_SEED", 1);
    return p;
}

inline sim::RunOptions
benchOpts(bool profile = false)
{
    sim::RunOptions o;
    o.maxMainInstructions = benchInsts();
    o.warmupInstructions = benchWarmup();
    o.profile = profile;
    return o;
}

/**
 * Parse a `--jobs N` option out of argv (any position). Returns the
 * parsed count, or 0 (meaning "pool default": SS_JOBS or the hardware
 * concurrency) when the flag is absent. Bad values abort with a usage
 * message rather than silently running serial.
 */
inline unsigned
jobsOption(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") != 0)
            continue;
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: --jobs requires a count\n");
            std::exit(2);
        }
        const char *v = argv[i + 1];
        char *end = nullptr;
        errno = 0;
        unsigned long parsed = std::strtoul(v, &end, 10);
        if (*v == '\0' || v[0] == '-' || !end || *end != '\0' ||
            errno == ERANGE || parsed == 0 || parsed > 4096) {
            std::fprintf(stderr,
                         "error: --jobs %s is not a job count in "
                         "[1, 4096]\n",
                         v);
            std::exit(2);
        }
        return static_cast<unsigned>(parsed);
    }
    return 0;
}

/**
 * Parse a `--cache DIR` / `--cache=DIR` option (any position), falling
 * back to the SS_CACHE_DIR environment variable. Returns the opened
 * content-addressed result store, or nullptr when neither source names
 * a directory. Point it at the sweep service's store (.sscache by
 * convention) and a bench rerun serves every unchanged cell from disk.
 */
inline std::unique_ptr<sim::ResultCache>
openCacheOption(int argc, char **argv)
{
    std::string dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cache") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "error: --cache requires a directory\n");
                std::exit(2);
            }
            dir = argv[i + 1];
        } else if (std::strncmp(argv[i], "--cache=", 8) == 0) {
            dir = argv[i] + 8;
        }
    }
    if (dir.empty())
        if (const char *env = std::getenv("SS_CACHE_DIR"))
            dir = env;
    if (dir.empty())
        return nullptr;
    return std::make_unique<sim::ResultCache>(dir);
}

/**
 * The workload list a bench binary sweeps: every registered workload,
 * or the comma-separated subset named by SS_BENCH_WORKLOADS (used by
 * the sanitizer smoke test to keep instrumented runs short). Unknown
 * names abort rather than silently shrinking the sweep.
 */
inline std::vector<std::string>
benchWorkloadNames()
{
    const std::vector<std::string> &all =
        workloads::allWorkloadNames();
    const char *filter = std::getenv("SS_BENCH_WORKLOADS");
    if (!filter || *filter == '\0')
        return all;

    std::vector<std::string> picked;
    std::stringstream ss(filter);
    std::string name;
    while (std::getline(ss, name, ',')) {
        if (name.empty())
            continue;
        if (std::find(all.begin(), all.end(), name) == all.end()) {
            std::fprintf(stderr,
                         "error: SS_BENCH_WORKLOADS names unknown "
                         "workload '%s'\n",
                         name.c_str());
            std::exit(2);
        }
        picked.push_back(name);
    }
    if (picked.empty()) {
        std::fprintf(stderr,
                     "error: SS_BENCH_WORKLOADS='%s' selects no "
                     "workloads\n",
                     filter);
        std::exit(2);
    }
    return picked;
}

/** Limit-study options: perfect the PCs the workload's slices cover. */
inline sim::RunOptions
limitOpts(const sim::Workload &wl)
{
    sim::RunOptions o = benchOpts();
    for (Addr pc : wl.coveredBranchPcs())
        o.perfect.branchPcs.insert(pc);
    for (Addr pc : wl.coveredLoadPcs())
        o.perfect.loadPcs.insert(pc);
    return o;
}

// ---------------------------------------------------------------
// Machine-readable output (BENCH_<name>.json, specslice_run --json)
// ---------------------------------------------------------------
//
// The JSON builders and the per-workload record moved to
// common/jsonio.hh and sim/result_json.hh so the sweep service and the
// result cache emit byte-identical documents; re-exported here so the
// bench binaries compile unchanged.

using json::JsonObject;
using json::jsonArray;
using json::jsonEscape;
using sim::WorkloadPerf;
using sim::perfRecord;

/**
 * Write BENCH_<bench_name>.json into the current directory: the
 * per-workload records plus an aggregate simulated-instructions/sec
 * figure. This is the artifact perf claims are checked against —
 * every PR that touches the hot path regenerates it and compares.
 *
 * @param sweep_wall_seconds end-to-end wall clock for the whole sweep
 *        (includes any parallel overlap, so with --jobs N it can be
 *        well below the sum of per-run wall_seconds). <= 0 omits the
 *        field.
 * @return the path written.
 */
inline std::string
writeBenchJson(const std::string &bench_name,
               const std::vector<WorkloadPerf> &rows,
               double sweep_wall_seconds = 0.0)
{
    std::vector<std::string> elems;
    std::uint64_t total_insts = 0;
    double total_wall = 0.0;
    for (const WorkloadPerf &p : rows) {
        elems.push_back(perfRecord(p).str());
        total_insts += p.result.mainRetired;
        total_wall += p.wallSeconds;
    }

    JsonObject aggregate;
    aggregate.field("main_retired", total_insts)
        .field("wall_seconds", total_wall)
        .field("sim_insts_per_sec",
               total_wall > 0.0
                   ? static_cast<double>(total_insts) / total_wall
                   : 0.0);
    if (sweep_wall_seconds > 0.0) {
        aggregate.field("sweep_wall_seconds", sweep_wall_seconds)
            .field("sweep_insts_per_sec",
                   static_cast<double>(total_insts) /
                       sweep_wall_seconds);
    }

    JsonObject doc;
    doc.field("schema_version", benchSchemaVersion)
        .field("bench", bench_name)
        .field("insts", benchInsts())
        .field("warmup", benchWarmup())
        .raw("workloads", jsonArray(elems))
        .raw("aggregate", aggregate.str());

    std::string path = "BENCH_" + bench_name + ".json";
    std::ofstream os(path);
    os << doc.str() << "\n";
    return path;
}

} // namespace specslice::bench

#endif // SPECSLICE_BENCH_COMMON_HH
