/**
 * @file
 * Shared plumbing for the experiment harnesses: run-length defaults
 * (overridable via SS_BENCH_INSTS / SS_BENCH_WARMUP for quick or long
 * runs), standard run helpers, and speedup math.
 *
 * Each bench binary regenerates one table or figure of the paper; the
 * absolute numbers depend on this simulator rather than the authors'
 * testbed, but the shapes (who wins, roughly by how much, where the
 * failures are) are the reproduction targets recorded in
 * EXPERIMENTS.md.
 */

#ifndef SPECSLICE_BENCH_COMMON_HH
#define SPECSLICE_BENCH_COMMON_HH

#include <cstdint>
#include <cstdlib>
#include <string>

#include "profile/pde_profile.hh"
#include "sim/experiments.hh"
#include "sim/simulator.hh"
#include "sim/table.hh"
#include "workloads/workloads.hh"

namespace specslice::bench
{

inline std::uint64_t
envOr(const char *name, std::uint64_t dflt)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : dflt;
}

/** Measured instructions per run (paper: 100 M; scaled down here). */
inline std::uint64_t
benchInsts()
{
    return envOr("SS_BENCH_INSTS", 300'000);
}

/** Cache/predictor warm-up instructions before measurement. */
inline std::uint64_t
benchWarmup()
{
    return envOr("SS_BENCH_WARMUP", 100'000);
}

inline sim::ExperimentConfig
experimentConfig()
{
    sim::ExperimentConfig cfg;
    cfg.measureInsts = benchInsts();
    cfg.warmupInsts = benchWarmup();
    cfg.seed = envOr("SS_BENCH_SEED", 1);
    return cfg;
}

inline workloads::Params
benchParams()
{
    workloads::Params p;
    p.scale = (benchInsts() + benchWarmup()) * 2;
    p.seed = envOr("SS_BENCH_SEED", 1);
    return p;
}

inline sim::RunOptions
benchOpts(bool profile = false)
{
    sim::RunOptions o;
    o.maxMainInstructions = benchInsts();
    o.warmupInstructions = benchWarmup();
    o.profile = profile;
    return o;
}

/** Limit-study options: perfect the PCs the workload's slices cover. */
inline sim::RunOptions
limitOpts(const sim::Workload &wl)
{
    sim::RunOptions o = benchOpts();
    for (Addr pc : wl.coveredBranchPcs())
        o.perfect.branchPcs.insert(pc);
    for (Addr pc : wl.coveredLoadPcs())
        o.perfect.loadPcs.insert(pc);
    return o;
}

inline double
speedupPct(const sim::RunResult &base, const sim::RunResult &other)
{
    if (other.cycles == 0)
        return 0.0;
    return 100.0 * (static_cast<double>(base.cycles) /
                        static_cast<double>(other.cycles) -
                    1.0);
}

} // namespace specslice::bench

#endif // SPECSLICE_BENCH_COMMON_HH
