/**
 * @file
 * Ablation: how much each prediction-correlation mechanism matters.
 * Compares, on the prediction-heavy workloads:
 *   - full correlator (kills + late predictions + dead-slice stop),
 *   - without dead-slice termination (slices always run to their
 *     iteration limit: Section 6.3's overhead discussion),
 *   - with a crippled branch queue (1 prediction slot per branch:
 *     approximates a correlator without per-iteration buffering),
 * plus the correlator accuracy in each mode.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace specslice;
using bench::benchOpts;
using bench::benchParams;
using sim::speedupPct;

namespace
{

struct Mode
{
    const char *name;
    bool terminateDead;
    unsigned predsPerBranch;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    sim::JobPool pool(bench::jobsOption(argc, argv));
    std::printf("Ablation: prediction correlator mechanisms "
                "(speedup over no-slice baseline, %%)\n\n");

    const Mode modes[] = {
        {"full", true, 8},
        {"no-dead-stop", false, 8},
        {"1-slot-queue", true, 1},
    };

    const std::vector<std::string> benches = {"vpr", "twolf", "gzip",
                                              "eon", "gap"};

    sim::Table table({"Program", "full", "no-dead-stop", "1-slot",
                      "wrong(full)", "wrong(1-slot)"});

    auto rows = pool.map(benches, [&](const std::string &name) {
        auto wl = workloads::buildWorkload(name, benchParams());

        sim::Simulator base_sim(sim::MachineConfig::fourWide());
        auto base = base_sim.runBaseline(wl, benchOpts());

        double spd[3] = {0, 0, 0};
        std::uint64_t wrong_full = 0, wrong_one = 0;
        for (int m = 0; m < 3; ++m) {
            sim::MachineConfig cfg = sim::MachineConfig::fourWide();
            cfg.terminateDeadSlices = modes[m].terminateDead;
            cfg.correlator.predsPerBranch = modes[m].predsPerBranch;
            sim::Simulator simr(cfg);
            auto res = simr.run(wl, benchOpts(), true);
            spd[m] = speedupPct(base, res);
            if (m == 0)
                wrong_full = res.correlatorWrong;
            if (m == 2)
                wrong_one = res.correlatorWrong;
        }

        return std::vector<std::string>{
            name, sim::Table::fmt(spd[0], 1),
            sim::Table::fmt(spd[1], 1), sim::Table::fmt(spd[2], 1),
            sim::Table::count(wrong_full),
            sim::Table::count(wrong_one)};
    });
    for (const auto &row : rows)
        table.addRow(row);

    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: the full configuration wins; removing "
                "dead-slice termination\ncosts fetch overhead; a 1-slot "
                "queue loses loop predictions.\n");
    return 0;
}
