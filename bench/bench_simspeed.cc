/**
 * @file
 * Simulator-throughput benchmark: how many simulated instructions per
 * second the timing model sustains. Not a paper figure — it sizes
 * experiment budgets and guards the hot path against regressions.
 *
 * Default mode sweeps every workload once (run lengths from
 * SS_BENCH_INSTS / SS_BENCH_WARMUP), prints a throughput table and
 * writes BENCH_simspeed.json — the artifact the `bench_smoke` ctest
 * target produces and perf claims are checked against.
 *
 * `bench_simspeed --gbench [google-benchmark args...]` instead runs
 * the original google-benchmark microbenchmarks (steady-state timing
 * of a few representative configurations).
 *
 * `--jobs N` parallelizes the sweep; the aggregate gains a
 * sweep_wall_seconds field measuring the whole batch end to end. Use
 * `--jobs 1` when the per-run insts/s numbers themselves are the
 * measurement (parallel runs time-share cores).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

// ---------------------------------------------------------------
// google-benchmark microbenchmarks (--gbench)
// ---------------------------------------------------------------

void
runWorkload(benchmark::State &state, const std::string &name,
            bool with_slices)
{
    workloads::Params p;
    p.scale = 120'000;
    auto wl = workloads::buildWorkload(name, p);
    sim::Simulator simr(sim::MachineConfig::fourWide());

    sim::RunOptions opts;
    opts.maxMainInstructions = 50'000;

    std::uint64_t insts = 0;
    for (auto _ : state) {
        auto res = simr.run(wl, opts, with_slices);
        insts += res.mainRetired;
        benchmark::DoNotOptimize(res.cycles);
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_BaselineVpr(benchmark::State &state)
{
    runWorkload(state, "vpr", false);
}

void
BM_SlicedVpr(benchmark::State &state)
{
    runWorkload(state, "vpr", true);
}

void
BM_BaselineMcf(benchmark::State &state)
{
    runWorkload(state, "mcf", false);
}

void
BM_BaselineVortex(benchmark::State &state)
{
    runWorkload(state, "vortex", false);
}

void
BM_WorkloadBuildVpr(benchmark::State &state)
{
    workloads::Params p;
    p.scale = 120'000;
    for (auto _ : state) {
        auto wl = workloads::buildWorkload("vpr", p);
        arch::MemoryImage mem;
        wl.initMemory(mem);
        benchmark::DoNotOptimize(mem.pageCount());
    }
}

BENCHMARK(BM_BaselineVpr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SlicedVpr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BaselineMcf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BaselineVortex)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WorkloadBuildVpr)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------
// Default mode: full-workload sweep + BENCH_simspeed.json
// ---------------------------------------------------------------

int
runSweep(unsigned jobs)
{
    const auto insts = bench::benchInsts();
    const auto warmup = bench::benchWarmup();

    sim::JobPool pool(jobs);
    sim::RunOptions opts = bench::benchOpts();

    std::printf("simulator throughput, %llu measured insts "
                "(+%llu warm-up) per workload\n",
                static_cast<unsigned long long>(insts),
                static_cast<unsigned long long>(warmup));
    std::printf("%-10s %12s %8s %14s\n", "workload", "cycles", "IPC",
                "sim insts/s");

    // Per-run wall clock is measured inside each job (with --jobs > 1
    // the runs time-share cores, so per-run insts/s is only clean at
    // --jobs 1); the sweep wall clock around the whole batch is what
    // parallelism improves.
    auto sweep_t0 = std::chrono::steady_clock::now();
    std::vector<bench::WorkloadPerf> rows = pool.map(
        bench::benchWorkloadNames(), [&](const std::string &name) {
            auto wl =
                workloads::buildWorkload(name, bench::benchParams());
            sim::Simulator machine(sim::MachineConfig::fourWide());
            bench::WorkloadPerf p;
            p.name = name;
            auto t0 = std::chrono::steady_clock::now();
            p.result = machine.run(wl, opts, true);
            auto t1 = std::chrono::steady_clock::now();
            p.wallSeconds =
                std::chrono::duration<double>(t1 - t0).count();
            return p;
        });
    auto sweep_t1 = std::chrono::steady_clock::now();
    double sweep_wall =
        std::chrono::duration<double>(sweep_t1 - sweep_t0).count();

    for (const bench::WorkloadPerf &p : rows) {
        std::printf("%-10s %12llu %8.3f %14.0f\n", p.name.c_str(),
                    static_cast<unsigned long long>(p.result.cycles),
                    p.result.ipc(), p.instsPerSec());
    }

    std::string path = bench::writeBenchJson("simspeed", rows, sweep_wall);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "--gbench") == 0) {
        // Drop the flag and hand the rest to google-benchmark.
        for (int i = 1; i + 1 < argc; ++i)
            argv[i] = argv[i + 1];
        --argc;
        benchmark::Initialize(&argc, argv);
        if (benchmark::ReportUnrecognizedArguments(argc, argv))
            return 1;
        benchmark::RunSpecifiedBenchmarks();
        benchmark::Shutdown();
        return 0;
    }
    return runSweep(bench::jobsOption(argc, argv));
}
