/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): how many
 * simulated instructions per second the timing model sustains on
 * representative workloads, with and without helper threads. Useful
 * for sizing experiment budgets; not a paper figure.
 */

#include <benchmark/benchmark.h>

#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

void
runWorkload(benchmark::State &state, const std::string &name,
            bool with_slices)
{
    workloads::Params p;
    p.scale = 120'000;
    auto wl = workloads::buildWorkload(name, p);
    sim::Simulator simr(sim::MachineConfig::fourWide());

    sim::RunOptions opts;
    opts.maxMainInstructions = 50'000;

    std::uint64_t insts = 0;
    for (auto _ : state) {
        auto res = simr.run(wl, opts, with_slices);
        insts += res.mainRetired;
        benchmark::DoNotOptimize(res.cycles);
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_BaselineVpr(benchmark::State &state)
{
    runWorkload(state, "vpr", false);
}

void
BM_SlicedVpr(benchmark::State &state)
{
    runWorkload(state, "vpr", true);
}

void
BM_BaselineMcf(benchmark::State &state)
{
    runWorkload(state, "mcf", false);
}

void
BM_BaselineVortex(benchmark::State &state)
{
    runWorkload(state, "vortex", false);
}

void
BM_WorkloadBuildVpr(benchmark::State &state)
{
    workloads::Params p;
    p.scale = 120'000;
    for (auto _ : state) {
        auto wl = workloads::buildWorkload("vpr", p);
        arch::MemoryImage mem;
        wl.initMemory(mem);
        benchmark::DoNotOptimize(mem.pageCount());
    }
}

} // namespace

BENCHMARK(BM_BaselineVpr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SlicedVpr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BaselineMcf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BaselineVortex)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WorkloadBuildVpr)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
