/**
 * @file
 * Fast-forward engine benchmark and sampling-accuracy gate. Two
 * questions, answered for every workload:
 *
 *   1. Throughput: how many instructions per second does the
 *      arch::FastForward functional engine retire? The design target
 *      is >= 50M insts/s — two orders of magnitude above the timing
 *      model — so fast-forwarding to paper-scale regions is cheap.
 *
 *   2. Accuracy: does a sampled run (fast-forward past the timing
 *      warm-up, then a few short measured regions spread across the
 *      full-run window) reproduce the full run's IPC? The relative
 *      error per workload must stay within epsilon.
 *
 * Output: a table on stdout plus BENCH_fastforward.json. Exit is
 * non-zero when any workload's IPC error exceeds epsilon, or — only
 * when SS_FF_MIN_IPS sets a floor — when the slowest workload's
 * fast-forward throughput falls below it.
 *
 * Knobs (environment):
 *   SS_BENCH_INSTS / SS_BENCH_WARMUP  full-run shape (shared with the
 *                                     other bench binaries)
 *   SS_FF_INSTS      instructions per throughput measurement (5M)
 *   SS_FF_REGIONS    sampled regions per workload (4)
 *   SS_FF_EPSILON    max relative IPC error, e.g. 0.05 = 5% (0.05)
 *   SS_FF_MIN_IPS    fast-forward throughput floor; 0 = report only
 *   SS_BENCH_WORKLOADS  restrict the sweep (smoke tests)
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "arch/fastfwd.hh"
#include "bench_common.hh"
#include "sim/job_pool.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace specslice;

namespace
{

/** Read a double knob from the environment (report-style parsing). */
double
envOrF(const char *name, double dflt)
{
    const char *v = std::getenv(name);
    if (!v || *v == '\0')
        return dflt;
    char *end = nullptr;
    double parsed = std::strtod(v, &end);
    if (!end || *end != '\0' || !(parsed >= 0.0)) {
        std::fprintf(stderr,
                     "error: %s='%s' is not a non-negative number\n",
                     name, v);
        std::exit(2);
    }
    return parsed;
}

struct Row
{
    std::string name;
    double ffInstsPerSec = 0.0;
    std::uint64_t ffExecuted = 0;
    double fullIpc = 0.0;
    double sampledIpc = 0.0;
    double relErr = 0.0;
    bool withinEpsilon = false;
    double fullWall = 0.0;
    double sampledWall = 0.0;
    std::string fullOutcome;
    std::string sampledOutcome;
    std::uint64_t fastForwarded = 0;
    unsigned sampledRegions = 0;
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);

    const std::uint64_t fullInsts = bench::benchInsts();
    const std::uint64_t fullWarmup = bench::benchWarmup();
    const std::uint64_t ffInsts = bench::envOr("SS_FF_INSTS", 5'000'000);
    const unsigned regions = static_cast<unsigned>(
        std::max<std::uint64_t>(1, bench::envOr("SS_FF_REGIONS", 4)));
    const double epsilon = envOrF("SS_FF_EPSILON", 0.05);
    const double minIps = envOrF("SS_FF_MIN_IPS", 0.0);

    // The sampled run covers the full run's measurement window with
    // `regions` short regions: region r starts where the full run is
    // fullWarmup + r * stride instructions in, runs a short predictor/
    // cache warm-up, then measures 1/4 of its slice of the window.
    const std::uint64_t stride =
        std::max<std::uint64_t>(1, fullInsts / regions);
    const std::uint64_t regionMeasure =
        std::max<std::uint64_t>(1'000, stride / 4);
    const std::uint64_t regionWarmup =
        std::min<std::uint64_t>(10'000, std::max<std::uint64_t>(
                                            1'000, fullWarmup / 4));

    const std::vector<std::string> names = bench::benchWorkloadNames();

    // Phase 1 — fast-forward throughput, serial: these runs time the
    // engine itself, so they must not time-share cores.
    std::vector<Row> rows;
    for (const std::string &name : names) {
        workloads::Params wp;
        wp.scale = ffInsts * 2;
        wp.seed = bench::envOr("SS_BENCH_SEED", 1);
        sim::Workload wl = workloads::buildWorkload(name, wp);

        Row row;
        row.name = name;
        arch::FastForward ff(wl.program);
        ff.reset(wl.entry);
        if (wl.initMemory)
            wl.initMemory(ff.mem());
        double t0 = now();
        ff.advance(ffInsts);
        double dt = now() - t0;
        row.ffExecuted = ff.executed();
        row.ffInstsPerSec =
            dt > 0.0 ? static_cast<double>(ff.executed()) / dt : 0.0;
        rows.push_back(std::move(row));
    }

    // Phase 2 — full vs sampled timing runs, parallel across
    // workloads (two runs per workload; the IPCs compared come from
    // simulated cycles, which wall-clock sharing cannot perturb).
    sim::JobPool pool(bench::jobsOption(argc, argv));
    std::vector<Row> done = pool.map(rows, [&](const Row &in) {
        Row row = in;
        workloads::Params wp;
        wp.scale = (fullWarmup + fullInsts) * 2;
        wp.seed = bench::envOr("SS_BENCH_SEED", 1);
        sim::Workload wl = workloads::buildWorkload(row.name, wp);
        sim::Simulator machine(sim::MachineConfig::fourWide());

        sim::RunOptions full;
        full.maxMainInstructions = fullInsts;
        full.warmupInstructions = fullWarmup;
        double t0 = now();
        sim::RunResult fr = machine.run(wl, full, true);
        row.fullWall = now() - t0;
        row.fullIpc = fr.ipc();
        row.fullOutcome = sim::outcomeName(fr.outcome);

        sim::RunOptions samp;
        // Center each measured sub-window within its stride: on
        // workloads whose IPC ramps across the window (twolf), always
        // measuring the start of every stride biases the estimate.
        std::uint64_t center_skew = 0;
        if (stride > regionMeasure) {
            center_skew = (stride - regionMeasure) / 2;
            center_skew -= std::min(center_skew, regionWarmup);
        }
        samp.fastForwardInstructions = fullWarmup + center_skew;
        samp.sampleRegions = regions;
        samp.sampleStride = stride;
        samp.warmupInstructions = regionWarmup;
        samp.maxMainInstructions = regionMeasure;
        t0 = now();
        sim::RunResult sr = machine.run(wl, samp, true);
        row.sampledWall = now() - t0;
        row.sampledIpc = sr.ipc();
        row.sampledOutcome = sim::outcomeName(sr.outcome);
        row.fastForwarded = sr.fastForwarded;
        row.sampledRegions = sr.sampledRegions;

        row.relErr = row.fullIpc > 0.0
                         ? std::fabs(row.sampledIpc - row.fullIpc) /
                               row.fullIpc
                         : 1.0;
        row.withinEpsilon = row.relErr <= epsilon;
        return row;
    });

    std::printf("fast-forward throughput (%llu insts/workload) and "
                "sampled-vs-full IPC (%u regions, epsilon %.3f)\n",
                static_cast<unsigned long long>(ffInsts), regions,
                epsilon);
    std::printf("%-10s %14s %9s %9s %8s %7s %8s\n", "workload",
                "ff insts/s", "full IPC", "smp IPC", "rel err", "ok",
                "speedup");
    double minFf = -1.0;
    double maxErr = 0.0;
    bool allWithin = true;
    for (const Row &r : done) {
        double speedup =
            r.sampledWall > 0.0 ? r.fullWall / r.sampledWall : 0.0;
        std::printf("%-10s %14.3e %9.3f %9.3f %7.1f%% %7s %7.2fx\n",
                    r.name.c_str(), r.ffInstsPerSec, r.fullIpc,
                    r.sampledIpc, r.relErr * 100.0,
                    r.withinEpsilon ? "yes" : "NO", speedup);
        if (minFf < 0.0 || r.ffInstsPerSec < minFf)
            minFf = r.ffInstsPerSec;
        maxErr = std::max(maxErr, r.relErr);
        allWithin = allWithin && r.withinEpsilon;
    }
    if (minFf < 0.0)
        minFf = 0.0;
    const bool throughputOk = minIps <= 0.0 || minFf >= minIps;

    std::vector<std::string> elems;
    for (const Row &r : done) {
        bench::JsonObject o;
        o.field("name", r.name)
            .field("ff_insts_per_sec", r.ffInstsPerSec)
            .field("ff_executed", r.ffExecuted)
            .field("full_ipc", r.fullIpc)
            .field("sampled_ipc", r.sampledIpc)
            .field("ipc_rel_err", r.relErr)
            .raw("within_epsilon", r.withinEpsilon ? "true" : "false")
            .field("full_wall_seconds", r.fullWall)
            .field("sampled_wall_seconds", r.sampledWall)
            .field("full_outcome", r.fullOutcome)
            .field("sampled_outcome", r.sampledOutcome)
            .field("fast_forwarded", r.fastForwarded)
            .field("sampled_regions",
                   std::uint64_t{r.sampledRegions});
        elems.push_back(o.str());
    }
    bench::JsonObject aggregate;
    aggregate.field("min_ff_insts_per_sec", minFf)
        .field("max_ipc_rel_err", maxErr)
        .raw("all_within_epsilon", allWithin ? "true" : "false")
        .raw("throughput_ok", throughputOk ? "true" : "false");
    bench::JsonObject doc;
    doc.field("schema_version", bench::benchSchemaVersion)
        .field("bench", std::string("fastforward"))
        .field("insts", fullInsts)
        .field("warmup", fullWarmup)
        .field("ff_insts", ffInsts)
        .field("regions", std::uint64_t{regions})
        .field("region_warmup", regionWarmup)
        .field("region_measure", regionMeasure)
        .field("stride", stride)
        .field("epsilon", epsilon)
        .field("min_insts_per_sec", minIps)
        .raw("workloads", bench::jsonArray(elems))
        .raw("aggregate", aggregate.str());

    const std::string path = "BENCH_fastforward.json";
    {
        std::ofstream os(path);
        os << doc.str() << "\n";
    }
    std::printf("wrote %s\n", path.c_str());

    if (!allWithin) {
        std::fprintf(stderr,
                     "error: sampled IPC error above epsilon %.3f on "
                     "at least one workload (max %.3f)\n",
                     epsilon, maxErr);
        return 1;
    }
    if (!throughputOk) {
        std::fprintf(stderr,
                     "error: fast-forward throughput %.3g insts/s "
                     "below SS_FF_MIN_IPS=%.3g\n",
                     minFf, minIps);
        return 1;
    }
    return 0;
}
