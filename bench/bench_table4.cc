/**
 * @file
 * Table 4: detailed characterization of program execution with and
 * without speculative slices, for the benchmarks whose slices give
 * non-trivial speedups. Reproduces the paper's rows: instructions
 * fetched (program and slice), fork-point behaviour (taken / squashed
 * / ignored), prediction accounting (generated, mispredictions
 * removed, incorrect, late fraction), and prefetch accounting
 * (prefetches performed, misses covered, net reduction).
 *
 * The paper's "fraction of speedup from loads" was an estimate; here
 * it is derived from a decomposition pair of limit runs (perfecting
 * only the covered loads vs only the covered branches).
 */

#include <cstdio>

#include "bench_common.hh"
#include "sim/experiments.hh"

using namespace specslice;

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    sim::ExperimentConfig cfg = bench::experimentConfig();
    auto cache = bench::openCacheOption(argc, argv);
    cfg.cache = cache.get();
    sim::JobPool pool(bench::jobsOption(argc, argv));
    std::printf("Table 4: execution with and without slices "
                "(4-wide machine)\n\n");

    sim::Table table({"Program", "fetch(K)", "misp(K)", "miss(K)",
                      "fetch+sl(K)", "slice(K)", "forks(K)", "squash",
                      "ignored", "preds(K)", "misp.rm%", "incorrect",
                      "late%", "pref(K)", "covered", "miss.rm%",
                      "ld.frac"});

    auto rows = pool.map(
        bench::benchWorkloadNames(), [&](const std::string &name) {
            return sim::runTable4Row(sim::MachineConfig::fourWide(),
                                     name, cfg);
        });
    for (const auto &maybe : rows) {
        if (!maybe)
            continue;
        const sim::Table4Row &r = *maybe;
        table.addRow({
            r.program,
            sim::Table::kilo(r.base.mainFetched),
            sim::Table::kilo(r.base.mispredictions),
            sim::Table::kilo(r.base.l1dMissesMain),
            sim::Table::kilo(r.sliced.mainFetched),
            sim::Table::kilo(r.sliced.sliceFetched),
            sim::Table::kilo(r.sliced.forks, 2),
            sim::Table::count(r.sliced.forksSquashed),
            sim::Table::count(r.sliced.forksIgnored),
            sim::Table::kilo(r.sliced.predictionsGenerated),
            sim::Table::fmt(r.mispredRemovedPct, 0),
            sim::Table::count(r.sliced.correlatorWrong),
            sim::Table::fmt(r.latePct, 0),
            sim::Table::kilo(r.sliced.slicePrefetches),
            sim::Table::count(r.sliced.coveredMisses),
            sim::Table::fmt(r.missRemovedPct, 0),
            sim::Table::fmt(r.loadFraction, 2),
        });
    }

    std::printf("%s\n", table.render().c_str());
    std::printf("Expected shape: slice fetch overhead bounded, total "
                "fetches reduced vs\nbaseline, >99%% override accuracy "
                "(tiny 'incorrect'), and a load-dominated\nfraction for "
                "mcf/perl/vpr-style workloads.\n");
    return 0;
}
