/**
 * @file
 * Ablation: Section 6.3's overhead-reduction reasoning, made
 * measurable.
 *
 *  - "Overhead can be reduced by not executing slices for problem
 *    instructions that will not miss/mispredict... gating the fork
 *    using confidence [8]" -> the fork-confidence gate.
 *  - "Execution overhead could be eliminated by having dedicated
 *    resources to execute the slice at the expense of additional
 *    hardware" -> dedicated fetch/window/issue for helper threads.
 *
 * The interesting rows are the overhead-bound benchmarks (bzip2,
 * crafty) where shared-resource slices lose money, and gzip, whose
 * hoisted fork produces many useless (literal-position) slices.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace specslice;
using bench::benchOpts;
using bench::benchParams;
using sim::speedupPct;

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    sim::JobPool pool(bench::jobsOption(argc, argv));
    std::printf("Ablation: Section 6.3 overhead reduction "
                "(speedup over no-slice baseline, %%)\n\n");

    const std::vector<std::string> benches = {"bzip2", "crafty", "gzip",
                                              "twolf", "vpr"};

    sim::Table table({"Program", "shared", "fork-gated", "dedicated",
                      "gated forks", "slice fetch% (shared)",
                      "(dedicated)"});

    auto rows = pool.map(benches, [&](const std::string &name) {
        auto wl = workloads::buildWorkload(name, benchParams());
        sim::Simulator base_sim(sim::MachineConfig::fourWide());
        auto base = base_sim.runBaseline(wl, benchOpts());

        sim::Simulator shared_sim(sim::MachineConfig::fourWide());
        auto shared = shared_sim.run(wl, benchOpts(), true);

        sim::MachineConfig gated_cfg = sim::MachineConfig::fourWide();
        gated_cfg.forkConfidenceGating = true;
        sim::Simulator gated_sim(gated_cfg);
        auto gated = gated_sim.run(wl, benchOpts(), true);

        sim::MachineConfig ded_cfg = sim::MachineConfig::fourWide();
        ded_cfg.dedicatedSliceResources = true;
        sim::Simulator ded_sim(ded_cfg);
        auto ded = ded_sim.run(wl, benchOpts(), true);

        auto fetch_pct = [](const sim::RunResult &r) {
            std::uint64_t total = r.mainFetched + r.sliceFetched;
            return total ? 100.0 * static_cast<double>(r.sliceFetched) /
                               static_cast<double>(total)
                         : 0.0;
        };

        return std::vector<std::string>{
            name,
            sim::Table::fmt(speedupPct(base, shared), 1),
            sim::Table::fmt(speedupPct(base, gated), 1),
            sim::Table::fmt(speedupPct(base, ded), 1),
            sim::Table::count(gated.detail.get("forks_gated")),
            sim::Table::fmt(fetch_pct(shared), 0),
            sim::Table::fmt(fetch_pct(ded), 0),
        };
    });
    for (const auto &row : rows)
        table.addRow(row);

    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Expected shape: dedicated resources flip the overhead-bound "
        "benchmarks (bzip2)\npositive, though they can over-supply "
        "slices that then contend for the shared\ncache ports (twolf). "
        "The per-PC fork gate trims useless forks cheaply, but a\n"
        "fork point whose slices are useful only in some contexts "
        "(gzip's hoisted fork\ncovers literal positions too) gets "
        "over-gated — the paper's observation that\ncontext-dependent "
        "behaviour needs the fork hoisted into the distinguishing\n"
        "caller, or real confidence hardware [8].\n");
    return 0;
}
