/**
 * @file
 * The 64-entry unified prefetch/victim buffer of Table 1: a small fully
 * associative buffer checked in parallel with the caches. It holds both
 * lines evicted from the L1 (victims) and lines brought in by the
 * hardware stream prefetcher before their first demand use.
 */

#ifndef SPECSLICE_MEM_VICTIM_BUFFER_HH
#define SPECSLICE_MEM_VICTIM_BUFFER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace specslice::mem
{

class PrefetchVictimBuffer
{
  public:
    struct Entry
    {
        Addr lineAddr = 0;
        bool valid = false;
        bool fromPrefetch = false;
        Cycle readyAt = 0;      ///< prefetched data arrives at this cycle
        std::uint64_t lru = 0;
    };

    PrefetchVictimBuffer(unsigned entries, unsigned line_size);

    /**
     * Probe for the line containing addr.
     * @return the entry, or nullptr on miss. The entry stays resident
     * (data also gets promoted into the L1 by the hierarchy).
     */
    Entry *lookup(Addr addr, Cycle now);

    /** Probe without state changes. */
    const Entry *peek(Addr addr) const;

    /** Insert a victim or prefetched line (evicts LRU if full). */
    void insert(Addr line_addr, bool from_prefetch, Cycle ready_at);

    /** Remove the line if present (promoted to L1). */
    void remove(Addr line_addr);

    unsigned size() const { return static_cast<unsigned>(entries_.size()); }

    /** @return number of currently valid entries. */
    unsigned population() const;

  private:
    Addr lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(lineSize_ - 1);
    }

    unsigned lineSize_;
    std::uint64_t lruClock_ = 0;
    std::vector<Entry> entries_;
};

} // namespace specslice::mem

#endif // SPECSLICE_MEM_VICTIM_BUFFER_HH
