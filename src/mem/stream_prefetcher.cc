#include "mem/stream_prefetcher.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace specslice::mem
{

StreamPrefetcher::StreamPrefetcher(unsigned streams, unsigned line_size,
                                   unsigned degree, bool sequential)
    : lineSize_(line_size), degree_(degree), sequential_(sequential)
{
    SS_ASSERT(isPowerOf2(line_size), "line size must be a power of two");
    streams_.resize(streams);
}

std::vector<Addr>
StreamPrefetcher::onMiss(Addr addr)
{
    std::vector<Addr> out;
    Addr line = lineOf(addr);
    auto line_num = static_cast<std::int64_t>(line / lineSize_);

    // Look for a stream this miss continues (distance of one line,
    // either direction, or continuing a confirmed stride).
    for (Stream &s : streams_) {
        if (!s.valid)
            continue;
        auto last_num = static_cast<std::int64_t>(s.lastLine / lineSize_);
        std::int64_t delta = line_num - last_num;
        if (delta == 0)
            return out;  // repeated miss on same line; nothing new
        bool continues =
            (s.stride != 0 && delta == s.stride) ||
            (s.stride == 0 && (delta == 1 || delta == -1));
        if (continues) {
            s.stride = delta;
            s.lastLine = line;
            s.confidence = s.confidence < 4 ? s.confidence + 1 : 4;
            s.lru = ++lruClock_;
            // Confirmed stream: run ahead by 'degree' lines.
            for (unsigned d = 1; d <= degree_; ++d) {
                std::int64_t target =
                    line_num + s.stride * static_cast<std::int64_t>(d);
                if (target >= 0)
                    out.push_back(static_cast<Addr>(target) * lineSize_);
            }
            return out;
        }
    }

    // New stream: allocate (LRU victim) and optionally issue the
    // speculative sequential next-line prefetch.
    Stream *victim = nullptr;
    for (Stream &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (!victim || s.lru < victim->lru)
            victim = &s;
    }
    victim->valid = true;
    victim->lastLine = line;
    victim->stride = 0;
    victim->confidence = 0;
    victim->lru = ++lruClock_;

    if (sequential_)
        out.push_back(line + lineSize_);
    return out;
}

} // namespace specslice::mem
