/**
 * @file
 * Hardware stream prefetcher (Table 1): detects cache misses with unit
 * stride (positive and negative) and launches prefetches; additionally
 * prefetches sequential blocks (before a stride is confirmed) to
 * exploit spatial locality beyond one line.
 */

#ifndef SPECSLICE_MEM_STREAM_PREFETCHER_HH
#define SPECSLICE_MEM_STREAM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace specslice::mem
{

class StreamPrefetcher
{
  public:
    /**
     * @param streams number of concurrently tracked miss streams
     * @param line_size cache line size the stride is measured in
     * @param degree lines prefetched ahead once a stream is confirmed
     * @param sequential also issue a next-line prefetch on first miss
     */
    StreamPrefetcher(unsigned streams, unsigned line_size, unsigned degree,
                     bool sequential);

    /**
     * Observe a demand miss and decide what to prefetch.
     * @return line addresses to prefetch (possibly empty).
     */
    std::vector<Addr> onMiss(Addr addr);

  private:
    struct Stream
    {
        bool valid = false;
        Addr lastLine = 0;
        std::int64_t stride = 0;   ///< in lines; 0 = not yet confirmed
        unsigned confidence = 0;
        std::uint64_t lru = 0;
    };

    Addr lineOf(Addr addr) const
    {
        return addr & ~static_cast<Addr>(lineSize_ - 1);
    }

    unsigned lineSize_;
    unsigned degree_;
    bool sequential_;
    std::uint64_t lruClock_ = 0;
    std::vector<Stream> streams_;
};

} // namespace specslice::mem

#endif // SPECSLICE_MEM_STREAM_PREFETCHER_HH
