/**
 * @file
 * Write buffer: store misses are retired into it (Table 1), so they
 * never stall retirement. Entries coalesce by line and drain to the
 * memory system in the background; a full buffer back-pressures stores.
 */

#ifndef SPECSLICE_MEM_WRITE_BUFFER_HH
#define SPECSLICE_MEM_WRITE_BUFFER_HH

#include <deque>

#include "common/types.hh"

namespace specslice::mem
{

class WriteBuffer
{
  public:
    explicit WriteBuffer(unsigned entries, Cycle drain_interval = 20)
        : capacity_(entries), drainInterval_(drain_interval)
    {}

    /**
     * Insert a missed store's line.
     * @return false if the buffer is full (the store must retry/stall).
     */
    bool insert(Addr line_addr, Cycle now);

    /** Drain entries whose residency time has elapsed. */
    void drain(Cycle now);

    /** @return true if addr's line is buffered (store-to-load visible). */
    bool contains(Addr line_addr) const;

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t occupancy() const { return entries_.size(); }

  private:
    struct Entry
    {
        Addr lineAddr;
        Cycle insertedAt;
    };

    std::size_t capacity_;
    Cycle drainInterval_;
    std::deque<Entry> entries_;
};

} // namespace specslice::mem

#endif // SPECSLICE_MEM_WRITE_BUFFER_HH
