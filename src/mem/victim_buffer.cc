#include "mem/victim_buffer.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace specslice::mem
{

PrefetchVictimBuffer::PrefetchVictimBuffer(unsigned entries,
                                           unsigned line_size)
    : lineSize_(line_size)
{
    SS_ASSERT(isPowerOf2(line_size), "line size must be a power of two");
    entries_.resize(entries);
}

PrefetchVictimBuffer::Entry *
PrefetchVictimBuffer::lookup(Addr addr, Cycle now)
{
    Addr la = lineAddr(addr);
    for (Entry &e : entries_) {
        if (e.valid && e.lineAddr == la) {
            (void)now;
            e.lru = ++lruClock_;
            return &e;
        }
    }
    return nullptr;
}

const PrefetchVictimBuffer::Entry *
PrefetchVictimBuffer::peek(Addr addr) const
{
    Addr la = lineAddr(addr);
    for (const Entry &e : entries_) {
        if (e.valid && e.lineAddr == la)
            return &e;
    }
    return nullptr;
}

void
PrefetchVictimBuffer::insert(Addr line_addr, bool from_prefetch,
                             Cycle ready_at)
{
    SS_ASSERT((line_addr & (lineSize_ - 1)) == 0, "misaligned line");

    // Refresh if already resident.
    for (Entry &e : entries_) {
        if (e.valid && e.lineAddr == line_addr) {
            e.lru = ++lruClock_;
            return;
        }
    }

    Entry *victim = nullptr;
    for (Entry &e : entries_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->lineAddr = line_addr;
    victim->fromPrefetch = from_prefetch;
    victim->readyAt = ready_at;
    victim->lru = ++lruClock_;
}

void
PrefetchVictimBuffer::remove(Addr line_addr)
{
    for (Entry &e : entries_) {
        if (e.valid && e.lineAddr == line_addr)
            e.valid = false;
    }
}

unsigned
PrefetchVictimBuffer::population() const
{
    unsigned n = 0;
    for (const Entry &e : entries_)
        if (e.valid)
            ++n;
    return n;
}

} // namespace specslice::mem
