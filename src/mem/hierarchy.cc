#include "mem/hierarchy.hh"

#include <algorithm>

#include "obs/trace.hh"

namespace specslice::mem
{

MemoryHierarchy::Handles::Handles(StatGroup &g)
    : memRequests(g.scalar("mem_requests")),
      hwPrefetches(g.scalar("hw_prefetches")),
      loads(g.scalar("loads")),
      stores(g.scalar("stores")),
      sliceAccesses(g.scalar("slice_accesses")),
      delayedHits(g.scalar("delayed_hits")),
      coveredMisses(g.scalar("covered_misses")),
      l1dHits(g.scalar("l1d_hits")),
      pvbufHits(g.scalar("pvbuf_hits")),
      pvbufPrefetchHits(g.scalar("pvbuf_prefetch_hits")),
      writebufHits(g.scalar("writebuf_hits")),
      l1dMisses(g.scalar("l1d_misses")),
      l1dMissesMain(g.scalar("l1d_misses_main")),
      l1dMissesSlice(g.scalar("l1d_misses_slice")),
      l2Hits(g.scalar("l2_hits")),
      l2Misses(g.scalar("l2_misses")),
      ifetches(g.scalar("ifetches")),
      pvbufInstHits(g.scalar("pvbuf_inst_hits")),
      l1iMisses(g.scalar("l1i_misses")),
      storeMisses(g.scalar("store_misses"))
{
}

MemoryHierarchy::MemoryHierarchy(const MemConfig &cfg)
    : cfg_(cfg),
      l1i_(cfg.l1iSize, cfg.l1iAssoc, cfg.l1iLineSize),
      l1d_(cfg.l1dSize, cfg.l1dAssoc, cfg.l1dLineSize),
      l2_(cfg.l2Size, cfg.l2Assoc, cfg.l2LineSize),
      pvBuf_(cfg.pvBufEntries, cfg.l1dLineSize),
      writeBuf_(cfg.writeBufEntries),
      prefetcher_(cfg.prefetchStreams, cfg.l1dLineSize, cfg.prefetchDegree,
                  cfg.sequentialPrefetch),
      stats_("mem"),
      s_(stats_)
{
}

Cycle
MemoryHierarchy::missToMemory(Cycle now)
{
    // Request bandwidth model: each memory request occupies the channel
    // for memBusOccupancy cycles; requests queue behind each other.
    Cycle start = std::max(now, memBusFreeAt_);
    memBusFreeAt_ = start + cfg_.memBusOccupancy;
    ++s_.memRequests;
    return (start - now) + cfg_.memLatency;
}

void
MemoryHierarchy::launchPrefetches(Addr miss_addr, Cycle now)
{
    if (!cfg_.prefetcherEnabled)
        return;
    for (Addr line : prefetcher_.onMiss(miss_addr)) {
        // Skip lines already close to the core.
        if (l1d_.peek(line) || pvBuf_.peek(line))
            continue;
        Cycle lat = l2_.peek(line) ? cfg_.l2Latency : missToMemory(now);
        pvBuf_.insert(line, true, now + lat);
        ++s_.hwPrefetches;
    }
}

void
MemoryHierarchy::warmData(Addr addr, bool is_store)
{
    // Mirrors accessDataTimed structurally — L1 probe, pvBuf probe
    // with promotion, prefetcher training, L2 fill only on a true
    // miss — with no stats, latency, or bandwidth accounting. The
    // structural fidelity matters: an L1 hit must not refresh the
    // L2's LRU, and a line promoted out of the pvBuf never enters
    // the L2, so a warmed hierarchy whose prefetcher covered a line
    // stays exactly as L2-cold as a naturally warmed one.
    if (CacheLine *line = l1d_.access(addr, true)) {
        if (is_store)
            line->dirty = true;
        return;
    }
    if (auto *entry = pvBuf_.lookup(addr, 0)) {
        Addr promoted = entry->lineAddr;
        bool was_prefetch = entry->fromPrefetch;
        pvBuf_.remove(promoted);
        Eviction ev = l1d_.fill(promoted, is_store, false);
        if (ev.valid)
            pvBuf_.insert(ev.lineAddr, false, 0);
        l1d_.access(addr, true);
        if (was_prefetch)
            warmPrefetches(addr);
        return;
    }
    warmPrefetches(addr);
    if (!l2_.access(addr, true))
        l2_.fill(addr, false, false);
    Eviction ev = l1d_.fill(addr, is_store, false);
    if (ev.valid)
        pvBuf_.insert(ev.lineAddr, false, 0);
}

void
MemoryHierarchy::warmInst(Addr pc)
{
    // Mirrors accessInst structurally — L1I probe, pvBuf probe with
    // promotion, L2 fill only on a true miss, i-side sequential
    // next-line prefetch — with no stats, latency, or bandwidth
    // accounting (prefetched lines arrive "already ready", as in
    // warmPrefetches).
    if (l1i_.access(pc, true))
        return;
    if (auto *entry = pvBuf_.lookup(pc, 0)) {
        pvBuf_.remove(entry->lineAddr);
        l1i_.fill(pc, false, false);
        return;
    }
    if (!l2_.access(pc, true))
        l2_.fill(pc, false, false);
    l1i_.fill(pc, false, false);
    if (cfg_.prefetcherEnabled) {
        Addr line = l1i_.lineAddr(pc);
        for (unsigned d = 1; d <= 2 + cfg_.prefetchDegree; ++d) {
            Addr next = line + d * cfg_.l1iLineSize;
            if (l1i_.peek(next) || pvBuf_.peek(next))
                continue;
            pvBuf_.insert(next, true, 0);
        }
    }
}

void
MemoryHierarchy::warmPrefetches(Addr miss_addr)
{
    if (!cfg_.prefetcherEnabled)
        return;
    // Same stream-training and insertion as launchPrefetches, minus
    // missToMemory: warm-up prefetches happened "in the past", so
    // they arrive ready and cost no request bandwidth.
    for (Addr line : prefetcher_.onMiss(miss_addr)) {
        if (l1d_.peek(line) || pvBuf_.peek(line))
            continue;
        pvBuf_.insert(line, true, 0);
    }
}

AccessResult
MemoryHierarchy::accessData(Addr addr, bool is_store, bool is_slice_thread,
                            Cycle now)
{
    AccessResult res = accessDataTimed(addr, is_store, is_slice_thread,
                                       now);
    // mem.latency: stretch this access. Applied on top of the real
    // timing so cache/prefetcher state is exactly what an uninjected
    // run would have — only the scheduler-visible latency changes.
    if (injector_ && injector_->fire(fault::Site::MemLatency))
        res.latency += injector_->arg(fault::Site::MemLatency);
    return res;
}

AccessResult
MemoryHierarchy::accessDataTimed(Addr addr, bool is_store,
                                 bool is_slice_thread, Cycle now)
{
    AccessResult res;
    bool is_main = !is_slice_thread;
    ++(is_store ? s_.stores : s_.loads);
    if (is_slice_thread)
        ++s_.sliceAccesses;

    // L1D probe (prefetch/victim buffer checked in parallel).
    if (CacheLine *line = l1d_.access(addr, is_main)) {
        res.l1Hit = true;
        res.latency = cfg_.l1Latency;

        // MSHR merge: if this line's fill is still in flight, the
        // access waits for the remaining latency, not a fresh miss.
        auto pit = pendingFills_.find(l1d_.lineAddr(addr));
        if (pit != pendingFills_.end()) {
            if (now < pit->second.readyAt) {
                res.latency = pit->second.readyAt - now;
                ++s_.delayedHits;
            } else {
                pendingFills_.erase(pit);
            }
        }

        if (is_main && line->sliceFilled) {
            // First main-thread touch of a slice-prefetched line: this
            // would have been a (full) miss without the slice
            // ("covered"). sliceFilled acts as the one-shot marker.
            res.coveredBySlice = true;
            line->sliceFilled = false;
            ++s_.coveredMisses;
        }
        if (is_store)
            line->dirty = true;
        ++s_.l1dHits;
        return res;
    }

    // Parallel prefetch/victim buffer probe.
    if (auto *entry = pvBuf_.lookup(addr, now)) {
        Cycle ready = std::max(entry->readyAt, now);
        res.pvBufHit = true;
        res.latency = cfg_.l1Latency + (ready - now);
        ++s_.pvbufHits;
        if (entry->fromPrefetch)
            ++s_.pvbufPrefetchHits;
        // Promote into the L1.
        Addr promoted = entry->lineAddr;
        bool was_prefetch = entry->fromPrefetch;
        pvBuf_.remove(promoted);
        Eviction ev = l1d_.fill(promoted, is_store, is_slice_thread);
        if (ev.valid)
            pvBuf_.insert(ev.lineAddr, false, now);
        if (is_main)
            l1d_.access(addr, true);
        // A hit on a prefetched line confirms the stream: keep the
        // prefetcher trained (and running ahead) rather than letting
        // covered accesses starve it of miss events.
        if (was_prefetch)
            launchPrefetches(addr, now);
        return res;
    }

    // Write buffer holds the line of a retired store miss.
    if (writeBuf_.contains(l1d_.lineAddr(addr))) {
        res.writeBufferHit = true;
        res.latency = cfg_.l1Latency + 1;
        ++s_.writebufHits;
        Eviction ev = l1d_.fill(addr, true, is_slice_thread);
        if (ev.valid && ev.dirty)
            pvBuf_.insert(ev.lineAddr, false, now);
        return res;
    }

    // L1 miss.
    ++s_.l1dMisses;
    if (is_main)
        ++s_.l1dMissesMain;
    else
        ++s_.l1dMissesSlice;
    launchPrefetches(addr, now);

    Cycle lat;
    if (l2_.access(addr, is_main)) {
        res.l2Hit = true;
        lat = cfg_.l1Latency + cfg_.l2Latency;
        ++s_.l2Hits;
    } else {
        res.memAccess = true;
        ++s_.l2Misses;
        lat = cfg_.l1Latency + cfg_.l2Latency + missToMemory(now);
        l2_.fill(addr, false, is_slice_thread);
    }
    SS_DTRACE(Mem, "d-miss addr=0x", std::hex, addr, std::dec,
              " slice=", int{is_slice_thread},
              " l2=", int{res.l2Hit}, " lat=", lat, " cyc=", now);

    // Fill the L1; victims go to the victim buffer. The tag is
    // installed now; the in-flight window is tracked in pendingFills_
    // so later accesses merge with this fill.
    Eviction ev = l1d_.fill(addr, is_store, is_slice_thread);
    if (ev.valid)
        pvBuf_.insert(ev.lineAddr, false, now);
    pendingFills_[l1d_.lineAddr(addr)] = {now + lat, is_slice_thread};

    res.latency = lat;
    return res;
}

Cycle
MemoryHierarchy::accessInst(Addr pc, Cycle now)
{
    ++s_.ifetches;
    if (l1i_.access(pc, true))
        return cfg_.l1Latency;

    // The unified prefetch/victim buffer is checked on all accesses.
    if (auto *entry = pvBuf_.lookup(pc, now)) {
        Cycle ready = std::max(entry->readyAt, now);
        Cycle lat = cfg_.l1Latency + (ready - now);
        pvBuf_.remove(entry->lineAddr);
        l1i_.fill(pc, false, false);
        ++s_.pvbufInstHits;
        return lat;
    }

    ++s_.l1iMisses;
    Cycle lat;
    if (l2_.access(pc, true)) {
        lat = cfg_.l1Latency + cfg_.l2Latency;
    } else {
        ++s_.l2Misses;
        lat = cfg_.l1Latency + cfg_.l2Latency + missToMemory(now);
        l2_.fill(pc, false, false);
    }
    l1i_.fill(pc, false, false);
    SS_DTRACE(Mem, "i-miss pc=0x", std::hex, pc, std::dec,
              " lat=", lat, " cyc=", now);

    // Sequential next-line prefetch on the instruction side: run a few
    // lines ahead so straight-line cold code streams instead of
    // serializing one miss per line.
    if (cfg_.prefetcherEnabled) {
        Addr line = l1i_.lineAddr(pc);
        for (unsigned d = 1; d <= 2 + cfg_.prefetchDegree; ++d) {
            Addr next = line + d * cfg_.l1iLineSize;
            if (l1i_.peek(next) || pvBuf_.peek(next))
                continue;
            Cycle plat = l2_.peek(next)
                             ? cfg_.l2Latency
                             : missToMemory(now);
            pvBuf_.insert(next, true, now + plat);
            ++s_.hwPrefetches;
        }
    }
    return lat;
}

AccessResult
MemoryHierarchy::accessStore(Addr addr, Cycle now)
{
    AccessResult res;
    ++s_.stores;
    res.latency = 1;

    if (CacheLine *line = l1d_.access(addr, true)) {
        res.l1Hit = true;
        line->dirty = true;
        line->sliceFilled = false;
        ++s_.l1dHits;
        return res;
    }
    if (auto *entry = pvBuf_.lookup(addr, now)) {
        res.pvBufHit = true;
        Addr promoted = entry->lineAddr;
        pvBuf_.remove(promoted);
        Eviction ev = l1d_.fill(promoted, true, false);
        if (ev.valid)
            pvBuf_.insert(ev.lineAddr, false, now);
        ++s_.pvbufHits;
        return res;
    }
    if (writeBuf_.contains(l1d_.lineAddr(addr))) {
        res.writeBufferHit = true;
        ++s_.writebufHits;
        return res;
    }
    // Store miss: write-allocate. The line is installed immediately
    // (dirty); the store itself never stalls the pipeline, and a
    // dependent load to the just-written data behaves like store
    // forwarding (hits). The write buffer at retirement covers the
    // rare line-evicted-before-retire case.
    ++s_.storeMisses;
    launchPrefetches(addr, now);
    if (!l2_.access(addr, true)) {
        ++s_.l2Misses;
        missToMemory(now);
        l2_.fill(addr, false, false);
    }
    Eviction ev = l1d_.fill(addr, true, false);
    if (ev.valid)
        pvBuf_.insert(ev.lineAddr, false, now);
    return res;
}

bool
MemoryHierarchy::retireStore(Addr addr, Cycle now)
{
    // mem.wbstall: reject the write-back outright; retirement retries
    // next cycle. With @p1 nothing ever retires past the first store
    // miss — the watchdog's livelock generator.
    if (injector_ && injector_->fire(fault::Site::MemWbStall))
        return false;
    // Store hits were already handled at execute; misses retire into
    // the write buffer so they never stall the pipeline.
    if (l1d_.peek(addr))
        return true;
    bool ok = writeBuf_.insert(l1d_.lineAddr(addr), now);
    if (!ok)
        SS_DTRACE(Mem, "writebuf-full addr=0x", std::hex, addr,
                  std::dec, " cyc=", now);
    return ok;
}

void
MemoryHierarchy::tick(Cycle now)
{
    writeBuf_.drain(now);
    // Keep the pending-fill map from accumulating expired entries.
    if (pendingFills_.size() > 256) {
        for (auto it = pendingFills_.begin();
             it != pendingFills_.end();) {
            if (it->second.readyAt <= now)
                it = pendingFills_.erase(it);
            else
                ++it;
        }
    }
}

bool
MemoryHierarchy::wouldHitL1(Addr addr) const
{
    return l1d_.peek(addr) != nullptr || pvBuf_.peek(addr) != nullptr;
}

std::size_t
MemoryHierarchy::outstandingFills(Cycle now) const
{
    std::size_t n = 0;
    for (const auto &[line, fill] : pendingFills_) {
        if (fill.readyAt > now)
            ++n;
    }
    return n;
}

} // namespace specslice::mem
