#include "mem/write_buffer.hh"

namespace specslice::mem
{

bool
WriteBuffer::insert(Addr line_addr, Cycle now)
{
    // Coalesce with an existing entry for the same line.
    for (Entry &e : entries_) {
        if (e.lineAddr == line_addr)
            return true;
    }
    if (full())
        return false;
    entries_.push_back({line_addr, now});
    return true;
}

void
WriteBuffer::drain(Cycle now)
{
    while (!entries_.empty() &&
           now >= entries_.front().insertedAt + drainInterval_) {
        entries_.pop_front();
    }
}

bool
WriteBuffer::contains(Addr line_addr) const
{
    for (const Entry &e : entries_) {
        if (e.lineAddr == line_addr)
            return true;
    }
    return false;
}

} // namespace specslice::mem
