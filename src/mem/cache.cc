#include "mem/cache.hh"

#include "common/logging.hh"

namespace specslice::mem
{

SetAssocCache::SetAssocCache(std::size_t size, unsigned assoc,
                             unsigned line_size)
    : lineSize_(line_size), assoc_(assoc)
{
    SS_ASSERT(isPowerOf2(line_size), "line size must be a power of two");
    SS_ASSERT(assoc >= 1, "associativity must be positive");
    SS_ASSERT(size % (static_cast<std::size_t>(assoc) * line_size) == 0,
              "size not divisible by way size");
    numSets_ = static_cast<unsigned>(size / assoc / line_size);
    SS_ASSERT(isPowerOf2(numSets_), "set count must be a power of two");
    lineShift_ = floorLog2(line_size);
    lines_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

std::uint64_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

CacheLine *
SetAssocCache::access(Addr addr, bool is_main_thread)
{
    Addr tag = tagOf(addr);
    std::size_t base = setIndex(addr) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        CacheLine &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            line.lru = ++lruClock_;
            if (is_main_thread)
                line.mainTouched = true;
            return &line;
        }
    }
    return nullptr;
}

const CacheLine *
SetAssocCache::peek(Addr addr) const
{
    Addr tag = tagOf(addr);
    std::size_t base = setIndex(addr) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        const CacheLine &line = lines_[base + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

Eviction
SetAssocCache::fill(Addr addr, bool dirty, bool by_slice)
{
    Addr tag = tagOf(addr);
    std::size_t base = setIndex(addr) * assoc_;

    // If already present (e.g. racing fills), just update metadata.
    for (unsigned w = 0; w < assoc_; ++w) {
        CacheLine &line = lines_[base + w];
        if (line.valid && line.tag == tag) {
            line.dirty = line.dirty || dirty;
            line.lru = ++lruClock_;
            return {};
        }
    }

    // Choose a victim: first invalid way, else LRU.
    unsigned victim = 0;
    std::uint64_t best = ~std::uint64_t{0};
    for (unsigned w = 0; w < assoc_; ++w) {
        CacheLine &line = lines_[base + w];
        if (!line.valid) {
            victim = w;
            best = 0;
            break;
        }
        if (line.lru < best) {
            best = line.lru;
            victim = w;
        }
    }

    CacheLine &line = lines_[base + victim];
    Eviction ev;
    if (line.valid) {
        ev.valid = true;
        ev.dirty = line.dirty;
        ev.lineAddr = line.tag << lineShift_;
    }

    line.valid = true;
    line.tag = tag;
    line.dirty = dirty;
    line.sliceFilled = by_slice;
    line.mainTouched = !by_slice;
    line.lru = ++lruClock_;
    return ev;
}

void
SetAssocCache::invalidate(Addr addr)
{
    if (CacheLine *line = access(addr, false))
        line->valid = false;
}

} // namespace specslice::mem
