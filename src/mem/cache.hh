/**
 * @file
 * A generic set-associative, write-back, write-allocate cache tag array
 * with true-LRU replacement. Only tags and per-line metadata are
 * modeled; data comes from the shared functional memory image.
 *
 * Lines remember whether they were brought in by a helper (slice)
 * thread and whether the main thread has touched them since, which lets
 * the simulator attribute "covered" cache misses to slices (Table 4's
 * 'Cache misses "covered"' row).
 */

#ifndef SPECSLICE_MEM_CACHE_HH
#define SPECSLICE_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace specslice::mem
{

/** Per-line metadata. */
struct CacheLine
{
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    bool sliceFilled = false;   ///< brought in by a helper thread
    bool mainTouched = false;   ///< accessed by the main thread since fill
    std::uint64_t lru = 0;      ///< higher = more recently used
};

/** Result of a fill: describes the evicted line, if any. */
struct Eviction
{
    bool valid = false;   ///< a valid line was evicted
    bool dirty = false;
    Addr lineAddr = 0;    ///< base address of the evicted line
};

class SetAssocCache
{
  public:
    /**
     * @param size total capacity in bytes
     * @param assoc associativity (ways)
     * @param line_size line size in bytes (power of two)
     */
    SetAssocCache(std::size_t size, unsigned assoc, unsigned line_size);

    /** @return line base address containing addr. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(lineSize_ - 1);
    }

    /**
     * Probe for addr; on hit, updates LRU and per-line touch metadata.
     * @param is_main_thread the access came from the main thread
     * @return the hit line, or nullptr on miss
     */
    CacheLine *access(Addr addr, bool is_main_thread);

    /** Probe without any state update (for profiling / would-hit). */
    const CacheLine *peek(Addr addr) const;

    /**
     * Allocate a line for addr (victim = LRU way of the set).
     * @param dirty install in dirty state (write-allocate store)
     * @param by_slice the fill was triggered by a helper thread
     * @return description of the evicted line
     */
    Eviction fill(Addr addr, bool dirty, bool by_slice);

    /** Invalidate the line containing addr if present. */
    void invalidate(Addr addr);

    unsigned lineSize() const { return lineSize_; }
    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

  private:
    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    unsigned lineSize_;
    unsigned assoc_;
    unsigned numSets_;
    unsigned lineShift_;
    std::uint64_t lruClock_ = 0;
    std::vector<CacheLine> lines_;  ///< numSets_ * assoc_, set-major
};

} // namespace specslice::mem

#endif // SPECSLICE_MEM_CACHE_HH
