/**
 * @file
 * The complete memory hierarchy of Table 1: split 64KB L1I / 64KB 2-way
 * L1D with 64B lines and 3-cycle access, a unified 2MB 4-way L2 with
 * 128B lines and 6-cycle access, 100-cycle minimum memory latency, a
 * 64-entry unified prefetch/victim buffer checked in parallel with the
 * caches, a hardware stream prefetcher, and a write buffer for retired
 * store misses. Request bandwidth to memory is modeled (writeback
 * bandwidth is not, matching the paper).
 */

#ifndef SPECSLICE_MEM_HIERARCHY_HH
#define SPECSLICE_MEM_HIERARCHY_HH

#include <memory>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"
#include "fault/fault.hh"
#include "mem/cache.hh"
#include "mem/stream_prefetcher.hh"
#include "mem/victim_buffer.hh"
#include "mem/write_buffer.hh"

namespace specslice::mem
{

/** Configuration mirroring Table 1's "Caches" and "Prefetch" rows. */
struct MemConfig
{
    std::size_t l1iSize = 64 * 1024;
    unsigned l1iAssoc = 2;
    unsigned l1iLineSize = 64;
    std::size_t l1dSize = 64 * 1024;
    unsigned l1dAssoc = 2;
    unsigned l1dLineSize = 64;
    Cycle l1Latency = 3;        ///< includes address generation
    std::size_t l2Size = 2 * 1024 * 1024;
    unsigned l2Assoc = 4;
    unsigned l2LineSize = 128;
    Cycle l2Latency = 6;
    Cycle memLatency = 100;     ///< minimum memory latency
    Cycle memBusOccupancy = 4;  ///< request bandwidth model
    unsigned pvBufEntries = 64;
    unsigned writeBufEntries = 16;
    unsigned prefetchStreams = 8;
    unsigned prefetchDegree = 2;
    bool sequentialPrefetch = true;
    bool prefetcherEnabled = true;
};

/** What happened on a data access (for stats and covered-miss credit). */
struct AccessResult
{
    Cycle latency = 0;
    bool l1Hit = false;
    bool pvBufHit = false;
    bool l2Hit = false;
    bool memAccess = false;
    /** Main-thread hit on an untouched slice-prefetched line. */
    bool coveredBySlice = false;
    bool writeBufferHit = false;
};

class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemConfig &cfg);

    /**
     * Perform a timed data access (load or store). Mutates cache state.
     *
     * @param addr effective address
     * @param is_store store (write-allocate, marks line dirty)
     * @param is_slice_thread access issued by a helper thread
     * @param now current cycle
     */
    AccessResult accessData(Addr addr, bool is_store, bool is_slice_thread,
                            Cycle now);

    /**
     * Timed instruction fetch of the line containing pc.
     * @return latency in cycles (l1Latency on hit).
     */
    Cycle accessInst(Addr pc, Cycle now);

    /**
     * Store execute path: probe the L1 (marking the line dirty on hit)
     * without blocking the pipeline. Misses are completed at
     * retirement via the write buffer (see retireStore()).
     */
    AccessResult accessStore(Addr addr, Cycle now);

    /**
     * Store-retirement path: store misses go to the write buffer.
     * @return true if accepted, false if the buffer is full.
     */
    bool retireStore(Addr addr, Cycle now);

    /** Background maintenance (write-buffer drain). */
    void tick(Cycle now);

    /** Would a load of addr hit (no state change)? For profiling. */
    bool wouldHitL1(Addr addr) const;

    /**
     * Functional cache warm-up: install the line containing addr into
     * the L1D and L2 as if an access in the (fast-forwarded) past had
     * brought it in. Touches tags/LRU/dirty state only — no stats, no
     * latency or bandwidth model, no prefetcher training — so a
     * warmed hierarchy's counters stay comparable to a naturally
     * warmed one. Replay accesses oldest-first to approximate LRU
     * order.
     */
    void warmData(Addr addr, bool is_store);

    /**
     * Functional I-cache warm-up: install the line containing pc into
     * the L1I and L2 as if the (fast-forwarded) fetch stream had
     * brought it in, including the i-side sequential next-line
     * prefetches into the pvBuf. Same contract as warmData: tags/LRU
     * only, no stats, latency, or bandwidth.
     */
    void warmInst(Addr pc);

    /**
     * Attach a fault injector (null detaches). Tap points:
     * `mem.latency` adds cycles to a data access, `mem.wbstall`
     * rejects a store write-back at retirement.
     */
    void setInjector(fault::Injector *inj) { injector_ = inj; }

    /** Fills still in flight at `now` (watchdog diagnosis). */
    std::size_t outstandingFills(Cycle now) const;

    /** Occupancy of the retirement write buffer (watchdog diagnosis). */
    std::size_t writeBufferOccupancy() const
    {
        return writeBuf_.occupancy();
    }

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }
    const MemConfig &config() const { return cfg_; }

  private:
    /** accessData() minus the injection tap. */
    AccessResult accessDataTimed(Addr addr, bool is_store,
                                 bool is_slice_thread, Cycle now);
    /** launchPrefetches() for warmData(): trains the stream
     *  prefetcher and fills the pvBuf, but costs no bandwidth. */
    void warmPrefetches(Addr miss_addr);
    /** Fetch a line into L2 (+ account bus occupancy). */
    Cycle missToMemory(Cycle now);
    void launchPrefetches(Addr miss_addr, Cycle now);

    /**
     * MSHR-style merge tracking: a line whose fill is still in flight.
     * A second access to it waits for the remaining latency instead of
     * initiating (and paying for) a second miss. This is how a slice
     * prefetch that has not completed yet still shortens the main
     * thread's stall (the mcf case in Section 6.1).
     */
    struct PendingFill
    {
        Cycle readyAt = 0;
        bool bySlice = false;
    };

    /** Handles into stats_, registered once at construction so the
     *  access paths do pointer-indirect increments only. */
    struct Handles
    {
        explicit Handles(StatGroup &g);
        Stat &memRequests;
        Stat &hwPrefetches;
        Stat &loads;
        Stat &stores;
        Stat &sliceAccesses;
        Stat &delayedHits;
        Stat &coveredMisses;
        Stat &l1dHits;
        Stat &pvbufHits;
        Stat &pvbufPrefetchHits;
        Stat &writebufHits;
        Stat &l1dMisses;
        Stat &l1dMissesMain;
        Stat &l1dMissesSlice;
        Stat &l2Hits;
        Stat &l2Misses;
        Stat &ifetches;
        Stat &pvbufInstHits;
        Stat &l1iMisses;
        Stat &storeMisses;
    };

    MemConfig cfg_;
    SetAssocCache l1i_;
    SetAssocCache l1d_;
    SetAssocCache l2_;
    PrefetchVictimBuffer pvBuf_;
    WriteBuffer writeBuf_;
    StreamPrefetcher prefetcher_;
    Cycle memBusFreeAt_ = 0;
    std::unordered_map<Addr, PendingFill> pendingFills_;
    fault::Injector *injector_ = nullptr;
    StatGroup stats_;
    Handles s_;
};

} // namespace specslice::mem

#endif // SPECSLICE_MEM_HIERARCHY_HH
