/**
 * @file
 * JSON in and out, dependency-free.
 *
 * Output: the tiny ordered JsonObject / jsonArray builders that every
 * machine-readable artifact (BENCH_*.json, specslice_run --json, the
 * sweep-service protocol) is rendered with. They used to live in
 * bench/bench_common.hh; they moved here so src/sim code (the serve
 * job runner, the result cache) can emit the same byte-exact documents
 * as the bench drivers. bench_common.hh re-exports them unchanged.
 *
 * Input: a small recursive-descent parser producing a Value tree. The
 * sweep service parses request lines with it, clients parse response
 * lines, and the bench --cache path parses cached result documents.
 * It accepts exactly the JSON the builders emit plus ordinary
 * hand-written requests (nesting depth is bounded; numbers are kept
 * as both double and, when exact, int64/uint64).
 */

#ifndef SPECSLICE_COMMON_JSONIO_HH
#define SPECSLICE_COMMON_JSONIO_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace specslice::json
{

// ---------------------------------------------------------------
// Output
// ---------------------------------------------------------------

/** Escape a string for embedding in a JSON document. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * A tiny ordered JSON object builder — enough for flat result records
 * and arrays of them; no external dependency.
 */
class JsonObject
{
  public:
    JsonObject &
    field(const std::string &key, std::uint64_t v)
    {
        return raw(key, std::to_string(v));
    }

    JsonObject &
    field(const std::string &key, double v)
    {
        char buf[64];
        if (v != v) {  // NaN: JSON has no literal for it
            return raw(key, "null");
        }
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return raw(key, buf);
    }

    JsonObject &
    field(const std::string &key, const std::string &v)
    {
        return raw(key, "\"" + jsonEscape(v) + "\"");
    }

    /** Insert a pre-rendered JSON value (object, array, number). */
    JsonObject &
    raw(const std::string &key, const std::string &json)
    {
        fields_.emplace_back(key, json);
        return *this;
    }

    std::string
    str() const
    {
        std::ostringstream os;
        os << "{";
        for (std::size_t i = 0; i < fields_.size(); ++i) {
            os << (i ? ", " : "")
               << '"' << jsonEscape(fields_[i].first) << "\": "
               << fields_[i].second;
        }
        os << "}";
        return os.str();
    }

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/** Render a JSON array from pre-rendered element strings. */
inline std::string
jsonArray(const std::vector<std::string> &elems)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < elems.size(); ++i)
        os << (i ? ", " : "") << elems[i];
    os << "]";
    return os.str();
}

// ---------------------------------------------------------------
// Input
// ---------------------------------------------------------------

/** A parsed JSON value. */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** The number's source token was integral and fits: exact. */
    bool isInt = false;
    std::int64_t intval = 0;
    std::string str;
    std::vector<Value> items;                       ///< Array
    std::vector<std::pair<std::string, Value>> members;  ///< Object

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }

    /** Object member by key (first match), or nullptr. */
    const Value *
    get(const std::string &key) const
    {
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }

    // Typed accessors with defaults (missing/mistyped -> dflt).
    std::string
    getStr(const std::string &key, const std::string &dflt = "") const
    {
        const Value *v = get(key);
        return v && v->isString() ? v->str : dflt;
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t dflt = 0) const
    {
        const Value *v = get(key);
        if (!v || !v->isNumber())
            return dflt;
        if (v->isInt && v->intval >= 0)
            return static_cast<std::uint64_t>(v->intval);
        return v->number >= 0 ? static_cast<std::uint64_t>(v->number)
                              : dflt;
    }

    double
    getNum(const std::string &key, double dflt = 0.0) const
    {
        const Value *v = get(key);
        return v && v->isNumber() ? v->number : dflt;
    }

    bool
    getBool(const std::string &key, bool dflt = false) const
    {
        const Value *v = get(key);
        return v && v->isBool() ? v->boolean : dflt;
    }
};

/**
 * Parse one JSON document. Trailing whitespace is allowed; trailing
 * garbage is an error. @return nullopt and set error on failure.
 */
std::optional<Value> parse(const std::string &text, std::string &error);

} // namespace specslice::json

#endif // SPECSLICE_COMMON_JSONIO_HH
