/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef SPECSLICE_COMMON_TYPES_HH
#define SPECSLICE_COMMON_TYPES_HH

#include <cstdint>

namespace specslice
{

/** A (virtual) memory address. The simulated machine is 64-bit. */
using Addr = std::uint64_t;

/** A simulation cycle count. */
using Cycle = std::uint64_t;

/**
 * A Von Neumann number: a global, monotonically increasing sequence
 * number assigned to every fetched dynamic instruction. The paper uses
 * VN#s to order correlator kill/restore operations (Section 5.2).
 */
using SeqNum = std::uint64_t;

/** An architectural or physical register index. */
using RegIndex = std::uint8_t;

/** A hardware thread (SMT context) identifier. */
using ThreadId = std::uint8_t;

/** Sentinel for "no thread". */
constexpr ThreadId invalidThread = 0xff;

/** Sentinel for "no address". */
constexpr Addr invalidAddr = ~static_cast<Addr>(0);

/** Sentinel sequence number, older than every real instruction. */
constexpr SeqNum invalidSeqNum = 0;

} // namespace specslice

#endif // SPECSLICE_COMMON_TYPES_HH
