#include "common/failure.hh"

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace specslice
{

namespace
{

/** Throw-mode nesting depth for the current thread. */
thread_local unsigned tls_throw_depth = 0;

/** The installed cancellation flag (null = none). */
thread_local const std::atomic<bool> *tls_cancel = nullptr;

std::mutex &
dumpMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::uint64_t, std::function<void()>> &
dumpRegistry()
{
    static std::map<std::uint64_t, std::function<void()>> r;
    return r;
}

std::uint64_t next_dump_id = 1;

} // namespace

const char *
SimError::kindName(Kind kind)
{
    switch (kind) {
      case Kind::Panic:
        return "panic";
      case Kind::Fatal:
        return "fatal";
      case Kind::Timeout:
        return "timeout";
    }
    return "unknown";
}

ScopedThrowErrors::ScopedThrowErrors() { ++tls_throw_depth; }

ScopedThrowErrors::~ScopedThrowErrors() { --tls_throw_depth; }

bool
ScopedThrowErrors::active()
{
    return tls_throw_depth > 0;
}

ScopedCancelFlag::ScopedCancelFlag(const std::atomic<bool> *flag)
{
    tls_cancel = flag;
}

ScopedCancelFlag::~ScopedCancelFlag() { tls_cancel = nullptr; }

bool
cancelRequested()
{
    const std::atomic<bool> *flag = tls_cancel;
    return flag && flag->load(std::memory_order_relaxed);
}

void
throwIfCancelled(const char *what)
{
    if (cancelRequested())
        throw SimError(SimError::Kind::Timeout,
                       std::string("deadline exceeded: ") + what);
}

ScopedCrashDump::ScopedCrashDump(std::function<void()> fn)
{
    std::lock_guard<std::mutex> lock(dumpMutex());
    id_ = next_dump_id++;
    dumpRegistry().emplace(id_, std::move(fn));
}

ScopedCrashDump::~ScopedCrashDump()
{
    std::lock_guard<std::mutex> lock(dumpMutex());
    dumpRegistry().erase(id_);
}

namespace failure_detail
{

void
runCrashDumps()
{
    // Drain the registry before running anything: a dump that itself
    // panics re-enters with an empty registry and cannot recurse.
    std::map<std::uint64_t, std::function<void()>> dumps;
    {
        std::lock_guard<std::mutex> lock(dumpMutex());
        dumps.swap(dumpRegistry());
    }
    for (auto &[id, fn] : dumps) {
        (void)id;
        if (fn)
            fn();
    }
}

[[noreturn]] void
throwError(SimError::Kind kind, const char *file, int line,
           const std::string &msg)
{
    std::string what = SimError::kindName(kind);
    what += ": ";
    what += msg;
    what += " (";
    what += file;
    what += ":";
    what += std::to_string(line);
    what += ")";
    throw SimError(kind, what);
}

} // namespace failure_detail

} // namespace specslice
