/**
 * @file
 * Structured failure handling on top of the panic()/fatal() reporting
 * in common/logging.hh — the pieces that make a sweep crash-resilient:
 *
 *  - SimError: a typed exception carrying the failure kind (Panic,
 *    Fatal, Timeout) and the formatted message.
 *  - ScopedThrowErrors: while installed on a thread, SS_PANIC/SS_FATAL
 *    on that thread throw SimError instead of killing the process.
 *    sim::JobPool installs one around every settled job, so one bad
 *    configuration no longer takes down a 24-run sweep.
 *  - ScopedCancelFlag / cancelRequested(): a cooperative cancellation
 *    token. Long-running simulation loops poll cancelRequested() (one
 *    relaxed load) and throw SimError{Timeout} when it fires; the
 *    JobPool deadline monitor raises the flag when a job exceeds its
 *    wall-clock budget.
 *  - ScopedCrashDump: registers a callback the *dying* path of
 *    panic()/fatal() runs before the process exits, so a crashed run
 *    still flushes its observability artifacts (Chrome trace, interval
 *    partials) for post-mortem. Not run when the error is thrown as a
 *    SimError — the catch site owns the artifacts then.
 */

#ifndef SPECSLICE_COMMON_FAILURE_HH
#define SPECSLICE_COMMON_FAILURE_HH

#include <atomic>
#include <functional>
#include <stdexcept>
#include <string>

namespace specslice
{

/** A simulation failure turned into an exception (see above). */
class SimError : public std::runtime_error
{
  public:
    enum class Kind
    {
        Panic,    ///< internal invariant violation (SS_PANIC)
        Fatal,    ///< user/config error (SS_FATAL)
        Timeout,  ///< cooperative cancellation (deadline exceeded)
    };

    SimError(Kind kind, const std::string &msg)
        : std::runtime_error(msg), kind_(kind)
    {}

    Kind kind() const { return kind_; }

    static const char *kindName(Kind kind);

  private:
    Kind kind_;
};

/**
 * While alive, SS_PANIC/SS_FATAL on this thread throw SimError
 * (Panic/Fatal) instead of aborting/exiting. Nests; thread-local.
 */
class ScopedThrowErrors
{
  public:
    ScopedThrowErrors();
    ~ScopedThrowErrors();

    ScopedThrowErrors(const ScopedThrowErrors &) = delete;
    ScopedThrowErrors &operator=(const ScopedThrowErrors &) = delete;

    /** Is throw-mode active on the calling thread? */
    static bool active();
};

/**
 * Install a cancellation flag for the current thread. The flag is
 * owned by the caller (typically the JobPool deadline machinery) and
 * must outlive the scope; cancelRequested() reads it.
 */
class ScopedCancelFlag
{
  public:
    explicit ScopedCancelFlag(const std::atomic<bool> *flag);
    ~ScopedCancelFlag();

    ScopedCancelFlag(const ScopedCancelFlag &) = delete;
    ScopedCancelFlag &operator=(const ScopedCancelFlag &) = delete;
};

/** Has the current thread's cancellation flag been raised? Cheap
 *  (one relaxed load); false when no flag is installed. */
bool cancelRequested();

/** Throw SimError{Timeout} if the thread's cancel flag is raised. */
void throwIfCancelled(const char *what);

/**
 * Register a crash-dump callback for the lifetime of this object.
 * panic()/fatal() run all registered callbacks (once; the registry is
 * drained first so a callback that itself fails cannot recurse) right
 * before the process dies.
 */
class ScopedCrashDump
{
  public:
    explicit ScopedCrashDump(std::function<void()> fn);
    ~ScopedCrashDump();

    ScopedCrashDump(const ScopedCrashDump &) = delete;
    ScopedCrashDump &operator=(const ScopedCrashDump &) = delete;

  private:
    std::uint64_t id_;
};

namespace failure_detail
{

/** Drain and run every registered crash dump (dying path only). */
void runCrashDumps();

/** Throw the SimError for a panic/fatal in throw-mode. */
[[noreturn]] void throwError(SimError::Kind kind, const char *file,
                             int line, const std::string &msg);

} // namespace failure_detail

} // namespace specslice

#endif // SPECSLICE_COMMON_FAILURE_HH
