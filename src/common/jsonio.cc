#include "common/jsonio.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace specslice::json
{

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : s_(text), err_(error)
    {
    }

    std::optional<Value>
    run()
    {
        Value v;
        if (!parseValue(v, 0))
            return std::nullopt;
        skipWs();
        if (pos_ != s_.size()) {
            fail("trailing garbage after document");
            return std::nullopt;
        }
        return v;
    }

  private:
    static constexpr unsigned maxDepth = 64;

    bool
    fail(const std::string &msg)
    {
        if (err_.empty())
            err_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::char_traits<char>::length(word);
        if (s_.compare(pos_, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += n;
        return true;
    }

    bool
    parseValue(Value &out, unsigned depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        char c = s_[pos_];
        switch (c) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind = Value::Kind::String;
            return parseString(out.str);
          case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = Value::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out, unsigned depth)
    {
        out.kind = Value::Kind::Object;
        ++pos_;  // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            Value v;
            if (!parseValue(v, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated object");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out, unsigned depth)
    {
        out.kind = Value::Kind::Array;
        ++pos_;  // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            Value v;
            if (!parseValue(v, depth + 1))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated array");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_;  // '"'
        out.clear();
        while (pos_ < s_.size()) {
            char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                break;
            char e = s_[pos_++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (unsigned i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode (surrogate pairs are not recombined;
                // our emitters only produce \u00xx control escapes).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return fail("expected a value");
        std::string tok = s_.substr(start, pos_ - start);
        errno = 0;
        char *end = nullptr;
        out.kind = Value::Kind::Number;
        out.number = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0' || errno == ERANGE) {
            pos_ = start;
            return fail("malformed number");
        }
        if (integral) {
            errno = 0;
            long long iv = std::strtoll(tok.c_str(), &end, 10);
            if (end && *end == '\0' && errno != ERANGE) {
                out.isInt = true;
                out.intval = iv;
            }
        }
        return true;
    }

    const std::string &s_;
    std::string &err_;
    std::size_t pos_ = 0;
};

} // namespace

std::optional<Value>
parse(const std::string &text, std::string &error)
{
    error.clear();
    Parser p(text, error);
    return p.run();
}

} // namespace specslice::json
