#include "common/logging.hh"

#include "common/failure.hh"

namespace specslice
{
namespace logging_detail
{

namespace
{

/** Per-thread job tag state, installed by ScopedJobTag. */
thread_local long tls_job_index = -1;
thread_local std::string *tls_capture = nullptr;

/** Render "[jN] " when the thread is job-tagged, "" otherwise. */
std::string
jobPrefix()
{
    if (tls_job_index < 0)
        return {};
    return "[j" + std::to_string(tls_job_index) + "] ";
}

/** Flush whatever this thread buffered before dying (panic/fatal):
 *  buffered lines must not vanish with the process. */
void
dumpCaptureOnExit()
{
    if (tls_capture && !tls_capture->empty()) {
        std::lock_guard<std::mutex> lock(sinkMutex());
        std::fwrite(tls_capture->data(), 1, tls_capture->size(),
                    stderr);
        tls_capture->clear();
    }
}

} // namespace

std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

void
emitLine(const char *tag, const std::string &msg)
{
    std::string line = jobPrefix();
    if (tag) {
        line += tag;
        line += ": ";
    }
    line += msg;
    line += '\n';

    if (tls_capture) {
        tls_capture->append(line);
        return;
    }
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (ScopedThrowErrors::active())
        failure_detail::throwError(SimError::Kind::Panic, file, line,
                                   msg);
    dumpCaptureOnExit();
    // Dying for real: flush registered observability artifacts
    // (Chrome trace, interval partials) so the crash leaves a usable
    // post-mortem record.
    failure_detail::runCrashDumps();
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (ScopedThrowErrors::active())
        failure_detail::throwError(SimError::Kind::Fatal, file, line,
                                   msg);
    dumpCaptureOnExit();
    failure_detail::runCrashDumps();
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emitLine("warn", msg);
}

void
informImpl(const std::string &msg)
{
    emitLine("info", msg);
}

} // namespace logging_detail

ScopedJobTag::ScopedJobTag(long index, std::string *capture)
{
    logging_detail::tls_job_index = index;
    logging_detail::tls_capture = capture;
}

ScopedJobTag::~ScopedJobTag()
{
    logging_detail::tls_job_index = -1;
    logging_detail::tls_capture = nullptr;
}

long
ScopedJobTag::currentIndex()
{
    return logging_detail::tls_job_index;
}

void
ScopedJobTag::writeCaptured(const std::string &buffered)
{
    if (buffered.empty())
        return;
    std::lock_guard<std::mutex> lock(logging_detail::sinkMutex());
    std::fwrite(buffered.data(), 1, buffered.size(), stderr);
}

} // namespace specslice
