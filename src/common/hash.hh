/**
 * @file
 * Content hashing for the result cache and cache-key layer: a
 * dependency-free SHA-256 (the content address — collisions must be
 * cryptographically implausible, because a collision silently serves
 * the wrong experiment's numbers) plus streaming helpers for hashing
 * strings and whole files (the running binary's fingerprint).
 */

#ifndef SPECSLICE_COMMON_HASH_HH
#define SPECSLICE_COMMON_HASH_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace specslice
{

/** Incremental SHA-256 (FIPS 180-4). */
class Sha256
{
  public:
    Sha256() { reset(); }

    void reset();
    void update(const void *data, std::size_t len);

    void
    update(const std::string &s)
    {
        update(s.data(), s.size());
    }

    /** Finalize and return the 32-byte digest. The object must be
     *  reset() before further use. */
    std::array<std::uint8_t, 32> digest();

    /** Finalize and return the digest as 64 lowercase hex chars. */
    std::string hex();

  private:
    void compress(const std::uint8_t *block);

    std::array<std::uint32_t, 8> h_;
    std::uint8_t buf_[64];
    std::size_t bufLen_ = 0;
    std::uint64_t total_ = 0;
};

/** One-shot hex SHA-256 of a byte string. */
std::string sha256Hex(const std::string &data);

/**
 * Hex SHA-256 of a file's contents. @return "" (and sets error) when
 * the file cannot be read.
 */
std::string sha256FileHex(const std::string &path, std::string &error);

/**
 * Hex SHA-256 of the running executable (/proc/self/exe), computed
 * once and cached. This is the "binary fingerprint" component of every
 * cache key: any rebuild that changes the binary's bytes invalidates
 * all cached results and checkpoints derived from it. Falls back to
 * the empty string (never caches across binaries) if the executable
 * cannot be read.
 */
const std::string &binaryFingerprint();

} // namespace specslice

#endif // SPECSLICE_COMMON_HASH_HH
