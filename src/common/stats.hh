/**
 * @file
 * A small statistics package: named scalar counters grouped in a
 * registry, with formatted dumping. Modeled (loosely) on gem5's stats.
 */

#ifndef SPECSLICE_COMMON_STATS_HH
#define SPECSLICE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace specslice
{

/** A named group of scalar statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Add delta to the named counter (creating it at zero if new). */
    void add(const std::string &stat, std::uint64_t delta = 1);

    /** Set the named counter to an absolute value. */
    void set(const std::string &stat, std::uint64_t value);

    /** @return the value of the named counter (0 if never touched). */
    std::uint64_t get(const std::string &stat) const;

    /** @return value of numerator / value of denominator, or 0. */
    double ratio(const std::string &num, const std::string &den) const;

    /** Reset all counters to zero. */
    void reset();

    /** Merge another group's counters into this one (summing). */
    void merge(const StatGroup &other);

    const std::string &name() const { return name_; }
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    /** Dump all counters, one per line, as "<group>.<stat> <value>". */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace specslice

#endif // SPECSLICE_COMMON_STATS_HH
