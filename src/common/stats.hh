/**
 * @file
 * A small statistics package modeled (loosely) on gem5's stats: scalar
 * counters registered once per component and bumped through stable
 * handles on the hot path, with a string-keyed cold-path view
 * (get/dump/merge) for reporting and tests.
 *
 * Hot-path contract: a component calls StatGroup::scalar("name") once
 * at construction and stores the returned Stat reference; per-event
 * accounting is then a pointer-indirect increment, never a string
 * compare or a map walk.
 */

#ifndef SPECSLICE_COMMON_STATS_HH
#define SPECSLICE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace specslice
{

/**
 * A single registered scalar counter. Lives inside a StatGroup's map
 * (node-based, so the address is stable for the group's lifetime);
 * components hold references and increment through them directly.
 */
class Stat
{
  public:
    Stat &
    operator++()
    {
        ++value_;
        return *this;
    }

    Stat &
    operator+=(std::uint64_t delta)
    {
        value_ += delta;
        return *this;
    }

    Stat &
    operator=(std::uint64_t v)
    {
        value_ = v;
        return *this;
    }

    std::uint64_t value() const { return value_; }
    operator std::uint64_t() const { return value_; }

  private:
    friend class StatGroup;
    std::uint64_t value_ = 0;
};

/** A named group of scalar statistics. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /**
     * Register (or look up) the named counter and return a handle to
     * it. The reference remains valid for the group's lifetime;
     * reset() zeroes the counter without invalidating handles.
     * Registered counters appear in dump()/counters() even when zero.
     */
    Stat &scalar(const std::string &stat) { return counters_[stat]; }

    /** Add delta to the named counter (creating it at zero if new).
     *  Cold-path convenience; hot paths use scalar() handles. */
    void add(const std::string &stat, std::uint64_t delta = 1);

    /** Set the named counter to an absolute value. */
    void set(const std::string &stat, std::uint64_t value);

    /** @return the value of the named counter (0 if never touched). */
    std::uint64_t get(const std::string &stat) const;

    /**
     * @return value of numerator / value of denominator, or a quiet
     * NaN when the denominator is zero ("no data" is distinguishable
     * from a true 0.0 ratio; formatters print it as "n/a").
     */
    double ratio(const std::string &num, const std::string &den) const;

    /** Zero all counters in place. Registrations (and outstanding
     *  Stat handles) survive, so counters registered before a
     *  warm-up reset still appear — as 0 — in the final dump. */
    void reset();

    /**
     * A point-in-time copy of the counter values, used as the baseline
     * for interval (time-series) deltas.
     */
    using Snapshot = std::map<std::string, std::uint64_t>;

    /** @return the current value of every registered counter. */
    Snapshot snapshot() const;

    /**
     * @return per-counter increase since `since`, then advance `since`
     * to the current values. Counters that moved backwards (the group
     * was reset() in between) are counted from zero, so a sequence of
     * deltas taken across a reset still sums to the final counter
     * values. Counters absent from `since` (registered after the last
     * snapshot) count from zero too.
     */
    Snapshot snapshotDelta(Snapshot &since) const;

    /** Merge another group's counters into this one (summing). */
    void merge(const StatGroup &other);

    const std::string &name() const { return name_; }
    const std::map<std::string, Stat> &counters() const
    {
        return counters_;
    }

    /** Dump all counters, one per line, as "<group>.<stat> <value>". */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, Stat> counters_;
};

} // namespace specslice

#endif // SPECSLICE_COMMON_STATS_HH
