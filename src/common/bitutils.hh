/**
 * @file
 * Bit-manipulation helpers used by predictors and caches.
 */

#ifndef SPECSLICE_COMMON_BITUTILS_HH
#define SPECSLICE_COMMON_BITUTILS_HH

#include <cstdint>

#include "common/logging.hh"

namespace specslice
{

/** @return true if x is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** @return floor(log2(x)); x must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned l = 0;
    while (x >>= 1)
        ++l;
    return l;
}

/** @return ceil(log2(x)); x must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    return isPowerOf2(x) ? floorLog2(x) : floorLog2(x) + 1;
}

/** @return a mask of the low n bits (n <= 64). */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [lo, lo+n) of x. */
constexpr std::uint64_t
bits(std::uint64_t x, unsigned lo, unsigned n)
{
    return (x >> lo) & mask(n);
}

/** Sign-extend the low n bits of x to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t x, unsigned n)
{
    SS_ASSERT(n >= 1 && n <= 64, "bad width");
    if (n == 64)
        return static_cast<std::int64_t>(x);
    std::uint64_t sign = std::uint64_t{1} << (n - 1);
    return static_cast<std::int64_t>(((x & mask(n)) ^ sign)) -
           static_cast<std::int64_t>(sign);
}

/**
 * A small saturating counter, the building block of direction
 * predictors.
 */
class SatCounter
{
  public:
    explicit SatCounter(unsigned bits_ = 2, unsigned initial = 0)
        : max_((1u << bits_) - 1), value_(initial)
    {
        SS_ASSERT(bits_ >= 1 && bits_ <= 8, "bad counter width");
        SS_ASSERT(initial <= max_, "bad initial value");
    }

    void increment() { if (value_ < max_) ++value_; }
    void decrement() { if (value_ > 0) --value_; }

    /** Update toward taken (true) or not-taken (false). */
    void update(bool taken) { taken ? increment() : decrement(); }

    /** @return true if the counter predicts taken. */
    bool taken() const { return value_ > max_ / 2; }

    unsigned value() const { return value_; }
    unsigned maxValue() const { return max_; }

    void set(unsigned v) { SS_ASSERT(v <= max_, "overflow"); value_ = v; }

  private:
    unsigned max_;
    unsigned value_;
};

} // namespace specslice

#endif // SPECSLICE_COMMON_BITUTILS_HH
