#include "common/stats.hh"

namespace specslice
{

void
StatGroup::add(const std::string &stat, std::uint64_t delta)
{
    counters_[stat] += delta;
}

void
StatGroup::set(const std::string &stat, std::uint64_t value)
{
    counters_[stat] = value;
}

std::uint64_t
StatGroup::get(const std::string &stat) const
{
    auto it = counters_.find(stat);
    return it == counters_.end() ? 0 : it->second;
}

double
StatGroup::ratio(const std::string &num, const std::string &den) const
{
    std::uint64_t d = get(den);
    if (d == 0)
        return 0.0;
    return static_cast<double>(get(num)) / static_cast<double>(d);
}

void
StatGroup::reset()
{
    counters_.clear();
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[k, v] : counters_) {
        if (!name_.empty())
            os << name_ << '.';
        os << k << ' ' << v << '\n';
    }
}

} // namespace specslice
