#include "common/stats.hh"

#include <limits>

namespace specslice
{

void
StatGroup::add(const std::string &stat, std::uint64_t delta)
{
    counters_[stat] += delta;
}

void
StatGroup::set(const std::string &stat, std::uint64_t value)
{
    counters_[stat] = value;
}

std::uint64_t
StatGroup::get(const std::string &stat) const
{
    auto it = counters_.find(stat);
    return it == counters_.end() ? 0 : it->second.value();
}

double
StatGroup::ratio(const std::string &num, const std::string &den) const
{
    std::uint64_t d = get(den);
    if (d == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(get(num)) / static_cast<double>(d);
}

void
StatGroup::reset()
{
    // Zero in place: handles returned by scalar() stay valid, and
    // counters registered before the reset remain visible afterwards.
    for (auto &[k, v] : counters_)
        v = 0;
}

StatGroup::Snapshot
StatGroup::snapshot() const
{
    Snapshot snap;
    for (const auto &[k, v] : counters_)
        snap.emplace(k, v.value());
    return snap;
}

StatGroup::Snapshot
StatGroup::snapshotDelta(Snapshot &since) const
{
    Snapshot delta;
    for (const auto &[k, v] : counters_) {
        std::uint64_t cur = v.value();
        auto it = since.find(k);
        std::uint64_t base =
            it == since.end() ? 0 : it->second;
        // A counter below its baseline means the group was reset()
        // since the last snapshot: everything accumulated so far is
        // new.
        delta.emplace(k, cur >= base ? cur - base : cur);
    }
    since = snapshot();
    return delta;
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v.value();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[k, v] : counters_) {
        if (!name_.empty())
            os << name_ << '.';
        os << k << ' ' << v.value() << '\n';
    }
}

} // namespace specslice
