/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * construction. A fixed algorithm (xorshift*) keeps workloads and thus
 * experiment results reproducible across platforms and standard-library
 * versions.
 */

#ifndef SPECSLICE_COMMON_RNG_HH
#define SPECSLICE_COMMON_RNG_HH

#include <cstdint>

#include "common/logging.hh"

namespace specslice
{

/** xorshift64* generator: small, fast, good-enough statistics. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** @return the next 64-bit pseudo-random value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** @return a value uniformly distributed in [0, bound). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        SS_ASSERT(bound > 0, "bound must be positive");
        return next() % bound;
    }

    /** @return a value uniformly distributed in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        SS_ASSERT(lo <= hi, "empty range");
        return lo + below(hi - lo + 1);
    }

    /** @return true with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** @return a double uniformly distributed in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

} // namespace specslice

#endif // SPECSLICE_COMMON_RNG_HH
