/**
 * @file
 * A small open-addressed hash map for hot-path indexes keyed by
 * integers (addresses, tokens). Linear probing over a power-of-two
 * cell array with tombstoned deletion: lookups are one mixed hash and
 * a short contiguous probe — no node allocation, no bucket chains,
 * and no per-lookup indirection beyond the cell array itself.
 *
 * Semantics are the subset of std::unordered_map the simulator's
 * index structures need: find / operator[] / erase / size / clear.
 * Iteration order is unspecified (callers that need ordered walks
 * keep their own ordered container and use the map as an index).
 */

#ifndef SPECSLICE_COMMON_OPEN_HASH_HH
#define SPECSLICE_COMMON_OPEN_HASH_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace specslice
{

/** splitmix64 finalizer: cheap, well-mixed integer hash. */
inline std::uint64_t
mixHash(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

template <typename Key, typename Value>
class OpenHashMap
{
  public:
    /** @return the value mapped at key, or nullptr. */
    Value *
    find(const Key &key)
    {
        if (cells_.empty())
            return nullptr;
        std::size_t i = probeStart(key);
        for (;;) {
            Cell &c = cells_[i];
            if (c.state == State::Empty)
                return nullptr;
            if (c.state == State::Full && c.key == key)
                return &c.value;
            i = (i + 1) & mask();
        }
    }

    const Value *
    find(const Key &key) const
    {
        return const_cast<OpenHashMap *>(this)->find(key);
    }

    bool contains(const Key &key) const { return find(key) != nullptr; }

    /** @return the value at key, default-constructing it if absent. */
    Value &
    operator[](const Key &key)
    {
        maybeGrow();
        std::size_t i = probeStart(key);
        std::size_t first_tomb = notFound;
        for (;;) {
            Cell &c = cells_[i];
            if (c.state == State::Full && c.key == key)
                return c.value;
            if (c.state == State::Tombstone && first_tomb == notFound)
                first_tomb = i;
            if (c.state == State::Empty) {
                std::size_t target =
                    first_tomb != notFound ? first_tomb : i;
                Cell &t = cells_[target];
                if (t.state == State::Tombstone)
                    --tombstones_;
                t.state = State::Full;
                t.key = key;
                t.value = Value{};
                ++size_;
                return t.value;
            }
            i = (i + 1) & mask();
        }
    }

    /** Insert or overwrite. */
    void
    insert(const Key &key, Value value)
    {
        (*this)[key] = std::move(value);
    }

    /** @return true if the key was present. */
    bool
    erase(const Key &key)
    {
        if (cells_.empty())
            return false;
        std::size_t i = probeStart(key);
        for (;;) {
            Cell &c = cells_[i];
            if (c.state == State::Empty)
                return false;
            if (c.state == State::Full && c.key == key) {
                c.state = State::Tombstone;
                c.value = Value{};  // release held storage promptly
                --size_;
                ++tombstones_;
                return true;
            }
            i = (i + 1) & mask();
        }
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        cells_.clear();
        size_ = 0;
        tombstones_ = 0;
    }

    /** Visit every (key, value) pair, in unspecified order. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const Cell &c : cells_) {
            if (c.state == State::Full)
                fn(c.key, c.value);
        }
    }

  private:
    enum class State : std::uint8_t { Empty = 0, Tombstone, Full };

    struct Cell
    {
        Key key{};
        Value value{};
        State state = State::Empty;
    };

    static constexpr std::size_t notFound = ~std::size_t{0};
    static constexpr std::size_t initialCapacity = 16;

    std::size_t mask() const { return cells_.size() - 1; }

    std::size_t
    probeStart(const Key &key) const
    {
        return static_cast<std::size_t>(
                   mixHash(static_cast<std::uint64_t>(key))) &
               mask();
    }

    void
    maybeGrow()
    {
        if (cells_.empty()) {
            cells_.resize(initialCapacity);
            return;
        }
        // Rehash at 70% occupancy (live + tombstones) so probes stay
        // short; rebuilding also sweeps the tombstones out.
        if ((size_ + tombstones_) * 10 < cells_.size() * 7)
            return;
        std::vector<Cell> old;
        old.swap(cells_);
        // Grow only if the live count justifies it; a tombstone-heavy
        // table rehashes at the same size.
        std::size_t cap = old.size();
        if (size_ * 10 >= cap * 5)
            cap *= 2;
        cells_.resize(cap);
        size_ = 0;
        tombstones_ = 0;
        for (Cell &c : old) {
            if (c.state == State::Full)
                (*this)[c.key] = std::move(c.value);
        }
    }

    std::vector<Cell> cells_;
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;
};

} // namespace specslice

#endif // SPECSLICE_COMMON_OPEN_HASH_HH
