/**
 * @file
 * Error and status reporting in the gem5 style: panic() for internal
 * invariant violations, fatal() for user errors, warn()/inform() for
 * status messages.
 *
 * All non-fatal output funnels through a single mutexed, line-buffered
 * sink so messages emitted concurrently (e.g. from sim::JobPool
 * workers) never interleave mid-line. A thread can additionally be
 * tagged with a job index (ScopedJobTag): its lines are then prefixed
 * with "[jN] " and, when a capture buffer is installed, accumulated
 * there instead of written directly — the pool flushes captured
 * buffers in submission order, making parallel-sweep output
 * byte-identical to a serial run.
 */

#ifndef SPECSLICE_COMMON_LOGGING_HH
#define SPECSLICE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>

namespace specslice
{

namespace logging_detail
{

/** Concatenate a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** The mutex every line-granular emitter serializes on. */
std::mutex &sinkMutex();

/**
 * Emit one complete line ("<tag>: <msg>\n", or "[jN] <tag>: <msg>\n"
 * from a job-tagged thread) through the shared sink: appended to the
 * thread's capture buffer when one is installed, otherwise written to
 * stderr under sinkMutex(). A null tag emits the message verbatim
 * (used by the trace sink, which formats its own prefixes).
 */
void emitLine(const char *tag, const std::string &msg);

} // namespace logging_detail

/**
 * Tag the current thread's log/trace lines with a job index and
 * (optionally) buffer them for an ordered flush. Used by sim::JobPool
 * around each task; nesting is not supported.
 */
class ScopedJobTag
{
  public:
    /**
     * @param index submission index of the job (>= 0)
     * @param capture when non-null, lines are appended here (already
     *        prefixed) instead of being written to stderr; the caller
     *        flushes the buffer when it chooses (writeCaptured()).
     */
    ScopedJobTag(long index, std::string *capture);
    ~ScopedJobTag();

    ScopedJobTag(const ScopedJobTag &) = delete;
    ScopedJobTag &operator=(const ScopedJobTag &) = delete;

    /** The current thread's job index, or -1 when untagged. */
    static long currentIndex();

    /** Write a captured buffer to stderr under the sink mutex. */
    static void writeCaptured(const std::string &buffered);
};

/** Abort: an internal simulator invariant was violated (a bug). */
#define SS_PANIC(...)                                                     \
    ::specslice::logging_detail::panicImpl(                               \
        __FILE__, __LINE__, ::specslice::logging_detail::concat(__VA_ARGS__))

/** Exit: the simulation cannot continue due to a user/config error. */
#define SS_FATAL(...)                                                     \
    ::specslice::logging_detail::fatalImpl(                               \
        __FILE__, __LINE__, ::specslice::logging_detail::concat(__VA_ARGS__))

/** Non-fatal warning to the user. */
#define SS_WARN(...)                                                      \
    ::specslice::logging_detail::warnImpl(                                \
        ::specslice::logging_detail::concat(__VA_ARGS__))

/** Informational status message. */
#define SS_INFORM(...)                                                    \
    ::specslice::logging_detail::informImpl(                              \
        ::specslice::logging_detail::concat(__VA_ARGS__))

/** Panic when a condition that must hold does not. */
#define SS_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            SS_PANIC("assertion '", #cond, "' failed: ",                  \
                     ::specslice::logging_detail::concat(__VA_ARGS__));   \
        }                                                                 \
    } while (0)

} // namespace specslice

#endif // SPECSLICE_COMMON_LOGGING_HH
