/**
 * @file
 * Error and status reporting in the gem5 style: panic() for internal
 * invariant violations, fatal() for user errors, warn()/inform() for
 * status messages.
 */

#ifndef SPECSLICE_COMMON_LOGGING_HH
#define SPECSLICE_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace specslice
{

namespace logging_detail
{

/** Concatenate a parameter pack into a string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace logging_detail

/** Abort: an internal simulator invariant was violated (a bug). */
#define SS_PANIC(...)                                                     \
    ::specslice::logging_detail::panicImpl(                               \
        __FILE__, __LINE__, ::specslice::logging_detail::concat(__VA_ARGS__))

/** Exit: the simulation cannot continue due to a user/config error. */
#define SS_FATAL(...)                                                     \
    ::specslice::logging_detail::fatalImpl(                               \
        __FILE__, __LINE__, ::specslice::logging_detail::concat(__VA_ARGS__))

/** Non-fatal warning to the user. */
#define SS_WARN(...)                                                      \
    ::specslice::logging_detail::warnImpl(                                \
        ::specslice::logging_detail::concat(__VA_ARGS__))

/** Informational status message. */
#define SS_INFORM(...)                                                    \
    ::specslice::logging_detail::informImpl(                              \
        ::specslice::logging_detail::concat(__VA_ARGS__))

/** Panic when a condition that must hold does not. */
#define SS_ASSERT(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            SS_PANIC("assertion '", #cond, "' failed: ",                  \
                     ::specslice::logging_detail::concat(__VA_ARGS__));   \
        }                                                                 \
    } while (0)

} // namespace specslice

#endif // SPECSLICE_COMMON_LOGGING_HH
