/**
 * @file
 * Seeded, deterministic fault injection.
 *
 * A FaultPlan is parsed from a `--inject` / SS_INJECT spec string and
 * describes *where* and *how often* to perturb the simulation; an
 * Injector is the per-run instance that decides, deterministically,
 * whether a given tap event fires. Simulation units (memory hierarchy,
 * predictor, correlator, core) hold an `Injector *` and ask it at
 * their tap points; a null or inactive injector costs one predictable
 * branch.
 *
 * Spec grammar (comma-separated list of faults):
 *
 *     spec  := fault ("," fault)*
 *     fault := site [":" ["+"] uint] "@" trigger
 *     trigger := "p" float          fire with probability p per event
 *              | "n" uint           fire on every Nth event (1-based)
 *
 * Sites:
 *
 *     mem.latency   add `arg` extra cycles to a data access
 *                   (default +200)
 *     mem.wbstall   reject a store write-back (retirement retries
 *                   next cycle; `@p1` produces a genuine livelock)
 *     slice.kill    terminate a forked slice thread `arg` cycles
 *                   after the fork (default 64)
 *     pred.flip     invert one conditional-branch prediction
 *     corr.drop     drop one correlator PGI activation (no branch
 *                   queue is armed)
 *     check.reg     corrupt the Nth checked register result
 *                   (requires @nN; exercises the checker itself)
 *     check.store   corrupt the Nth checked store value (requires @nN)
 *
 * Service-level sites (fired by the sweep service's daemon/worker
 * processes, not by the simulator — see isServiceSite()):
 *
 *     serve.wedge   wedge a worker for `arg` ms before running a job
 *                   (default 60000; a request deadline ends it)
 *     serve.crash   kill the worker process mid-job (SIGKILL)
 *     cache.enospc  fail a result-cache store as if the disk were
 *                   full (the cache degrades to pass-through)
 *     cache.flip    flip one payload bit on a cache read (the entry
 *                   is checksum-rejected and quarantined)
 *     sock.drop     close a client connection mid-response
 *
 * Example: `mem.latency:+200@p0.01,slice.kill@n5`.
 *
 * Determinism: each site gets its own RNG stream seeded from
 * `plan.seed ^ f(site)` and its own event counter, so firing decisions
 * depend only on (seed, site, event index) — never on wall clock,
 * thread scheduling, or other sites. A sweep produces identical
 * results at `--jobs 1` and `--jobs 8`.
 *
 * No StatGroup counters are registered: fired counts live in the
 * Injector and surface through RunResult, so golden stat digests are
 * byte-identical whether or not injection is compiled in or enabled.
 */

#ifndef SPECSLICE_FAULT_FAULT_HH
#define SPECSLICE_FAULT_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace specslice::fault
{

/** Every tap point the injector knows about. */
enum class Site
{
    MemLatency,
    MemWbStall,
    SliceKill,
    PredFlip,
    CorrDrop,
    CheckReg,
    CheckStore,
    ServeWedge,
    ServeCrash,
    CacheEnospc,
    CacheFlip,
    SockDrop,
    NumSites,
};

constexpr std::size_t numSites =
    static_cast<std::size_t>(Site::NumSites);

/** Spec-string name of a site ("mem.latency", ...). */
const char *siteName(Site site);

/** True for the serve/cache/sock sites that tap the sweep
 *  service's request path rather than the simulator core. They are
 *  inert inside a simulation (`specslice_run --inject` rejects them)
 *  and only fire when the daemon/worker processes consult the
 *  process-wide service injector below. */
bool isServiceSite(Site site);

/** One parsed fault from the spec string. */
struct FaultSpec
{
    Site site = Site::NumSites;
    bool periodic = false;    ///< true: fire every `period` events
    std::uint64_t period = 0; ///< for @nN triggers
    double prob = 0.0;        ///< for @pX triggers
    std::uint64_t arg = 0;    ///< site argument (latency, delay, ...)
};

/**
 * A parsed, validated injection plan: what to inject, plus the seed
 * that makes every run of the plan deterministic.
 */
struct FaultPlan
{
    std::vector<FaultSpec> specs;
    std::uint64_t seed = 0;

    bool empty() const { return specs.empty(); }

    /** Does the plan name any simulator-core site? */
    bool hasSimSites() const;

    /** Does the plan name any service-level site? */
    bool hasServiceSites() const;

    /** Canonical one-line rendering of the plan ("" when empty). */
    std::string describe() const;

    /**
     * Parse a spec string (see grammar above) into `plan.specs`.
     * Leaves `plan.seed` untouched. On failure returns false and sets
     * `err` to a message naming the offending token and the valid
     * sites/grammar.
     */
    static bool parse(const std::string &text, FaultPlan &plan,
                     std::string &err);

    /** The grammar/site help text used in parse errors and --help. */
    static std::string grammarHelp();
};

/**
 * Per-run injection state. Construct one per simulation run from the
 * plan; hand `Injector *` to the units that host tap points. fire()
 * advances per-site counters/RNG streams, so the object must not be
 * shared across concurrently running simulations.
 */
class Injector
{
  public:
    Injector() = default;
    explicit Injector(const FaultPlan &plan);

    /** Is any fault configured at all? */
    bool enabled() const { return enabled_; }

    /** Is this particular site armed? */
    bool armed(Site site) const { return slot(site).active; }

    /**
     * Record one tap event at `site` and decide whether the fault
     * fires on it. Deterministic given (plan.seed, site, event index).
     */
    bool
    fire(Site site)
    {
        Slot &s = slot(site);
        if (!s.active)
            return false;
        return fireSlow(s);
    }

    /** The site argument (extra latency, kill delay, ...). */
    std::uint64_t arg(Site site) const { return slot(site).arg; }

    /** How many times `site` has fired this run. */
    std::uint64_t firedAt(Site site) const { return slot(site).fired; }

    /** Total fires across all sites this run. */
    std::uint64_t firedTotal() const;

    /** "site=count,site=count" for sites that fired ("" if none). */
    std::string firedSummary() const;

  private:
    struct Slot
    {
        bool active = false;
        bool periodic = false;
        std::uint64_t period = 0;
        double prob = 0.0;
        std::uint64_t arg = 0;
        std::uint64_t events = 0;
        std::uint64_t fired = 0;
        Rng rng;
    };

    Slot &slot(Site site) { return slots_[static_cast<std::size_t>(site)]; }
    const Slot &
    slot(Site site) const
    {
        return slots_[static_cast<std::size_t>(site)];
    }

    bool fireSlow(Slot &s);

    Slot slots_[numSites];
    bool enabled_ = false;
};

/**
 * Install (or clear, with nullptr) the process-wide injector for
 * service-level sites. The sweep service's daemon installs one built
 * from its --inject/SS_INJECT plan; each forked worker installs its
 * own with a per-lane seed so firing patterns are deterministic per
 * process. Not thread-safe by design: install once at startup,
 * before the request loop (or worker job loop) begins.
 */
void setServiceInjector(Injector *inj);

/** The installed service injector, or nullptr. */
Injector *serviceInjector();

/** Convenience: fire `site` on the service injector if one is
 *  installed and armed there; false otherwise. */
bool serviceFire(Site site);

/** The site argument from the service injector (0 if none). */
std::uint64_t serviceArg(Site site);

} // namespace specslice::fault

#endif // SPECSLICE_FAULT_FAULT_HH
