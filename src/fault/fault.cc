#include "fault/fault.hh"

#include <cstdio>
#include <cstdlib>

namespace specslice::fault
{

namespace
{

struct SiteInfo
{
    Site site;
    const char *name;
    const char *help;
    std::uint64_t defaultArg; ///< 0 = site takes no argument
    bool requiresPeriodic;    ///< check.* must use @nN
};

constexpr SiteInfo site_table[] = {
    {Site::MemLatency, "mem.latency",
     "add ARG extra cycles to a data access (default +200)", 200,
     false},
    {Site::MemWbStall, "mem.wbstall",
     "reject a store write-back (retirement retries)", 0, false},
    {Site::SliceKill, "slice.kill",
     "kill a forked slice ARG cycles after fork (default 64)", 64,
     false},
    {Site::PredFlip, "pred.flip",
     "invert one conditional-branch prediction", 0, false},
    {Site::CorrDrop, "corr.drop",
     "drop one correlator PGI activation", 0, false},
    {Site::CheckReg, "check.reg",
     "corrupt the Nth checked register result (requires @nN)", 0,
     true},
    {Site::CheckStore, "check.store",
     "corrupt the Nth checked store value (requires @nN)", 0, true},
    {Site::ServeWedge, "serve.wedge",
     "wedge a service worker for ARG ms before a job "
     "(default 60000)",
     60000, false},
    {Site::ServeCrash, "serve.crash",
     "kill the service worker process mid-job", 0, false},
    {Site::CacheEnospc, "cache.enospc",
     "fail a result-cache store as if the disk were full", 0, false},
    {Site::CacheFlip, "cache.flip",
     "flip one payload bit on a result-cache read", 0, false},
    {Site::SockDrop, "sock.drop",
     "close a client connection mid-response", 0, false},
};

static_assert(sizeof(site_table) / sizeof(site_table[0]) == numSites,
              "site_table must cover every Site");

const SiteInfo *
lookupSite(const std::string &name)
{
    for (const SiteInfo &info : site_table)
        if (name == info.name)
            return &info;
    return nullptr;
}

/** Trim ASCII whitespace from both ends. */
std::string
trimmed(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return {};
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

bool
parseUint(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseProb(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size())
        return false;
    if (v < 0.0 || v > 1.0)
        return false;
    out = v;
    return true;
}

/** Parse one `site[:[+]ARG]@trigger` token into `spec`. */
bool
parseFault(const std::string &token, FaultSpec &spec, std::string &err)
{
    std::size_t at = token.rfind('@');
    if (at == std::string::npos) {
        err = "missing '@trigger' in '" + token + "'";
        return false;
    }

    std::string head = token.substr(0, at);
    std::string trig = token.substr(at + 1);

    std::string name = head;
    std::string arg_text;
    std::size_t colon = head.find(':');
    if (colon != std::string::npos) {
        name = head.substr(0, colon);
        arg_text = head.substr(colon + 1);
        if (!arg_text.empty() && arg_text[0] == '+')
            arg_text.erase(0, 1);
    }

    const SiteInfo *info = lookupSite(name);
    if (!info) {
        err = "unknown fault site '" + name + "'";
        return false;
    }
    spec.site = info->site;

    spec.arg = info->defaultArg;
    if (colon != std::string::npos) {
        if (info->defaultArg == 0) {
            err = "site '" + name + "' takes no ':ARG'";
            return false;
        }
        if (!parseUint(arg_text, spec.arg) || spec.arg == 0) {
            err = "bad argument '" + arg_text + "' for '" + name +
                  "' (want a positive integer)";
            return false;
        }
    }

    if (trig.size() < 2) {
        err = "bad trigger '@" + trig + "' in '" + token + "'";
        return false;
    }
    char mode = trig[0];
    std::string value = trig.substr(1);
    if (mode == 'p') {
        if (!parseProb(value, spec.prob)) {
            err = "bad probability '" + value + "' in '" + token +
                  "' (want a float in [0,1])";
            return false;
        }
        spec.periodic = false;
    } else if (mode == 'n') {
        if (!parseUint(value, spec.period) || spec.period == 0) {
            err = "bad period '" + value + "' in '" + token +
                  "' (want a positive integer)";
            return false;
        }
        spec.periodic = true;
    } else {
        err = "bad trigger '@" + trig + "' in '" + token +
              "' (want @pFLOAT or @nUINT)";
        return false;
    }

    if (info->requiresPeriodic && !spec.periodic) {
        err = "site '" + name +
              "' requires a one-shot '@nN' trigger, not '@p'";
        return false;
    }
    return true;
}

/** Render one spec in canonical grammar form. */
std::string
describeSpec(const FaultSpec &spec)
{
    std::string out = siteName(spec.site);
    const SiteInfo &info =
        site_table[static_cast<std::size_t>(spec.site)];
    if (info.defaultArg != 0 && spec.arg != info.defaultArg)
        out += ":" + std::to_string(spec.arg);
    if (spec.periodic) {
        out += "@n" + std::to_string(spec.period);
    } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "@p%g", spec.prob);
        out += buf;
    }
    return out;
}

} // namespace

const char *
siteName(Site site)
{
    std::size_t i = static_cast<std::size_t>(site);
    if (i >= numSites)
        return "invalid";
    return site_table[i].name;
}

bool
isServiceSite(Site site)
{
    return site >= Site::ServeWedge && site < Site::NumSites;
}

bool
FaultPlan::hasSimSites() const
{
    for (const FaultSpec &spec : specs)
        if (!isServiceSite(spec.site))
            return true;
    return false;
}

bool
FaultPlan::hasServiceSites() const
{
    for (const FaultSpec &spec : specs)
        if (isServiceSite(spec.site))
            return true;
    return false;
}

std::string
FaultPlan::describe() const
{
    std::string out;
    for (const FaultSpec &spec : specs) {
        if (!out.empty())
            out += ",";
        out += describeSpec(spec);
    }
    return out;
}

bool
FaultPlan::parse(const std::string &text, FaultPlan &plan,
                 std::string &err)
{
    plan.specs.clear();
    bool seen[numSites] = {};

    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        std::string token = trimmed(
            text.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos));
        pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
        if (token.empty()) {
            if (comma == std::string::npos && plan.specs.empty() &&
                trimmed(text).empty()) {
                // An all-whitespace spec string means "no injection".
                return true;
            }
            err = "empty fault token in injection spec";
            return false;
        }

        FaultSpec spec;
        if (!parseFault(token, spec, err))
            return false;
        std::size_t idx = static_cast<std::size_t>(spec.site);
        if (seen[idx]) {
            err = std::string("duplicate fault site '") +
                  siteName(spec.site) + "'";
            return false;
        }
        seen[idx] = true;
        plan.specs.push_back(spec);
    }
    return true;
}

std::string
FaultPlan::grammarHelp()
{
    std::string out =
        "injection spec grammar: SITE[:[+]ARG]@pFLOAT or "
        "SITE[:[+]ARG]@nUINT, comma-separated\n"
        "valid sites:\n";
    for (const SiteInfo &info : site_table) {
        out += "  ";
        out += info.name;
        out += "  ";
        out += info.help;
        out += "\n";
    }
    out += "example: mem.latency:+200@p0.01,slice.kill@n5\n";
    return out;
}

Injector::Injector(const FaultPlan &plan)
{
    for (const FaultSpec &spec : plan.specs) {
        Slot &s = slots_[static_cast<std::size_t>(spec.site)];
        s.active = true;
        s.periodic = spec.periodic;
        s.period = spec.period;
        s.prob = spec.prob;
        s.arg = spec.arg;
        // Per-site stream: firing at one site never perturbs the
        // decisions at another, so partial plans reproduce subsets
        // of a full plan's behavior.
        std::uint64_t idx = static_cast<std::uint64_t>(spec.site);
        s.rng = Rng(plan.seed ^ (0x9e3779b97f4a7c15ull * (idx + 1)));
        enabled_ = true;
    }
}

bool
Injector::fireSlow(Slot &s)
{
    ++s.events;
    bool hit = s.periodic ? (s.events % s.period == 0)
                          : (s.rng.uniform() < s.prob);
    if (hit)
        ++s.fired;
    return hit;
}

std::uint64_t
Injector::firedTotal() const
{
    std::uint64_t total = 0;
    for (const Slot &s : slots_)
        total += s.fired;
    return total;
}

std::string
Injector::firedSummary() const
{
    std::string out;
    for (std::size_t i = 0; i < numSites; ++i) {
        if (slots_[i].fired == 0)
            continue;
        if (!out.empty())
            out += ",";
        out += site_table[i].name;
        out += "=";
        out += std::to_string(slots_[i].fired);
    }
    return out;
}

namespace
{
Injector *g_service_injector = nullptr;
} // namespace

void
setServiceInjector(Injector *inj)
{
    g_service_injector = inj;
}

Injector *
serviceInjector()
{
    return g_service_injector;
}

bool
serviceFire(Site site)
{
    return g_service_injector && g_service_injector->fire(site);
}

std::uint64_t
serviceArg(Site site)
{
    return g_service_injector ? g_service_injector->arg(site) : 0;
}

} // namespace specslice::fault
