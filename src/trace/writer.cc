#include "trace/writer.hh"

#include "isa/encoding.hh"

namespace specslice::trace
{

namespace
{

constexpr std::uint64_t fnvOffset = 1469598103934665603ull;
constexpr std::uint64_t fnvPrime = 1099511628211ull;

std::uint64_t
fnv1a(std::uint64_t h, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
    return h;
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b), sizeof(b));
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(b), sizeof(b));
}

void
putString(std::ostream &os, const std::string &s)
{
    putU32(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/** Serialized size of one length-prefixed string. */
std::uint64_t
stringBytes(const std::string &s)
{
    return 4 + s.size();
}

std::uint64_t
pcVectorBytes(const std::vector<Addr> &v)
{
    return 4 + 8 * v.size();
}

void
putPcVector(std::ostream &os, const std::vector<Addr> &v)
{
    putU32(os, static_cast<std::uint32_t>(v.size()));
    for (Addr a : v)
        putU64(os, a);
}

std::uint64_t
sliceBytes(const slice::SliceDescriptor &s)
{
    return stringBytes(s.name) + 8 /*forkPc*/ + 8 /*slicePc*/ +
           4 + s.liveIns.size() + 4 /*maxLoopIters*/ +
           8 /*loopBackEdgePc*/ + 4 + 34 * s.pgis.size() +
           pcVectorBytes(s.coveredLoadPcs) +
           pcVectorBytes(s.coveredBranchPcs) +
           pcVectorBytes(s.prefetchLoadPcs) + 4 /*staticSize*/ +
           4 /*staticSizeInLoop*/;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path, const TraceMeta &meta)
    : os_(path, std::ios::binary | std::ios::trunc),
      recsFnv_(fnvOffset)
{
    if (!os_) {
        fail("cannot open '" + path + "' for writing");
        return;
    }
    os_.write(traceMagic, sizeof(traceMagic));
    putU32(os_, traceFormatVersion);
    putU64(os_, 0);  // flags (reserved)
    countPos_ = os_.tellp();
    putU64(os_, 0);  // recordCount, patched by finalize()
    putU64(os_, meta.entryPc);
    putU64(os_, meta.programFingerprint);
    putU64(os_, meta.dataSeed);
    putU64(os_, meta.scale);
    putString(os_, meta.name);
}

void
TraceWriter::fail(const std::string &what)
{
    if (error_.empty())
        error_ = what;
}

void
TraceWriter::beginSection(std::uint32_t tag, std::uint64_t size)
{
    putU32(os_, tag);
    putU64(os_, size);
}

void
TraceWriter::writeProgram(const isa::Program &program)
{
    if (!ok() || recsOpen_)
        return;
    std::uint64_t size = 8;  // nsections
    for (const isa::CodeSection &s : program.sections())
        size += 16 + 8 * s.code.size();
    size += 8;  // nsymbols
    for (const auto &[name, addr] : program.symbols()) {
        size += stringBytes(name) + 8;
        (void)addr;
    }

    beginSection(tagProgram, size);
    putU64(os_, program.sections().size());
    for (const isa::CodeSection &s : program.sections()) {
        putU64(os_, s.base);
        putU64(os_, s.code.size());
        Addr pc = s.base;
        for (const isa::Instruction &inst : s.code) {
            putU64(os_, isa::encode(inst, pc));
            pc += isa::instBytes;
        }
    }
    putU64(os_, program.symbols().size());
    for (const auto &[name, addr] : program.symbols()) {
        putString(os_, name);
        putU64(os_, addr);
    }
}

void
TraceWriter::writeSlices(const std::vector<slice::SliceDescriptor> &slices)
{
    if (!ok() || recsOpen_)
        return;
    std::uint64_t size = 8;  // count
    for (const slice::SliceDescriptor &s : slices)
        size += sliceBytes(s);

    beginSection(tagSlices, size);
    putU64(os_, slices.size());
    for (const slice::SliceDescriptor &s : slices) {
        putString(os_, s.name);
        putU64(os_, s.forkPc);
        putU64(os_, s.slicePc);
        putU32(os_, static_cast<std::uint32_t>(s.liveIns.size()));
        for (RegIndex r : s.liveIns)
            os_.put(static_cast<char>(r));
        putU32(os_, s.maxLoopIters);
        putU64(os_, s.loopBackEdgePc);
        putU32(os_, static_cast<std::uint32_t>(s.pgis.size()));
        for (const slice::PgiSpec &p : s.pgis) {
            putU64(os_, p.sliceInstPc);
            putU64(os_, p.problemBranchPc);
            putU64(os_, p.loopKillPc);
            putU64(os_, p.sliceKillPc);
            os_.put(p.invert ? 1 : 0);
            os_.put(p.loopKillSkipFirst ? 1 : 0);
        }
        putPcVector(os_, s.coveredLoadPcs);
        putPcVector(os_, s.coveredBranchPcs);
        putPcVector(os_, s.prefetchLoadPcs);
        putU32(os_, s.staticSize);
        putU32(os_, s.staticSizeInLoop);
    }
}

void
TraceWriter::writeMemory(const arch::MemoryImage &mem)
{
    if (!ok() || recsOpen_)
        return;
    std::vector<Addr> pages;
    for (Addr pnum : mem.pageNumbers()) {
        const std::uint8_t *data = mem.pageData(pnum);
        bool all_zero = true;
        for (std::size_t i = 0; i < arch::MemoryImage::pageSize; ++i) {
            if (data[i]) {
                all_zero = false;
                break;
            }
        }
        if (!all_zero)
            pages.push_back(pnum);
    }

    beginSection(tagMemory,
                 8 + pages.size() * (8 + arch::MemoryImage::pageSize));
    putU64(os_, pages.size());
    for (Addr pnum : pages) {
        putU64(os_, pnum);
        os_.write(reinterpret_cast<const char *>(mem.pageData(pnum)),
                  arch::MemoryImage::pageSize);
    }
}

void
TraceWriter::append(const TraceRecord &rec)
{
    if (!ok() || finalized_)
        return;
    if (!recsOpen_) {
        beginSection(tagRecords, 0);  // size patched by finalize()
        recsSizePos_ = os_.tellp() - std::streamoff(8);
        recsOpen_ = true;
    }

    std::uint8_t head = static_cast<std::uint8_t>(rec.kind);
    if (rec.taken)
        head |= 0x10;
    chunk_.push_back(static_cast<char>(head));
    const auto pc = static_cast<std::int64_t>(rec.pc);
    putVarint(chunk_, zigzagEncode(pc - prevNext_));
    prevNext_ = pc + static_cast<std::int64_t>(isa::instBytes);
    if (kindHasTarget(rec.kind))
        putVarint(chunk_,
                  zigzagEncode(static_cast<std::int64_t>(rec.target) -
                               pc));
    if (kindHasMemAddr(rec.kind)) {
        const auto addr = static_cast<std::int64_t>(rec.memAddr);
        putVarint(chunk_, zigzagEncode(addr - prevMem_));
        prevMem_ = addr;
    }
    ++records_;
    if (++chunkRecords_ >= recordsPerChunk)
        flushChunk();
}

void
TraceWriter::flushChunk()
{
    if (!chunkRecords_)
        return;
    putU32(os_, static_cast<std::uint32_t>(chunk_.size()));
    putU32(os_, chunkRecords_);
    os_.write(chunk_.data(), static_cast<std::streamsize>(chunk_.size()));
    recsFnv_ = fnv1a(recsFnv_, chunk_.data(), chunk_.size());
    chunk_.clear();
    chunkRecords_ = 0;
    prevNext_ = 0;
    prevMem_ = 0;
}

bool
TraceWriter::finalize()
{
    if (finalized_)
        return ok();
    finalized_ = true;
    if (!ok())
        return false;
    if (!recsOpen_) {
        beginSection(tagRecords, 0);
        recsSizePos_ = os_.tellp() - std::streamoff(8);
        recsOpen_ = true;
    }
    flushChunk();
    const std::streampos recs_end = os_.tellp();
    const std::uint64_t recs_size = static_cast<std::uint64_t>(
        recs_end - recsSizePos_ - std::streamoff(8));

    beginSection(tagFooter, 16);
    putU64(os_, records_);
    putU64(os_, recsFnv_);

    os_.seekp(recsSizePos_);
    putU64(os_, recs_size);
    os_.seekp(countPos_);
    putU64(os_, records_);
    os_.flush();
    if (!os_.good())
        fail("write error while finalizing trace");
    os_.close();
    return ok();
}

} // namespace specslice::trace
