/**
 * @file
 * The trace frontend: the bridge between sstr traces and the
 * simulator's Workload ingestion interface.
 *
 *  - emitWorkloadTrace() runs a workload through the functional tracer
 *    (arch::trace — bit-identical to both FastForward and the timing
 *    core's retirement stream) and writes every retired instruction as
 *    a trace record, alongside the program/slice/memory sections.
 *
 *  - loadTraceWorkload() rebuilds a sim::Workload from those sections,
 *    so a trace file is a drop-in alternative to a workload name:
 *    `Simulator::run(loaded.workload, opts)` reproduces the original
 *    execution-mode numbers exactly, because it IS the original
 *    workload — same program bytes, same initial image, same slices.
 */

#ifndef SPECSLICE_TRACE_FRONTEND_HH
#define SPECSLICE_TRACE_FRONTEND_HH

#include <optional>
#include <string>

#include "arch/tracer.hh"
#include "sim/workload.hh"
#include "trace/format.hh"

namespace specslice::trace
{

/** What emitWorkloadTrace produced. */
struct EmitResult
{
    std::uint64_t records = 0;
    arch::TraceStop stop = arch::TraceStop::MaxInsts;
};

/**
 * Execute wl functionally for up to max_insts instructions and write
 * an sstr trace to path (program + slices + initial memory + one
 * record per retired instruction).
 *
 * @param data_seed the seed wl was built with (recorded in the header
 *        so the trace's identity is reproducible).
 * @return nullopt and set error on I/O failure.
 */
std::optional<EmitResult> emitWorkloadTrace(const sim::Workload &wl,
                                            std::uint64_t data_seed,
                                            std::uint64_t max_insts,
                                            const std::string &path,
                                            std::string &error);

/** A workload reconstructed from a trace. */
struct LoadedTrace
{
    sim::Workload workload;
    TraceMeta meta;
    std::string path;
};

/**
 * Rebuild the embedded workload. The returned workload keeps the
 * original workload's name (digest identity: a digest generated from a
 * trace-mode run diffs clean against the execution-mode golden), and
 * its initMemory re-imports the embedded pages on every call, so runs
 * stay independent exactly like builder-made workloads.
 */
std::optional<LoadedTrace> loadTraceWorkload(const std::string &path,
                                             std::string &error);

/**
 * Cross-check the record stream against a functional re-execution of
 * the embedded program: every stored record must match (pc, kind,
 * taken outcome, target, memory address) what the architectural
 * machine actually does. This is the fidelity half of replay
 * verification — the digest diff proves the *workload* sections are
 * faithful; this proves the *record* stream is.
 *
 * @return the number of records checked, or nullopt (and set error
 *         naming the first divergent record) on any mismatch.
 */
std::optional<std::uint64_t>
verifyTraceFidelity(const std::string &path, std::string &error);

} // namespace specslice::trace

#endif // SPECSLICE_TRACE_FRONTEND_HH
