/**
 * @file
 * mmap-backed sstr trace reader. TraceFile validates the container
 * once at open (magic, version, section bounds, footer record count,
 * record-stream FNV) and exposes the embedded sections; TraceReader is
 * a cheap cursor over the record stream, decoding one chunk at a time
 * so a million-record trace never materializes in memory.
 */

#ifndef SPECSLICE_TRACE_READER_HH
#define SPECSLICE_TRACE_READER_HH

#include <optional>
#include <string>
#include <vector>

#include "arch/memimg.hh"
#include "isa/program.hh"
#include "slice/descriptor.hh"
#include "trace/format.hh"

namespace specslice::trace
{

class TraceReader;

/** An open, validated trace file (move-only: owns the mapping). */
class TraceFile
{
  public:
    /** Map and validate path. @return nullopt (and set error) on any
     *  structural problem: bad magic, unknown version, truncated
     *  section, footer/header record-count disagreement, FNV
     *  mismatch. */
    static std::optional<TraceFile> open(const std::string &path,
                                         std::string &error);

    TraceFile(TraceFile &&other) noexcept;
    TraceFile &operator=(TraceFile &&other) noexcept;
    TraceFile(const TraceFile &) = delete;
    TraceFile &operator=(const TraceFile &) = delete;
    ~TraceFile();

    const TraceMeta &meta() const { return meta_; }

    bool hasProgram() const { return progSize_ != 0; }
    bool hasMemory() const { return memSize_ != 0; }
    bool hasSlices() const { return slicSize_ != 0; }

    /** Decode the embedded code image. @return false on corruption. */
    bool program(isa::Program &out, std::string &error) const;

    /** Decode the embedded slice descriptors. */
    bool slices(std::vector<slice::SliceDescriptor> &out,
                std::string &error) const;

    /** Import the embedded initial memory pages into mem. */
    bool initMemory(arch::MemoryImage &mem, std::string &error) const;

    /** A fresh cursor at the first record. */
    TraceReader records() const;

  private:
    friend class TraceReader;

    TraceFile() = default;
    const std::uint8_t *at(std::uint64_t off) const { return data_ + off; }

    const std::uint8_t *data_ = nullptr;
    std::uint64_t size_ = 0;
    TraceMeta meta_;
    std::uint64_t progOff_ = 0, progSize_ = 0;
    std::uint64_t slicOff_ = 0, slicSize_ = 0;
    std::uint64_t memOff_ = 0, memSize_ = 0;
    std::uint64_t recsOff_ = 0, recsSize_ = 0;
};

/**
 * Streaming cursor over a TraceFile's record stream. The TraceFile
 * must outlive every cursor. next() returns false at end-of-stream or
 * on a decode error; check ok() to tell them apart.
 */
class TraceReader
{
  public:
    /** Decode the next record. @return false at end or on error. */
    bool next(TraceRecord &out);

    bool ok() const { return error_.empty(); }
    const std::string &error() const { return error_; }

    /** Records decoded so far. */
    std::uint64_t position() const { return decoded_; }

    /** Reset to the first record. */
    void rewind();

  private:
    friend class TraceFile;
    explicit TraceReader(const TraceFile *file);

    bool openChunk();
    void fail(const std::string &what);

    const TraceFile *file_;
    std::uint64_t cursor_;        ///< offset of the next chunk header
    const std::uint8_t *p_ = nullptr;    ///< inside the open chunk
    const std::uint8_t *end_ = nullptr;
    std::uint32_t chunkLeft_ = 0; ///< records left in the open chunk
    std::uint64_t decoded_ = 0;
    std::int64_t prevNext_ = 0;
    std::int64_t prevMem_ = 0;
    std::string error_;
};

} // namespace specslice::trace

#endif // SPECSLICE_TRACE_READER_HH
