#include "trace/reader.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "isa/encoding.hh"

namespace specslice::trace
{

namespace
{

constexpr std::uint64_t fnvOffset = 1469598103934665603ull;
constexpr std::uint64_t fnvPrime = 1099511628211ull;

std::uint64_t
fnv1a(std::uint64_t h, const std::uint8_t *p, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
    return h;
}

/** Bounds-checked little-endian cursor over a byte range. */
struct Cursor
{
    const std::uint8_t *p;
    const std::uint8_t *end;
    bool ok = true;

    std::uint64_t
    remaining() const
    {
        return static_cast<std::uint64_t>(end - p);
    }

    std::uint32_t
    u32()
    {
        if (remaining() < 4) {
            ok = false;
            return 0;
        }
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
        p += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (remaining() < 8) {
            ok = false;
            return 0;
        }
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
        p += 8;
        return v;
    }

    std::uint8_t
    u8()
    {
        if (remaining() < 1) {
            ok = false;
            return 0;
        }
        return *p++;
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        if (!ok || remaining() < len) {
            ok = false;
            return "";
        }
        std::string s(reinterpret_cast<const char *>(p), len);
        p += len;
        return s;
    }

    std::vector<Addr>
    pcVector()
    {
        const std::uint32_t n = u32();
        std::vector<Addr> v;
        if (!ok || remaining() < std::uint64_t{n} * 8) {
            ok = false;
            return v;
        }
        v.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i)
            v.push_back(u64());
        return v;
    }
};

} // namespace

std::optional<TraceFile>
TraceFile::open(const std::string &path, std::string &error)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        error = "cannot open trace '" + path + "': " +
                std::strerror(errno);
        return std::nullopt;
    }
    struct stat st;
    if (fstat(fd, &st) != 0) {
        error = "cannot stat trace '" + path + "'";
        ::close(fd);
        return std::nullopt;
    }
    const auto size = static_cast<std::uint64_t>(st.st_size);
    if (size < 56) {
        error = "trace '" + path + "' is too short to hold a header";
        ::close(fd);
        return std::nullopt;
    }
    void *map = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
        error = "cannot mmap trace '" + path + "'";
        return std::nullopt;
    }

    TraceFile f;
    f.data_ = static_cast<const std::uint8_t *>(map);
    f.size_ = size;

    Cursor c{f.data_, f.data_ + size};
    if (std::memcmp(c.p, traceMagic, sizeof(traceMagic)) != 0) {
        error = "'" + path + "' is not an sstr trace (bad magic)";
        return std::nullopt;  // f's destructor unmaps
    }
    c.p += sizeof(traceMagic);
    const std::uint32_t version = c.u32();
    if (version != traceFormatVersion) {
        error = "trace '" + path + "' has format version " +
                std::to_string(version) + "; this build reads version " +
                std::to_string(traceFormatVersion);
        return std::nullopt;
    }
    const std::uint64_t flags = c.u64();
    if (flags != 0) {
        error = "trace '" + path + "' sets reserved header flags";
        return std::nullopt;
    }
    f.meta_.recordCount = c.u64();
    f.meta_.entryPc = c.u64();
    f.meta_.programFingerprint = c.u64();
    f.meta_.dataSeed = c.u64();
    f.meta_.scale = c.u64();
    f.meta_.name = c.str();
    if (!c.ok) {
        error = "trace '" + path + "' has a truncated header";
        return std::nullopt;
    }

    // Walk the section table; unknown tags are skipped.
    bool saw_footer = false;
    std::uint64_t footer_count = 0, footer_fnv = 0;
    while (c.remaining() > 0) {
        const std::uint32_t tag = c.u32();
        const std::uint64_t sec_size = c.u64();
        if (!c.ok || c.remaining() < sec_size) {
            error = "trace '" + path + "' has a truncated section";
            return std::nullopt;
        }
        const auto off = static_cast<std::uint64_t>(c.p - f.data_);
        if (tag == tagProgram) {
            f.progOff_ = off;
            f.progSize_ = sec_size;
        } else if (tag == tagSlices) {
            f.slicOff_ = off;
            f.slicSize_ = sec_size;
        } else if (tag == tagMemory) {
            f.memOff_ = off;
            f.memSize_ = sec_size;
        } else if (tag == tagRecords) {
            f.recsOff_ = off;
            f.recsSize_ = sec_size;
        } else if (tag == tagFooter) {
            Cursor fc{c.p, c.p + sec_size};
            footer_count = fc.u64();
            footer_fnv = fc.u64();
            if (!fc.ok) {
                error = "trace '" + path + "' has a truncated footer";
                return std::nullopt;
            }
            saw_footer = true;
        }
        c.p += sec_size;
    }
    if (!saw_footer) {
        error = "trace '" + path +
                "' has no footer (writer died mid-stream?)";
        return std::nullopt;
    }
    if (footer_count != f.meta_.recordCount) {
        error = "trace '" + path + "' header/footer record counts " +
                "disagree (" + std::to_string(f.meta_.recordCount) +
                " vs " + std::to_string(footer_count) + ")";
        return std::nullopt;
    }

    // Hash the record payloads (chunk headers excluded, matching the
    // writer) so bit rot inside the stream is caught at open.
    std::uint64_t fnv = fnvOffset;
    {
        Cursor rc{f.data_ + f.recsOff_, f.data_ + f.recsOff_ + f.recsSize_};
        while (rc.remaining() > 0) {
            const std::uint32_t nbytes = rc.u32();
            const std::uint32_t nrecs = rc.u32();
            (void)nrecs;
            if (!rc.ok || rc.remaining() < nbytes) {
                error = "trace '" + path + "' has a truncated chunk";
                return std::nullopt;
            }
            fnv = fnv1a(fnv, rc.p, nbytes);
            rc.p += nbytes;
        }
    }
    if (fnv != footer_fnv) {
        error = "trace '" + path +
                "' record stream fails its integrity check";
        return std::nullopt;
    }
    return f;
}

TraceFile::TraceFile(TraceFile &&other) noexcept { *this = std::move(other); }

TraceFile &
TraceFile::operator=(TraceFile &&other) noexcept
{
    if (this != &other) {
        if (data_)
            munmap(const_cast<std::uint8_t *>(data_), size_);
        data_ = other.data_;
        size_ = other.size_;
        meta_ = std::move(other.meta_);
        progOff_ = other.progOff_;
        progSize_ = other.progSize_;
        slicOff_ = other.slicOff_;
        slicSize_ = other.slicSize_;
        memOff_ = other.memOff_;
        memSize_ = other.memSize_;
        recsOff_ = other.recsOff_;
        recsSize_ = other.recsSize_;
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

TraceFile::~TraceFile()
{
    if (data_)
        munmap(const_cast<std::uint8_t *>(data_), size_);
}

bool
TraceFile::program(isa::Program &out, std::string &error) const
{
    if (!hasProgram()) {
        error = "trace has no embedded program section";
        return false;
    }
    Cursor c{at(progOff_), at(progOff_) + progSize_};
    const std::uint64_t nsections = c.u64();
    isa::Program prog;
    for (std::uint64_t i = 0; c.ok && i < nsections; ++i) {
        isa::CodeSection sec;
        sec.base = c.u64();
        const std::uint64_t count = c.u64();
        if (!c.ok || c.remaining() < count * 8) {
            c.ok = false;
            break;
        }
        sec.code.reserve(count);
        Addr pc = sec.base;
        for (std::uint64_t k = 0; k < count; ++k) {
            sec.code.push_back(isa::decode(c.u64(), pc));
            pc += isa::instBytes;
        }
        prog.addSection(std::move(sec));
    }
    if (c.ok) {
        const std::uint64_t nsymbols = c.u64();
        std::map<std::string, Addr> symbols;
        for (std::uint64_t i = 0; c.ok && i < nsymbols; ++i) {
            std::string name = c.str();
            const Addr addr = c.u64();
            symbols.emplace(std::move(name), addr);
        }
        if (c.ok)
            prog.addSymbols(symbols);
    }
    if (!c.ok) {
        error = "trace program section is corrupt";
        return false;
    }
    out = std::move(prog);
    return true;
}

bool
TraceFile::slices(std::vector<slice::SliceDescriptor> &out,
                  std::string &error) const
{
    out.clear();
    if (!hasSlices())
        return true;  // no section: an empty slice set
    Cursor c{at(slicOff_), at(slicOff_) + slicSize_};
    const std::uint64_t count = c.u64();
    for (std::uint64_t i = 0; c.ok && i < count; ++i) {
        slice::SliceDescriptor s;
        s.name = c.str();
        s.forkPc = c.u64();
        s.slicePc = c.u64();
        const std::uint32_t nlive = c.u32();
        for (std::uint32_t k = 0; c.ok && k < nlive; ++k)
            s.liveIns.push_back(static_cast<RegIndex>(c.u8()));
        s.maxLoopIters = c.u32();
        s.loopBackEdgePc = c.u64();
        const std::uint32_t npgis = c.u32();
        for (std::uint32_t k = 0; c.ok && k < npgis; ++k) {
            slice::PgiSpec p;
            p.sliceInstPc = c.u64();
            p.problemBranchPc = c.u64();
            p.loopKillPc = c.u64();
            p.sliceKillPc = c.u64();
            p.invert = c.u8() != 0;
            p.loopKillSkipFirst = c.u8() != 0;
            s.pgis.push_back(p);
        }
        s.coveredLoadPcs = c.pcVector();
        s.coveredBranchPcs = c.pcVector();
        s.prefetchLoadPcs = c.pcVector();
        s.staticSize = c.u32();
        s.staticSizeInLoop = c.u32();
        out.push_back(std::move(s));
    }
    if (!c.ok) {
        error = "trace slice section is corrupt";
        out.clear();
        return false;
    }
    return true;
}

bool
TraceFile::initMemory(arch::MemoryImage &mem, std::string &error) const
{
    if (!hasMemory())
        return true;  // no section: an all-zero image
    Cursor c{at(memOff_), at(memOff_) + memSize_};
    const std::uint64_t npages = c.u64();
    for (std::uint64_t i = 0; c.ok && i < npages; ++i) {
        const Addr pnum = c.u64();
        if (!c.ok || c.remaining() < arch::MemoryImage::pageSize) {
            c.ok = false;
            break;
        }
        mem.importPage(pnum, c.p);
        c.p += arch::MemoryImage::pageSize;
    }
    if (!c.ok) {
        error = "trace memory section is corrupt";
        return false;
    }
    return true;
}

TraceReader
TraceFile::records() const
{
    return TraceReader(this);
}

TraceReader::TraceReader(const TraceFile *file)
    : file_(file), cursor_(file->recsOff_)
{
}

void
TraceReader::fail(const std::string &what)
{
    if (error_.empty())
        error_ = what;
    chunkLeft_ = 0;
    p_ = end_ = nullptr;
    cursor_ = file_->recsOff_ + file_->recsSize_;
}

void
TraceReader::rewind()
{
    cursor_ = file_->recsOff_;
    p_ = end_ = nullptr;
    chunkLeft_ = 0;
    decoded_ = 0;
    prevNext_ = 0;
    prevMem_ = 0;
    error_.clear();
}

bool
TraceReader::openChunk()
{
    const std::uint64_t recs_end = file_->recsOff_ + file_->recsSize_;
    if (cursor_ >= recs_end) {
        if (decoded_ != file_->meta().recordCount)
            fail("record stream ended after " +
                 std::to_string(decoded_) + " of " +
                 std::to_string(file_->meta().recordCount) + " records");
        return false;
    }
    if (recs_end - cursor_ < 8) {
        fail("truncated chunk header");
        return false;
    }
    const std::uint8_t *hdr = file_->at(cursor_);
    std::uint32_t nbytes = 0, nrecs = 0;
    for (int i = 0; i < 4; ++i) {
        nbytes |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
        nrecs |= static_cast<std::uint32_t>(hdr[4 + i]) << (8 * i);
    }
    if (recs_end - cursor_ - 8 < nbytes) {
        fail("chunk payload overruns the record section");
        return false;
    }
    if (nrecs == 0) {
        fail("empty chunk");
        return false;
    }
    p_ = hdr + 8;
    end_ = p_ + nbytes;
    chunkLeft_ = nrecs;
    cursor_ += 8 + nbytes;
    prevNext_ = 0;
    prevMem_ = 0;
    return true;
}

bool
TraceReader::next(TraceRecord &out)
{
    if (!ok())
        return false;
    if (chunkLeft_ == 0 && !openChunk())
        return false;

    if (p_ >= end_) {
        fail("chunk ran out of bytes mid-record");
        return false;
    }
    const std::uint8_t head = *p_++;
    const std::uint8_t kind_bits = head & 0x0f;
    if (kind_bits >= numRecordKinds || (head & ~std::uint8_t{0x1f})) {
        fail("record " + std::to_string(decoded_) +
             " has an invalid head byte");
        return false;
    }
    out.kind = static_cast<RecordKind>(kind_bits);
    out.taken = (head & 0x10) != 0;
    out.target = invalidAddr;
    out.memAddr = invalidAddr;

    std::uint64_t raw = 0;
    if (!getVarint(p_, end_, raw)) {
        fail("record " + std::to_string(decoded_) + " has a bad pc varint");
        return false;
    }
    const std::int64_t pc = prevNext_ + zigzagDecode(raw);
    out.pc = static_cast<Addr>(pc);
    prevNext_ = pc + static_cast<std::int64_t>(isa::instBytes);

    if (kindHasTarget(out.kind)) {
        if (!getVarint(p_, end_, raw)) {
            fail("record " + std::to_string(decoded_) +
                 " has a bad target varint");
            return false;
        }
        out.target = static_cast<Addr>(pc + zigzagDecode(raw));
    }
    if (kindHasMemAddr(out.kind)) {
        if (!getVarint(p_, end_, raw)) {
            fail("record " + std::to_string(decoded_) +
                 " has a bad address varint");
            return false;
        }
        prevMem_ += zigzagDecode(raw);
        out.memAddr = static_cast<Addr>(prevMem_);
    }
    --chunkLeft_;
    ++decoded_;
    return true;
}

const char *
recordKindName(RecordKind k)
{
    switch (k) {
      case RecordKind::Other:
        return "other";
      case RecordKind::CondBranch:
        return "cond";
      case RecordKind::UncondDirect:
        return "jump";
      case RecordKind::Call:
        return "call";
      case RecordKind::Return:
        return "return";
      case RecordKind::IndirectJump:
        return "indirect";
      case RecordKind::IndirectCall:
        return "indirect_call";
      case RecordKind::Load:
        return "load";
      case RecordKind::Store:
        return "store";
      case RecordKind::Halt:
        return "halt";
    }
    return "unknown";
}

} // namespace specslice::trace
