#include "trace/frontend.hh"

#include <memory>
#include <utility>
#include <vector>

#include "arch/checkpoint.hh"
#include "isa/opcodes.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

namespace specslice::trace
{

namespace
{

/** Classify one retired instruction for the record stream. */
TraceRecord
toRecord(const arch::TraceEvent &ev)
{
    TraceRecord r;
    r.pc = ev.pc;
    const isa::Instruction &si = *ev.inst;
    if (si.isCondBranch()) {
        r.kind = RecordKind::CondBranch;
        r.taken = ev.result.taken;
        r.target = si.target;
    } else if (si.isReturn()) {
        r.kind = RecordKind::Return;
        r.taken = true;
        r.target = ev.result.nextPc;
    } else if (si.isIndirect()) {
        r.kind = si.isCall() ? RecordKind::IndirectCall
                             : RecordKind::IndirectJump;
        r.taken = true;
        r.target = ev.result.nextPc;
    } else if (si.traits().isUncondDirect) {
        r.kind = si.isCall() ? RecordKind::Call : RecordKind::UncondDirect;
        r.taken = true;
        r.target = si.target;
    } else if (si.op == isa::Opcode::Halt) {
        r.kind = RecordKind::Halt;
    } else if (si.isLoad()) {
        r.kind = RecordKind::Load;
        r.memAddr = ev.result.memAddr;
    } else if (si.isStore()) {
        r.kind = RecordKind::Store;
        r.memAddr = ev.result.memAddr;
    } else {
        r.kind = RecordKind::Other;
    }
    return r;
}

} // namespace

std::optional<EmitResult>
emitWorkloadTrace(const sim::Workload &wl, std::uint64_t data_seed,
                  std::uint64_t max_insts, const std::string &path,
                  std::string &error)
{
    TraceMeta meta;
    meta.name = wl.name;
    meta.entryPc = wl.entry;
    meta.programFingerprint = arch::fingerprintProgram(wl.program);
    meta.dataSeed = data_seed;
    meta.scale = wl.scale;

    TraceWriter w(path, meta);
    w.writeProgram(wl.program);
    w.writeSlices(wl.slices);

    arch::MemoryImage mem;
    if (wl.initMemory)
        wl.initMemory(mem);
    w.writeMemory(mem);
    if (!w.ok()) {
        error = w.error();
        return std::nullopt;
    }

    const arch::TraceResult tr =
        arch::trace(wl.program, wl.entry, mem, max_insts,
                    [&](const arch::TraceEvent &ev) {
                        w.append(toRecord(ev));
                    });

    EmitResult out;
    out.records = w.recordCount();
    out.stop = tr.reason;
    if (!w.finalize()) {
        error = w.error();
        return std::nullopt;
    }
    return out;
}

std::optional<LoadedTrace>
loadTraceWorkload(const std::string &path, std::string &error)
{
    std::optional<TraceFile> file = TraceFile::open(path, error);
    if (!file)
        return std::nullopt;
    if (!file->hasProgram()) {
        error = "trace '" + path +
                "' carries no program section; it cannot seed a "
                "simulation (re-emit with specslice_replay --emit)";
        return std::nullopt;
    }

    LoadedTrace out;
    out.meta = file->meta();
    out.path = path;

    sim::Workload &wl = out.workload;
    wl.name = file->meta().name;
    wl.entry = file->meta().entryPc;
    wl.scale = file->meta().scale;
    if (!file->program(wl.program, error))
        return std::nullopt;
    if (arch::fingerprintProgram(wl.program) !=
        file->meta().programFingerprint) {
        error = "trace '" + path +
                "' program fingerprint mismatch (corrupt section?)";
        return std::nullopt;
    }
    if (!file->slices(wl.slices, error))
        return std::nullopt;

    // Decode the pages once and share them across runs: initMemory is
    // called per run (runs must stay independent) and the workload is
    // copied freely by the harnesses, so the lambda owns the page list
    // through a shared_ptr rather than the mapping.
    struct PageCopy
    {
        Addr pnum;
        std::vector<std::uint8_t> data;
    };
    auto pages = std::make_shared<std::vector<PageCopy>>();
    {
        arch::MemoryImage img;
        if (!file->initMemory(img, error))
            return std::nullopt;
        for (Addr pnum : img.pageNumbers())
            pages->push_back(
                {pnum,
                 std::vector<std::uint8_t>(
                     img.pageData(pnum),
                     img.pageData(pnum) + arch::MemoryImage::pageSize)});
    }
    wl.initMemory = [pages](arch::MemoryImage &m) {
        for (const PageCopy &p : *pages)
            m.importPage(p.pnum, p.data.data());
    };
    return out;
}

std::optional<std::uint64_t>
verifyTraceFidelity(const std::string &path, std::string &error)
{
    std::optional<TraceFile> file = TraceFile::open(path, error);
    if (!file)
        return std::nullopt;
    if (!file->hasProgram()) {
        error = "trace '" + path + "' carries no program section";
        return std::nullopt;
    }

    isa::Program prog;
    if (!file->program(prog, error))
        return std::nullopt;
    arch::MemoryImage mem;
    if (!file->initMemory(mem, error))
        return std::nullopt;

    TraceReader rd = file->records();
    std::string mismatch;
    const arch::TraceResult tr = arch::trace(
        prog, file->meta().entryPc, mem, file->meta().recordCount,
        [&](const arch::TraceEvent &ev) {
            if (!mismatch.empty())
                return;
            TraceRecord want = toRecord(ev);
            TraceRecord got;
            if (!rd.next(got)) {
                mismatch = rd.ok() ? "record stream ended early at #" +
                                         std::to_string(rd.position())
                                   : rd.error();
                return;
            }
            if (got.pc != want.pc || got.kind != want.kind ||
                got.taken != want.taken || got.target != want.target ||
                got.memAddr != want.memAddr) {
                mismatch =
                    "record #" + std::to_string(rd.position() - 1) +
                    " diverges from re-execution: stored {pc=" +
                    std::to_string(got.pc) + ", " +
                    std::string(recordKindName(got.kind)) +
                    "}, re-executed {pc=" + std::to_string(want.pc) +
                    ", " + std::string(recordKindName(want.kind)) + "}";
            }
        });
    (void)tr;
    if (!mismatch.empty()) {
        error = "trace '" + path + "': " + mismatch;
        return std::nullopt;
    }
    TraceRecord extra;
    if (rd.next(extra)) {
        error = "trace '" + path + "': record stream has " +
                std::to_string(file->meta().recordCount -
                               rd.position() + 1) +
                " records beyond the re-executed instruction stream";
        return std::nullopt;
    }
    if (!rd.ok()) {
        error = "trace '" + path + "': " + rd.error();
        return std::nullopt;
    }
    return rd.position();
}

} // namespace specslice::trace
