#include "trace/replay.hh"

#include "isa/opcodes.hh"

namespace specslice::trace
{

ReplayStats
replayRecords(TraceReader &r, branch::PredictorClient &client,
              std::uint64_t max_records)
{
    ReplayStats s;
    TraceRecord rec;
    while ((max_records == 0 || s.records < max_records) && r.next(rec)) {
        ++s.records;
        switch (rec.kind) {
          case RecordKind::CondBranch: {
            const bool pred = client.predictCond(rec.pc, rec.target);
            ++s.condBranches;
            if (rec.taken)
                ++s.condTaken;
            if (pred != rec.taken)
                ++s.condMispredicts;
            client.updateCond(rec.pc, rec.taken);
            break;
          }
          case RecordKind::Return: {
            const Addr pred =
                client.predictTarget(rec.pc, branch::TargetKind::Return);
            ++s.returns;
            if (pred != rec.target)
                ++s.returnMispredicts;
            client.updateTarget(rec.pc, branch::TargetKind::Return,
                                rec.target);
            break;
          }
          case RecordKind::IndirectJump: {
            const Addr pred =
                client.predictTarget(rec.pc, branch::TargetKind::Jump);
            ++s.indirectBranches;
            if (pred != rec.target)
                ++s.indirectMispredicts;
            client.updateTarget(rec.pc, branch::TargetKind::Jump,
                                rec.target);
            break;
          }
          case RecordKind::IndirectCall: {
            const Addr pred =
                client.predictTarget(rec.pc, branch::TargetKind::Call);
            ++s.indirectBranches;
            ++s.calls;
            if (pred != rec.target)
                ++s.indirectMispredicts;
            client.observeCall(rec.pc + isa::instBytes);
            client.updateTarget(rec.pc, branch::TargetKind::Call,
                                rec.target);
            break;
          }
          case RecordKind::Call:
            ++s.calls;
            client.observeCall(rec.pc + isa::instBytes);
            break;
          case RecordKind::UncondDirect:
            ++s.uncondDirect;
            break;
          case RecordKind::Load:
            ++s.loads;
            break;
          case RecordKind::Store:
            ++s.stores;
            break;
          case RecordKind::Halt:
            ++s.halts;
            break;
          case RecordKind::Other:
            ++s.others;
            break;
        }
    }
    client.report(s.clientCounters);
    return s;
}

check::Digest::Section
replaySection(const std::string &client, const ReplayStats &s)
{
    check::Digest::Section sec;
    sec.config = "replay-" + client;
    auto &c = sec.counters;
    c["records"] = s.records;
    c["cond_branches"] = s.condBranches;
    c["cond_taken"] = s.condTaken;
    c["cond_mispredicts"] = s.condMispredicts;
    c["indirect_branches"] = s.indirectBranches;
    c["indirect_mispredicts"] = s.indirectMispredicts;
    c["returns"] = s.returns;
    c["return_mispredicts"] = s.returnMispredicts;
    c["calls"] = s.calls;
    c["uncond_direct"] = s.uncondDirect;
    c["loads"] = s.loads;
    c["stores"] = s.stores;
    c["others"] = s.others;
    c["halts"] = s.halts;
    for (const auto &[key, value] : s.clientCounters)
        c["client." + key] = value;
    // Ratios are only emitted when the denominator is live: a NaN
    // placeholder would poison the exact diff for predictors that
    // never see that branch class.
    auto &ratios = sec.ratios;
    if (s.condBranches)
        ratios["cond_accuracy"] =
            1.0 - static_cast<double>(s.condMispredicts) /
                      static_cast<double>(s.condBranches);
    if (s.indirectBranches)
        ratios["indirect_accuracy"] =
            1.0 - static_cast<double>(s.indirectMispredicts) /
                      static_cast<double>(s.indirectBranches);
    if (s.returns)
        ratios["return_accuracy"] =
            1.0 - static_cast<double>(s.returnMispredicts) /
                      static_cast<double>(s.returns);
    return sec;
}

check::Digest
replayDigest(
    const TraceMeta &meta,
    const std::vector<std::pair<std::string, ReplayStats>> &sections)
{
    check::Digest d;
    d.workload = meta.name;
    d.insts = meta.recordCount;
    d.warmup = 0;
    d.seed = meta.dataSeed;
    d.width = 1;    // in-order replay: one record at a time
    d.threads = 1;  // single stream
    for (const auto &[client, stats] : sections)
        d.sections.push_back(replaySection(client, stats));
    return d;
}

} // namespace specslice::trace
