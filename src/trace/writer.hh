/**
 * @file
 * Streaming sstr trace writer. Sections are written in a fixed order
 * (program, slices, memory, then records) and the record count is
 * patched into the header by finalize(), so a writer that dies
 * mid-stream leaves a file the reader rejects rather than a silently
 * short trace.
 */

#ifndef SPECSLICE_TRACE_WRITER_HH
#define SPECSLICE_TRACE_WRITER_HH

#include <fstream>
#include <string>
#include <vector>

#include "arch/memimg.hh"
#include "isa/program.hh"
#include "slice/descriptor.hh"
#include "trace/format.hh"

namespace specslice::trace
{

class TraceWriter
{
  public:
    /** Open path and write the header. Check ok() before streaming. */
    TraceWriter(const std::string &path, const TraceMeta &meta);

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    bool ok() const { return error_.empty() && os_.good(); }
    const std::string &error() const { return error_; }

    /** Embed the static code image (must precede the first append). */
    void writeProgram(const isa::Program &program);

    /** Embed the slice annotations (may be an empty vector). */
    void writeSlices(const std::vector<slice::SliceDescriptor> &slices);

    /** Embed the initial memory image (all-zero pages are dropped). */
    void writeMemory(const arch::MemoryImage &mem);

    /** Append one record to the stream. */
    void append(const TraceRecord &rec);

    /** Flush the last chunk, write the footer, patch the header.
     *  @return false (with error() set) if anything failed. */
    bool finalize();

    std::uint64_t recordCount() const { return records_; }

  private:
    void beginSection(std::uint32_t tag, std::uint64_t size);
    void flushChunk();
    void fail(const std::string &what);

    std::ofstream os_;
    std::string error_;
    std::string chunk_;          ///< encoded bytes of the open chunk
    std::uint32_t chunkRecords_ = 0;
    std::uint64_t records_ = 0;
    std::uint64_t recsFnv_;      ///< FNV-1a over RECS payload bytes
    std::int64_t prevNext_ = 0;  ///< expected PC of the next record
    std::int64_t prevMem_ = 0;   ///< previous memory address
    std::streampos countPos_;    ///< header recordCount offset
    std::streampos recsSizePos_; ///< RECS section size offset
    bool recsOpen_ = false;
    bool finalized_ = false;
};

} // namespace specslice::trace

#endif // SPECSLICE_TRACE_WRITER_HH
