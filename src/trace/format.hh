/**
 * @file
 * The `sstr` trace format: the on-disk representation of one workload
 * execution, compact enough to stream millions of records and complete
 * enough to reconstruct the exact simulation that produced it.
 *
 * # Why self-contained
 *
 * A bare branch-outcome stream (CVP style) can drive an in-order
 * predictor replay, but it cannot reproduce the *execution-mode*
 * numbers: the timing core predicts at fetch, trains at completion,
 * and fetches real wrong-path instructions, so the prediction sequence
 * depends on machine state a record stream does not carry. An sstr
 * trace therefore embeds the full static program image, the initial
 * memory image, and the slice annotations alongside the retired-
 * instruction record stream. The trace frontend rebuilds a
 * sim::Workload from those sections and the timing simulator
 * reproduces the golden digests exactly by construction, while the
 * record stream feeds the in-order PredictorClient replay path
 * (specslice_replay) at sustained throughput.
 *
 * # Layout (all integers little-endian)
 *
 *   header:
 *     u8[4]  magic       "sstr"
 *     u32    version     traceFormatVersion
 *     u64    flags       reserved, must be 0
 *     u64    recordCount patched by TraceWriter::finalize()
 *     u64    entryPc
 *     u64    programFingerprint   arch::fingerprintProgram
 *     u64    dataSeed    seed the memory image was built with
 *     u64    scale       workload scale knob (rebuild identity)
 *     u32    nameLen, u8[nameLen] workload name
 *
 *   then a sequence of sections, each { u32 tag; u64 size; payload }.
 *   Readers skip unknown tags (forward compatibility); the known tags
 *   are:
 *
 *     "PROG"  static code image: u64 nsections, then per section
 *             { u64 base; u64 count; u64 word[count] } with words from
 *             isa::encode(inst, pc); u64 nsymbols, then per symbol
 *             { u32 len; u8 name[len]; u64 addr }.
 *     "SLIC"  slice descriptors (see writer.cc for the field list).
 *     "MEMI"  initial memory image: u64 npages, then per page
 *             { u64 pageNumber; u8 data[4096] }. All-zero pages are
 *             dropped (MemoryImage faults in zero pages on demand).
 *     "RECS"  the record stream, split into independently decodable
 *             chunks: { u32 payloadBytes; u32 nrecords; payload }.
 *             Per-record encoding below.
 *     "ENDS"  footer: u64 recordCount (must equal the header's) and
 *             u64 fnv64 over every RECS chunk payload byte. A
 *             truncated or bit-rotted file fails here, not silently.
 *
 * # Record encoding (inside a RECS chunk)
 *
 *     u8 head:   bits 0..3 RecordKind, bit 4 taken
 *     varint     zigzag(pc - prevPc - 8); prevPc starts at -8 per
 *                chunk so a chunk's first record encodes zigzag(pc)
 *                relative to 0 and sequential code costs one byte.
 *     [varint]   zigzag(target - pc), only for kinds with a target
 *                (CondBranch: static taken-target; UncondDirect/Call:
 *                static target; Return/IndirectJump/IndirectCall:
 *                actual next PC).
 *     [varint]   zigzag(memAddr - prevMemAddr), only for Load/Store;
 *                prevMemAddr starts at 0 per chunk.
 *
 * Varints are unsigned LEB128 (7 bits per byte, high bit = continue),
 * at most 10 bytes for a 64-bit value. Deltas use zigzag mapping so
 * small negative strides stay short.
 *
 * # Versioning / bump policy (mirrors the digest schema policy)
 *
 * traceFormatVersion identifies the *container*: bump it whenever a
 * change would make an old reader mis-decode a new file (record field
 * added, header field re-ordered, section payload re-shaped) and teach
 * the reader to reject versions it does not know. Additive changes
 * that old readers can safely ignore — a new section tag — do NOT
 * bump the version; that is what the skip-unknown-tags rule is for.
 * When you bump: update this comment, extend TraceReader with an
 * explicit error message naming both versions, and regenerate any
 * committed traces. Golden replay digests (golden/<wl>.rdigest) carry
 * the digest schema version, not this one; the two move independently.
 */

#ifndef SPECSLICE_TRACE_FORMAT_HH
#define SPECSLICE_TRACE_FORMAT_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace specslice::trace
{

constexpr char traceMagic[4] = {'s', 's', 't', 'r'};
constexpr std::uint32_t traceFormatVersion = 1;

/** Section tags ("PROG" little-endian packed as u32, etc.). */
constexpr std::uint32_t
sectionTag(const char (&s)[5])
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[1]))
               << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[2]))
               << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(s[3]))
               << 24;
}

constexpr std::uint32_t tagProgram = sectionTag("PROG");
constexpr std::uint32_t tagSlices = sectionTag("SLIC");
constexpr std::uint32_t tagMemory = sectionTag("MEMI");
constexpr std::uint32_t tagRecords = sectionTag("RECS");
constexpr std::uint32_t tagFooter = sectionTag("ENDS");

/** Records per RECS chunk (chunks decode independently: the PC and
 *  memory-address delta bases reset at each chunk boundary). */
constexpr std::uint32_t recordsPerChunk = 8192;

/** What kind of retired instruction a record describes. */
enum class RecordKind : std::uint8_t
{
    Other = 0,         ///< ALU or other non-control, non-memory op
    CondBranch = 1,    ///< conditional branch (taken flag, static target)
    UncondDirect = 2,  ///< unconditional direct jump
    Call = 3,          ///< direct call
    Return = 4,        ///< return (target = actual return PC)
    IndirectJump = 5,  ///< indirect jump (target = actual next PC)
    IndirectCall = 6,  ///< indirect call (target = actual next PC)
    Load = 7,          ///< load (memAddr = effective address)
    Store = 8,         ///< store (memAddr = effective address)
    Halt = 9,          ///< program halt
};

constexpr std::uint8_t numRecordKinds = 10;

/** Stable lower-case name for diagnostics and reports. */
const char *recordKindName(RecordKind k);

/** @return true for kinds that carry a target varint. */
constexpr bool
kindHasTarget(RecordKind k)
{
    return k == RecordKind::CondBranch || k == RecordKind::UncondDirect ||
           k == RecordKind::Call || k == RecordKind::Return ||
           k == RecordKind::IndirectJump || k == RecordKind::IndirectCall;
}

/** @return true for kinds that carry a memory-address varint. */
constexpr bool
kindHasMemAddr(RecordKind k)
{
    return k == RecordKind::Load || k == RecordKind::Store;
}

/** One decoded trace record. */
struct TraceRecord
{
    Addr pc = invalidAddr;
    RecordKind kind = RecordKind::Other;
    bool taken = false;          ///< CondBranch direction
    Addr target = invalidAddr;   ///< see kindHasTarget
    Addr memAddr = invalidAddr;  ///< see kindHasMemAddr

    bool operator==(const TraceRecord &o) const = default;
};

/** The header fields that identify a trace. */
struct TraceMeta
{
    std::string name;  ///< workload the trace was emitted from
    Addr entryPc = invalidAddr;
    std::uint64_t programFingerprint = 0;
    std::uint64_t dataSeed = 0;
    std::uint64_t scale = 0;
    std::uint64_t recordCount = 0;
};

// ---------------------------------------------------------------
// Varint / zigzag primitives (unit-tested in test_trace)
// ---------------------------------------------------------------

/** Map a signed delta onto the unsigned LEB128 domain: 0, -1, 1, -2
 *  ... become 0, 1, 2, 3 ... so short negative strides stay short. */
constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Append v as unsigned LEB128 (at most 10 bytes). */
inline void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>(v | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

/**
 * Decode one LEB128 value from [*p, end). Advances *p past the value.
 * @return false on truncation or a value wider than 64 bits.
 */
inline bool
getVarint(const std::uint8_t *&p, const std::uint8_t *end,
          std::uint64_t &out)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (p < end) {
        const std::uint8_t byte = *p++;
        if (shift == 63 && (byte & ~std::uint8_t{1}))
            return false;  // overflows 64 bits
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            out = v;
            return true;
        }
        shift += 7;
        if (shift > 63)
            return false;
    }
    return false;  // truncated
}

} // namespace specslice::trace

#endif // SPECSLICE_TRACE_FORMAT_HH
