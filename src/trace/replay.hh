/**
 * @file
 * In-order trace replay: stream an sstr record stream through a
 * PredictorClient and score it, CVP-harness style. The replay digest
 * (.rdigest) reuses the check::Digest container — same parser, same
 * formatter, same exact-counter diff — with one section per predictor,
 * so golden replay accuracy is gated exactly like golden execution
 * stats. The .rdigest extension keeps these out of golden_lint's
 * execution-digest sweep (replay digests have no baseline/slices
 * sections to lint).
 */

#ifndef SPECSLICE_TRACE_REPLAY_HH
#define SPECSLICE_TRACE_REPLAY_HH

#include <map>
#include <string>
#include <vector>

#include "branch/predictor_client.hh"
#include "check/digest.hh"
#include "trace/reader.hh"

namespace specslice::trace
{

/** What replaying one trace through one client produced. */
struct ReplayStats
{
    std::uint64_t records = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t condTaken = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t indirectBranches = 0;  ///< jumps + indirect calls
    std::uint64_t indirectMispredicts = 0;
    std::uint64_t returns = 0;
    std::uint64_t returnMispredicts = 0;
    std::uint64_t calls = 0;  ///< direct + indirect
    std::uint64_t uncondDirect = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t others = 0;
    std::uint64_t halts = 0;
    /** Client-specific counters from PredictorClient::report(). */
    std::map<std::string, std::uint64_t> clientCounters;

    double
    condAccuracy() const
    {
        return condBranches ? 1.0 - static_cast<double>(condMispredicts) /
                                        static_cast<double>(condBranches)
                            : 0.0;
    }
};

/**
 * Drive client with every record in r (or the first max_records when
 * non-zero). The reader's error state is the caller's to check:
 * stats cover the records decoded before any failure.
 */
ReplayStats replayRecords(TraceReader &r,
                          branch::PredictorClient &client,
                          std::uint64_t max_records = 0);

/**
 * Replay meta's trace through every named client and package the
 * results as a digest document: one section per predictor, exact
 * counters, accuracy ratios. Diffable with check::diffDigests.
 */
check::Digest replayDigest(
    const TraceMeta &meta,
    const std::vector<std::pair<std::string, ReplayStats>> &sections);

/** Per-section counters/ratios used by replayDigest (exposed so the
 *  JSON path renders exactly the digest's numbers). */
check::Digest::Section replaySection(const std::string &client,
                                     const ReplayStats &stats);

} // namespace specslice::trace

#endif // SPECSLICE_TRACE_REPLAY_HH
