/**
 * @file
 * Speculative global branch history with checkpoint/restore. The fetch
 * stage shifts predictions in speculatively; a checkpoint taken per
 * in-flight branch lets squashes restore the history ("much like branch
 * history must be restored", Section 5.2).
 */

#ifndef SPECSLICE_BRANCH_HISTORY_HH
#define SPECSLICE_BRANCH_HISTORY_HH

#include <cstdint>

namespace specslice::branch
{

class GlobalHistory
{
  public:
    explicit GlobalHistory(unsigned bits = 16) : bits_(bits) {}

    /** Current history value (low 'bits' bits are meaningful). */
    std::uint64_t value() const { return hist_; }

    /** Shift in a (speculative or resolved) outcome. */
    void
    shift(bool taken)
    {
        hist_ = ((hist_ << 1) | (taken ? 1 : 0)) &
                ((std::uint64_t{1} << bits_) - 1);
    }

    /** Take a checkpoint (the whole register). */
    std::uint64_t checkpoint() const { return hist_; }

    /** Restore a checkpoint. */
    void restore(std::uint64_t v) { hist_ = v; }

    unsigned bits() const { return bits_; }

  private:
    unsigned bits_;
    std::uint64_t hist_ = 0;
};

} // namespace specslice::branch

#endif // SPECSLICE_BRANCH_HISTORY_HH
