/**
 * @file
 * The composite front-end branch predictor of Table 1: a 64 Kb YAGS
 * direction predictor, a 32 Kb cascaded indirect target predictor, a
 * 64-entry return address stack, and a perfect BTB for direct branches
 * (direct targets are available at decode in this machine, so the BTB
 * needs no explicit model). Global direction history and indirect path
 * history are updated speculatively at fetch and checkpointed per
 * control instruction for squash recovery.
 */

#ifndef SPECSLICE_BRANCH_PREDICTOR_UNIT_HH
#define SPECSLICE_BRANCH_PREDICTOR_UNIT_HH

#include "branch/history.hh"
#include "branch/indirect.hh"
#include "branch/ras.hh"
#include "branch/yags.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "fault/fault.hh"

namespace specslice::branch
{

/** Everything needed to rewind the predictor's speculative state. */
struct SpecCheckpoint
{
    std::uint64_t ghist = 0;
    std::uint64_t phist = 0;
    ReturnAddressStack::Checkpoint ras;
};

/** Indexing context captured at prediction, passed back at update. */
struct PredictContext
{
    std::uint64_t ghist = 0;
    std::uint64_t phist = 0;
};

struct PredictorConfig
{
    YagsPredictor::Config yags;
    CascadedIndirectPredictor::Config indirect;
    unsigned rasEntries = 64;
    unsigned historyBits = 16;  ///< YAGS indexes 12, tags with the rest
    unsigned pathBits = 12;
};

class BranchPredictorUnit
{
  public:
    BranchPredictorUnit() : BranchPredictorUnit(PredictorConfig{}) {}
    explicit BranchPredictorUnit(const PredictorConfig &cfg);

    /** Checkpoint all speculative state (take before each control op). */
    SpecCheckpoint checkpoint() const;

    /** Restore a checkpoint (on squash). */
    void restore(const SpecCheckpoint &cp);

    /**
     * Predict a conditional branch at fetch and speculatively shift the
     * chosen direction into the history.
     *
     * @param pc branch PC
     * @param override_dir if non-negative, use this direction (0/1)
     *        instead of YAGS (slice-generated prediction from the
     *        correlator, or a perfect-mode oracle)
     * @param[out] ctx indexing context for the later update
     * @return the direction the front end will follow
     */
    bool predictCond(Addr pc, int override_dir, PredictContext &ctx);

    /**
     * Predict an indirect target at fetch; shifts path history.
     * @return predicted target (invalidAddr if no information).
     */
    Addr predictIndirect(Addr pc, PredictContext &ctx);

    /** Note a call at fetch (pushes the RAS). */
    void pushCall(Addr return_addr);

    /** Note a return at fetch. @return predicted return target. */
    Addr popReturn();

    /** Shift a resolved outcome into history after a squash-restore. */
    void shiftResolved(bool taken) { ghist_.shift(taken); }

    /** Shift a resolved indirect target after a squash-restore. */
    void shiftResolvedTarget(Addr target) { phist_.shift(target); }

    /** Train the direction predictor (resolved, correct-path). */
    void updateCond(Addr pc, const PredictContext &ctx, bool taken);

    /** Train the indirect predictor (resolved, correct-path). */
    void updateIndirect(Addr pc, const PredictContext &ctx, Addr target);

    /**
     * Replay a known conditional-branch outcome into the predictor
     * (checkpoint warm-up). Equivalent to a predict/update pair for a
     * correctly-predicted branch — tables train and history shifts —
     * but no prediction is consumed and no stats move, so a warmed
     * run's measured counters stay comparable to an unwarmed one's.
     */
    void warmCond(Addr pc, bool taken);

    /** Replay a known indirect-branch target (checkpoint warm-up). */
    void warmIndirect(Addr pc, Addr target);

    /** What would YAGS say, with no side effects? (profiling) */
    bool
    peekCond(Addr pc) const
    {
        return yags_.predict(pc, ghist_.value());
    }

    const StatGroup &stats() const { return stats_; }

    /**
     * Attach a fault injector (null detaches). Tap point: `pred.flip`
     * inverts the direction predictCond() hands the front end.
     */
    void setInjector(fault::Injector *inj) { injector_ = inj; }

  private:
    /** Handles into stats_, registered once at construction. */
    struct Handles
    {
        explicit Handles(StatGroup &g);
        Stat &condOverridden;
        Stat &condPredictions;
        Stat &indirectPredictions;
        Stat &condUpdates;
        Stat &indirectUpdates;
    };

    GlobalHistory ghist_;
    PathHistory phist_;
    YagsPredictor yags_;
    CascadedIndirectPredictor indirect_;
    ReturnAddressStack ras_;
    fault::Injector *injector_ = nullptr;
    StatGroup stats_;
    Handles s_;
};

} // namespace specslice::branch

#endif // SPECSLICE_BRANCH_PREDICTOR_UNIT_HH
