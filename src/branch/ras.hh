/**
 * @file
 * 64-entry return address stack with (tos, top-value) checkpointing for
 * squash recovery.
 */

#ifndef SPECSLICE_BRANCH_RAS_HH
#define SPECSLICE_BRANCH_RAS_HH

#include <vector>

#include "common/types.hh"

namespace specslice::branch
{

class ReturnAddressStack
{
  public:
    /** Checkpoint: restoring tos and the top entry heals most damage. */
    struct Checkpoint
    {
        unsigned tos = 0;
        Addr topValue = invalidAddr;
    };

    explicit ReturnAddressStack(unsigned entries = 64)
        : stack_(entries, invalidAddr)
    {}

    /** Push a return address (on fetching a call). */
    void
    push(Addr return_addr)
    {
        tos_ = (tos_ + 1) % stack_.size();
        stack_[tos_] = return_addr;
    }

    /** Pop the predicted return target (on fetching a return). */
    Addr
    pop()
    {
        Addr t = stack_[tos_];
        tos_ = (tos_ + stack_.size() - 1) % stack_.size();
        return t;
    }

    /** Peek without popping. */
    Addr top() const { return stack_[tos_]; }

    Checkpoint
    checkpoint() const
    {
        return {tos_, stack_[tos_]};
    }

    void
    restore(const Checkpoint &cp)
    {
        tos_ = cp.tos;
        stack_[tos_] = cp.topValue;
    }

    unsigned size() const { return static_cast<unsigned>(stack_.size()); }

  private:
    std::vector<Addr> stack_;
    unsigned tos_ = 0;
};

} // namespace specslice::branch

#endif // SPECSLICE_BRANCH_RAS_HH
