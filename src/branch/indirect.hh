/**
 * @file
 * Cascaded indirect branch target predictor (Driesen & Hoelzle,
 * MICRO-31), sized to Table 1's 32 Kb budget. Stage 1 is an untagged
 * PC-indexed target table; stage 2 is a tagged table indexed by PC
 * hashed with a path history of recent indirect targets. Entries
 * cascade into stage 2 only when stage 1 mispredicts (the filter that
 * makes the predictor "economical").
 */

#ifndef SPECSLICE_BRANCH_INDIRECT_HH
#define SPECSLICE_BRANCH_INDIRECT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace specslice::branch
{

class CascadedIndirectPredictor
{
  public:
    struct Config
    {
        unsigned stage1Entries = 256;
        unsigned stage2Entries = 512;
        unsigned tagBits = 8;
        unsigned pathBits = 12;
    };

    CascadedIndirectPredictor() : CascadedIndirectPredictor(Config{}) {}
    explicit CascadedIndirectPredictor(const Config &cfg);

    /**
     * Predict the target of the indirect branch at pc.
     * @return predicted target, or invalidAddr if no information.
     */
    Addr predict(Addr pc, std::uint64_t path_hist) const;

    /** Train with the resolved target. */
    void update(Addr pc, std::uint64_t path_hist, Addr target);

  private:
    struct Stage1Entry
    {
        Addr target = invalidAddr;
    };

    struct Stage2Entry
    {
        std::uint16_t tag = 0;
        Addr target = invalidAddr;
        bool valid = false;
    };

    std::uint64_t s1Index(Addr pc) const;
    std::uint64_t s2Index(Addr pc, std::uint64_t path) const;
    std::uint16_t tagOf(Addr pc) const;

    Config cfg_;
    std::vector<Stage1Entry> stage1_;
    std::vector<Stage2Entry> stage2_;
};

/**
 * Path history of recent indirect-branch targets, with checkpointing
 * (restored on squash like the direction history).
 */
class PathHistory
{
  public:
    explicit PathHistory(unsigned bits = 12) : bits_(bits) {}

    std::uint64_t value() const { return hist_; }

    void
    shift(Addr target)
    {
        std::uint64_t piece = (target >> 3) & 0x7;
        hist_ = ((hist_ << 3) | piece) &
                ((std::uint64_t{1} << bits_) - 1);
    }

    std::uint64_t checkpoint() const { return hist_; }
    void restore(std::uint64_t v) { hist_ = v; }

  private:
    unsigned bits_;
    std::uint64_t hist_ = 0;
};

} // namespace specslice::branch

#endif // SPECSLICE_BRANCH_INDIRECT_HH
