#include "branch/indirect.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"
#include "isa/opcodes.hh"

namespace specslice::branch
{

CascadedIndirectPredictor::CascadedIndirectPredictor(const Config &cfg)
    : cfg_(cfg)
{
    SS_ASSERT(isPowerOf2(cfg.stage1Entries), "stage1 entries not pow2");
    SS_ASSERT(isPowerOf2(cfg.stage2Entries), "stage2 entries not pow2");
    stage1_.assign(cfg.stage1Entries, {});
    stage2_.assign(cfg.stage2Entries, {});
}

std::uint64_t
CascadedIndirectPredictor::s1Index(Addr pc) const
{
    return (pc / isa::instBytes) & (cfg_.stage1Entries - 1);
}

std::uint64_t
CascadedIndirectPredictor::s2Index(Addr pc, std::uint64_t path) const
{
    std::uint64_t p = path & mask(cfg_.pathBits);
    return ((pc / isa::instBytes) ^ (p * 0x9e37ull)) &
           (cfg_.stage2Entries - 1);
}

std::uint16_t
CascadedIndirectPredictor::tagOf(Addr pc) const
{
    return static_cast<std::uint16_t>((pc / isa::instBytes) &
                                      mask(cfg_.tagBits));
}

Addr
CascadedIndirectPredictor::predict(Addr pc, std::uint64_t path_hist) const
{
    const Stage2Entry &e2 = stage2_[s2Index(pc, path_hist)];
    if (e2.valid && e2.tag == tagOf(pc))
        return e2.target;
    return stage1_[s1Index(pc)].target;
}

void
CascadedIndirectPredictor::update(Addr pc, std::uint64_t path_hist,
                                  Addr target)
{
    Stage1Entry &e1 = stage1_[s1Index(pc)];
    Stage2Entry &e2 = stage2_[s2Index(pc, path_hist)];
    bool s2_hit = e2.valid && e2.tag == tagOf(pc);

    if (s2_hit) {
        e2.target = target;
    } else if (e1.target != invalidAddr && e1.target != target) {
        // Cascade: allocate in stage 2 only when stage 1 failed.
        e2.valid = true;
        e2.tag = tagOf(pc);
        e2.target = target;
    }
    e1.target = target;
}

} // namespace specslice::branch
