/**
 * @file
 * The CVP-style predictor-serving API: a predictor consumes a stream
 * of retired control-flow events through a narrow
 * predict/update/report interface (as in the Championship Value
 * Prediction harness), so the same predictor stack that sits inside
 * the timing core can be driven by externally-supplied traces at
 * sustained throughput — no pipeline required.
 *
 * Contract (in-order, one dynamic instruction at a time):
 *
 *   conditional branch:   predictCond(pc, target)  then
 *                         updateCond(pc, taken)
 *   return:               predictTarget(pc, Return) then
 *                         updateTarget(pc, Return, actual)
 *   indirect jump:        predictTarget(pc, Jump)   then
 *                         updateTarget(pc, Jump, actual)
 *   indirect call:        predictTarget(pc, Call), observeCall(ret),
 *                         then updateTarget(pc, Call, actual)
 *   direct call:          observeCall(return_pc)
 *
 * Every predict is followed by its update before the next predict
 * (retired-stream replay), so implementations may latch prediction
 * context in member state instead of threading tokens through the
 * caller. report() exposes implementation counters for result JSON.
 */

#ifndef SPECSLICE_BRANCH_PREDICTOR_CLIENT_HH
#define SPECSLICE_BRANCH_PREDICTOR_CLIENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace specslice::branch
{

/** Which target-predicting structure a control transfer exercises. */
enum class TargetKind
{
    Return,  ///< return-address-stack pop
    Jump,    ///< indirect jump
    Call,    ///< indirect call (predict, then observeCall)
};

class PredictorClient
{
  public:
    virtual ~PredictorClient() = default;

    /** Registry name ("paper", "yags", ...). */
    virtual const char *name() const = 0;

    /**
     * Predict a conditional branch's direction. @param taken_target
     * the branch's static taken-target (available at decode in this
     * machine; lets static heuristics do backward-taken).
     */
    virtual bool predictCond(Addr pc, Addr taken_target) = 0;

    /** Train with the resolved direction of the last predictCond. */
    virtual void updateCond(Addr pc, bool taken) = 0;

    /** Predict a return/indirect target (invalidAddr = no idea). */
    virtual Addr predictTarget(Addr pc, TargetKind kind) = 0;

    /** Train with the resolved target of the last predictTarget. */
    virtual void updateTarget(Addr pc, TargetKind kind, Addr target) = 0;

    /** A call retired; return_pc is the fall-through address. */
    virtual void observeCall(Addr return_pc) = 0;

    /** Merge implementation-specific counters into out (prefixed with
     *  the client name by the caller, so keys need no prefix here). */
    virtual void
    report(std::map<std::string, std::uint64_t> &out) const
    {
        (void)out;
    }
};

/**
 * Instantiate a registered client by name. @return nullptr for an
 * unknown name (predictorClientNames() lists the valid ones).
 *
 *   "paper"   the full Table 1 front end (YAGS + cascaded indirect +
 *             RAS) driven exactly as the timing core drives it:
 *             speculative history shifted at predict, checkpointed
 *             per control op, restored + corrected on a mispredict.
 *   "yags"    the YAGS direction predictor alone with resolved-
 *             outcome history (no target model: targets always miss).
 *   "static"  backward-taken/forward-not-taken, no target model.
 */
std::unique_ptr<PredictorClient> makePredictorClient(
    const std::string &name);

/** The registered client names, in presentation order. */
const std::vector<std::string> &predictorClientNames();

} // namespace specslice::branch

#endif // SPECSLICE_BRANCH_PREDICTOR_CLIENT_HH
