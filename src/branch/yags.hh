/**
 * @file
 * The YAGS conditional branch predictor (Eden & Mudge, MICRO-31), sized
 * to Table 1's 64 Kb budget. A bimodal choice PHT captures each
 * branch's bias; two small tagged direction caches store only the
 * *exceptions* to that bias (the T-cache holds taken exceptions for
 * biased-not-taken branches and vice versa).
 */

#ifndef SPECSLICE_BRANCH_YAGS_HH
#define SPECSLICE_BRANCH_YAGS_HH

#include <cstdint>
#include <vector>

#include "common/bitutils.hh"
#include "common/types.hh"

namespace specslice::branch
{

class YagsPredictor
{
  public:
    struct Config
    {
        unsigned choiceEntries = 8192;  ///< bimodal 2-bit counters
        unsigned cacheEntries = 2048;   ///< per direction cache
        unsigned tagBits = 8;
        unsigned historyBits = 16;      ///< folded into the index
    };

    YagsPredictor() : YagsPredictor(Config{}) {}
    explicit YagsPredictor(const Config &cfg);

    /**
     * Predict the branch at pc under global history hist.
     * @return predicted taken?
     */
    bool predict(Addr pc, std::uint64_t hist) const;

    /** Train with the resolved outcome (same pc/hist as prediction). */
    void update(Addr pc, std::uint64_t hist, bool taken);

    /** Approximate storage budget in bits (for Table 1 checking). */
    std::uint64_t storageBits() const;

  private:
    struct CacheEntry
    {
        std::uint16_t tag = 0;
        std::uint8_t counter = 1;  ///< 2-bit
        bool valid = false;
    };

    std::uint64_t choiceIndex(Addr pc) const;
    std::uint64_t cacheIndex(Addr pc, std::uint64_t hist) const;
    /** Exception-cache tag (branch-address bits, classic YAGS). */
    std::uint16_t tagOf(Addr pc, std::uint64_t hist) const;

    Config cfg_;
    std::vector<std::uint8_t> choice_;   ///< 2-bit counters
    std::vector<CacheEntry> takenCache_; ///< exceptions when choice=NT
    std::vector<CacheEntry> ntCache_;    ///< exceptions when choice=T
};

} // namespace specslice::branch

#endif // SPECSLICE_BRANCH_YAGS_HH
