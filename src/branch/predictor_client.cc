#include "branch/predictor_client.hh"

#include "branch/history.hh"
#include "branch/predictor_unit.hh"
#include "branch/yags.hh"

namespace specslice::branch
{

namespace
{

/**
 * The paper's composite front end behind the client API. Drives
 * BranchPredictorUnit exactly as core::SmtCore does for correct-path
 * instructions: checkpoint before every control op, speculative
 * history shift at predict, train-then-recover at update (updateCond
 * first, then on a mispredict restore the checkpoint and shift the
 * resolved outcome — the same ordering resolveBranch uses). An
 * in-order replay has no wrong path, so "recovery" collapses to
 * fixing the speculative history, but going through the identical
 * call sequence keeps this client faithful to the hardware model.
 */
class PaperClient : public PredictorClient
{
  public:
    const char *name() const override { return "paper"; }

    bool
    predictCond(Addr pc, Addr) override
    {
        cp_ = bpu_.checkpoint();
        lastDir_ = bpu_.predictCond(pc, /*override_dir=*/-1, ctx_);
        return lastDir_;
    }

    void
    updateCond(Addr pc, bool taken) override
    {
        bpu_.updateCond(pc, ctx_, taken);
        if (lastDir_ != taken) {
            bpu_.restore(cp_);
            bpu_.shiftResolved(taken);
        }
    }

    Addr
    predictTarget(Addr pc, TargetKind kind) override
    {
        cp_ = bpu_.checkpoint();
        lastTarget_ = kind == TargetKind::Return
                          ? bpu_.popReturn()
                          : bpu_.predictIndirect(pc, ctx_);
        return lastTarget_;
    }

    void
    updateTarget(Addr pc, TargetKind kind, Addr target) override
    {
        if (kind == TargetKind::Return) {
            // Returns train nothing (the RAS already popped); a wrong
            // pop rewinds the stack like a squash does.
            if (lastTarget_ != target)
                bpu_.restore(cp_);
            return;
        }
        bpu_.updateIndirect(pc, ctx_, target);
        if (lastTarget_ != target) {
            bpu_.restore(cp_);
            bpu_.shiftResolvedTarget(target);
        }
    }

    void observeCall(Addr return_pc) override { bpu_.pushCall(return_pc); }

    void
    report(std::map<std::string, std::uint64_t> &out) const override
    {
        for (const auto &[key, stat] : bpu_.stats().counters())
            out[key] = stat.value();
    }

  private:
    BranchPredictorUnit bpu_;
    SpecCheckpoint cp_;
    PredictContext ctx_;
    bool lastDir_ = false;
    Addr lastTarget_ = invalidAddr;
};

/** YAGS alone, trained with resolved history (no target model). */
class YagsClient : public PredictorClient
{
  public:
    const char *name() const override { return "yags"; }

    bool
    predictCond(Addr pc, Addr) override
    {
        lastHist_ = ghist_.value();
        return yags_.predict(pc, lastHist_);
    }

    void
    updateCond(Addr pc, bool taken) override
    {
        yags_.update(pc, lastHist_, taken);
        ghist_.shift(taken);
    }

    Addr predictTarget(Addr, TargetKind) override { return invalidAddr; }
    void updateTarget(Addr, TargetKind, Addr) override {}
    void observeCall(Addr) override {}

  private:
    YagsPredictor yags_;
    GlobalHistory ghist_;
    std::uint64_t lastHist_ = 0;
};

/** Backward-taken / forward-not-taken, the classic static baseline. */
class StaticClient : public PredictorClient
{
  public:
    const char *name() const override { return "static"; }

    bool
    predictCond(Addr pc, Addr taken_target) override
    {
        return taken_target != invalidAddr && taken_target <= pc;
    }

    void updateCond(Addr, bool) override {}
    Addr predictTarget(Addr, TargetKind) override { return invalidAddr; }
    void updateTarget(Addr, TargetKind, Addr) override {}
    void observeCall(Addr) override {}
};

} // namespace

std::unique_ptr<PredictorClient>
makePredictorClient(const std::string &name)
{
    if (name == "paper")
        return std::make_unique<PaperClient>();
    if (name == "yags")
        return std::make_unique<YagsClient>();
    if (name == "static")
        return std::make_unique<StaticClient>();
    return nullptr;
}

const std::vector<std::string> &
predictorClientNames()
{
    static const std::vector<std::string> names = {"paper", "yags",
                                                   "static"};
    return names;
}

} // namespace specslice::branch
