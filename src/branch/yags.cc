#include "branch/yags.hh"

#include "common/logging.hh"
#include "isa/opcodes.hh"

namespace specslice::branch
{

namespace
{

bool
counterTaken(std::uint8_t c)
{
    return c >= 2;
}

void
counterUpdate(std::uint8_t &c, bool taken)
{
    if (taken) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

} // namespace

YagsPredictor::YagsPredictor(const Config &cfg) : cfg_(cfg)
{
    SS_ASSERT(isPowerOf2(cfg.choiceEntries), "choice entries not pow2");
    SS_ASSERT(isPowerOf2(cfg.cacheEntries), "cache entries not pow2");
    choice_.assign(cfg.choiceEntries, 1);  // weakly not-taken
    takenCache_.assign(cfg.cacheEntries, {});
    ntCache_.assign(cfg.cacheEntries, {});
}

std::uint64_t
YagsPredictor::choiceIndex(Addr pc) const
{
    return (pc / isa::instBytes) & (cfg_.choiceEntries - 1);
}

std::uint64_t
YagsPredictor::cacheIndex(Addr pc, std::uint64_t hist) const
{
    // Fold the full history into the index so that two histories that
    // agree in their low bits but differ above (e.g. a loop-exit
    // history vs a saturated all-taken mid-loop history) land in
    // different sets instead of ping-ponging one entry.
    std::uint64_t h = hist & mask(cfg_.historyBits);
    unsigned idx_bits = floorLog2(cfg_.cacheEntries);
    std::uint64_t folded = h ^ (h >> idx_bits);
    return ((pc / isa::instBytes) ^ folded) & (cfg_.cacheEntries - 1);
}

std::uint16_t
YagsPredictor::tagOf(Addr pc, std::uint64_t hist) const
{
    // Classic YAGS: the tag carries branch-address bits only (the
    // index already incorporates the folded history).
    (void)hist;
    return static_cast<std::uint16_t>((pc / isa::instBytes) &
                                      mask(cfg_.tagBits));
}

bool
YagsPredictor::predict(Addr pc, std::uint64_t hist) const
{
    bool choice_taken = counterTaken(choice_[choiceIndex(pc)]);
    std::uint64_t idx = cacheIndex(pc, hist);
    std::uint16_t tag = tagOf(pc, hist);

    // Consult the cache that stores exceptions to the bias.
    const CacheEntry &e = choice_taken ? ntCache_[idx] : takenCache_[idx];
    if (e.valid && e.tag == tag)
        return counterTaken(e.counter);
    return choice_taken;
}

void
YagsPredictor::update(Addr pc, std::uint64_t hist, bool taken)
{
    std::uint64_t cidx = choiceIndex(pc);
    bool choice_taken = counterTaken(choice_[cidx]);
    std::uint64_t idx = cacheIndex(pc, hist);
    std::uint16_t tag = tagOf(pc, hist);

    CacheEntry &e = choice_taken ? ntCache_[idx] : takenCache_[idx];
    bool cache_hit = e.valid && e.tag == tag;

    if (cache_hit) {
        counterUpdate(e.counter, taken);
    } else if (taken != choice_taken) {
        // Allocate an exception entry.
        e.valid = true;
        e.tag = tag;
        e.counter = taken ? 2 : 1;
    }

    // The choice PHT tracks bias. Standard YAGS rule: don't weaken the
    // choice counter when it was wrong but the exception cache was
    // right (the exception is doing its job).
    bool cache_correct = cache_hit && counterTaken(e.counter) == taken;
    if (!(choice_taken != taken && cache_correct))
        counterUpdate(choice_[cidx], taken);
}

std::uint64_t
YagsPredictor::storageBits() const
{
    std::uint64_t bits_ = static_cast<std::uint64_t>(cfg_.choiceEntries) * 2;
    bits_ += 2ull * cfg_.cacheEntries * (2 + cfg_.tagBits + 1);
    return bits_;
}

} // namespace specslice::branch
