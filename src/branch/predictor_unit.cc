#include "branch/predictor_unit.hh"

namespace specslice::branch
{

BranchPredictorUnit::BranchPredictorUnit(const PredictorConfig &cfg)
    : ghist_(cfg.historyBits),
      phist_(cfg.pathBits),
      yags_(cfg.yags),
      indirect_(cfg.indirect),
      ras_(cfg.rasEntries),
      stats_("bp")
{
}

SpecCheckpoint
BranchPredictorUnit::checkpoint() const
{
    return {ghist_.checkpoint(), phist_.checkpoint(), ras_.checkpoint()};
}

void
BranchPredictorUnit::restore(const SpecCheckpoint &cp)
{
    ghist_.restore(cp.ghist);
    phist_.restore(cp.phist);
    ras_.restore(cp.ras);
}

bool
BranchPredictorUnit::predictCond(Addr pc, int override_dir,
                                 PredictContext &ctx)
{
    ctx.ghist = ghist_.value();
    ctx.phist = phist_.value();

    bool taken;
    if (override_dir >= 0) {
        taken = override_dir != 0;
        stats_.add("cond_overridden");
    } else {
        taken = yags_.predict(pc, ctx.ghist);
    }
    stats_.add("cond_predictions");
    ghist_.shift(taken);
    return taken;
}

Addr
BranchPredictorUnit::predictIndirect(Addr pc, PredictContext &ctx)
{
    ctx.ghist = ghist_.value();
    ctx.phist = phist_.value();
    Addr target = indirect_.predict(pc, ctx.phist);
    stats_.add("indirect_predictions");
    if (target != invalidAddr)
        phist_.shift(target);
    return target;
}

void
BranchPredictorUnit::pushCall(Addr return_addr)
{
    ras_.push(return_addr);
}

Addr
BranchPredictorUnit::popReturn()
{
    return ras_.pop();
}

void
BranchPredictorUnit::updateCond(Addr pc, const PredictContext &ctx,
                                bool taken)
{
    yags_.update(pc, ctx.ghist, taken);
    stats_.add("cond_updates");
}

void
BranchPredictorUnit::updateIndirect(Addr pc, const PredictContext &ctx,
                                    Addr target)
{
    indirect_.update(pc, ctx.phist, target);
    stats_.add("indirect_updates");
}

} // namespace specslice::branch
