#include "branch/predictor_unit.hh"

#include "obs/trace.hh"

namespace specslice::branch
{

BranchPredictorUnit::Handles::Handles(StatGroup &g)
    : condOverridden(g.scalar("cond_overridden")),
      condPredictions(g.scalar("cond_predictions")),
      indirectPredictions(g.scalar("indirect_predictions")),
      condUpdates(g.scalar("cond_updates")),
      indirectUpdates(g.scalar("indirect_updates"))
{
}

BranchPredictorUnit::BranchPredictorUnit(const PredictorConfig &cfg)
    : ghist_(cfg.historyBits),
      phist_(cfg.pathBits),
      yags_(cfg.yags),
      indirect_(cfg.indirect),
      ras_(cfg.rasEntries),
      stats_("bp"),
      s_(stats_)
{
}

SpecCheckpoint
BranchPredictorUnit::checkpoint() const
{
    return {ghist_.checkpoint(), phist_.checkpoint(), ras_.checkpoint()};
}

void
BranchPredictorUnit::restore(const SpecCheckpoint &cp)
{
    ghist_.restore(cp.ghist);
    phist_.restore(cp.phist);
    ras_.restore(cp.ras);
}

bool
BranchPredictorUnit::predictCond(Addr pc, int override_dir,
                                 PredictContext &ctx)
{
    ctx.ghist = ghist_.value();
    ctx.phist = phist_.value();

    bool taken;
    if (override_dir >= 0) {
        taken = override_dir != 0;
        ++s_.condOverridden;
    } else {
        taken = yags_.predict(pc, ctx.ghist);
    }
    // pred.flip: invert the direction before the speculative history
    // shift, so the history tracks the (wrong) path the front end
    // actually follows — recovery then works exactly as it would for
    // a natural misprediction.
    if (injector_ && injector_->fire(fault::Site::PredFlip))
        taken = !taken;
    ++s_.condPredictions;
    ghist_.shift(taken);
    SS_DTRACE(Pred, "cond pc=0x", std::hex, pc, std::dec,
              " taken=", int{taken}, " override=", override_dir);
    return taken;
}

Addr
BranchPredictorUnit::predictIndirect(Addr pc, PredictContext &ctx)
{
    ctx.ghist = ghist_.value();
    ctx.phist = phist_.value();
    Addr target = indirect_.predict(pc, ctx.phist);
    ++s_.indirectPredictions;
    if (target != invalidAddr)
        phist_.shift(target);
    return target;
}

void
BranchPredictorUnit::pushCall(Addr return_addr)
{
    ras_.push(return_addr);
}

Addr
BranchPredictorUnit::popReturn()
{
    return ras_.pop();
}

void
BranchPredictorUnit::updateCond(Addr pc, const PredictContext &ctx,
                                bool taken)
{
    yags_.update(pc, ctx.ghist, taken);
    ++s_.condUpdates;
    SS_DTRACE(Pred, "update-cond pc=0x", std::hex, pc, std::dec,
              " taken=", int{taken});
}

void
BranchPredictorUnit::updateIndirect(Addr pc, const PredictContext &ctx,
                                    Addr target)
{
    indirect_.update(pc, ctx.phist, target);
    ++s_.indirectUpdates;
    SS_DTRACE(Pred, "update-ind pc=0x", std::hex, pc,
              " target=0x", target, std::dec);
}

void
BranchPredictorUnit::warmCond(Addr pc, bool taken)
{
    // Mirror a correctly-predicted branch's lifecycle: train against
    // the history the prediction would have been made under, then
    // shift the outcome in — exactly predictCond + updateCond minus
    // the stats and injector taps.
    yags_.update(pc, ghist_.value(), taken);
    ghist_.shift(taken);
}

void
BranchPredictorUnit::warmIndirect(Addr pc, Addr target)
{
    indirect_.update(pc, phist_.value(), target);
    if (target != invalidAddr)
        phist_.shift(target);
}

} // namespace specslice::branch
