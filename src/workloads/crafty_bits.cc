/**
 * @file
 * crafty: chess bitboard evaluation. Attack detection ANDs two sparse
 * 64-bit boards and branches on the result; set bits are then scanned
 * with a FirstOne-style loop (the paper's footnote 3: crafty's problem
 * instructions sit in FirstOne/LastOne, which Alpha handles natively —
 * so the authors "did not bother" optimizing and crafty sees no
 * significant speedup). We reproduce that: a minimal loop-free slice
 * covers only the attack branch and buys very little.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

constexpr std::int32_t gRemaining = 0;
constexpr std::int32_t gRngState = 8;
constexpr std::int32_t gBoardBase = 16;
constexpr std::int32_t gSink = 24;

constexpr std::uint64_t numBoards = 4096;  ///< 32 KB: L1 resident

} // namespace

sim::Workload
buildCrafty(const Params &p)
{
    sim::Workload wl;
    wl.name = "crafty";
    wl.scale = p.scale;

    // ~55 dynamic instructions per evaluation.
    std::uint64_t evals = std::max<std::uint64_t>(1, p.scale / 55);

    isa::Assembler as(mainCodeBase);
    as.label("start");
    as.ldi64(regGp, globalsBase);

    as.label("eval_loop");
    as.ldq(5, regGp, gRngState);
    as.srli(6, 5, 12);
    as.xor_(5, 5, 6);
    as.slli(6, 5, 25);
    as.xor_(5, 5, 6);
    as.srli(6, 5, 27);
    as.xor_(5, 5, 6);
    as.stq(5, regGp, gRngState);
    as.ldq(7, regGp, gBoardBase);
    as.andi(8, 5, numBoards - 1);
    as.s8add(9, 8, 7);
    as.ldq(21, 9, 0);             // r21 = board 1 (live-in)
    as.srli(10, 5, 20);
    as.andi(10, 10, numBoards - 1);
    as.s8add(11, 10, 7);
    as.ldq(22, 11, 0);            // r22 = board 2 (live-in)

    // Move-generation-ish filler.
    for (int i = 0; i < 8; ++i) {
        as.addi(13, 13, 9 + i);
        as.slli(14, 13, 3);
        as.xor_(13, 13, 14);
    }
    as.stq(13, regGp, gSink);

    as.call("attacked");

    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "eval_loop");
    as.halt();

    // The fork point is NOT hoisted: crafty's problem instructions sit
    // in FirstOne-style scans the authors chose not to optimize
    // (footnote 3), so the slice's prediction usually arrives late.
    as.label("attacked");         // << fork PC
    as.and_(5, 21, 22);
    as.label("problem_branch");
    as.beq(5, "no_attack");       // << attack test (unbiased)
    // FirstOne-style scan: pop bits one at a time (bits = bits & -bits
    // cleared); the loop trip count is the data-dependent popcount.
    as.ldi(25, 0);
    as.label("scan_loop");
    as.subi(6, 5, 1);
    as.and_(5, 5, 6);             // clear lowest set bit
    as.addi(25, 25, 1);
    as.bne(5, "scan_loop");
    as.stq(25, regGp, gSink);
    as.label("no_attack");        // << slice kill PC
    as.ret();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    // Minimal slice: one prediction, no loop (7 static instructions).
    isa::Assembler sl(sliceCodeBase);
    sl.label("slice");
    sl.and_(5, 21, 22);
    sl.label("slice_pgi");
    sl.cmpeqi(regZero, 5, 0);     // PGI: board AND is zero
    sl.nop();
    sl.nop();
    sl.nop();
    sl.nop();
    sl.sliceEnd();
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(sym);
    wl.program.addSymbols(ssym);
    wl.entry = sym.at("start");

    slice::SliceDescriptor sd;
    sd.name = "crafty_attacked";
    sd.forkPc = sym.at("attacked");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {21, 22};
    sd.maxLoopIters = 0;
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());

    slice::PgiSpec pgi;
    pgi.sliceInstPc = ssym.at("slice_pgi");
    pgi.problemBranchPc = sym.at("problem_branch");
    pgi.invert = false;  // beq taken iff AND == 0, PGI computes that
    pgi.sliceKillPc = sym.at("no_attack");
    sd.pgis = {pgi};
    sd.coveredBranchPcs = {sym.at("problem_branch")};
    wl.slices = {sd};

    std::uint64_t seed = p.seed;
    wl.initMemory = [evals, seed](arch::MemoryImage &mem) {
        Rng rng(seed * 0x9fb21c651e98df25ull + 0x2d358dccaa6c78a5ull);

        const Addr boards = dataBase;
        // Sparse boards (~7 bits) make the AND ~50% non-zero.
        for (std::uint64_t i = 0; i < numBoards; ++i) {
            std::uint64_t b = 0;
            for (int k = 0; k < 7; ++k)
                b |= std::uint64_t{1} << rng.below(64);
            mem.writeQ(boards + i * 8, b);
        }

        mem.writeQ(globalsBase + gRemaining, evals);
        mem.writeQ(globalsBase + gRngState, seed | 0x10000001);
        mem.writeQ(globalsBase + gBoardBase, boards);
    };

    return wl;
}

} // namespace specslice::workloads
