/**
 * @file
 * The 12 SPEC2000-like synthetic workloads. Each reproduces the
 * problem-instruction structure the paper describes for the
 * corresponding benchmark (Sections 2.4, 3.2, 6.1, 6.2), including the
 * hand-constructed speculative slices — or, for the slice-construction
 * failures (parser), their absence.
 */

#ifndef SPECSLICE_WORKLOADS_WORKLOADS_HH
#define SPECSLICE_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "sim/workload.hh"

namespace specslice::workloads
{

/** Build parameters: scale ~ target dynamic instruction count. */
struct Params
{
    std::uint64_t scale = 1'000'000;
    std::uint64_t seed = 1;
};

// One builder per SPEC2000 integer benchmark studied in the paper.
sim::Workload buildBzip2(const Params &p = {});   // sorting compares
sim::Workload buildCrafty(const Params &p = {});  // bit scans (note 3)
sim::Workload buildEon(const Params &p = {});     // polymorphic calls
sim::Workload buildGap(const Params &p = {});     // bag/list scan
sim::Workload buildGcc(const Params &p = {});     // rtx switch walk
sim::Workload buildGzip(const Params &p = {});    // LZ match chains
sim::Workload buildMcf(const Params &p = {});     // pointer-chasing
sim::Workload buildParser(const Params &p = {});  // hash + dealloc
sim::Workload buildPerl(const Params &p = {});    // hash + strings
sim::Workload buildTwolf(const Params &p = {});   // net list walks
sim::Workload buildVortex(const Params &p = {});  // high-IPC db walk
sim::Workload buildVpr(const Params &p = {});     // heap insertion

/** Names in the paper's (alphabetical) order. */
const std::vector<std::string> &allWorkloadNames();

/** Build by name; fatal on unknown names. */
sim::Workload buildWorkload(const std::string &name,
                            const Params &p = {});

} // namespace specslice::workloads

#endif // SPECSLICE_WORKLOADS_WORKLOADS_HH
