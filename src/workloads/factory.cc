#include "workloads/workloads.hh"

#include "common/logging.hh"

namespace specslice::workloads
{

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "bzip2", "crafty", "eon",    "gap",   "gcc",    "gzip",
        "mcf",   "parser", "perl",   "twolf", "vortex", "vpr",
    };
    return names;
}

sim::Workload
buildWorkload(const std::string &name, const Params &p)
{
    if (name == "bzip2")
        return buildBzip2(p);
    if (name == "crafty")
        return buildCrafty(p);
    if (name == "eon")
        return buildEon(p);
    if (name == "gap")
        return buildGap(p);
    if (name == "gcc")
        return buildGcc(p);
    if (name == "gzip")
        return buildGzip(p);
    if (name == "mcf")
        return buildMcf(p);
    if (name == "parser")
        return buildParser(p);
    if (name == "perl")
        return buildPerl(p);
    if (name == "twolf")
        return buildTwolf(p);
    if (name == "vortex")
        return buildVortex(p);
    if (name == "vpr")
        return buildVpr(p);
    SS_FATAL("unknown workload '", name, "'");
}

} // namespace specslice::workloads
