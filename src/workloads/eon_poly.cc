/**
 * @file
 * eon: a probabilistic ray-tracer dominated by polymorphic calls and
 * value-dependent control. Each shading step dispatches through a
 * virtual-method table (an indirect call the cascaded predictor must
 * cope with) and then evaluates a chain of six data-dependent
 * branches on the object's fields. eon has "insufficient misses" in
 * Table 2's memory columns — the scene data is cache-resident — so the
 * slice is prediction-only and loop-free: one fork per shading call
 * computes all six branch outcomes (Table 3's eon row: 8 static
 * instructions, 1 live-in, 6 predictions, no loop).
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

constexpr std::int32_t gRemaining = 0;
constexpr std::int32_t gRngState = 8;
constexpr std::int32_t gObjBase = 16;
constexpr std::int32_t gVtblBase = 24;
constexpr std::int32_t gSink = 32;

// Object: { type, a, b, c } (32 bytes).
constexpr std::int32_t oType = 0;
constexpr std::int32_t oA = 8;
constexpr std::int32_t oB = 16;
constexpr std::int32_t oC = 24;
constexpr unsigned objSize = 32;

constexpr std::uint64_t numObjs = 1024;  ///< 32 KB: cache resident

} // namespace

sim::Workload
buildEon(const Params &p)
{
    sim::Workload wl;
    wl.name = "eon";
    wl.scale = p.scale;

    // ~75 dynamic instructions per shading step.
    std::uint64_t steps = std::max<std::uint64_t>(1, p.scale / 75);

    isa::Assembler as(mainCodeBase);
    as.label("start");
    as.ldi64(regGp, globalsBase);

    as.label("step_loop");
    as.ldq(5, regGp, gRngState);
    as.srli(6, 5, 12);
    as.xor_(5, 5, 6);
    as.slli(6, 5, 25);
    as.xor_(5, 5, 6);
    as.srli(6, 5, 27);
    as.xor_(5, 5, 6);
    as.stq(5, regGp, gRngState);
    as.andi(6, 5, numObjs - 1);
    as.slli(6, 6, 5);             // * objSize
    as.ldq(7, regGp, gObjBase);
    as.add(21, 6, 7);             // r21 = &obj (slice live-in)

    // Polymorphic dispatch: an indirect call through the vtable. The
    // slice forks here, hoisted past the dispatch and method body
    // (~25 dynamic instructions before the first problem branch).
    as.label("pre_dispatch");     // << fork PC
    as.ldq(8, 21, oType);
    as.ldq(9, regGp, gVtblBase);
    as.s8add(10, 8, 9);
    as.ldq(11, 10, 0);            // method pointer
    as.callr(11);                 // indirect call (not slice-covered)

    as.call("shade");

    // Ray bookkeeping: a predictable block that dilutes the problem
    // branches to a paper-like density (eon's base IPC is high).
    for (int i = 0; i < 20; ++i) {
        as.addi(26, 26, 5 + i);
        as.slli(27, 26, 2);
        as.xor_(26, 26, 27);
        as.srli(27, 26, 7);
        as.add(26, 26, 27);
    }
    as.stq(26, regGp, gSink);

    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "step_loop");
    as.halt();

    // Four small "virtual methods" with different mixes of work. Each
    // contains its own data-dependent branch that no slice covers, so
    // the slice removes only about half of eon's mispredictions
    // (Table 4: 52 %).
    for (int m = 0; m < 4; ++m) {
        as.label("method" + std::to_string(m));
        for (int i = 0; i <= m; ++i) {
            as.addi(26, 26, 3 + i);
            as.slli(27, 26, 1);
            as.xor_(26, 26, 27);
        }
        as.ldq(28, 21, (m % 3) * 8 + oA);
        as.srli(28, 28, 3 + m);
        as.andi(28, 28, 1);
        as.beq(28, "method" + std::to_string(m) + "_skip");
        as.addi(26, 26, 17);
        as.xor_(26, 26, 28);
        as.label("method" + std::to_string(m) + "_skip");
        as.ret();
    }

    // Six value-dependent branches on the object's fields.
    as.label("shade");
    as.ldq(12, 21, oA);
    as.ldq(13, 21, oB);
    as.ldq(14, 21, oC);
    as.ldi(25, 0);

    const char *merge[6] = {"m1", "m2", "m3", "m4", "m5", "m6"};
    // branch 1: a & 1
    as.andi(15, 12, 1);
    as.label("problem_branch1");
    as.beq(15, merge[0]);
    as.addi(25, 25, 1);
    as.label(merge[0]);
    // branch 2: b & 1
    as.andi(16, 13, 1);
    as.label("problem_branch2");
    as.beq(16, merge[1]);
    as.addi(25, 25, 2);
    as.label(merge[1]);
    // branch 3: a < b
    as.cmplt(17, 12, 13);
    as.label("problem_branch3");
    as.beq(17, merge[2]);
    as.addi(25, 25, 4);
    as.label(merge[2]);
    // branch 4: b < c
    as.cmplt(18, 13, 14);
    as.label("problem_branch4");
    as.beq(18, merge[3]);
    as.addi(25, 25, 8);
    as.label(merge[3]);
    // branch 5: c & 2
    as.andi(19, 14, 2);
    as.label("problem_branch5");
    as.beq(19, merge[4]);
    as.addi(25, 25, 16);
    as.label(merge[4]);
    // branch 6: (a ^ c) & 1
    as.xor_(20, 12, 14);
    as.andi(20, 20, 1);
    as.label("problem_branch6");
    as.beq(20, merge[5]);
    as.addi(25, 25, 32);
    as.label(merge[5]);
    as.label("shade_done");       // << slice kill PC
    as.stq(25, regGp, gSink);
    as.ret();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    // Slice: straight-line, six PGIs, then SliceEnd.
    isa::Assembler sl(sliceCodeBase);
    sl.label("slice");
    sl.ldq(12, 21, oA);
    sl.ldq(13, 21, oB);
    sl.ldq(14, 21, oC);
    sl.label("slice_pgi1");
    sl.andi(regZero, 12, 1);
    sl.label("slice_pgi2");
    sl.andi(regZero, 13, 1);
    sl.label("slice_pgi3");
    sl.cmplt(regZero, 12, 13);
    sl.label("slice_pgi4");
    sl.cmplt(regZero, 13, 14);
    sl.label("slice_pgi5");
    sl.andi(regZero, 14, 2);
    sl.xor_(20, 12, 14);
    sl.label("slice_pgi6");
    sl.andi(regZero, 20, 1);
    sl.sliceEnd();
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(sym);
    wl.program.addSymbols(ssym);
    wl.entry = sym.at("start");

    slice::SliceDescriptor sd;
    sd.name = "eon_shade";
    sd.forkPc = sym.at("pre_dispatch");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {21};
    sd.maxLoopIters = 0;  // no loop
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());

    sd.pgis.reserve(6);
    for (int b = 1; b <= 6; ++b) {
        slice::PgiSpec pgi;
        pgi.sliceInstPc = ssym.at("slice_pgi" + std::to_string(b));
        pgi.problemBranchPc =
            sym.at("problem_branch" + std::to_string(b));
        pgi.invert = true;  // every beq takes when the test is 0
        pgi.sliceKillPc = sym.at("shade_done");
        sd.pgis.push_back(pgi);
        sd.coveredBranchPcs.push_back(pgi.problemBranchPc);
    }
    wl.slices = {sd};

    std::uint64_t seed = p.seed;
    wl.initMemory = [steps, seed, sym](arch::MemoryImage &mem) {
        Rng rng(seed * 0xe7037ed1a0b428dbull + 0x8ebc6af09c88c6e3ull);

        const Addr objs = dataBase;
        const Addr vtbl = dataBase + numObjs * objSize + 256;

        for (std::uint64_t i = 0; i < numObjs; ++i) {
            Addr o = objs + i * objSize;
            mem.writeQ(o + oType, rng.below(4));
            mem.writeQ(o + oA, rng.below(4096));
            mem.writeQ(o + oB, rng.below(4096));
            mem.writeQ(o + oC, rng.below(4096));
        }
        for (int m = 0; m < 4; ++m)
            mem.writeQ(vtbl + 8 * m,
                       sym.at("method" + std::to_string(m)));

        mem.writeQ(globalsBase + gRemaining, steps);
        mem.writeQ(globalsBase + gRngState, seed | 0x4000001);
        mem.writeQ(globalsBase + gObjBase, objs);
        mem.writeQ(globalsBase + gVtblBase, vtbl);
    };

    return wl;
}

} // namespace specslice::workloads
