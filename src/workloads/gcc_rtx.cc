/**
 * @file
 * gcc: recursive walks over rtx expression trees. Every node dispatches
 * through a switch on the node type — an indirect jump the cascaded
 * predictor struggles with because the traversal order is data-
 * dependent — and recursion descends into a type-dependent subset of
 * the children. Section 6.2 explains why slices are hard here:
 * "computing the traversal order is a substantial fraction of these
 * functions". We keep a token one-prediction slice (the child-descent
 * test of the current node); the uncovered switch dominates, so the
 * speedup stays near zero, matching Figure 11.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

constexpr std::int32_t gRemaining = 0;
constexpr std::int32_t gRngState = 8;
constexpr std::int32_t gNodeBase = 16;
constexpr std::int32_t gJumpTable = 24;
constexpr std::int32_t gSink = 32;

// rtx node: { type, kid0, kid1, val } (32 bytes).
constexpr std::int32_t nType = 0;
constexpr std::int32_t nKid0 = 8;
constexpr std::int32_t nKid1 = 16;
constexpr std::int32_t nVal = 24;
constexpr unsigned nodeSize = 32;

constexpr std::uint64_t numNodes = 100'000;  ///< ~3 MB of rtx nodes
constexpr unsigned numTypes = 8;

} // namespace

sim::Workload
buildGcc(const Params &p)
{
    sim::Workload wl;
    wl.name = "gcc";
    wl.scale = p.scale;

    // Walks are small on average (half the cases are leaves), so be
    // generous: the instruction budget, not this counter, ends runs.
    std::uint64_t walks = std::max<std::uint64_t>(1, p.scale / 40);

    isa::Assembler as(mainCodeBase);
    as.label("start");
    as.ldi64(regGp, globalsBase);
    as.ldi64(29, dataBase2 + 0x10000);  // r29 = stack pointer

    as.label("walk_loop");
    as.ldq(5, regGp, gRngState);
    as.srli(6, 5, 12);
    as.xor_(5, 5, 6);
    as.slli(6, 5, 25);
    as.xor_(5, 5, 6);
    as.srli(6, 5, 27);
    as.xor_(5, 5, 6);
    as.stq(5, regGp, gRngState);
    as.andi(6, 5, 0xffff);          // random root in the top slab
    as.slli(6, 6, 5);               // * nodeSize
    as.ldq(7, regGp, gNodeBase);
    as.add(21, 6, 7);               // r21 = root node

    as.call("walk_rtx");

    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "walk_loop");
    as.halt();

    // Recursive walk. Argument: r21 = node. Clobbers r5-r17.
    as.label("walk_rtx");           // << fork PC
    // push {ra, r21}
    as.subi(29, 29, 16);
    as.stq(regLink, 29, 0);
    as.stq(21, 29, 8);
    // dispatch on the node type through the jump table
    as.ldq(8, 21, nType);           // << problem load (3 MB of nodes)
    as.ldq(9, regGp, gJumpTable);
    as.s8add(10, 8, 9);
    as.ldq(11, 10, 0);
    as.label("switch_jmp");
    as.jmp(11);                     // << problem indirect branch

    // Leaf-ish cases (0-3): accumulate the value.
    for (int c = 0; c < 4; ++c) {
        as.label("case" + std::to_string(c));
        as.ldq(12, 21, nVal);
        as.addi(12, 12, c);
        as.stq(12, regGp, gSink);
        as.br("walk_done");
    }
    // Unary cases (4-5): recurse into kid0.
    for (int c = 4; c < 6; ++c) {
        as.label("case" + std::to_string(c));
        as.ldq(21, 21, nKid0);
        as.bne(21, "recurse_one");
        as.br("walk_done");
    }
    as.label("recurse_one");
    as.call("walk_rtx");
    as.br("walk_done");

    // Binary cases (6-7): always kid0; kid1 if the value test says so.
    for (int c = 6; c < 8; ++c) {
        as.label("case" + std::to_string(c));
        as.br("binary_case");
    }
    as.label("binary_case");
    as.ldq(13, 21, nKid0);
    as.beq(13, "walk_done");        // childless interior node
    as.mov(21, 13);
    as.call("walk_rtx");
    as.ldq(14, 29, 8);              // reload our node
    as.ldq(15, 14, nVal);
    as.andi(16, 15, 1);
    as.label("problem_branch");
    as.beq(16, "walk_done");        // << descend-into-kid1 test
    as.ldq(21, 14, nKid1);
    as.beq(21, "walk_done");
    as.call("walk_rtx");
    as.label("walk_done");          // << slice kill PC
    as.ldq(regLink, 29, 0);
    as.addi(29, 29, 16);
    as.ret();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    // Token slice (Section 6.2: profitable gcc slices are hard — the
    // traversal order computation IS the function). Predicts only the
    // current node's kid1-descent test.
    isa::Assembler sl(sliceCodeBase);
    sl.label("slice");
    sl.ldq(15, 21, nVal);
    sl.label("slice_pgi");
    sl.andi(regZero, 15, 1);
    sl.nop();
    sl.sliceEnd();
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(sym);
    wl.program.addSymbols(ssym);
    wl.entry = sym.at("start");

    slice::SliceDescriptor sd;
    sd.name = "gcc_kid1_test";
    sd.forkPc = sym.at("walk_rtx");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {21};
    sd.maxLoopIters = 0;
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());

    slice::PgiSpec pgi;
    pgi.sliceInstPc = ssym.at("slice_pgi");
    pgi.problemBranchPc = sym.at("problem_branch");
    pgi.invert = true;  // beq taken iff (val & 1) == 0
    pgi.sliceKillPc = sym.at("walk_done");
    sd.pgis = {pgi};
    sd.coveredBranchPcs = {sym.at("problem_branch")};
    wl.slices = {sd};

    std::uint64_t seed = p.seed;
    wl.initMemory = [walks, seed, sym](arch::MemoryImage &mem) {
        Rng rng(seed * 0xaaaaaaaaaaaaaaabull + 0x2545f4914f6cdd1dull);

        const Addr nodes = dataBase3;
        const Addr jt = dataBase;

        // Random DAG that only points "downward" in index order, so
        // every walk terminates; kids are scattered for poor locality.
        for (std::uint64_t i = 0; i < numNodes; ++i) {
            Addr n = nodes + i * nodeSize;
            std::uint64_t ty = rng.below(numTypes);
            mem.writeQ(n + nType, ty);
            Addr k0 = 0, k1 = 0;
            if (i > 16) {
                k0 = nodes + rng.below(i) * nodeSize;
                k1 = nodes + rng.below(i) * nodeSize;
            }
            mem.writeQ(n + nKid0, k0);
            mem.writeQ(n + nKid1, k1);
            mem.writeQ(n + nVal, rng.next() & 0xffff);
        }
        for (unsigned c = 0; c < numTypes; ++c)
            mem.writeQ(jt + 8 * c, sym.at("case" + std::to_string(c)));

        mem.writeQ(globalsBase + gRemaining, walks);
        mem.writeQ(globalsBase + gRngState, seed | 0x20000001);
        // Roots come from the last 64K nodes (deep subtrees).
        mem.writeQ(globalsBase + gNodeBase,
                   nodes + (numNodes - 65'536) * nodeSize);
        mem.writeQ(globalsBase + gJumpTable, jt);
    };

    return wl;
}

} // namespace specslice::workloads
