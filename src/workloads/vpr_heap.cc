/**
 * @file
 * vpr: the paper's running example (Sections 2.4 and 3.2, Figures
 * 2-5). A binary heap of pointers, stored as an array with children of
 * node N at 2N and 2N+1. Insertion appends at heap_tail and sifts the
 * new element up while its cost is less than its parent's cost.
 *
 * Problem instructions (Figure 2): the load of heap[ito]->cost (the
 * heap spans more than the L1) and the unbiased comparison branch
 * (average trickle distance 2-3 iterations).
 *
 * The slice is the Figure 5 slice: forked at the entry of
 * node_to_heap, live-ins {cost, gp}, it walks the ancestor chain
 * (ito /= 2), prefetching heap[ito] and heap[ito]->cost and generating
 * one branch prediction per iteration via an fcmple PGI. The slice
 * demonstrates the paper's two optimizations: *register allocation*
 * (heap[ifrom]->cost is always the live-in cost, so all loads of it
 * and the swap stores disappear) and *strength reduction* (the 3-
 * instruction signed-division sequence becomes one arithmetic shift).
 * Loop-exit computation is omitted entirely; the slice relies on the
 * profile-derived maximum iteration count (18).
 */

#include "workloads/workloads.hh"

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

// Globals (offsets from gp).
constexpr std::int32_t gHeapTail = 0;
constexpr std::int32_t gHeapBase = 8;
constexpr std::int32_t gPoolNext = 16;
constexpr std::int32_t gRngState = 24;
constexpr std::int32_t gFillerBase = 32;
constexpr std::int32_t gRemaining = 40;
constexpr std::int32_t gCapacity = 48;
constexpr std::int32_t gSink = 56;

// s_heap element layout: { u64 payload; double cost; } (16 bytes).
constexpr std::int32_t elemCost = 8;
constexpr unsigned elemSize = 16;

constexpr std::uint64_t heapElems = 100'000;  ///< pre-filled heap size
constexpr std::uint64_t heapHeadroom = 32'768;

} // namespace

sim::Workload
buildVpr(const Params &p)
{
    sim::Workload wl;
    wl.name = "vpr";
    wl.scale = p.scale;

    // Roughly 170 dynamic instructions per insertion (filler + RNG +
    // node_to_heap + trickle loop).
    std::uint64_t insertions = std::max<std::uint64_t>(1, p.scale / 170);

    // ---------------- main program ----------------
    isa::Assembler as(mainCodeBase);

    as.label("start");
    as.ldi64(regGp, globalsBase);

    as.label("main_loop");
    // Filler: predictable pass over a small L1-resident array (stands
    // in for the router work around node_to_heap in real vpr).
    as.ldq(1, regGp, gFillerBase);
    as.ldi(3, 0);
    for (int i = 0; i < 12; ++i) {
        as.ldq(4, 1, 8 * i);
        as.add(3, 3, 4);
        as.slli(5, 3, 1);
        as.xor_(3, 3, 5);
    }
    as.stq(3, regGp, gSink);

    // cost = uniform double in a window just above the typical leaf
    // cost, so insertions trickle 2-3 levels on average.
    as.ldq(5, regGp, gRngState);
    as.ldi64(6, 6364136223846793005ull);
    as.mul(5, 5, 6);
    as.ldi64(7, 1442695040888963407ull);
    as.add(5, 5, 7);
    as.stq(5, regGp, gRngState);
    as.srli(7, 5, 33);
    as.andi(7, 7, 0xffff);       // 0..65535
    as.srli(8, 7, 9);            // 0..127
    as.addi(8, 8, 66);           // 66..193, straddles ancestor costs
    as.cvtif(17, 8);             // r17 = cost (double), slice live-in

    // A little more caller work between cost computation and the call
    // (the "..." in Figure 3).
    as.mul(9, 7, 7);
    as.addi(9, 9, 3);
    as.xor_(9, 9, 7);
    as.srli(9, 9, 2);
    as.add(9, 9, 3);
    as.stq(9, regGp, gSink);

    as.call("node_to_heap");

    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "main_loop");
    as.halt();

    // ------------- node_to_heap (fork point) -------------
    as.label("node_to_heap");  // <- slice fork PC
    // hptr = alloc_heap_data()
    as.ldq(8, regGp, gPoolNext);
    as.addi(9, 8, elemSize);
    as.stq(9, regGp, gPoolNext);
    // hptr->cost = cost; hptr->payload = 0
    as.stq(17, 8, elemCost);
    as.stq(regZero, 8, 0);
    // ~32 instructions of unrelated field setup / caller work that the
    // fork is hoisted past (Section 3.2's "60 dynamic instructions").
    for (int i = 0; i < 8; ++i) {
        as.addi(10, 9, 7 + i);
        as.slli(10, 10, 3);
        as.xor_(11, 10, 9);
        as.stq(11, regGp, gSink);
    }

    // --- add_to_heap, inlined by the compiler (Figure 4) ---
    as.ldq(10, regGp, gHeapTail);   // ifrom = heap_tail
    as.ldq(5, regGp, gHeapBase);    // &heap[0]
    as.cmplti(11, 10, 0);           // see note (div-by-2 sequence)
    as.addi(12, 10, 1);             // heap_tail + 1
    as.s8add(13, 10, 5);            // &heap[heap_tail]
    as.stq(12, regGp, gHeapTail);   // store heap_tail
    as.stq(8, 13, 0);               // heap[heap_tail] = hptr
    as.add(11, 10, 11);             // see note
    as.srai(11, 11, 1);             // ito = ifrom / 2
    as.ble(11, "nth_return");       // (ito < 1)

    as.label("heap_loop");
    as.s8add(14, 10, 5);            // &heap[ifrom]
    as.s8add(15, 11, 5);            // &heap[ito]
    as.cmplti(16, 11, 0);           // see note
    as.mov(20, 11);                 // ifrom' = ito
    as.ldq(18, 14, 0);              // heap[ifrom]
    as.ldq(19, 15, 0);              // heap[ito]
    as.add(16, 11, 16);             // see note
    as.srai(16, 16, 1);             // ito = ito / 2
    as.ldq(21, 18, elemCost);       // heap[ifrom]->cost
    as.ldq(22, 19, elemCost);       // heap[ito]->cost   << problem load
    as.fcmplt(23, 21, 22);          // ifrom->cost < ito->cost
    as.label("problem_branch");
    as.beq(23, "nth_return");       // << problem branch (exit if !<)
    as.label("swap_block");         // << loop-iteration kill PC
    as.stq(18, 15, 0);              // heap[ito] = heap[ifrom]
    as.stq(19, 14, 0);              // heap[ifrom] = temp
    as.mov(10, 20);                 // ifrom = old ito
    as.mov(11, 16);                 // ito already divided
    as.label("backedge_branch");
    as.bgt(16, "heap_loop");        // (ito >= 1)  << problem branch 2

    as.label("nth_return");         // << slice kill PC
    // Heap-capacity wrap: keep the tree bounded but valid.
    as.ldq(12, regGp, gHeapTail);
    as.ldq(24, regGp, gCapacity);
    as.cmplt(25, 12, 24);
    as.bne(25, "nth_ret2");
    as.ldi64(26, heapElems + 1);
    as.stq(26, regGp, gHeapTail);
    as.label("nth_ret2");
    as.ret();

    isa::CodeSection main_sec = as.finish();
    auto symbols = as.symbols();

    // ---------------- slice (Figure 5) ----------------
    isa::Assembler sl(sliceCodeBase);
    sl.label("slice");
    sl.ldq(6, regGp, gHeapBase);   // &heap
    sl.ldq(3, regGp, gHeapTail);   // ito = heap_tail
    sl.label("slice_loop");
    sl.srai(3, 3, 1);              // ito /= 2 (strength-reduced)
    sl.s8add(16, 3, 6);            // &heap[ito]
    sl.label("slice_pref1");
    sl.ldq(18, 16, 0);             // heap[ito]
    sl.label("slice_pref2");
    sl.ldq(19, 18, elemCost);      // heap[ito]->cost
    sl.label("slice_pgi");
    sl.fcmple(regZero, 19, 17);    // (heap[ito]->cost <= cost)  PGI 1
    sl.srai(7, 3, 1);              // next ito
    sl.label("slice_pgi_backedge");
    sl.cmplt(regZero, regZero, 7); // (next ito >= 1)             PGI 2
    sl.label("slice_backedge");
    sl.br("slice_loop");
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(symbols);
    wl.program.addSymbols(ssym);
    wl.entry = symbols.at("start");

    // ---------------- slice descriptor ----------------
    slice::SliceDescriptor sd;
    sd.name = "vpr_heap_insert";
    sd.forkPc = symbols.at("node_to_heap");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {17, regGp};      // cost, gp
    sd.maxLoopIters = 18;
    sd.loopBackEdgePc = ssym.at("slice_backedge");
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());
    sd.staticSizeInLoop = 7;

    slice::PgiSpec pgi;
    pgi.sliceInstPc = ssym.at("slice_pgi");
    pgi.problemBranchPc = symbols.at("problem_branch");
    pgi.invert = false;
    pgi.loopKillPc = symbols.at("swap_block");
    pgi.sliceKillPc = symbols.at("nth_return");
    pgi.loopKillSkipFirst = false;

    slice::PgiSpec pgi2;
    pgi2.sliceInstPc = ssym.at("slice_pgi_backedge");
    pgi2.problemBranchPc = symbols.at("backedge_branch");
    pgi2.invert = false;  // bgt taken iff next ito >= 1
    // The back-edge's iteration kill is the loop-header block (the
    // back-edge target): its first instance must not kill.
    pgi2.loopKillPc = symbols.at("heap_loop");
    pgi2.loopKillSkipFirst = true;
    pgi2.sliceKillPc = symbols.at("nth_return");
    sd.pgis = {pgi, pgi2};

    sd.coveredBranchPcs = {symbols.at("problem_branch"),
                           symbols.at("backedge_branch")};
    // The two loads the slice prefetches in the main thread.
    Addr loop_base = symbols.at("heap_loop");
    sd.coveredLoadPcs = {loop_base + 5 * isa::instBytes,   // heap[ito]
                         loop_base + 9 * isa::instBytes};  // ->cost
    sd.prefetchLoadPcs = {ssym.at("slice_pref1"),
                          ssym.at("slice_pref2")};
    wl.slices = {sd};

    // ---------------- memory initializer ----------------
    std::uint64_t seed = p.seed;
    wl.initMemory = [insertions, seed](arch::MemoryImage &mem) {
        Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x632be59bd9b4e019ull);

        const Addr heap_arr = dataBase;                 // heap[0..cap]
        const Addr pool = dataBase2;                    // elements
        const Addr filler = globalsBase + 0x800;

        // Heap costs along each root-to-leaf path increase, so a fresh
        // cost drawn near the leaf range trickles a couple of levels.
        std::vector<double> cost(heapElems + 1);
        cost[1] = 0.0;
        for (std::uint64_t k = 2; k <= heapElems; ++k)
            cost[k] = cost[k / 2] +
                      static_cast<double>(rng.below(16 * 1024)) / 1024.0;

        // Scatter elements through the pool so ancestor-chain derefs
        // lack spatial locality (a random permutation of pool slots).
        std::vector<std::uint32_t> perm(heapElems + 1);
        for (std::uint64_t k = 0; k <= heapElems; ++k)
            perm[k] = static_cast<std::uint32_t>(k);
        for (std::uint64_t k = heapElems; k >= 2; --k) {
            std::uint64_t j = 1 + rng.below(k);
            std::swap(perm[k], perm[j]);
        }

        for (std::uint64_t k = 1; k <= heapElems; ++k) {
            Addr elem = pool + static_cast<Addr>(perm[k]) * elemSize;
            mem.writeQ(elem + 0, k);
            mem.writeF(elem + elemCost, cost[k]);
            mem.writeQ(heap_arr + k * 8, elem);
        }
        // heap[0] is a sentinel with cost 0 so the slice's walk past
        // the root compares against something harmless.
        Addr dummy = pool;  // slot 0 (perm[0] == 0)
        mem.writeF(dummy + elemCost, 0.0);
        mem.writeQ(heap_arr + 0, dummy);

        for (int i = 0; i < 16; ++i)
            mem.writeQ(filler + 8 * i, i * 3 + 1);

        mem.writeQ(globalsBase + gHeapTail, heapElems + 1);
        mem.writeQ(globalsBase + gHeapBase, heap_arr);
        mem.writeQ(globalsBase + gPoolNext,
                   pool + (heapElems + 1) * elemSize);
        mem.writeQ(globalsBase + gRngState, seed | 1);
        mem.writeQ(globalsBase + gFillerBase, filler);
        mem.writeQ(globalsBase + gRemaining, insertions);
        mem.writeQ(globalsBase + gCapacity, heapElems + heapHeadroom);
    };

    return wl;
}

} // namespace specslice::workloads
