/**
 * @file
 * perl: hash-table lookups with short collision chains. The hash
 * itself is a few cheap mixing operations (unlike parser's 50+
 * instruction key generation, Section 6.2), so the slice can replicate
 * it, prefetch the bucket, and predict the first key-comparison
 * branch. Benefits are moderate (Table 4's perl row: 35 % of
 * mispredictions and 30 % of misses removed).
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

constexpr std::int32_t gRemaining = 0;
constexpr std::int32_t gRngState = 8;
constexpr std::int32_t gTableBase = 16;
constexpr std::int32_t gSink = 24;

// Entry: { next, key, value } (32 bytes).
constexpr std::int32_t eNext = 0;
constexpr std::int32_t eKey = 8;
constexpr std::int32_t eValue = 16;
constexpr unsigned entrySize = 32;

constexpr std::uint64_t numBuckets = 1u << 18;  ///< 2 MB of heads
constexpr std::uint64_t numEntries = 1u << 18;  ///< load factor 1.0

} // namespace

sim::Workload
buildPerl(const Params &p)
{
    sim::Workload wl;
    wl.name = "perl";
    wl.scale = p.scale;

    // ~65 dynamic instructions per lookup.
    std::uint64_t lookups = std::max<std::uint64_t>(1, p.scale / 65);

    isa::Assembler as(mainCodeBase);
    as.label("start");
    as.ldi64(regGp, globalsBase);

    as.label("op_loop");
    as.ldq(5, regGp, gRngState);
    as.srli(6, 5, 12);
    as.xor_(5, 5, 6);
    as.slli(6, 5, 25);
    as.xor_(5, 5, 6);
    as.srli(6, 5, 27);
    as.xor_(5, 5, 6);
    as.stq(5, regGp, gRngState);
    as.andi(21, 5, (1 << 20) - 1);  // r21 = key (slice live-in)

    as.label("op_dispatch");        // << fork PC (hoisted above the
                                    //    interpreter work: ~45 dynamic
                                    //    instructions of lead)
    // Interpreter-ish filler around the lookup.
    for (int i = 0; i < 12; ++i) {
        as.addi(10, 10, 13 + i);
        as.slli(11, 10, 2);
        as.xor_(10, 10, 11);
    }
    as.stq(10, regGp, gSink);

    as.call("hv_fetch");

    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "op_loop");
    as.halt();

    as.label("hv_fetch");
    // Cheap hash: h = ((key * 31) ^ (key >> 7)) & (buckets - 1)
    as.slli(7, 21, 5);
    as.sub(7, 7, 21);             // key * 31
    as.srli(8, 21, 7);
    as.xor_(7, 7, 8);
    as.andi(7, 7, numBuckets - 1);
    as.ldq(9, regGp, gTableBase);
    as.s8add(10, 7, 9);
    as.ldq(14, 10, 0);            // bucket head   << problem load
    as.beq(14, "not_found");
    as.label("chain_loop");
    as.ldq(15, 14, eKey);         // entry->key    << problem load
    as.cmpeq(16, 15, 21);
    as.label("problem_branch");
    as.bne(16, "found");          // << key match (unbiased)
    as.label("chain_next");       // << loop-iteration kill PC
    as.ldq(14, 14, eNext);
    as.bne(14, "chain_loop");
    as.label("not_found");
    as.br("fetch_done");
    as.label("found");
    as.ldq(17, 14, eValue);
    as.stq(17, regGp, gSink);
    as.label("fetch_done");       // << slice kill PC
    as.ret();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    // Slice: replicate the hash, prefetch the bucket, predict the
    // first key comparisons.
    isa::Assembler sl(sliceCodeBase);
    sl.label("slice");
    sl.slli(7, 21, 5);
    sl.sub(7, 7, 21);
    sl.srli(8, 21, 7);
    sl.xor_(7, 7, 8);
    sl.andi(7, 7, numBuckets - 1);
    sl.ldq(9, regGp, gTableBase);
    sl.s8add(10, 7, 9);
    sl.label("slice_pref");
    sl.ldq(14, 10, 0);            // prefetch bucket head
    sl.label("slice_loop");
    sl.label("slice_pref2");
    sl.ldq(15, 14, eKey);         // prefetch entry
    sl.label("slice_pgi");
    sl.cmpeq(regZero, 15, 21);    // PGI
    sl.ldq(14, 14, eNext);        // null deref terminates
    sl.label("slice_backedge");
    sl.br("slice_loop");
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(sym);
    wl.program.addSymbols(ssym);
    wl.entry = sym.at("start");

    slice::SliceDescriptor sd;
    sd.name = "perl_hv_fetch";
    sd.forkPc = sym.at("op_dispatch");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {21, regGp};
    sd.maxLoopIters = 6;
    sd.loopBackEdgePc = ssym.at("slice_backedge");
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());
    sd.staticSizeInLoop = 4;

    slice::PgiSpec pgi;
    pgi.sliceInstPc = ssym.at("slice_pgi");
    pgi.problemBranchPc = sym.at("problem_branch");
    pgi.invert = false;  // bne taken iff keys equal
    pgi.loopKillPc = sym.at("chain_next");
    pgi.sliceKillPc = sym.at("fetch_done");
    sd.pgis = {pgi};

    sd.coveredBranchPcs = {sym.at("problem_branch")};
    sd.coveredLoadPcs = {sym.at("hv_fetch") + 7 * isa::instBytes,
                         sym.at("chain_loop")};
    sd.prefetchLoadPcs = {ssym.at("slice_pref"),
                          ssym.at("slice_pref2")};
    wl.slices = {sd};

    std::uint64_t seed = p.seed;
    wl.initMemory = [lookups, seed](arch::MemoryImage &mem) {
        Rng rng(seed * 0xa0761d6478bd642full + 0xe7037ed1a0b428dbull);

        const Addr table = dataBase;     // bucket heads
        const Addr pool = dataBase3;     // entries

        // Keys are drawn from a 20-bit space; entries hold half of the
        // looked-up keys so the match branch stays unbiased-ish.
        for (std::uint64_t i = 0; i < numEntries; ++i) {
            std::uint64_t key = rng.next() & ((1 << 20) - 1);
            std::uint64_t h = ((key * 31) ^ (key >> 7)) &
                              (numBuckets - 1);
            Addr e = pool + i * entrySize;
            Addr head = mem.readQ(table + h * 8);
            mem.writeQ(e + eNext, head);
            mem.writeQ(e + eKey, key);
            mem.writeQ(e + eValue, rng.below(100000));
            mem.writeQ(table + h * 8, e);
        }

        mem.writeQ(globalsBase + gRemaining, lookups);
        mem.writeQ(globalsBase + gRngState, seed | 0x8000001);
        mem.writeQ(globalsBase + gTableBase, table);
    };

    return wl;
}

} // namespace specslice::workloads
