/**
 * @file
 * bzip2: the block-sort suffix comparison. Each comparison walks two
 * suffixes of the block until the bytes differ or a data-dependent
 * length bound is reached; both the difference-exit branch and the
 * bound branch depend on loaded data and are unbiased.
 *
 * The slice replays the byte-compare loop (one prefetching load pair
 * and two PGIs per iteration) and demonstrates the paper's
 * skip-first-kill rule: the bound branch's loop-iteration kill is the
 * loop-header block (the back-edge target), whose first instance must
 * not kill (Section 5.1).
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

constexpr std::int32_t gRemaining = 0;
constexpr std::int32_t gRngState = 8;
constexpr std::int32_t gBlockBase = 16;
constexpr std::int32_t gLenBase = 24;
constexpr std::int32_t gSink = 32;

constexpr std::uint64_t blockBytes = 1u << 20;   ///< 1 MB block
constexpr std::uint64_t lenEntries = 4096;

} // namespace

sim::Workload
buildBzip2(const Params &p)
{
    sim::Workload wl;
    wl.name = "bzip2";
    wl.scale = p.scale;

    // ~150 dynamic instructions per comparison.
    std::uint64_t compares = std::max<std::uint64_t>(1, p.scale / 150);

    isa::Assembler as(mainCodeBase);
    as.label("start");
    as.ldi64(regGp, globalsBase);
    // Software-pipelined operand generation: the (i, j, limit) triple
    // for the *next* comparison is produced one iteration early (in
    // r31-r33), so the fork point for the current comparison sits a
    // full iteration's worth of work ahead of the compare loop —
    // this is the "hoisting past unrelated code" of Section 3.2.
    as.ldq(31, regGp, gRngState);   // bootstrap: i = seed bits
    as.andi(31, 31, blockBytes - 64);
    as.ldi(32, 64);
    as.ldi(33, 4);

    as.label("cmp_loop");
    as.mov(21, 31);                 // commit next -> current (i)
    as.mov(22, 32);                 // (j)
    as.mov(23, 33);                 // (limit)
    as.label("cmp_work");           // << fork PC (operands final here)

    // Generate the following comparison's operands.
    as.ldq(5, regGp, gRngState);
    as.srli(6, 5, 12);
    as.xor_(5, 5, 6);
    as.slli(6, 5, 25);
    as.xor_(5, 5, 6);
    as.srli(6, 5, 27);
    as.xor_(5, 5, 6);
    as.stq(5, regGp, gRngState);
    as.andi(31, 5, blockBytes - 64);        // next i
    as.srli(7, 5, 24);
    as.andi(32, 7, blockBytes - 64);        // next j
    as.srli(8, 5, 44);
    as.andi(8, 8, lenEntries - 1);
    as.ldq(9, regGp, gLenBase);
    as.s8add(10, 8, 9);
    as.ldq(33, 10, 0);                      // next limit (4..20)

    // Filler: predictable bookkeeping (bucket counters etc.).
    for (int i = 0; i < 8; ++i) {
        as.addi(12, 12, 7 + i);
        as.slli(11, 12, 1);
        as.xor_(12, 12, 11);
    }
    as.stq(12, regGp, gSink);

    as.call("full_compare");

    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "cmp_loop");
    as.halt();

    // Compare suffixes i and j up to limit bytes.
    as.label("full_compare");
    as.ldq(8, regGp, gBlockBase);
    as.ldi(4, 0);                          // k = 0
    as.label("k_loop");                    // << loop kill 2 (skip 1st)
    as.add(13, 8, 21);
    as.add(14, 8, 22);
    as.add(13, 13, 4);
    as.add(14, 14, 4);
    as.ldbu(15, 13, 0);                    // block[i+k]  << problem ld
    as.ldbu(16, 14, 0);                    // block[j+k]
    as.cmpeq(17, 15, 16);
    as.label("problem_branch1");
    as.beq(17, "cmp_differs");             // << exit when bytes differ
    as.label("cont_block");                // << loop kill 1
    as.addi(4, 4, 1);
    as.cmplt(18, 4, 23);                   // k < limit
    as.label("problem_branch2");
    as.bne(18, "k_loop");                  // << data-dependent bound
    as.br("cmp_done");
    as.label("cmp_differs");
    as.sub(19, 15, 16);
    as.stq(19, regGp, gSink);
    as.label("cmp_done");                  // << slice kill PC
    as.ret();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    // Slice: byte-compare loop, one pref pair + two PGIs.
    isa::Assembler sl(sliceCodeBase);
    sl.label("slice");
    sl.ldq(8, regGp, gBlockBase);
    sl.add(13, 8, 21);                     // &block[i]
    sl.add(14, 8, 22);                     // &block[j]
    sl.ldi(4, 0);
    sl.label("slice_loop");
    sl.label("slice_pref");
    sl.ldbu(15, 13, 0);
    sl.ldbu(16, 14, 0);
    sl.label("slice_pgi1");
    sl.cmpeq(regZero, 15, 16);             // PGI1 (inverted)
    sl.addi(13, 13, 1);
    sl.addi(14, 14, 1);
    sl.addi(4, 4, 1);
    sl.label("slice_pgi2");
    sl.cmplt(regZero, 4, 23);              // PGI2
    sl.label("slice_backedge");
    sl.br("slice_loop");
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(sym);
    wl.program.addSymbols(ssym);
    wl.entry = sym.at("start");

    slice::SliceDescriptor sd;
    sd.name = "bzip2_compare";
    sd.forkPc = sym.at("cmp_work");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {21, 22, 23, regGp};
    sd.maxLoopIters = 12;
    sd.loopBackEdgePc = ssym.at("slice_backedge");
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());
    sd.staticSizeInLoop = 8;

    slice::PgiSpec pgi1;
    pgi1.sliceInstPc = ssym.at("slice_pgi1");
    pgi1.problemBranchPc = sym.at("problem_branch1");
    pgi1.invert = true;  // beq taken iff (bytes equal) == 0
    pgi1.loopKillPc = sym.at("cont_block");
    pgi1.sliceKillPc = sym.at("cmp_done");

    slice::PgiSpec pgi2;
    pgi2.sliceInstPc = ssym.at("slice_pgi2");
    pgi2.problemBranchPc = sym.at("problem_branch2");
    pgi2.invert = false;  // bne taken iff (k < limit) != 0
    // The back-edge target kills per iteration; its first instance
    // precedes the first bound branch, so it must not kill.
    pgi2.loopKillPc = sym.at("k_loop");
    pgi2.loopKillSkipFirst = true;
    pgi2.sliceKillPc = sym.at("cmp_done");
    sd.pgis = {pgi1, pgi2};

    sd.coveredBranchPcs = {sym.at("problem_branch1"),
                           sym.at("problem_branch2")};
    Addr kl = sym.at("k_loop");
    sd.coveredLoadPcs = {kl + 4 * isa::instBytes,
                         kl + 5 * isa::instBytes};
    sd.prefetchLoadPcs = {ssym.at("slice_pref"),
                          ssym.at("slice_pref") + isa::instBytes};
    wl.slices = {sd};

    std::uint64_t seed = p.seed;
    wl.initMemory = [compares, seed](arch::MemoryImage &mem) {
        Rng rng(seed * 0xda942042e4dd58b5ull + 0xca5a826395121157ull);

        const Addr block = dataBase;
        const Addr lens = dataBase2;

        // Two-symbol alphabet in runs of 16: unaligned suffix pairs
        // either differ immediately (~50 %) or stay equal until a run
        // boundary, so the loop averages several iterations and both
        // exits (difference and length bound) fire regularly.
        for (std::uint64_t i = 0; i < blockBytes; i += 32) {
            std::uint8_t sym_byte = rng.chance(1, 2) ? 0x41 : 0x42;
            for (unsigned k = 0; k < 32; ++k)
                mem.writeB(block + i + k, sym_byte);
        }
        for (std::uint64_t i = 0; i < lenEntries; ++i)
            mem.writeQ(lens + i * 8, 8 + rng.below(33));

        mem.writeQ(globalsBase + gRemaining, compares);
        mem.writeQ(globalsBase + gRngState, seed | 0x40001);
        mem.writeQ(globalsBase + gBlockBase, block);
        mem.writeQ(globalsBase + gLenBase, lens);
    };

    return wl;
}

} // namespace specslice::workloads
