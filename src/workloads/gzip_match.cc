/**
 * @file
 * gzip: the deflate longest-match loop. For each input position the
 * matcher walks a hash chain of earlier positions, comparing window
 * bytes; the "good enough match?" exit branch depends on the data and
 * is unbiased. The fork point sits inside a conditionally executed
 * block (literal vs. match), so a large share of forks happen on
 * speculative paths and are squashed — gzip has by far the most forks
 * and squashed forks in Table 4 (928 K forks, 334 K squashed, per
 * 100 M instructions).
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

constexpr std::int32_t gRemaining = 0;
constexpr std::int32_t gRngState = 8;
constexpr std::int32_t gChainBase = 16;
constexpr std::int32_t gScoreBase = 24;
constexpr std::int32_t gSink = 32;

constexpr std::uint64_t numPositions = 32'768;  ///< chain entries
constexpr std::uint64_t scoreBytes = 32'768;    ///< quality array

} // namespace

sim::Workload
buildGzip(const Params &p)
{
    sim::Workload wl;
    wl.name = "gzip";
    wl.scale = p.scale;

    // ~55 dynamic instructions per position.
    std::uint64_t positions = std::max<std::uint64_t>(1, p.scale / 55);

    isa::Assembler as(mainCodeBase);
    as.label("start");
    as.ldi64(regGp, globalsBase);

    as.label("pos_loop");
    // Next pseudo-random "hash bucket".
    as.ldq(5, regGp, gRngState);
    as.srli(6, 5, 12);
    as.xor_(5, 5, 6);
    as.slli(6, 5, 25);
    as.xor_(5, 5, 6);
    as.srli(6, 5, 27);
    as.xor_(5, 5, 6);
    as.stq(5, regGp, gRngState);
    as.andi(21, 5, numPositions - 1);  // r21 = cur position (live-in)

    // The fork point is hoisted *above* the literal-vs-match guard:
    // the extra lead time makes the predictions timely, at the price
    // of useless slices on literal positions (killed by the emit
    // block) and squashed forks when the guard mispredicts — the
    // paper's gzip row has by far the most forks and squashes.
    as.label("match_hoisted");        // << fork PC (conditional!)
    as.srli(7, 5, 17);
    as.andi(7, 7, 3);
    as.label("guard_branch");
    as.beq(7, "no_match");            // ~25% skip the matcher

    as.label("match_fn");
    as.ldq(8, regGp, gChainBase);
    as.ldq(9, regGp, gScoreBase);
    as.ldi(25, 0);                    // best score
    as.mov(10, 21);                   // cur
    as.label("chain_loop");
    as.s4add(11, 10, 8);              // &chain[cur]
    as.ldl(12, 11, 0);                // cur = chain[cur]
    as.add(13, 9, 12);                // &score[cur]
    as.ldbu(14, 13, 0);               // score byte
    as.cmplti(15, 14, 168);           // good enough? (unbiased)
    as.label("problem_branch");
    as.bne(15, "chain_next");         // << problem branch
    as.add(25, 25, 14);               // record match
    as.br("match_done");
    as.label("chain_next");           // << loop-iteration kill PC
    as.mov(10, 12);
    as.bne(12, "chain_loop");         // chain end (index 0)
    as.label("match_done");
    as.stq(25, regGp, gSink);
    as.label("no_match");             // << slice kill PC (postdominates
                                      //    both the match and literal
                                      //    paths)
    // Emit/literal bookkeeping (predictable).
    for (int i = 0; i < 6; ++i) {
        as.addi(17, 17, 5 + i);
        as.slli(16, 17, 1);
        as.xor_(17, 17, 16);
    }

    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "pos_loop");
    as.halt();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    // Slice: walk the chain, predict the quality branch per link.
    isa::Assembler sl(sliceCodeBase);
    sl.label("slice");
    sl.ldq(8, regGp, gChainBase);
    sl.ldq(9, regGp, gScoreBase);
    sl.mov(10, 21);
    sl.label("slice_loop");
    sl.s4add(11, 10, 8);
    sl.ldl(10, 11, 0);               // cur = chain[cur]
    sl.add(13, 9, 10);
    sl.ldbu(14, 13, 0);
    sl.label("slice_pgi");
    sl.cmplti(regZero, 14, 168);     // PGI: good enough
    sl.label("slice_backedge");
    sl.br("slice_loop");
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(sym);
    wl.program.addSymbols(ssym);
    wl.entry = sym.at("start");

    slice::SliceDescriptor sd;
    sd.name = "gzip_match";
    sd.forkPc = sym.at("match_hoisted");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {21, regGp};
    sd.maxLoopIters = 8;
    sd.loopBackEdgePc = ssym.at("slice_backedge");
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());
    sd.staticSizeInLoop = 6;

    slice::PgiSpec pgi;
    pgi.sliceInstPc = ssym.at("slice_pgi");
    pgi.problemBranchPc = sym.at("problem_branch");
    pgi.invert = false;  // bne taken iff (score < 168) != 0
    pgi.loopKillPc = sym.at("chain_next");
    pgi.sliceKillPc = sym.at("no_match");
    sd.pgis = {pgi};

    sd.coveredBranchPcs = {sym.at("problem_branch")};
    wl.slices = {sd};

    std::uint64_t seed = p.seed;
    wl.initMemory = [positions, seed](arch::MemoryImage &mem) {
        Rng rng(seed * 0xd1342543de82ef95ull + 0xaf251af3b0f025b5ull);

        const Addr chain = dataBase;        // u32[numPositions]
        const Addr score = dataBase2;       // u8[scoreBytes]

        // chain[i] jumps to a pseudo-random earlier position;
        // index 0 terminates.
        for (std::uint64_t i = 1; i < numPositions; ++i) {
            std::uint32_t prev =
                rng.chance(1, 5)
                    ? 0
                    : static_cast<std::uint32_t>(rng.below(i));
            mem.writeL(chain + i * 4, prev);
        }
        mem.writeL(chain + 0, 0);
        for (std::uint64_t i = 0; i < scoreBytes; ++i)
            mem.writeB(score + i,
                       static_cast<std::uint8_t>(rng.below(256)));

        mem.writeQ(globalsBase + gRemaining, positions);
        mem.writeQ(globalsBase + gRngState, seed | 0x2000001);
        mem.writeQ(globalsBase + gChainBase, chain);
        mem.writeQ(globalsBase + gScoreBase, score);
    };

    return wl;
}

} // namespace specslice::workloads
