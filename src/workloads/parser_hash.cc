/**
 * @file
 * parser: the paper's clearest slice-construction failure (Section
 * 6.2). Two problem localities:
 *
 *  1. Hash-table probes whose key generation is computationally
 *     intensive (50+ serial instructions) and sits *immediately*
 *     before the problem instructions — a slice would have to
 *     replicate all of it, so the overhead cancels the benefit.
 *  2. A stack-organized memory allocator whose deferred deallocation
 *     causes long pointer-chasing cascades when the top-of-stack
 *     chunk is finally freed; the triggering call is unpredictable, so
 *     the fork cannot be hoisted without spawning many useless slices.
 *
 * Accordingly, this workload ships no slices; it appears in the
 * benches as the ~0 % bar of Figure 11.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

constexpr std::int32_t gRemaining = 0;
constexpr std::int32_t gRngState = 8;
constexpr std::int32_t gTableBase = 16;
constexpr std::int32_t gStackTop = 24;
constexpr std::int32_t gSink = 32;

// Hash entry: { next, key, val } (32 bytes).
constexpr std::int32_t eNext = 0;
constexpr std::int32_t eKey = 8;
constexpr unsigned entrySize = 32;

// Allocator chunk: { below, flags } (64 bytes, one line).
constexpr std::int32_t cBelow = 0;
constexpr std::int32_t cFlags = 8;
constexpr unsigned chunkSize = 64;

constexpr std::uint64_t numBuckets = 1u << 17;
constexpr std::uint64_t numEntries = 1u << 16;
constexpr std::uint64_t numChunks = 1u << 16;  ///< 4 MB of chunks

} // namespace

sim::Workload
buildParser(const Params &p)
{
    sim::Workload wl;
    wl.name = "parser";
    wl.scale = p.scale;

    // ~110 dynamic instructions per parse step.
    std::uint64_t steps = std::max<std::uint64_t>(1, p.scale / 110);

    isa::Assembler as(mainCodeBase);
    as.label("start");
    as.ldi64(regGp, globalsBase);

    as.label("parse_loop");
    as.ldq(5, regGp, gRngState);
    as.srli(6, 5, 12);
    as.xor_(5, 5, 6);
    as.slli(6, 5, 25);
    as.xor_(5, 5, 6);
    as.srli(6, 5, 27);
    as.xor_(5, 5, 6);
    as.stq(5, regGp, gRngState);

    // --- expensive key generation: a 50-instruction serial mix that
    // ends right at the problem load (the reason slices fail here) ---
    as.mov(7, 5);
    for (int i = 0; i < 16; ++i) {
        as.slli(8, 7, 13);
        as.xor_(7, 7, 8);
        as.srli(8, 7, 7);
        // every few rounds, fold with a multiply on the complex unit
        if (i % 4 == 3)
            as.mul(7, 7, 8);
        else
            as.xor_(7, 7, 8);
    }
    as.andi(9, 7, (1 << 19) - 1);   // key

    // --- probe ---
    as.andi(10, 7, numBuckets - 1);
    as.ldq(11, regGp, gTableBase);
    as.s8add(12, 10, 11);
    as.ldq(14, 12, 0);              // bucket head   << problem load
    as.beq(14, "probe_done");
    as.label("chain_loop");
    as.ldq(15, 14, eKey);           // << problem load
    as.cmpeq(16, 15, 9);
    as.label("problem_branch");
    as.bne(16, "probe_done");       // << problem branch (unbiased)
    as.ldq(14, 14, eNext);
    as.bne(14, "chain_loop");
    as.label("probe_done");

    // --- occasional deallocation cascade (1 in 4 steps) ---
    as.srli(17, 5, 40);
    as.andi(17, 17, 3);
    as.bne(17, "no_dealloc");
    as.ldq(18, regGp, gStackTop);
    as.beq(18, "no_dealloc");       // stack exhausted
    as.label("cascade_loop");
    as.ldq(19, 18, cFlags);         // chunk freed?   << problem load
    as.beq(19, "cascade_done");
    as.ldq(18, 18, cBelow);         // pop            << problem load
    as.bne(18, "cascade_loop");
    as.label("cascade_done");
    as.stq(18, regGp, gStackTop);
    as.label("no_dealloc");

    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "parse_loop");
    as.halt();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSymbols(sym);
    wl.entry = sym.at("start");
    // No slices: Section 6.2.

    std::uint64_t seed = p.seed;
    wl.initMemory = [steps, seed](arch::MemoryImage &mem) {
        Rng rng(seed * 0xff51afd7ed558ccdull + 0xc4ceb9fe1a85ec53ull);

        const Addr table = dataBase;
        const Addr pool = dataBase3;
        const Addr chunks = dataBase2;

        for (std::uint64_t i = 0; i < numEntries; ++i) {
            // Keys produced by the same mixer the program uses, so
            // roughly half the probes hit.
            std::uint64_t key = rng.next() & ((1 << 19) - 1);
            std::uint64_t h = rng.next() & (numBuckets - 1);
            Addr e = pool + i * entrySize;
            Addr head = mem.readQ(table + h * 8);
            mem.writeQ(e + eNext, head);
            mem.writeQ(e + eKey, key);
            mem.writeQ(table + h * 8, e);
        }

        // Allocator stack: chunks chained top-down in scattered order;
        // ~70% marked freed so cascades run several links.
        std::uint64_t prev = 0;
        for (std::uint64_t i = 0; i < numChunks; ++i) {
            Addr c = chunks +
                     ((i * 2654435761u) % numChunks) * chunkSize;
            mem.writeQ(c + cBelow, prev);
            mem.writeQ(c + cFlags, rng.chance(7, 10) ? 1 : 0);
            prev = c;
        }
        mem.writeQ(globalsBase + gStackTop, prev);

        mem.writeQ(globalsBase + gRemaining, steps);
        mem.writeQ(globalsBase + gRngState, seed | 0x40000001);
        mem.writeQ(globalsBase + gTableBase, table);
    };

    return wl;
}

} // namespace specslice::workloads
