/**
 * @file
 * Shared address-space layout and register conventions for the
 * workload builders.
 */

#ifndef SPECSLICE_WORKLOADS_LAYOUT_HH
#define SPECSLICE_WORKLOADS_LAYOUT_HH

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace specslice::workloads
{

// Address-space layout (shared across workloads; each simulation has
// its own memory image).
constexpr Addr sliceCodeBase = 0x8000;   ///< slice code section
constexpr Addr mainCodeBase = 0x10000;   ///< main program section
constexpr Addr globalsBase = 0x100000;   ///< small-globals page ("gp")
constexpr Addr dataBase = 0x200000;      ///< bulk data structures
constexpr Addr dataBase2 = 0x2000000;    ///< second bulk region
constexpr Addr dataBase3 = 0x8000000;    ///< third bulk region

// Register conventions.
constexpr RegIndex regGp = 30;    ///< global pointer (live-in to slices)
constexpr RegIndex regLink = specslice::isa::regLink;
constexpr RegIndex regZero = specslice::isa::regZero;

} // namespace specslice::workloads

#endif // SPECSLICE_WORKLOADS_LAYOUT_HH
