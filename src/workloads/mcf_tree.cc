/**
 * @file
 * mcf: pointer-chasing over a multi-megabyte linked structure (the
 * network-simplex tree walk of refresh_potential). The dominant PDEs
 * are the node-field loads — every node is a fresh cache line in
 * pseudo-random order, defeating the stream prefetcher — plus an
 * unbiased branch on a loaded node field.
 *
 * The slice walks the same chain ahead of the main thread, prefetching
 * each node and generating one branch prediction per node. Because the
 * walk is a serial chain of misses, "the work performed at each node is
 * insufficient to cover the latency of the sequential memory accesses"
 * (Section 6.1): the slice cannot get far ahead, many predictions are
 * late, and most of the benefit comes from overlapping (MSHR-merged)
 * misses rather than removed mispredictions — matching Table 4's mcf
 * row (~80 % of the speedup from loads, only 15 % of mispredictions
 * removed).
 */

#include "workloads/workloads.hh"

#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

constexpr std::int32_t gRemaining = 0;
constexpr std::int32_t gSink = 8;

// Node layout (one cache line per node).
constexpr std::int32_t nNext = 0;
constexpr std::int32_t nVal = 8;
constexpr std::int32_t nWeight = 16;
constexpr unsigned nodeSize = 64;

constexpr std::uint64_t numNodes = 100'000;  ///< 6.4 MB, beyond the L2
constexpr unsigned chunkNodes = 64;          ///< nodes per fork

} // namespace

sim::Workload
buildMcf(const Params &p)
{
    sim::Workload wl;
    wl.name = "mcf";
    wl.scale = p.scale;

    // ~18 instructions per node plus per-chunk overhead.
    std::uint64_t chunks =
        std::max<std::uint64_t>(1, p.scale / (chunkNodes * 19));

    isa::Assembler as(mainCodeBase);
    as.label("start");
    as.ldi64(regGp, globalsBase);
    as.ldi64(20, dataBase);       // r20 = current node (register global)
    as.ldi(25, 0);                // accumulator

    as.label("outer_loop");
    as.call("refresh_chunk");
    // Light bookkeeping between chunks.
    as.stq(25, regGp, gSink);
    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "outer_loop");
    as.halt();

    // Walk chunkNodes nodes from r20 (the fork point; r20 is the
    // slice's live-in root value).
    as.label("refresh_chunk");   // << fork PC
    as.ldi(21, chunkNodes);
    as.label("node_loop");
    as.ldq(22, 20, nVal);        // node->val        << problem load
    as.ldq(23, 20, nWeight);     // node->weight
    as.ldq(20, 20, nNext);       // node = node->next << problem load
    as.add(25, 25, 23);          // potential += weight
    as.andi(24, 22, 1);          // orientation test on loaded data
    as.label("problem_branch");
    as.beq(24, "skip_adjust");   // << problem branch (unbiased)
    as.add(25, 25, 22);          // adjust on "up" orientation
    as.srli(26, 22, 3);
    as.xor_(25, 25, 26);
    as.label("skip_adjust");
    as.label("node_tail");       // << loop-iteration kill PC
    as.subi(21, 21, 1);
    as.bgt(21, "node_loop");
    as.label("chunk_end");       // << slice kill PC
    as.ret();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    // Slice: chase the chain, prefetch the node, predict the
    // orientation branch. 5 instructions in the loop.
    isa::Assembler sl(sliceCodeBase);
    sl.label("slice");
    sl.mov(2, 20);               // node (live-in r20)
    sl.label("slice_loop");
    sl.label("slice_pref");
    sl.ldq(3, 2, nVal);          // prefetch node line + load val
    sl.ldq(2, 2, nNext);         // advance (same line)
    sl.label("slice_pgi");
    sl.andi(regZero, 3, 1);      // PGI: orientation != 0 -> taken? no:
                                 // main takes beq when (val&1)==0
    sl.label("slice_backedge");
    sl.br("slice_loop");
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(sym);
    wl.program.addSymbols(ssym);
    wl.entry = sym.at("start");

    slice::SliceDescriptor sd;
    sd.name = "mcf_refresh";
    sd.forkPc = sym.at("refresh_chunk");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {20};
    sd.maxLoopIters = 98;
    sd.loopBackEdgePc = ssym.at("slice_backedge");
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());
    sd.staticSizeInLoop = 4;

    slice::PgiSpec pgi;
    pgi.sliceInstPc = ssym.at("slice_pgi");
    pgi.problemBranchPc = sym.at("problem_branch");
    // Main: beq taken iff (val & 1) == 0; the PGI computes (val & 1).
    pgi.invert = true;
    pgi.loopKillPc = sym.at("node_tail");
    pgi.sliceKillPc = sym.at("chunk_end");
    sd.pgis = {pgi};

    sd.coveredBranchPcs = {sym.at("problem_branch")};
    Addr nl = sym.at("node_loop");
    sd.coveredLoadPcs = {nl, nl + isa::instBytes,
                         nl + 2 * isa::instBytes};
    sd.prefetchLoadPcs = {ssym.at("slice_pref"),
                          ssym.at("slice_pref") + isa::instBytes};
    wl.slices = {sd};

    std::uint64_t seed = p.seed;
    wl.initMemory = [chunks, seed](arch::MemoryImage &mem) {
        Rng rng(seed * 0x2545f4914f6cdd1dull + 0x9e3779b97f4a7c15ull);

        // A random Hamiltonian cycle over the nodes: pseudo-random
        // successor order defeats both spatial locality and the stream
        // prefetcher.
        std::vector<std::uint32_t> order(numNodes);
        for (std::uint64_t i = 0; i < numNodes; ++i)
            order[i] = static_cast<std::uint32_t>(i);
        for (std::uint64_t i = numNodes - 1; i >= 1; --i) {
            std::uint64_t j = rng.below(i + 1);
            std::swap(order[i], order[j]);
        }
        // Ensure the walk starts at node 0 (dataBase).
        for (std::uint64_t i = 0; i < numNodes; ++i) {
            if (order[i] == 0) {
                std::swap(order[i], order[0]);
                break;
            }
        }
        for (std::uint64_t i = 0; i < numNodes; ++i) {
            Addr node = dataBase + static_cast<Addr>(order[i]) * nodeSize;
            Addr next = dataBase +
                        static_cast<Addr>(order[(i + 1) % numNodes]) *
                            nodeSize;
            mem.writeQ(node + nNext, next);
            mem.writeQ(node + nVal, rng.next() & 0xffff);
            mem.writeQ(node + nWeight, rng.below(1024));
        }

        mem.writeQ(globalsBase + gRemaining, chunks);
    };

    return wl;
}

} // namespace specslice::workloads
