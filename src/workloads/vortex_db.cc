/**
 * @file
 * vortex: an object-oriented database workload with high baseline ILP.
 * Records are walked sequentially (stream-prefetcher friendly), the
 * per-record branches are predictable, and only an occasional
 * cross-reference dereference misses. Section 6.2: vortex's base IPC
 * is "within 13% of peak throughput", which makes the opportunity cost
 * of slice execution high; combined with low miss rates the tiny
 * prefetch slice (Table 3's vortex row: 4 instructions, 1 live-in,
 * 1 prefetch, no predictions) buys essentially nothing.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

constexpr std::int32_t gRemaining = 0;
constexpr std::int32_t gRecBase = 8;
constexpr std::int32_t gCursor = 16;
constexpr std::int32_t gSink = 24;

// Record: { f0, f1, f2, xref } (32 bytes).
constexpr std::int32_t rF0 = 0;
constexpr std::int32_t rF1 = 8;
constexpr std::int32_t rF2 = 16;
constexpr std::int32_t rXref = 24;
constexpr unsigned recSize = 32;

constexpr std::uint64_t numRecs = 2048;      ///< 64 KB, cache resident
constexpr std::uint64_t xrefRegion = 1u << 19;  ///< 512 KB xref region
constexpr unsigned batchRecs = 16;

} // namespace

sim::Workload
buildVortex(const Params &p)
{
    sim::Workload wl;
    wl.name = "vortex";
    wl.scale = p.scale;

    // ~19 instructions per record.
    std::uint64_t batches =
        std::max<std::uint64_t>(1, p.scale / (batchRecs * 19));

    isa::Assembler as(mainCodeBase);
    as.label("start");
    as.ldi64(regGp, globalsBase);

    as.label("batch_loop");
    as.ldq(21, regGp, gCursor);   // r21 = cursor (slice live-in)
    as.call("process_batch");
    // Advance the cursor, wrapping at the end of the table.
    as.ldq(21, regGp, gCursor);
    as.ldi64(4, batchRecs * recSize);
    as.add(21, 21, 4);
    as.ldq(5, regGp, gRecBase);
    as.ldi64(6, numRecs * recSize);
    as.add(6, 5, 6);
    as.cmplt(7, 21, 6);
    as.cmoveq(21, 7, 5);          // wrap to base when past the end
    as.stq(21, regGp, gCursor);
    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "batch_loop");
    as.halt();

    // Process batchRecs sequential records with plenty of ILP. The
    // first record's xref is the only common miss: it points into a
    // 4 MB region.
    as.label("process_batch");    // << fork PC
    as.ldq(8, 21, rXref);         // xref pointer
    as.ldq(9, 8, 0);              // << problem load (occasional miss)
    as.stq(9, regGp, gSink);
    as.ldi(10, batchRecs);
    as.ldi(25, 0);
    as.ldi(26, 0);
    as.label("rec_loop");
    as.ldq(11, 21, rF0);
    as.ldq(12, 21, rF1);
    as.ldq(13, 21, rF2);
    as.add(25, 25, 11);
    as.add(26, 26, 12);
    as.xor_(25, 25, 13);
    as.slli(14, 12, 2);
    as.add(26, 26, 14);
    as.cmplt(15, 25, 26);
    as.cmovne(25, 15, 26);        // predictable select, no branch
    as.addi(21, 21, recSize);
    as.subi(10, 10, 1);
    as.bgt(10, "rec_loop");       // highly predictable
    as.label("batch_done");       // << slice kill PC
    as.stq(25, regGp, gSink);
    as.ret();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    // Slice: prefetch the xref target (4 static instructions).
    isa::Assembler sl(sliceCodeBase);
    sl.label("slice");
    sl.ldq(8, 21, rXref);
    sl.label("slice_pref");
    sl.ldq(9, 8, 0);
    sl.nop();
    sl.sliceEnd();
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(sym);
    wl.program.addSymbols(ssym);
    wl.entry = sym.at("start");

    slice::SliceDescriptor sd;
    sd.name = "vortex_xref";
    sd.forkPc = sym.at("process_batch");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {21};
    sd.maxLoopIters = 0;
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());
    sd.coveredLoadPcs = {sym.at("process_batch") + isa::instBytes};
    sd.prefetchLoadPcs = {ssym.at("slice_pref")};
    // No PGIs: a pure prefetch slice.
    wl.slices = {sd};

    std::uint64_t seed = p.seed;
    wl.initMemory = [batches, seed](arch::MemoryImage &mem) {
        Rng rng(seed * 0x369dea0f31a53f85ull + 0x9e6c63d0876a9a62ull);

        const Addr recs = dataBase;
        const Addr xrefs = dataBase3;

        for (std::uint64_t i = 0; i < numRecs; ++i) {
            Addr r = recs + i * recSize;
            mem.writeQ(r + rF0, rng.below(1000));
            mem.writeQ(r + rF1, rng.below(1000));
            mem.writeQ(r + rF2, rng.below(1000));
            mem.writeQ(r + rXref, xrefs + (rng.next() % xrefRegion &
                                           ~std::uint64_t{7}));
        }
        // xref region left zero-initialized (reads return 0).

        mem.writeQ(globalsBase + gRemaining, batches);
        mem.writeQ(globalsBase + gRecBase, recs);
        mem.writeQ(globalsBase + gCursor, recs);
    };

    return wl;
}

} // namespace specslice::workloads
