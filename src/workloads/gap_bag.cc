/**
 * @file
 * gap: the GAP computer-algebra kernel scans heterogeneous "bags"
 * (lists of tagged objects). Each element is type-tested by a chain of
 * three data-dependent branches before being accumulated; the bag
 * spans several megabytes, so the element loads also miss. The slice
 * walks the list ahead, prefetching each element and generating three
 * predictions per element (Table 3's gap row: 3 predictions in the
 * loop, 85-iteration limit; Table 4: about half the benefit from
 * loads).
 */

#include "workloads/workloads.hh"

#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

constexpr std::int32_t gRemaining = 0;
constexpr std::int32_t gRngState = 8;
constexpr std::int32_t gHeadBase = 16;
constexpr std::int32_t gSink = 24;

// Element: { next, type, val } + pad (32 bytes).
constexpr std::int32_t eNext = 0;
constexpr std::int32_t eType = 8;
constexpr std::int32_t eVal = 16;
constexpr unsigned elemSize = 32;

constexpr std::uint64_t numElems = 131'072;  ///< 4 MB of elements
constexpr std::uint64_t numBags = 4096;

} // namespace

sim::Workload
buildGap(const Params &p)
{
    sim::Workload wl;
    wl.name = "gap";
    wl.scale = p.scale;

    // ~14 instructions per element, ~12 elements per bag.
    std::uint64_t scans = std::max<std::uint64_t>(1, p.scale / 200);

    isa::Assembler as(mainCodeBase);
    as.label("start");
    as.ldi64(regGp, globalsBase);

    as.label("scan_loop");
    // Pick a pseudo-random bag.
    as.ldq(5, regGp, gRngState);
    as.srli(6, 5, 12);
    as.xor_(5, 5, 6);
    as.slli(6, 5, 25);
    as.xor_(5, 5, 6);
    as.srli(6, 5, 27);
    as.xor_(5, 5, 6);
    as.stq(5, regGp, gRngState);
    as.andi(6, 5, numBags - 1);
    as.ldq(7, regGp, gHeadBase);
    as.s8add(8, 6, 7);
    as.ldq(21, 8, 0);             // r21 = bag head (slice live-in)

    // Filler bookkeeping.
    for (int i = 0; i < 6; ++i) {
        as.addi(10, 10, 9 + i);
        as.slli(9, 10, 1);
        as.xor_(10, 10, 9);
    }
    as.stq(10, regGp, gSink);

    as.call("scan_bag");

    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "scan_loop");
    as.halt();

    as.label("scan_bag");         // << fork PC
    as.ldi(25, 0);
    as.mov(14, 21);               // e = head
    as.beq(14, "scan_done");
    as.label("elem_loop");
    as.ldq(15, 14, eType);        // e->type       << problem load
    as.ldq(16, 14, eVal);         // e->val
    as.andi(17, 15, 1);
    as.label("problem_branch1");
    as.beq(17, "not_int");        // << type test 1 (unbiased)
    as.add(25, 25, 16);
    as.label("not_int");
    as.andi(18, 15, 2);
    as.label("problem_branch2");
    as.beq(18, "not_list");       // << type test 2 (unbiased)
    as.sub(25, 25, 16);
    as.label("not_list");
    as.cmplti(19, 16, 500);
    as.label("problem_branch3");
    as.beq(19, "big_val");        // << value test (unbiased)
    as.addi(25, 25, 1);
    as.label("big_val");
    as.label("elem_tail");        // << loop-iteration kill PC
    as.ldq(14, 14, eNext);        // e = e->next
    as.bne(14, "elem_loop");
    as.label("scan_done");        // << slice kill PC
    as.stq(25, regGp, gSink);
    as.ret();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    // Slice: 3 PGIs + 1 prefetching load pair per element.
    isa::Assembler sl(sliceCodeBase);
    sl.label("slice");
    sl.mov(14, 21);
    sl.label("slice_loop");
    sl.label("slice_pref");
    sl.ldq(15, 14, eType);        // prefetches the element line
    sl.ldq(16, 14, eVal);
    sl.label("slice_pgi1");
    sl.andi(regZero, 15, 1);
    sl.label("slice_pgi2");
    sl.andi(regZero, 15, 2);
    sl.label("slice_pgi3");
    sl.cmplti(regZero, 16, 500);
    sl.ldq(14, 14, eNext);        // null terminates via fault
    sl.label("slice_backedge");
    sl.br("slice_loop");
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(sym);
    wl.program.addSymbols(ssym);
    wl.entry = sym.at("start");

    slice::SliceDescriptor sd;
    sd.name = "gap_scan";
    sd.forkPc = sym.at("scan_bag");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {21};
    sd.maxLoopIters = 85;
    sd.loopBackEdgePc = ssym.at("slice_backedge");
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());
    sd.staticSizeInLoop = 7;

    slice::PgiSpec pgi1;
    pgi1.sliceInstPc = ssym.at("slice_pgi1");
    pgi1.problemBranchPc = sym.at("problem_branch1");
    pgi1.invert = true;  // beq taken iff (type & 1) == 0
    pgi1.loopKillPc = sym.at("elem_tail");
    pgi1.sliceKillPc = sym.at("scan_done");
    slice::PgiSpec pgi2 = pgi1;
    pgi2.sliceInstPc = ssym.at("slice_pgi2");
    pgi2.problemBranchPc = sym.at("problem_branch2");
    slice::PgiSpec pgi3 = pgi1;
    pgi3.sliceInstPc = ssym.at("slice_pgi3");
    pgi3.problemBranchPc = sym.at("problem_branch3");
    sd.pgis = {pgi1, pgi2, pgi3};

    sd.coveredBranchPcs = {sym.at("problem_branch1"),
                           sym.at("problem_branch2"),
                           sym.at("problem_branch3")};
    Addr el = sym.at("elem_loop");
    sd.coveredLoadPcs = {el, el + isa::instBytes};
    sd.prefetchLoadPcs = {ssym.at("slice_pref"),
                          ssym.at("slice_pref") + isa::instBytes};
    wl.slices = {sd};

    std::uint64_t seed = p.seed;
    wl.initMemory = [scans, seed](arch::MemoryImage &mem) {
        Rng rng(seed * 0x8cb92ba72f3d8dd7ull + 0x6a09e667f3bcc909ull);

        const Addr elems = dataBase3;    // 4 MB region
        const Addr heads = dataBase;     // bag head pointers

        // Scatter elements; chain them into bags of geometric length
        // (average ~12, capped at 80 < the 85-iteration limit).
        std::vector<std::uint32_t> perm(numElems);
        for (std::uint64_t i = 0; i < numElems; ++i)
            perm[i] = static_cast<std::uint32_t>(i);
        for (std::uint64_t i = numElems - 1; i >= 1; --i) {
            std::uint64_t j = rng.below(i + 1);
            std::swap(perm[i], perm[j]);
        }

        std::uint64_t next_elem = 0;
        for (std::uint64_t b = 0; b < numBags; ++b) {
            unsigned len = 1;
            while (len < 80 && rng.chance(11, 12))
                ++len;
            Addr head = 0;
            for (unsigned k = 0; k < len && next_elem < numElems; ++k) {
                Addr e = elems +
                         static_cast<Addr>(perm[next_elem]) * elemSize;
                ++next_elem;
                mem.writeQ(e + eNext, head);
                mem.writeQ(e + eType, rng.below(8));
                mem.writeQ(e + eVal, rng.below(1000));
                head = e;
            }
            if (head == 0) {
                // Ran out of elements: reuse an earlier bag's head.
                head = mem.readQ(heads + (b % (b ? b : 1)) * 8);
            }
            mem.writeQ(heads + b * 8, head);
        }

        mem.writeQ(globalsBase + gRemaining, scans);
        mem.writeQ(globalsBase + gRngState, seed | 0x800001);
        mem.writeQ(globalsBase + gHeadBase, heads);
    };

    return wl;
}

} // namespace specslice::workloads
