/**
 * @file
 * twolf: standard-cell placement cost evaluation. Each step picks a
 * pseudo-random cell and walks its short net list (1-6 nodes,
 * average ~3), testing each pin's cost against the cell's threshold.
 * The per-pin comparison branches are data-dependent and unbiased —
 * twolf is the most branch-bound benchmark in Table 2 (51 % of dynamic
 * branches at problem PCs) — while the net nodes are small enough that
 * loads mostly hit: the slice is prediction-only (Table 3's twolf row:
 * 2 predictions in the loop, no prefetches, max 7 iterations).
 */

#include "workloads/workloads.hh"

#include <vector>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workloads/layout.hh"

namespace specslice::workloads
{

namespace
{

constexpr std::int32_t gRemaining = 0;
constexpr std::int32_t gRngState = 8;
constexpr std::int32_t gCellBase = 16;
constexpr std::int32_t gSink = 24;

// Cell: { net head ptr, threshold1, threshold2 } (32 bytes).
constexpr std::int32_t cHead = 0;
constexpr std::int32_t cT1 = 8;
constexpr std::int32_t cT2 = 16;
constexpr unsigned cellSize = 32;

// Net node: { next, cost1, cost2 } (32 bytes).
constexpr std::int32_t nNext = 0;
constexpr std::int32_t nC1 = 8;
constexpr std::int32_t nC2 = 16;
constexpr unsigned nodeSize = 32;

constexpr std::uint64_t numCells = 2048;
constexpr std::uint64_t numNodes = 8192;   ///< 256 KB: misses modest

} // namespace

sim::Workload
buildTwolf(const Params &p)
{
    sim::Workload wl;
    wl.name = "twolf";
    wl.scale = p.scale;

    // ~70 dynamic instructions per step.
    std::uint64_t steps = std::max<std::uint64_t>(1, p.scale / 70);

    isa::Assembler as(mainCodeBase);
    as.label("start");
    as.ldi64(regGp, globalsBase);

    as.label("step_loop");
    // Pick a pseudo-random cell (xorshift; cheap and predictable).
    as.ldq(5, regGp, gRngState);
    as.srli(6, 5, 12);
    as.xor_(5, 5, 6);
    as.slli(6, 5, 25);
    as.xor_(5, 5, 6);
    as.srli(6, 5, 27);
    as.xor_(5, 5, 6);
    as.stq(5, regGp, gRngState);
    as.andi(6, 5, numCells - 1);
    as.slli(6, 6, 5);              // * cellSize
    as.ldq(7, regGp, gCellBase);
    as.add(21, 6, 7);              // r21 = &cell (slice live-in)

    // Filler: a little predictable arithmetic per step.
    as.ldi(10, 0);
    for (int i = 0; i < 8; ++i) {
        as.addi(10, 10, 3 + i);
        as.slli(11, 10, 2);
        as.xor_(10, 10, 11);
    }
    as.stq(10, regGp, gSink);

    as.call("eval_cell");

    as.ldq(2, regGp, gRemaining);
    as.subi(2, 2, 1);
    as.stq(2, regGp, gRemaining);
    as.bgt(2, "step_loop");
    as.halt();

    // Evaluate one cell's net list.
    as.label("eval_cell");        // << fork PC
    as.ldq(12, 21, cT1);          // threshold1
    as.ldq(13, 21, cT2);          // threshold2
    as.ldq(14, 21, cHead);        // node = cell->head
    as.ldi(25, 0);                // local gain
    as.label("pin_loop");
    as.ldq(15, 14, nC1);          // pin->cost1
    as.ldq(16, 14, nC2);          // pin->cost2
    as.cmplt(17, 15, 12);         // cost1 < t1
    as.label("problem_branch1");
    as.beq(17, "no_gain");        // << problem branch 1 (unbiased)
    as.add(25, 25, 15);
    as.label("no_gain");
    as.cmplt(18, 16, 13);         // cost2 < t2
    as.label("problem_branch2");
    as.beq(18, "no_penalty");     // << problem branch 2 (unbiased)
    as.sub(25, 25, 16);
    as.label("no_penalty");
    as.label("pin_tail");         // << loop-iteration kill PC
    as.ldq(14, 14, nNext);        // node = node->next
    as.bne(14, "pin_loop");
    as.label("eval_done");        // << slice kill PC
    as.stq(25, regGp, gSink);
    as.ret();

    isa::CodeSection main_sec = as.finish();
    auto sym = as.symbols();

    // Slice (8 static, 5 in loop): two predictions per pin.
    isa::Assembler sl(sliceCodeBase);
    sl.label("slice");
    sl.ldq(12, 21, cT1);
    sl.ldq(13, 21, cT2);
    sl.ldq(14, 21, cHead);
    sl.label("slice_loop");
    sl.ldq(15, 14, nC1);
    sl.ldq(16, 14, nC2);
    sl.label("slice_pgi1");
    sl.cmplt(regZero, 15, 12);    // PGI 1
    sl.label("slice_pgi2");
    sl.cmplt(regZero, 16, 13);    // PGI 2
    sl.ldq(14, 14, nNext);        // null deref terminates the slice
    sl.label("slice_backedge");
    sl.br("slice_loop");
    isa::CodeSection slice_sec = sl.finish();
    auto ssym = sl.symbols();

    wl.program.addSection(main_sec);
    wl.program.addSection(slice_sec);
    wl.program.addSymbols(sym);
    wl.program.addSymbols(ssym);
    wl.entry = sym.at("start");

    slice::SliceDescriptor sd;
    sd.name = "twolf_eval";
    sd.forkPc = sym.at("eval_cell");
    sd.slicePc = ssym.at("slice");
    sd.liveIns = {21};
    sd.maxLoopIters = 7;
    sd.loopBackEdgePc = ssym.at("slice_backedge");
    sd.staticSize = static_cast<unsigned>(slice_sec.code.size());
    sd.staticSizeInLoop = 6;

    slice::PgiSpec pgi1;
    pgi1.sliceInstPc = ssym.at("slice_pgi1");
    pgi1.problemBranchPc = sym.at("problem_branch1");
    pgi1.invert = true;  // main takes beq when (cost1 < t1) == 0
    pgi1.loopKillPc = sym.at("pin_tail");
    pgi1.sliceKillPc = sym.at("eval_done");
    slice::PgiSpec pgi2 = pgi1;
    pgi2.sliceInstPc = ssym.at("slice_pgi2");
    pgi2.problemBranchPc = sym.at("problem_branch2");
    sd.pgis = {pgi1, pgi2};

    sd.coveredBranchPcs = {sym.at("problem_branch1"),
                           sym.at("problem_branch2")};
    wl.slices = {sd};

    std::uint64_t seed = p.seed;
    wl.initMemory = [steps, seed](arch::MemoryImage &mem) {
        Rng rng(seed * 0x94d049bb133111ebull + 0xbf58476d1ce4e5b9ull);

        const Addr cells = dataBase;
        const Addr nodes = dataBase2;

        // Chain nodes into per-cell nets of geometric length (avg ~3).
        std::uint64_t node_idx = 0;
        for (std::uint64_t c = 0; c < numCells; ++c) {
            Addr cell = cells + c * cellSize;
            unsigned len = 1;
            while (len < 6 && rng.chance(2, 3))
                ++len;
            Addr head = 0;
            for (unsigned k = 0; k < len; ++k) {
                Addr node =
                    nodes + (node_idx % numNodes) * nodeSize;
                ++node_idx;
                mem.writeQ(node + nNext, head);
                mem.writeQ(node + nC1, rng.below(1000));
                mem.writeQ(node + nC2, rng.below(1000));
                head = node;
            }
            mem.writeQ(cell + cHead, head);
            // Thresholds near the cost median keep both branches
            // unbiased.
            mem.writeQ(cell + cT1, 420 + rng.below(200));
            mem.writeQ(cell + cT2, 420 + rng.below(200));
        }

        mem.writeQ(globalsBase + gRemaining, steps);
        mem.writeQ(globalsBase + gRngState, seed | 0x10001);
        mem.writeQ(globalsBase + gCellBase, cells);
    };

    return wl;
}

} // namespace specslice::workloads
