#include "sim/experiments.hh"

#include <limits>

#include "common/jsonio.hh"
#include "sim/result_cache.hh"
#include "sim/result_json.hh"
#include "sim/run_key.hh"
#include "workloads/workloads.hh"

namespace specslice::sim
{

double
speedupPct(const RunResult &base, const RunResult &other)
{
    // No cycles means no data, not zero speedup: return NaN and let
    // Table::fmt print "n/a" (the StatGroup::ratio convention).
    if (other.cycles == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return 100.0 * (static_cast<double>(base.cycles) /
                        static_cast<double>(other.cycles) -
                    1.0);
}

RunResult
cachedRun(const MachineConfig &machine, Simulator &simr,
          const Workload &wl, const ExperimentConfig &cfg,
          const RunOptions &opts, bool with_slices)
{
    auto simulate = [&] {
        return with_slices ? simr.run(wl, opts, true)
                           : simr.runBaseline(wl, opts);
    };
    if (!cfg.cache)
        return simulate();

    RunKeyInputs in;
    in.workload = &wl;
    in.dataSeed = cfg.seed;
    in.config = &machine;
    in.options = &opts;
    in.withSlices = with_slices;
    const std::string key = runCacheKey(in);

    if (auto payload = cfg.cache->lookup(key)) {
        std::string err;
        auto doc = json::parse(*payload, err);
        RunResult r;
        if (doc && resultFromJson(*doc, r, err))
            return r;
        // Unreadable payload: treat as a miss and recompute below.
    }
    RunResult r = simulate();
    std::string err;
    cfg.cache->store(key, resultToJson(r), err);
    return r;
}

Workload
buildBenchWorkload(const std::string &name, const ExperimentConfig &cfg)
{
    workloads::Params p;
    p.scale = cfg.workloadScale();
    p.seed = cfg.seed;
    return workloads::buildWorkload(name, p);
}

Table2Row
runTable2Row(const MachineConfig &machine, const std::string &benchmark,
             const ExperimentConfig &cfg)
{
    Workload wl = buildBenchWorkload(benchmark, cfg);
    Simulator simr(machine);
    RunResult res =
        cachedRun(machine, simr, wl, cfg, cfg.runOptions(true), false);

    Table2Row row;
    row.program = benchmark;
    row.problem = profile::classifyProblemInstructions(res.profile);
    row.insufficientMisses = row.problem.l1Misses < 200;
    return row;
}

Figure1Row
runFigure1Row(const MachineConfig &machine, const std::string &benchmark,
              const ExperimentConfig &cfg)
{
    Workload wl = buildBenchWorkload(benchmark, cfg);
    Simulator simr(machine);

    // Baseline doubles as the profiling run that identifies the
    // problem instructions (Section 2.2).
    RunResult base =
        cachedRun(machine, simr, wl, cfg, cfg.runOptions(true), false);
    auto prob = profile::classifyProblemInstructions(base.profile);

    RunOptions pp = cfg.runOptions();
    pp.perfect.branchPcs = prob.problemBranches;
    pp.perfect.loadPcs = prob.problemLoads;
    RunResult prob_perfect = cachedRun(machine, simr, wl, cfg, pp, false);

    RunOptions ap = cfg.runOptions();
    ap.perfect.allBranchesPerfect = true;
    ap.perfect.allLoadsPerfect = true;
    RunResult all_perfect = cachedRun(machine, simr, wl, cfg, ap, false);

    Figure1Row row;
    row.program = benchmark;
    row.baselineIpc = base.ipc();
    row.problemPerfectIpc = prob_perfect.ipc();
    row.allPerfectIpc = all_perfect.ipc();
    return row;
}

RunOptions
limitOptions(const Workload &wl, const ExperimentConfig &cfg)
{
    RunOptions o = cfg.runOptions();
    for (Addr pc : wl.coveredBranchPcs())
        o.perfect.branchPcs.insert(pc);
    for (Addr pc : wl.coveredLoadPcs())
        o.perfect.loadPcs.insert(pc);
    return o;
}

double
Figure11Row::slicePct() const
{
    return speedupPct(base, sliced);
}

double
Figure11Row::limitPct() const
{
    return speedupPct(base, limit);
}

Figure11Row
runFigure11Row(const MachineConfig &machine,
               const std::string &benchmark, const ExperimentConfig &cfg)
{
    Workload wl = buildBenchWorkload(benchmark, cfg);
    Simulator simr(machine);

    Figure11Row row;
    row.program = benchmark;
    row.base =
        cachedRun(machine, simr, wl, cfg, cfg.runOptions(), false);
    row.sliced =
        cachedRun(machine, simr, wl, cfg, cfg.runOptions(), true);
    row.limit = cachedRun(machine, simr, wl, cfg,
                          limitOptions(wl, cfg), false);
    return row;
}

std::optional<Table4Row>
runTable4Row(const MachineConfig &machine, const std::string &benchmark,
             const ExperimentConfig &cfg, double min_speedup_pct)
{
    Workload wl = buildBenchWorkload(benchmark, cfg);
    if (wl.slices.empty())
        return std::nullopt;

    Simulator simr(machine);
    Table4Row row;
    row.program = benchmark;
    row.base =
        cachedRun(machine, simr, wl, cfg, cfg.runOptions(), false);
    row.sliced =
        cachedRun(machine, simr, wl, cfg, cfg.runOptions(), true);
    row.speedupPercent = speedupPct(row.base, row.sliced);
    if (row.speedupPercent < min_speedup_pct)
        return std::nullopt;

    auto pct_removed = [](std::uint64_t before, std::uint64_t after) {
        if (before == 0)
            return 0.0;
        return 100.0 *
               (static_cast<double>(before) -
                static_cast<double>(after)) /
               static_cast<double>(before);
    };
    row.mispredRemovedPct =
        pct_removed(row.base.mispredictions, row.sliced.mispredictions);
    row.missRemovedPct =
        pct_removed(row.base.l1dMissesMain, row.sliced.l1dMissesMain);
    std::uint64_t binds =
        row.sliced.latePredictions + row.sliced.correlatorUsed;
    row.latePct = binds ? 100.0 *
                              static_cast<double>(
                                  row.sliced.latePredictions) /
                              static_cast<double>(binds)
                        : 0.0;

    // Load-vs-branch decomposition via the per-static perfect modes.
    RunOptions lo = cfg.runOptions();
    for (Addr pc : wl.coveredLoadPcs())
        lo.perfect.loadPcs.insert(pc);
    RunOptions bo = cfg.runOptions();
    for (Addr pc : wl.coveredBranchPcs())
        bo.perfect.branchPcs.insert(pc);
    double ld = speedupPct(row.base,
                           cachedRun(machine, simr, wl, cfg, lo, false));
    double br = speedupPct(row.base,
                           cachedRun(machine, simr, wl, cfg, bo, false));
    row.loadFraction = (ld + br) > 0.01 ? ld / (ld + br) : 0.0;

    return row;
}

} // namespace specslice::sim
