#include "sim/result_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "fault/fault.hh"

namespace specslice::sim
{

namespace cache_detail
{

/** In-memory view of the LRU index file, held under the flock. */
struct CacheIndex
{
    struct Entry
    {
        std::uint64_t seq = 0;
        std::uint64_t bytes = 0;
    };

    std::map<std::string, Entry> entries;
    std::uint64_t nextSeq = 1;

    std::uint64_t
    totalBytes() const
    {
        std::uint64_t sum = 0;
        for (const auto &[key, e] : entries)
            sum += e.bytes;
        return sum;
    }

    void
    touch(const std::string &key)
    {
        auto it = entries.find(key);
        if (it != entries.end())
            it->second.seq = nextSeq++;
    }

    void
    insert(const std::string &key, std::uint64_t bytes)
    {
        entries[key] = {nextSeq++, bytes};
    }
};

} // namespace cache_detail

using cache_detail::CacheIndex;

namespace
{

constexpr char entryMagic[] = "SSRC1";

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
makeDirs(const std::string &path)
{
    // mkdir -p, two levels deep at most here.
    std::string partial;
    std::istringstream ss(path);
    std::string seg;
    bool abs = !path.empty() && path[0] == '/';
    while (std::getline(ss, seg, '/')) {
        if (seg.empty())
            continue;
        partial += partial.empty() && !abs ? seg : "/" + seg;
        if (abs && partial[0] != '/')
            partial = "/" + partial;
        if (mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

/** errno values that mean "the disk, not the caller, is broken" and
 *  flip the cache into pass-through mode instead of failing runs. */
bool
diskFailureErrno(int err)
{
    return err == ENOSPC || err == EDQUOT || err == EIO;
}

/**
 * Validate one entry file end to end: magic, key echo, payload
 * length, FNV-1a checksum, no trailing bytes. On success fills
 * `payload`. Used by lookup() and scrub().
 */
bool
readEntry(const std::string &path, const std::string &key,
          std::string &payload, bool flip_tap = false)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;

    // Header line: "SSRC1 <key> <payload_bytes> <fnv64hex>\n".
    std::string header;
    if (!std::getline(is, header))
        return false;
    std::istringstream hs(header);
    std::string magic, echoed_key, sum_text;
    std::uint64_t payload_bytes = 0;
    if (!(hs >> magic >> echoed_key >> payload_bytes >> sum_text) ||
        magic != entryMagic || echoed_key != key ||
        sum_text.size() != 16)
        return false;

    payload.assign(payload_bytes, '\0');
    if (payload_bytes &&
        !is.read(payload.data(),
                 static_cast<std::streamsize>(payload_bytes)))
        return false;
    // Trailing bytes mean the length field lies: reject.
    char extra;
    if (is.get(extra))
        return false;

    // Deterministic bit-rot for the chaos harness: flip one payload
    // bit after the read so the checksum below catches it.
    if (flip_tap && !payload.empty() &&
        fault::serviceFire(fault::Site::CacheFlip))
        payload[payload.size() / 2] ^= 1;

    return hex64(fnv1a64(payload)) == sum_text;
}

/** RAII flock on <dir>/index.lock. */
class IndexLock
{
  public:
    explicit IndexLock(const std::string &dir)
    {
        fd_ = ::open((dir + "/index.lock").c_str(),
                     O_CREAT | O_RDWR | O_CLOEXEC, 0666);
        if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~IndexLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

    bool held() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

bool
readIndex(const std::string &path, CacheIndex &idx)
{
    idx.entries.clear();
    idx.nextSeq = 1;
    std::ifstream is(path);
    if (!is)
        return true;  // no index yet: empty is a valid state
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::uint64_t seq = 0, bytes = 0;
        std::string key;
        if (!(ls >> seq >> bytes >> key) || key.empty())
            continue;  // advisory: skip malformed lines
        idx.entries[key] = {seq, bytes};
        idx.nextSeq = std::max(idx.nextSeq, seq + 1);
    }
    return true;
}

bool
writeIndex(const std::string &dir, const CacheIndex &idx)
{
    std::string tmp =
        dir + "/index.tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        for (const auto &[key, e] : idx.entries)
            os << e.seq << " " << e.bytes << " " << key << "\n";
        os.flush();
        if (!os)
            return false;
    }
    if (::rename(tmp.c_str(), (dir + "/index").c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

ResultCache::ResultCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), maxBytes_(max_bytes)
{
    makeDirs(dir_);
    if (obs::MetricsRegistry *reg = obs::ambientMetrics()) {
        mHits_ = reg->counter("ss_cache_hits_total",
                              "Result-cache lookups served from disk");
        mMisses_ = reg->counter("ss_cache_misses_total",
                                "Result-cache lookups that missed");
        mStores_ = reg->counter("ss_cache_stores_total",
                                "Result-cache entries committed");
        mEvictions_ =
            reg->counter("ss_cache_evictions_total",
                         "Result-cache entries evicted by LRU");
        mRejected_ = reg->counter(
            "ss_cache_rejected_total",
            "Corrupt/truncated cache entries rejected on lookup");
        mQuarantined_ = reg->counter(
            "ss_cache_quarantined_total",
            "Corrupt cache entries moved to <dir>/quarantine/");
        mPassthrough_ = reg->counter(
            "ss_cache_passthrough_total",
            "Cache stores skipped in degraded pass-through mode");
    }
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    // Two-hex-char fanout; short keys (not produced by runCacheKey,
    // but legal) land in a literal "short" bucket.
    if (key.size() <= 2)
        return dir_ + "/short/" + key;
    return dir_ + "/" + key.substr(0, 2) + "/" + key.substr(2);
}

void
ResultCache::quarantineEntry(const std::string &path,
                             const std::string &key)
{
    // Preserve the corrupt bytes for postmortem; a failed rename
    // (quarantine dir unwritable, cross-device) falls back to unlink
    // so a poisoned entry can never be served twice either way.
    const std::string qdir = dir_ + "/quarantine";
    bool moved = makeDirs(qdir) &&
                 ::rename(path.c_str(),
                          (qdir + "/" + key).c_str()) == 0;
    if (!moved)
        ::unlink(path.c_str());
    ++stats_.quarantined;
    mQuarantined_.inc();
}

bool
ResultCache::withIndex(
    const std::function<void(CacheIndex &)> &fn, std::string &error)
{
    IndexLock lock(dir_);
    if (!lock.held()) {
        error = "cannot lock cache index in '" + dir_ + "'";
        return false;
    }
    CacheIndex idx;
    readIndex(dir_ + "/index", idx);
    fn(idx);
    if (!writeIndex(dir_, idx)) {
        error = "cannot rewrite cache index in '" + dir_ + "'";
        return false;
    }
    return true;
}

std::optional<std::string>
ResultCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> guard(mu_);
    const std::string path = entryPath(key);
    if (::access(path.c_str(), F_OK) != 0) {
        ++stats_.misses;
        mMisses_.inc();
        return std::nullopt;
    }

    std::string payload;
    if (!readEntry(path, key, payload, /*flip_tap=*/true)) {
        ++stats_.rejected;
        ++stats_.misses;
        mRejected_.inc();
        mMisses_.inc();
        quarantineEntry(path, key);
        return std::nullopt;
    }

    ++stats_.hits;
    mHits_.inc();
    std::string err;
    withIndex([&](CacheIndex &idx) { idx.touch(key); }, err);
    return payload;
}

bool
ResultCache::store(const std::string &key, const std::string &payload,
                   std::string &error)
{
    std::lock_guard<std::mutex> guard(mu_);
    if (degraded_) {
        ++stats_.passthrough;
        mPassthrough_.inc();
        return true;
    }
    if (fault::serviceFire(fault::Site::CacheEnospc)) {
        // Injected disk-full: degrade exactly as a real ENOSPC would.
        degraded_ = true;
        ++stats_.passthrough;
        mPassthrough_.inc();
        return true;
    }

    const std::string path = entryPath(key);
    const std::string parent = path.substr(0, path.rfind('/'));
    if (!makeDirs(parent)) {
        if (diskFailureErrno(errno)) {
            degraded_ = true;
            ++stats_.passthrough;
            mPassthrough_.inc();
            return true;
        }
        error = "cannot create cache directory '" + parent + "'";
        return false;
    }

    // Stage in the target directory (rename must not cross devices);
    // pid + address makes the name unique across processes and
    // threads. POSIX I/O so failures carry a classifiable errno.
    std::ostringstream tmpname;
    tmpname << path << ".tmp." << ::getpid() << "."
            << reinterpret_cast<std::uintptr_t>(&tmpname);
    const std::string tmp = tmpname.str();

    const std::string header = std::string(entryMagic) + " " + key +
                               " " + std::to_string(payload.size()) +
                               " " + hex64(fnv1a64(payload)) + "\n";
    int fd = ::open(tmp.c_str(),
                    O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0666);
    int staging_errno = fd < 0 ? errno : 0;
    if (fd >= 0) {
        auto writeAllFd = [&](const char *p, std::size_t n) {
            while (n) {
                ssize_t w = ::write(fd, p, n);
                if (w < 0) {
                    if (errno == EINTR)
                        continue;
                    staging_errno = errno;
                    return false;
                }
                p += w;
                n -= static_cast<std::size_t>(w);
            }
            return true;
        };
        if (!writeAllFd(header.data(), header.size()) ||
            !writeAllFd(payload.data(), payload.size())) {
            ::close(fd);
            ::unlink(tmp.c_str());
            fd = -1;
        } else {
            ::close(fd);
        }
    }
    if (fd < 0) {
        if (diskFailureErrno(staging_errno)) {
            degraded_ = true;
            ++stats_.passthrough;
            mPassthrough_.inc();
            return true;
        }
        error = "cannot stage cache entry '" + tmp +
                "': " + std::strerror(staging_errno);
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        if (diskFailureErrno(err)) {
            degraded_ = true;
            ++stats_.passthrough;
            mPassthrough_.inc();
            return true;
        }
        error = std::string("cannot commit cache entry: ") +
                std::strerror(err);
        return false;
    }
    ++stats_.stores;
    mStores_.inc();

    const std::uint64_t entry_bytes = payload.size();
    std::vector<std::string> evicted;
    if (!withIndex(
            [&](CacheIndex &idx) {
                idx.insert(key, entry_bytes);
                if (!maxBytes_)
                    return;
                while (idx.totalBytes() > maxBytes_ &&
                       idx.entries.size() > 1) {
                    // Evict lowest-seq (least recently used), never
                    // the entry just stored.
                    auto victim = idx.entries.end();
                    for (auto it = idx.entries.begin();
                         it != idx.entries.end(); ++it) {
                        if (it->first == key)
                            continue;
                        if (victim == idx.entries.end() ||
                            it->second.seq < victim->second.seq)
                            victim = it;
                    }
                    if (victim == idx.entries.end())
                        break;
                    evicted.push_back(victim->first);
                    idx.entries.erase(victim);
                }
            },
            error))
        return false;

    for (const std::string &k : evicted) {
        ::unlink(entryPath(k).c_str());
        ++stats_.evictions;
        mEvictions_.inc();
    }
    return true;
}

bool
ResultCache::scrub(ScrubReport &report, std::string &error,
                   bool delete_corrupt)
{
    std::lock_guard<std::mutex> guard(mu_);
    report = ScrubReport{};

    DIR *top = ::opendir(dir_.c_str());
    if (!top) {
        error = "cannot open cache directory '" + dir_ +
                "': " + std::strerror(errno);
        return false;
    }

    // key -> verified payload bytes, for the index rebuild below.
    std::map<std::string, std::uint64_t> verified;

    struct dirent *de;
    while ((de = ::readdir(top)) != nullptr) {
        const std::string bucket = de->d_name;
        if (bucket == "." || bucket == ".." ||
            bucket == "quarantine")
            continue;
        const std::string bucket_path = dir_ + "/" + bucket;
        struct stat st;
        if (::stat(bucket_path.c_str(), &st) != 0)
            continue;
        if (!S_ISDIR(st.st_mode)) {
            // Top-level files: the index, its lock, stale index
            // staging files. Only the last are garbage.
            if (bucket.rfind("index.tmp.", 0) == 0) {
                ::unlink(bucket_path.c_str());
                ++report.tmpRemoved;
            }
            continue;
        }

        DIR *sub = ::opendir(bucket_path.c_str());
        if (!sub)
            continue;
        struct dirent *fe;
        while ((fe = ::readdir(sub)) != nullptr) {
            const std::string name = fe->d_name;
            if (name == "." || name == "..")
                continue;
            const std::string path = bucket_path + "/" + name;
            if (name.find(".tmp.") != std::string::npos) {
                // Crashed writer's staging file: never committed,
                // safe to drop.
                ::unlink(path.c_str());
                ++report.tmpRemoved;
                continue;
            }
            const std::string key =
                bucket == "short" ? name : bucket + name;
            ++report.scanned;
            std::string payload;
            if (readEntry(path, key, payload)) {
                ++report.ok;
                report.bytes += payload.size();
                verified[key] = payload.size();
            } else if (delete_corrupt) {
                ::unlink(path.c_str());
                ++report.deleted;
            } else {
                quarantineEntry(path, key);
                ++report.quarantined;
            }
        }
        ::closedir(sub);
    }
    ::closedir(top);

    // Rebuild the index from the survivors: drop lines whose entry is
    // gone (or failed verification), adopt files the index missed,
    // correct stale byte counts. Existing recency survives.
    if (!withIndex(
            [&](CacheIndex &idx) {
                for (auto it = idx.entries.begin();
                     it != idx.entries.end();) {
                    auto v = verified.find(it->first);
                    if (v == verified.end()) {
                        it = idx.entries.erase(it);
                        ++report.indexDropped;
                    } else {
                        it->second.bytes = v->second;
                        ++it;
                    }
                }
                for (const auto &[key, bytes] : verified) {
                    if (!idx.entries.count(key)) {
                        idx.insert(key, bytes);
                        ++report.indexAdded;
                    }
                }
            },
            error))
        return false;
    return true;
}

std::uint64_t
ResultCache::entryCount()
{
    std::lock_guard<std::mutex> guard(mu_);
    std::uint64_t n = 0;
    std::string err;
    withIndex([&](CacheIndex &idx) { n = idx.entries.size(); }, err);
    return n;
}

} // namespace specslice::sim
