#include "sim/result_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

namespace specslice::sim
{

namespace cache_detail
{

/** In-memory view of the LRU index file, held under the flock. */
struct CacheIndex
{
    struct Entry
    {
        std::uint64_t seq = 0;
        std::uint64_t bytes = 0;
    };

    std::map<std::string, Entry> entries;
    std::uint64_t nextSeq = 1;

    std::uint64_t
    totalBytes() const
    {
        std::uint64_t sum = 0;
        for (const auto &[key, e] : entries)
            sum += e.bytes;
        return sum;
    }

    void
    touch(const std::string &key)
    {
        auto it = entries.find(key);
        if (it != entries.end())
            it->second.seq = nextSeq++;
    }

    void
    insert(const std::string &key, std::uint64_t bytes)
    {
        entries[key] = {nextSeq++, bytes};
    }
};

} // namespace cache_detail

using cache_detail::CacheIndex;

namespace
{

constexpr char entryMagic[] = "SSRC1";

bool
makeDirs(const std::string &path)
{
    // mkdir -p, two levels deep at most here.
    std::string partial;
    std::istringstream ss(path);
    std::string seg;
    bool abs = !path.empty() && path[0] == '/';
    while (std::getline(ss, seg, '/')) {
        if (seg.empty())
            continue;
        partial += partial.empty() && !abs ? seg : "/" + seg;
        if (abs && partial[0] != '/')
            partial = "/" + partial;
        if (mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    return true;
}

/** RAII flock on <dir>/index.lock. */
class IndexLock
{
  public:
    explicit IndexLock(const std::string &dir)
    {
        fd_ = ::open((dir + "/index.lock").c_str(),
                     O_CREAT | O_RDWR | O_CLOEXEC, 0666);
        if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~IndexLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

    bool held() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

bool
readIndex(const std::string &path, CacheIndex &idx)
{
    idx.entries.clear();
    idx.nextSeq = 1;
    std::ifstream is(path);
    if (!is)
        return true;  // no index yet: empty is a valid state
    std::string line;
    while (std::getline(is, line)) {
        std::istringstream ls(line);
        std::uint64_t seq = 0, bytes = 0;
        std::string key;
        if (!(ls >> seq >> bytes >> key) || key.empty())
            continue;  // advisory: skip malformed lines
        idx.entries[key] = {seq, bytes};
        idx.nextSeq = std::max(idx.nextSeq, seq + 1);
    }
    return true;
}

bool
writeIndex(const std::string &dir, const CacheIndex &idx)
{
    std::string tmp =
        dir + "/index.tmp." + std::to_string(::getpid());
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return false;
        for (const auto &[key, e] : idx.entries)
            os << e.seq << " " << e.bytes << " " << key << "\n";
        os.flush();
        if (!os)
            return false;
    }
    if (::rename(tmp.c_str(), (dir + "/index").c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

ResultCache::ResultCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), maxBytes_(max_bytes)
{
    makeDirs(dir_);
    if (obs::MetricsRegistry *reg = obs::ambientMetrics()) {
        mHits_ = reg->counter("ss_cache_hits_total",
                              "Result-cache lookups served from disk");
        mMisses_ = reg->counter("ss_cache_misses_total",
                                "Result-cache lookups that missed");
        mStores_ = reg->counter("ss_cache_stores_total",
                                "Result-cache entries committed");
        mEvictions_ =
            reg->counter("ss_cache_evictions_total",
                         "Result-cache entries evicted by LRU");
        mRejected_ = reg->counter(
            "ss_cache_rejected_total",
            "Corrupt/truncated cache entries rejected on lookup");
    }
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    // Two-hex-char fanout; short keys (not produced by runCacheKey,
    // but legal) land in a literal "short" bucket.
    if (key.size() <= 2)
        return dir_ + "/short/" + key;
    return dir_ + "/" + key.substr(0, 2) + "/" + key.substr(2);
}

bool
ResultCache::withIndex(
    const std::function<void(CacheIndex &)> &fn, std::string &error)
{
    IndexLock lock(dir_);
    if (!lock.held()) {
        error = "cannot lock cache index in '" + dir_ + "'";
        return false;
    }
    CacheIndex idx;
    readIndex(dir_ + "/index", idx);
    fn(idx);
    if (!writeIndex(dir_, idx)) {
        error = "cannot rewrite cache index in '" + dir_ + "'";
        return false;
    }
    return true;
}

std::optional<std::string>
ResultCache::lookup(const std::string &key)
{
    std::lock_guard<std::mutex> guard(mu_);
    const std::string path = entryPath(key);
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        ++stats_.misses;
        mMisses_.inc();
        return std::nullopt;
    }

    // Header line: "SSRC1 <key> <payload_bytes>\n".
    std::string header;
    if (!std::getline(is, header)) {
        ++stats_.rejected;
        ++stats_.misses;
        mRejected_.inc();
        mMisses_.inc();
        ::unlink(path.c_str());
        return std::nullopt;
    }
    std::istringstream hs(header);
    std::string magic, echoed_key;
    std::uint64_t payload_bytes = 0;
    if (!(hs >> magic >> echoed_key >> payload_bytes) ||
        magic != entryMagic || echoed_key != key) {
        ++stats_.rejected;
        ++stats_.misses;
        mRejected_.inc();
        mMisses_.inc();
        ::unlink(path.c_str());
        return std::nullopt;
    }

    std::string payload(payload_bytes, '\0');
    if (payload_bytes &&
        !is.read(payload.data(),
                 static_cast<std::streamsize>(payload_bytes))) {
        ++stats_.rejected;
        ++stats_.misses;
        mRejected_.inc();
        mMisses_.inc();
        ::unlink(path.c_str());
        return std::nullopt;
    }
    // Trailing bytes mean the length field lies: reject.
    char extra;
    if (is.get(extra)) {
        ++stats_.rejected;
        ++stats_.misses;
        mRejected_.inc();
        mMisses_.inc();
        ::unlink(path.c_str());
        return std::nullopt;
    }

    ++stats_.hits;
    mHits_.inc();
    std::string err;
    withIndex([&](CacheIndex &idx) { idx.touch(key); }, err);
    return payload;
}

bool
ResultCache::store(const std::string &key, const std::string &payload,
                   std::string &error)
{
    std::lock_guard<std::mutex> guard(mu_);
    const std::string path = entryPath(key);
    const std::string parent = path.substr(0, path.rfind('/'));
    if (!makeDirs(parent)) {
        error = "cannot create cache directory '" + parent + "'";
        return false;
    }

    // Stage in the target directory (rename must not cross devices);
    // pid + address makes the name unique across processes and
    // threads.
    std::ostringstream tmpname;
    tmpname << path << ".tmp." << ::getpid() << "."
            << reinterpret_cast<std::uintptr_t>(&tmpname);
    const std::string tmp = tmpname.str();
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            error = "cannot stage cache entry '" + tmp + "'";
            return false;
        }
        os << entryMagic << " " << key << " " << payload.size()
           << "\n";
        os.write(payload.data(),
                 static_cast<std::streamsize>(payload.size()));
        os.flush();
        if (!os) {
            error = "write to cache entry '" + tmp + "' failed";
            ::unlink(tmp.c_str());
            return false;
        }
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        error = std::string("cannot commit cache entry: ") +
                std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    ++stats_.stores;
    mStores_.inc();

    const std::uint64_t entry_bytes = payload.size();
    std::vector<std::string> evicted;
    if (!withIndex(
            [&](CacheIndex &idx) {
                idx.insert(key, entry_bytes);
                if (!maxBytes_)
                    return;
                while (idx.totalBytes() > maxBytes_ &&
                       idx.entries.size() > 1) {
                    // Evict lowest-seq (least recently used), never
                    // the entry just stored.
                    auto victim = idx.entries.end();
                    for (auto it = idx.entries.begin();
                         it != idx.entries.end(); ++it) {
                        if (it->first == key)
                            continue;
                        if (victim == idx.entries.end() ||
                            it->second.seq < victim->second.seq)
                            victim = it;
                    }
                    if (victim == idx.entries.end())
                        break;
                    evicted.push_back(victim->first);
                    idx.entries.erase(victim);
                }
            },
            error))
        return false;

    for (const std::string &k : evicted) {
        ::unlink(entryPath(k).c_str());
        ++stats_.evictions;
        mEvictions_.inc();
    }
    return true;
}

std::uint64_t
ResultCache::entryCount()
{
    std::lock_guard<std::mutex> guard(mu_);
    std::uint64_t n = 0;
    std::string err;
    withIndex([&](CacheIndex &idx) { n = idx.entries.size(); }, err);
    return n;
}

} // namespace specslice::sim
