/**
 * @file
 * Content-addressed on-disk result cache.
 *
 * Entries are keyed by runCacheKey (SHA-256 of the canonical request
 * plus the binary fingerprint) and stored under a two-level fanout —
 * `<dir>/<key[0:2]>/<key[2:]>` — so a populated cache never piles a
 * hundred thousand files into one directory. Each entry file carries
 * a magic/key/length/checksum header and the payload (a resultToJson
 * document or any other byte string the caller round-trips).
 *
 * Crash/concurrency discipline:
 *  - Writers stage to a unique temp file in the entry's directory and
 *    commit with rename(2), so a reader never observes a half-written
 *    entry and two processes storing the same key atomically converge
 *    on one file.
 *  - The LRU index (`<dir>/index`, "seq bytes key" lines) is only
 *    touched under an flock on `<dir>/index.lock`, and is itself
 *    rewritten via temp-file + rename. The index is advisory: a
 *    missing or stale index line never loses data (lookup goes to
 *    the entry file), it only delays eviction.
 *  - Lookup validates magic, key echo, payload length, and an FNV-1a
 *    payload checksum; a truncated or corrupted entry is quarantined
 *    (moved to `<dir>/quarantine/<key>` for postmortem) and reported
 *    as a miss, never served.
 *
 * Failure discipline (robustness):
 *  - A store that fails with a disk-full/IO errno (ENOSPC, EDQUOT,
 *    EIO) flips the cache into sticky *pass-through* mode: subsequent
 *    stores are counted (`passthrough`) and skipped, lookups still
 *    hit whatever is already on disk, and the caller never sees a
 *    failure. A full disk degrades a sweep to cold-run speed instead
 *    of killing it.
 *  - scrub() (surfaced as `specslice_serve --fsck`) walks the fanout,
 *    re-verifies every entry end to end, quarantines or deletes the
 *    corrupt ones, clears staged temp files, and rebuilds the LRU
 *    index from the survivors.
 *
 * Eviction is LRU by commit/touch sequence number, triggered on
 * store() when the total payload bytes exceed the configured cap.
 */

#ifndef SPECSLICE_SIM_RESULT_CACHE_HH
#define SPECSLICE_SIM_RESULT_CACHE_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "obs/metrics.hh"

namespace specslice::sim
{

namespace cache_detail
{
struct CacheIndex;
}

class ResultCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        std::uint64_t evictions = 0;
        /** Corrupt/truncated entries rejected (counted as misses). */
        std::uint64_t rejected = 0;
        /** Rejected entries preserved under <dir>/quarantine/. */
        std::uint64_t quarantined = 0;
        /** Stores skipped while degraded to pass-through mode. */
        std::uint64_t passthrough = 0;
    };

    /** What scrub() saw and did; every entry file lands in exactly
     *  one of ok/quarantined/deleted. */
    struct ScrubReport
    {
        std::uint64_t scanned = 0;     ///< entry files examined
        std::uint64_t ok = 0;          ///< verified end to end
        std::uint64_t quarantined = 0; ///< corrupt, moved aside
        std::uint64_t deleted = 0;     ///< corrupt, unlinked
        std::uint64_t tmpRemoved = 0;  ///< stale .tmp.* staging files
        std::uint64_t indexDropped = 0; ///< index lines w/o a file
        std::uint64_t indexAdded = 0;   ///< files the index missed
        std::uint64_t bytes = 0;        ///< payload bytes verified ok
    };

    /** Default size cap: plenty for full-suite sweeps at many
     *  configurations, small enough to forget about. */
    static constexpr std::uint64_t defaultMaxBytes =
        std::uint64_t{256} * 1024 * 1024;

    /**
     * Open (creating directories as needed) a cache rooted at dir.
     * @param max_bytes total payload-byte cap for LRU eviction
     *        (0 = unlimited).
     */
    explicit ResultCache(std::string dir,
                         std::uint64_t max_bytes = defaultMaxBytes);

    /**
     * Fetch the payload stored under key, or nullopt. A hit bumps the
     * entry's LRU sequence. Thread-safe (one internal mutex; on-disk
     * state is additionally safe across processes via flock + atomic
     * renames).
     */
    std::optional<std::string> lookup(const std::string &key);

    /**
     * Commit payload under key (atomically; concurrent writers of the
     * same key converge on one entry). Runs LRU eviction afterwards.
     * Disk-full/IO failures flip the cache into pass-through mode and
     * return true (degraded, not fatal); other failures return false
     * and set error.
     */
    bool store(const std::string &key, const std::string &payload,
               std::string &error);

    /**
     * Walk every entry on disk, verify headers + checksums, move
     * corrupt entries to `<dir>/quarantine/` (or unlink them when
     * `delete_corrupt`), remove stale staging files, and rebuild the
     * flock'd LRU index from the verified survivors (existing
     * recency order is preserved where the index already knew the
     * entry). @return false and set error only if the walk or index
     * rewrite itself fails.
     */
    bool scrub(ScrubReport &report, std::string &error,
               bool delete_corrupt = false);

    /** Entries currently listed in the index (locks the index). */
    std::uint64_t entryCount();

    /** True once a disk failure flipped the cache to pass-through. */
    bool degraded() const { return degraded_; }

    const std::string &dir() const { return dir_; }
    const Stats &stats() const { return stats_; }

  private:
    std::string entryPath(const std::string &key) const;
    /** Move a corrupt entry aside (fallback: unlink). */
    void quarantineEntry(const std::string &path,
                         const std::string &key);
    /** Rewrite the index applying fn under the lock. */
    bool withIndex(
        const std::function<void(cache_detail::CacheIndex &)> &fn,
        std::string &error);

    std::string dir_;
    std::uint64_t maxBytes_;
    mutable std::mutex mu_;  ///< guards stats_ + in-process I/O
    Stats stats_;
    bool degraded_ = false;  ///< sticky pass-through mode
    // Ambient-registry mirrors of stats_; no-ops when no registry is
    // installed. Registered at construction so forked workers inherit
    // the same shared-memory slots.
    obs::Counter mHits_;
    obs::Counter mMisses_;
    obs::Counter mStores_;
    obs::Counter mEvictions_;
    obs::Counter mRejected_;
    obs::Counter mQuarantined_;
    obs::Counter mPassthrough_;
};

} // namespace specslice::sim

#endif // SPECSLICE_SIM_RESULT_CACHE_HH
