#include "sim/run_key.hh"

#include <algorithm>
#include <sstream>

#include "arch/checkpoint.hh"
#include "common/failure.hh"
#include "common/hash.hh"
#include "sim/result_json.hh"

namespace specslice::sim
{

namespace
{

class KeyWriter
{
  public:
    void
    put(const char *name, std::uint64_t v)
    {
        os_ << name << " = " << v << "\n";
    }

    void
    put(const char *name, const std::string &v)
    {
        // Length-prefix strings so adjacent fields can't alias
        // ("ab"+"c" vs "a"+"bc").
        os_ << name << " = " << v.size() << ":" << v << "\n";
    }

    void
    putBool(const char *name, bool v)
    {
        os_ << name << " = " << (v ? 1 : 0) << "\n";
    }

    /** Sorted, so unordered-set iteration order can't leak in. */
    void
    putPcSet(const char *name, const std::unordered_set<Addr> &pcs)
    {
        std::vector<Addr> sorted(pcs.begin(), pcs.end());
        std::sort(sorted.begin(), sorted.end());
        os_ << name << " =";
        for (Addr pc : sorted)
            os_ << " " << pc;
        os_ << "\n";
    }

    std::string text() const { return os_.str(); }

  private:
    std::ostringstream os_;
};

void
writeConfig(KeyWriter &w, const MachineConfig &c)
{
    w.put("config.num_threads", c.numThreads);
    w.put("config.fetch_width", c.fetchWidth);
    w.put("config.issue_width", c.issueWidth);
    w.put("config.retire_width", c.retireWidth);
    w.put("config.window_size", c.windowSize);
    w.put("config.front_end_depth", c.frontEndDepth);
    w.put("config.num_int_alu", c.numIntAlu);
    w.put("config.num_mem_ports", c.numMemPorts);
    w.put("config.num_complex", c.numComplex);
    w.put("config.num_fp", c.numFp);
    w.put("config.main_thread_fetch_bias",
          static_cast<std::uint64_t>(
              static_cast<std::int64_t>(c.mainThreadFetchBias)));
    w.putBool("config.slices_enabled", c.slicesEnabled);
    w.putBool("config.terminate_dead_slices", c.terminateDeadSlices);
    w.putBool("config.late_reversals", c.lateReversalsEnabled);
    w.putBool("config.fork_confidence_gating", c.forkConfidenceGating);
    w.putBool("config.dedicated_slice_resources",
              c.dedicatedSliceResources);

    w.put("config.predictor.yags.choice_entries",
          c.predictor.yags.choiceEntries);
    w.put("config.predictor.yags.cache_entries",
          c.predictor.yags.cacheEntries);
    w.put("config.predictor.yags.tag_bits", c.predictor.yags.tagBits);
    w.put("config.predictor.yags.history_bits",
          c.predictor.yags.historyBits);
    w.put("config.predictor.indirect.stage1_entries",
          c.predictor.indirect.stage1Entries);
    w.put("config.predictor.indirect.stage2_entries",
          c.predictor.indirect.stage2Entries);
    w.put("config.predictor.indirect.tag_bits",
          c.predictor.indirect.tagBits);
    w.put("config.predictor.indirect.path_bits",
          c.predictor.indirect.pathBits);
    w.put("config.predictor.ras_entries", c.predictor.rasEntries);
    w.put("config.predictor.history_bits", c.predictor.historyBits);
    w.put("config.predictor.path_bits", c.predictor.pathBits);

    w.put("config.memory.l1i_size", c.memory.l1iSize);
    w.put("config.memory.l1i_assoc", c.memory.l1iAssoc);
    w.put("config.memory.l1i_line_size", c.memory.l1iLineSize);
    w.put("config.memory.l1d_size", c.memory.l1dSize);
    w.put("config.memory.l1d_assoc", c.memory.l1dAssoc);
    w.put("config.memory.l1d_line_size", c.memory.l1dLineSize);
    w.put("config.memory.l1_latency", c.memory.l1Latency);
    w.put("config.memory.l2_size", c.memory.l2Size);
    w.put("config.memory.l2_assoc", c.memory.l2Assoc);
    w.put("config.memory.l2_line_size", c.memory.l2LineSize);
    w.put("config.memory.l2_latency", c.memory.l2Latency);
    w.put("config.memory.mem_latency", c.memory.memLatency);
    w.put("config.memory.mem_bus_occupancy", c.memory.memBusOccupancy);
    w.put("config.memory.pv_buf_entries", c.memory.pvBufEntries);
    w.put("config.memory.write_buf_entries", c.memory.writeBufEntries);
    w.put("config.memory.prefetch_streams", c.memory.prefetchStreams);
    w.put("config.memory.prefetch_degree", c.memory.prefetchDegree);
    w.putBool("config.memory.sequential_prefetch",
              c.memory.sequentialPrefetch);
    w.putBool("config.memory.prefetcher_enabled",
              c.memory.prefetcherEnabled);

    w.put("config.correlator.entries", c.correlator.entries);
    w.put("config.correlator.preds_per_branch",
          c.correlator.predsPerBranch);
    w.put("config.slice_table.slice_entries",
          c.sliceTable.sliceEntries);
    w.put("config.slice_table.pgi_entries", c.sliceTable.pgiEntries);
}

void
writeOptions(KeyWriter &w, const RunOptions &o)
{
    w.put("opts.max_main_instructions", o.maxMainInstructions);
    w.put("opts.max_cycles", o.maxCycles);
    w.put("opts.watchdog_cycles", o.watchdogCycles);
    w.putBool("opts.watchdog_enabled", o.watchdogEnabled);
    w.put("opts.faults", o.faults.describe());
    w.put("opts.faults_seed", o.faults.seed);
    w.put("opts.warmup_instructions", o.warmupInstructions);

    w.putBool("opts.perfect.all_branches", o.perfect.allBranchesPerfect);
    w.putBool("opts.perfect.all_loads", o.perfect.allLoadsPerfect);
    w.putPcSet("opts.perfect.branch_pcs", o.perfect.branchPcs);
    w.putPcSet("opts.perfect.load_pcs", o.perfect.loadPcs);

    w.putBool("opts.profile", o.profile);
    w.put("opts.interval_cycles", o.intervalCycles);

    // The checker changes checkedRetired/checkDiverged in the payload
    // (and a fatal divergence aborts), so checking runs key apart
    // from unchecked ones. A caller-supplied external checker is not
    // canonicalizable — refuse rather than alias (handled by caller).
    w.putBool("opts.check", o.check);
    w.putBool("opts.check_fatal", o.checkFatal);
    w.put("opts.check_inject_reg_fault", o.checkInjectRegFault);
    w.put("opts.check_inject_store_fault", o.checkInjectStoreFault);

    // Injected architectural state: hash contents, not presence. A
    // null pointer and an empty vector are equivalent (no replay).
    {
        Sha256 h;
        if (o.initialRegs) {
            for (unsigned r = 0; r < isa::numRegs; ++r) {
                std::uint64_t v =
                    o.initialRegs->read(static_cast<RegIndex>(r));
                h.update(&v, sizeof(v));
            }
        }
        w.put("opts.initial_regs", o.initialRegs ? h.hex()
                                                 : std::string());
    }
    {
        Sha256 h;
        std::uint64_t n = 0;
        if (o.branchWarmth) {
            for (const arch::BranchWarmthRecord &r : *o.branchWarmth) {
                std::uint64_t rec[3] = {
                    r.pc, r.target,
                    (static_cast<std::uint64_t>(r.kind) << 1) |
                        (r.taken ? 1 : 0)};
                h.update(rec, sizeof(rec));
                ++n;
            }
        }
        w.put("opts.branch_warmth", n ? h.hex() : std::string());
    }
    {
        Sha256 h;
        std::uint64_t n = 0;
        if (o.memWarmth) {
            for (const arch::MemWarmthRecord &r : *o.memWarmth) {
                std::uint64_t rec[2] = {r.addr, r.isStore ? 1u : 0u};
                h.update(rec, sizeof(rec));
                ++n;
            }
        }
        w.put("opts.mem_warmth", n ? h.hex() : std::string());
    }
    {
        Sha256 h;
        std::uint64_t n = 0;
        if (o.instWarmth) {
            for (Addr pc : *o.instWarmth) {
                h.update(&pc, sizeof(pc));
                ++n;
            }
        }
        w.put("opts.inst_warmth", n ? h.hex() : std::string());
    }

    w.put("opts.fast_forward_instructions", o.fastForwardInstructions);
    w.put("opts.sample_regions", o.sampleRegions);
    w.put("opts.sample_stride", o.sampleStride);
    w.putBool("opts.warm_predictors", o.warmPredictors);
    w.putBool("opts.warm_caches", o.warmCaches);
    w.putBool("opts.warm_inst_cache", o.warmInstCache);
    // saveCheckpoint is a pure output path — it never changes the
    // simulated numbers — so it is deliberately excluded. A restore
    // is keyed by the checkpoint's *content* (not its path): the same
    // state restored from anywhere hits the same entry, and an edited
    // or regenerated checkpoint file misses instead of serving stale
    // numbers.
    {
        std::string restore;
        if (!o.restoreCheckpoint.empty()) {
            std::string err;
            restore = sha256FileHex(o.restoreCheckpoint, err);
            if (restore.empty())
                restore = "unreadable:" + o.restoreCheckpoint;
        }
        w.put("opts.restore_checkpoint_sha256", restore);
    }
    // Trace-driven runs are keyed by the trace's *content*, not its
    // path: re-emitting a trace over the same filename must miss (the
    // records changed), and the same trace copied elsewhere must hit.
    {
        std::string tracehash;
        if (!o.traceFile.empty()) {
            std::string err;
            tracehash = sha256FileHex(o.traceFile, err);
            if (tracehash.empty())
                tracehash = "unreadable:" + o.traceFile;
        }
        w.put("opts.trace_file_sha256", tracehash);
    }
}

} // namespace

std::string
canonicalKeyText(const RunKeyInputs &in)
{
    SS_ASSERT(in.workload && in.config && in.options,
              "run key needs workload, config, and options");
    // A run observed through an externally owned checker cannot be
    // keyed (the checker's configuration is invisible here); callers
    // wanting cached runs must use the opts.check flag instead.
    SS_ASSERT(!in.options->checker,
              "runs with an external checker are not cacheable");

    KeyWriter w;
    w.put("key_schema", std::uint64_t{1});
    w.put("result_schema", resultSchemaVersion);
    w.put("workload.name", in.workload->name);
    w.put("workload.scale", in.workload->scale);
    w.put("workload.entry", in.workload->entry);
    w.put("workload.seed", in.dataSeed);
    w.put("workload.program_fingerprint",
          arch::fingerprintProgram(in.workload->program));
    w.put("workload.slices", in.workload->slices.size());
    w.putBool("with_slices", in.withSlices);
    writeConfig(w, *in.config);
    writeOptions(w, *in.options);
    return w.text();
}

std::string
runCacheKey(const RunKeyInputs &in)
{
    Sha256 h;
    h.update(canonicalKeyText(in));
    h.update("binary:");
    h.update(binaryFingerprint());
    return h.hex();
}

std::string
checkpointCacheKey(const Workload &wl, std::uint64_t data_seed,
                   std::uint64_t fastforward)
{
    KeyWriter w;
    w.put("checkpoint_version",
          std::uint64_t{arch::checkpointVersion});
    w.put("workload.name", wl.name);
    w.put("workload.scale", wl.scale);
    w.put("workload.entry", wl.entry);
    w.put("workload.seed", data_seed);
    w.put("workload.program_fingerprint",
          arch::fingerprintProgram(wl.program));
    w.put("fastforward", fastforward);
    Sha256 h;
    h.update(w.text());
    h.update("binary:");
    h.update(binaryFingerprint());
    return h.hex().substr(0, 16);
}

} // namespace specslice::sim
