/**
 * @file
 * A Workload packages everything needed to simulate one benchmark: the
 * static program (including slice code sections), an entry point, a
 * memory initializer (run before every simulation so runs are
 * independent), the hand-constructed speculative slices, and metadata
 * used by the experiment harnesses.
 */

#ifndef SPECSLICE_SIM_WORKLOAD_HH
#define SPECSLICE_SIM_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "arch/memimg.hh"
#include "common/types.hh"
#include "isa/program.hh"
#include "slice/descriptor.hh"

namespace specslice::sim
{

struct Workload
{
    std::string name;
    isa::Program program;
    Addr entry = invalidAddr;

    /** Builds the initial data image (heaps, lists, tables...). */
    std::function<void(arch::MemoryImage &)> initMemory;

    /** Hand-constructed speculative slices (may be empty). */
    std::vector<slice::SliceDescriptor> slices;

    /**
     * A scale knob the builders use to size data structures and
     * iteration counts (roughly: dynamic instructions ~ scale).
     */
    std::uint64_t scale = 0;

    /** Union of problem PCs covered by the slices (limit study). */
    std::vector<Addr>
    coveredBranchPcs() const
    {
        std::vector<Addr> out;
        for (const auto &s : slices)
            out.insert(out.end(), s.coveredBranchPcs.begin(),
                       s.coveredBranchPcs.end());
        return out;
    }

    std::vector<Addr>
    coveredLoadPcs() const
    {
        std::vector<Addr> out;
        for (const auto &s : slices)
            out.insert(out.end(), s.coveredLoadPcs.begin(),
                       s.coveredLoadPcs.end());
        return out;
    }
};

} // namespace specslice::sim

#endif // SPECSLICE_SIM_WORKLOAD_HH
