/**
 * @file
 * The sweep service's unit of work: a schema-versioned JSON request
 * describing one specslice_run-style simulation (single configuration,
 * --compare pair, or --limit study), the canonical cache key derived
 * from it, and the runner that produces a result document
 * byte-identical to `specslice_run --json --no-wall` for the same
 * flags.
 *
 * Byte-identity is the load-bearing property: the CI smoke test diffs
 * a served sweep against direct specslice_run output, so a cache hit,
 * a worker-process run, and a plain CLI run must all render the same
 * bytes. To that end the JSON document assembly itself lives here
 * (perfDocument / errorDocument) and specslice_run's --json path calls
 * the same functions.
 */

#ifndef SPECSLICE_SIM_SERVE_JOB_HH
#define SPECSLICE_SIM_SERVE_JOB_HH

#include <string>
#include <vector>

#include "common/jsonio.hh"
#include "sim/result_json.hh"
#include "sim/simulator.hh"

namespace specslice::obs
{
class EventBuffer;
}

namespace specslice::sim
{

/**
 * One simulation request. Field names and defaults mirror the
 * specslice_run flags of the same name; toJson()/fromJson() round-trip
 * the wire form ({"op":"run", ...} objects carry these fields plus the
 * envelope's op/schema_version, which this struct ignores).
 */
struct JobSpec
{
    std::string workload = "vpr";
    /**
     * Run from this sstr trace file instead of a named workload
     * ("trace_file" on the wire; "" = workload mode). The embedded
     * workload's name overrides `workload` in the result document,
     * and the cache key carries the trace's content hash, so serving
     * trace runs is exactly as cacheable as serving named ones.
     */
    std::string traceFile;
    unsigned width = 4;
    std::uint64_t insts = 300'000;
    std::uint64_t warmup = 100'000;
    std::uint64_t seed = 1;
    unsigned threads = 4;
    int bias = -1;  ///< <0: keep the config default
    bool slices = true;
    bool compare = false;  ///< baseline AND slices + speedup_pct
    bool limit = false;    ///< constrained limit study
    bool check = false;    ///< retirement checker co-simulation
    std::string inject;    ///< fault plan spec ("" = none)
    std::uint64_t fastforward = 0;
    unsigned sampleRegions = 0;
    std::uint64_t sampleStride = 0;
    bool coldPredictors = false;
    bool coldCaches = false;
    bool coldIcache = false;
    Cycle watchdog = 0;  ///< 0 = default threshold
    bool noWatchdog = false;
    Cycle maxCycles = 0;  ///< 0 = 50x instruction budget
    /** Window length for the embedded interval series; matches the
     *  specslice_run --json default, where intervals are always on. */
    std::uint64_t intervalCycles = 10'000;
    bool allowPartial = false;

    /** Parse the known fields out of a request object (unknown fields
     *  are ignored for forward compatibility; wrong types are not).
     *  @return false and set error on a malformed spec. */
    static bool fromJson(const json::Value &doc, JobSpec &out,
                         std::string &error);

    /** Single-line JSON object with every field (no op envelope). */
    std::string toJson() const;
};

/** What running (or serving from cache) one JobSpec produced. */
struct JobOutcome
{
    /** specslice_run-compatible: 0 completed, 1 checker divergence,
     *  2 usage, 3 incomplete without allow_partial, 4 sim error. */
    int exitCode = 0;
    /** The result document (one line, no trailing newline): either a
     *  perfDocument or an errorDocument. */
    std::string document;
};

/**
 * The content-addressed cache key for a spec: SHA-256 over the
 * canonical key text of every constituent run (see run_key.hh) plus
 * the job mode and the binary fingerprint. Returns "" and sets error
 * if the spec cannot be keyed (unknown workload, bad inject spec,
 * invalid width/threads).
 */
std::string jobCacheKey(const JobSpec &spec, std::string &error);

/**
 * Run the simulation(s) described by spec and render the
 * `specslice_run --json --no-wall` document. Never throws: panics and
 * simulation faults become an errorDocument with exit code 4.
 *
 * When events is non-null every constituent run records into it
 * (compare pairs and sampled regions land on one timeline: the
 * buffer's time base is advanced past each run). Tracing never
 * changes the rendered document — byte-identity with specslice_run
 * is load-bearing. Phase wall times (fast-forward / warm-up /
 * measure) are observed into the ambient metrics registry when one
 * is installed.
 */
JobOutcome runJob(const JobSpec &spec,
                  obs::EventBuffer *events = nullptr);

// ---------------------------------------------------------------
// Document assembly shared with specslice_run --json
// ---------------------------------------------------------------

/** Top-level metadata of a result document. */
struct DocMeta
{
    std::string workload;
    unsigned width = 4;
    std::uint64_t insts = 0;
    std::uint64_t warmup = 0;
    std::uint64_t seed = 1;
    /** FaultPlan::describe() of the armed plan ("" = no inject). */
    std::string injectDescription;
    bool compare = false;  ///< adds speedup_pct from runs[0] vs [1]
};

/** Rank outcomes by severity so a multi-run document (and its exit
 *  code) reports the worst one. */
int outcomeSeverity(SimOutcome oc);

/** The worst outcome across a batch of runs. */
SimOutcome worstOutcome(const std::vector<WorkloadPerf> &runs);

/**
 * Render the result document for a finished batch of runs — the exact
 * bytes specslice_run --json prints (pass include_wall=false for the
 * --no-wall / served form).
 */
std::string perfDocument(const DocMeta &meta,
                         const std::vector<WorkloadPerf> &runs,
                         bool include_wall);

/** The {"error": {...}} document a failed run still emits. */
std::string errorDocument(const std::string &workload,
                          std::uint64_t seed, const std::string &kind,
                          const std::string &message);

} // namespace specslice::sim

#endif // SPECSLICE_SIM_SERVE_JOB_HH
