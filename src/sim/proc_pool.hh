/**
 * @file
 * ProcPool: a pool of forked worker *processes* pulling jobs from a
 * shared-memory queue. It extends the crash-resilience ladder one rung
 * past JobPool::mapSettled — a thread that dies from a SIGSEGV or a
 * SIGKILL takes the whole process with it, while a worker process
 * that dies is observed via waitpid, reported as one typed crashed
 * result, and replaced with a fresh fork, with the rest of the batch
 * unaffected. The resident experiment server runs every simulation
 * under this tier so no request, however broken, can kill the daemon.
 *
 * Mechanics:
 *  - Jobs are byte strings (bounded; the server passes JSON request
 *    lines). They are copied into a slot ring in an anonymous shared
 *    mmap guarded by a process-shared ROBUST pthread mutex + condvar.
 *    Workers BLOCK in pthread_cond_wait when the ring is empty — an
 *    idle pool consumes ~0% CPU (verified by test) — and the robust
 *    mutex means a worker dying mid-critical-section wakes the next
 *    locker with EOWNERDEAD instead of deadlocking the pool.
 *  - Each worker reports results over its own pipe as length-prefixed
 *    frames (single writer per pipe, no cross-worker interleaving).
 *    The parent never blocks on a worker: it polls the pipe fds —
 *    exposed via resultFds() so a server can fold them into its own
 *    poll loop — and reassembles frames incrementally.
 *  - Before running a job, a worker publishes the job's ticket in its
 *    shared worker record; on SIGCHLD the parent reads the record of
 *    the dead pid, synthesizes the crashed result for that ticket,
 *    and forks a replacement.
 *
 * The job function runs in the child after fork(): it must not rely
 * on parent threads (fork only carries the calling thread) and its
 * writes to globals are invisible to the parent. Create the pool
 * before spawning unrelated threads.
 */

#ifndef SPECSLICE_SIM_PROC_POOL_HH
#define SPECSLICE_SIM_PROC_POOL_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace specslice::sim
{

namespace proc_detail
{
struct SharedRegion;
}

class ProcPool
{
  public:
    /** Runs in the worker process; input is the submitted payload,
     *  the returned string travels back verbatim. A thrown exception
     *  becomes a failed (not crashed) result. */
    using JobFn = std::function<std::string(const std::string &)>;

    enum class JobStatus : std::uint32_t
    {
        Done = 0,     ///< fn returned; payload is its return value
        Failed = 1,   ///< fn threw; payload is the exception text
        Crashed = 2,  ///< worker process died; payload is a diagnosis
        Poisoned = 3, ///< job crashed its worker max_job_attempts
                      ///< times; failed permanently, not retried
    };

    struct Result
    {
        std::uint64_t ticket = 0;
        JobStatus status = JobStatus::Done;
        std::string payload;
    };

    /** Largest accepted job payload (slot size in the shared ring). */
    static constexpr std::size_t maxPayloadBytes = 64 * 1024;

    /**
     * Fork `workers` children immediately (>=1; silently clamped).
     * fn is invoked only in the children.
     *
     * @param max_job_attempts how many times one job may crash a
     *        worker before it is failed permanently. 1 (the default)
     *        keeps the legacy behavior: the first crash surfaces as
     *        a Crashed result. Higher values requeue the job — same
     *        ticket, fresh worker — until the cap, when it surfaces
     *        as Poisoned. A poison job (one that deterministically
     *        kills its worker) can then never respawn-loop the pool.
     */
    ProcPool(unsigned workers, JobFn fn,
             unsigned max_job_attempts = 1);

    /** Stops workers (cooperatively, then SIGKILL) and reaps them. */
    ~ProcPool();

    ProcPool(const ProcPool &) = delete;
    ProcPool &operator=(const ProcPool &) = delete;

    /**
     * Enqueue a job. Blocks while the slot ring is full.
     * @return the job's ticket (>0), or 0 with error set (payload
     *         too large, pool shut down, or no live workers left to
     *         wake).
     */
    std::uint64_t submit(const std::string &payload,
                         std::string &error);

    /**
     * Collect finished results, blocking up to timeout_ms for the
     * first one (-1 = forever, 0 = non-blocking drain). Dead workers
     * are detected here: their in-flight job surfaces as a Crashed
     * result and a replacement worker is forked before returning.
     */
    std::vector<Result> poll(int timeout_ms);

    /**
     * Convenience batch driver: submit everything, poll until every
     * ticket has a result, return results in submission order.
     */
    std::vector<Result> runBatch(
        const std::vector<std::string> &payloads);

    /**
     * Free a still-queued job's slot: no worker has picked it up, no
     * result will be produced, the ticket is forgotten. Used by the
     * server to retire a request whose deadline expired while queued.
     * @return false if the ticket is not in the queue (already
     *         running, finished, or unknown).
     */
    bool cancelQueued(std::uint64_t ticket);

    /**
     * SIGKILL the worker currently executing `ticket` (e.g. one
     * wedged past a request deadline). The death surfaces through
     * the normal reap path as one Crashed result for the ticket —
     * condemned jobs are never retried, whatever max_job_attempts
     * says — and the lane is respawned. @return false if no worker
     * is running that ticket.
     */
    bool killActive(std::uint64_t ticket);

    /** Worker-pipe read fds, for embedding in an external poll loop;
     *  call poll(0) when any becomes readable. Invalidated by
     *  respawns, so re-query after every poll(). */
    std::vector<int> resultFds() const;

    unsigned workerCount() const;

    /** Live worker pids (test/diagnostic surface — e.g. SIGKILL one
     *  and watch it respawn). Invalidated by respawns. */
    std::vector<int> workerPids() const;

    std::uint64_t respawns() const { return respawns_; }

    /** Crash-retries performed (job requeued after killing a
     *  worker); each is also counted in ss_job_retries_total. */
    std::uint64_t crashRetries() const { return crashRetries_; }

    /** Jobs submitted but not yet resolved. */
    std::size_t inFlight() const { return inFlight_; }

    /** Jobs sitting in the shared ring, not yet picked up by any
     *  worker (takes the shared lock). */
    std::size_t queueDepth() const;

  private:
    struct Worker
    {
        int pid = -1;
        int pipeFd = -1;        ///< parent's read end
        std::string buf;        ///< partial-frame reassembly
    };

    /** Parent-side copy of a submitted job, kept until its result
     *  arrives so a crash can requeue it (same ticket). */
    struct PendingJob
    {
        std::string payload;
        unsigned attempts = 1;   ///< executions started so far
        bool condemned = false;  ///< killActive()'d: never retry
    };

    void spawnWorker(unsigned index);
    [[noreturn]] void workerMain(unsigned index, int write_fd);
    /** Parse complete frames out of w.buf into results. */
    void drainFrames(Worker &w, std::vector<Result> &out);
    /** Put a crashed job back in the ring under its original
     *  ticket; false when the ring is full. */
    bool requeueCrashed(std::uint64_t ticket, const PendingJob &job);
    /** waitpid sweep: synthesize Crashed results, fork replacements. */
    void reapAndRespawn(std::vector<Result> &out);

    JobFn fn_;
    proc_detail::SharedRegion *shm_ = nullptr;
    unsigned maxAttempts_ = 1;
    // Registered before the first fork so worker pages share slots;
    // written from workerMain (ambient registry bound to the worker's
    // own page). No-ops without an ambient registry. The retry and
    // poison counters are parent-side (page 0).
    obs::Counter mJobs_;
    obs::Counter mBusyUsec_;
    obs::Counter mRetries_;
    obs::Counter mPoisoned_;
    std::vector<Worker> workers_;
    std::map<std::uint64_t, PendingJob> pending_;
    std::uint64_t nextTicket_ = 1;
    std::uint64_t respawns_ = 0;
    std::uint64_t crashRetries_ = 0;
    std::size_t inFlight_ = 0;
    bool stopped_ = false;
};

} // namespace specslice::sim

#endif // SPECSLICE_SIM_PROC_POOL_HH
