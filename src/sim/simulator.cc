#include "sim/simulator.hh"

#include <cstdlib>
#include <cstring>
#include <memory>

#include "check/checker.hh"
#include "common/logging.hh"
#include "slice/validator.hh"

namespace specslice::sim
{

namespace
{

/** SS_CHECK=1 forces the retirement checker on for every run. */
bool
checkForcedByEnv()
{
    static const bool forced = [] {
        const char *v = std::getenv("SS_CHECK");
        return v && *v != '\0' && std::strcmp(v, "0") != 0;
    }();
    return forced;
}

} // namespace

RunResult
Simulator::run(const Workload &wl, const RunOptions &opts,
               bool with_slices)
{
    SS_ASSERT(wl.entry != invalidAddr, "workload has no entry point");

    arch::MemoryImage mem;
    if (wl.initMemory)
        wl.initMemory(mem);

    MachineConfig cfg = cfg_;
    cfg.slicesEnabled = with_slices;

    // Each run gets its own checker instance (parallel JobPool sweeps
    // therefore get one per job): a fresh reference memory image built
    // by the same initializer the timing core's image got, stepping
    // from the same entry PC.
    RunOptions run_opts = opts;
    std::unique_ptr<check::RetireChecker> checker;
    bool want_check = opts.check || checkForcedByEnv();

    // The check.* injection sites are the fault-registry spelling of
    // the two legacy checker knobs: corrupt the Nth observed register
    // writeback / store before comparison (@nN, one-shot semantics).
    std::uint64_t inject_reg = opts.checkInjectRegFault;
    std::uint64_t inject_store = opts.checkInjectStoreFault;
    for (const fault::FaultSpec &spec : opts.faults.specs) {
        if (spec.site == fault::Site::CheckReg)
            inject_reg = spec.period;
        else if (spec.site == fault::Site::CheckStore)
            inject_store = spec.period;
    }

#ifndef SS_CHECK_DISABLED
    if (want_check) {
        check::RetireChecker::Config ccfg;
        ccfg.panicOnDivergence = opts.checkFatal &&
                                 inject_reg == 0 && inject_store == 0;
        ccfg.injectRegFaultAt = inject_reg;
        ccfg.injectStoreFaultAt = inject_store;
        checker = std::make_unique<check::RetireChecker>(
            wl.program, wl.entry, wl.initMemory, ccfg);
        run_opts.checker = checker.get();
    }
#else
    if (want_check) {
        static const bool warned = [] {
            SS_WARN("retirement checking requested but this build has "
                    "SS_CHECK_DISABLED; running unchecked");
            return true;
        }();
        (void)warned;
    }
#endif

    core::SmtCore machine(cfg, wl.program, mem);
    if (with_slices) {
        for (const auto &s : wl.slices) {
            auto validation = slice::validateSlice(s, wl.program);
            if (!validation.ok())
                SS_FATAL("invalid slice '", s.name, "' in workload '",
                         wl.name, "':\n", validation.summary());
            machine.loadSlice(s);
        }
    }
    RunResult res = machine.run(wl.entry, run_opts);

    if (checker) {
        res.checkedRetired = checker->checkedCount();
        res.checkDiverged = checker->diverged();
        if (checker->diverged()) {
            res.checkReport = checker->report();
            res.outcome = SimOutcome::CheckerDivergence;
            // panicOnDivergence aborts at the divergence point; ending
            // up here means the caller opted into latching (fault
            // injection or checkFatal=false) — still fail loudly when
            // a *real* run was supposed to be fatal.
            if (opts.checkFatal && inject_reg == 0 &&
                inject_store == 0)
                SS_FATAL("workload '", wl.name,
                         "' diverged from the architectural "
                         "reference:\n",
                         res.checkReport);
        }
    }
    return res;
}

} // namespace specslice::sim
