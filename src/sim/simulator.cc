#include "sim/simulator.hh"

#include "common/logging.hh"
#include "slice/validator.hh"

namespace specslice::sim
{

RunResult
Simulator::run(const Workload &wl, const RunOptions &opts,
               bool with_slices)
{
    SS_ASSERT(wl.entry != invalidAddr, "workload has no entry point");

    arch::MemoryImage mem;
    if (wl.initMemory)
        wl.initMemory(mem);

    MachineConfig cfg = cfg_;
    cfg.slicesEnabled = with_slices;

    core::SmtCore machine(cfg, wl.program, mem);
    if (with_slices) {
        for (const auto &s : wl.slices) {
            auto validation = slice::validateSlice(s, wl.program);
            if (!validation.ok())
                SS_FATAL("invalid slice '", s.name, "' in workload '",
                         wl.name, "':\n", validation.summary());
            machine.loadSlice(s);
        }
    }
    return machine.run(wl.entry, opts);
}

} // namespace specslice::sim
